/// Ablation of the design choices DESIGN.md §6 calls out: each objective
/// term (user–tweet coupling Xr, lexicon prior α·Sf0, graph regularization
/// β·Lu), the initialization strategy, and — for the online framework —
/// the temporal regularization components. Not a paper table; it isolates
/// *why* the full objective wins.

#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/core/timeline.h"
#include "src/data/snapshots.h"
#include "src/eval/metrics.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

struct Scores {
  double tweet_acc = 0.0;
  double user_acc = 0.0;
  double tweet_nmi = 0.0;
  double user_nmi = 0.0;
};

Scores Score(const TriClusterResult& r, const DatasetMatrices& data) {
  Scores s;
  s.tweet_acc = 100.0 * ClusteringAccuracy(r.TweetClusters(),
                                           data.tweet_labels);
  s.user_acc =
      100.0 * ClusteringAccuracy(r.UserClusters(), data.user_labels);
  s.tweet_nmi = 100.0 * NormalizedMutualInformation(r.TweetClusters(),
                                                    data.tweet_labels);
  s.user_nmi = 100.0 * NormalizedMutualInformation(r.UserClusters(),
                                                   data.user_labels);
  return s;
}

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader(
      "Ablation: contribution of each objective term / design choice");
  const bench_util::BenchDataset b = bench_util::MakeProp30();
  TriClusterConfig base;
  base.max_iterations = flags.ScaledIters(80);
  base.track_loss = false;
  const DenseMatrix sf0 =
      b.lexicon.BuildSf0(b.builder.vocabulary(), base.num_clusters);

  TableWriter table("Offline ablation (Prop-30-like)");
  table.SetHeader({"variant", "tweet acc", "user acc", "tweet NMI",
                   "user NMI"});
  auto add = [&](const std::string& name, const std::string& slug,
                 const TriClusterConfig& config, const DatasetMatrices& data) {
    const Stopwatch watch;
    const Scores s = Score(OfflineTriClusterer(config).Run(data, sf0), b.data);
    const double fit_ms = watch.ElapsedMillis();
    table.AddRow({name, TableWriter::Num(s.tweet_acc, 2),
                  TableWriter::Num(s.user_acc, 2),
                  TableWriter::Num(s.tweet_nmi, 2),
                  TableWriter::Num(s.user_nmi, 2)});
    reporter.Add("ablation/offline/" + slug, fit_ms,
                 {{"tweet_accuracy_pct", s.tweet_acc},
                  {"user_accuracy_pct", s.user_acc},
                  {"tweet_nmi_pct", s.tweet_nmi},
                  {"user_nmi_pct", s.user_nmi}});
  };

  add("full objective", "full", base, b.data);

  {  // Gao-et-al-style decoupling: drop the Xr coupling term entirely.
    DatasetMatrices decoupled = b.data;
    SparseMatrix::Builder empty(b.data.num_users(), b.data.num_tweets());
    decoupled.xr = empty.Build();
    add("no Xr coupling (split bipartite [10])", "no_xr", base, decoupled);
  }
  {
    TriClusterConfig config = base;
    config.alpha = 0.0;
    add("no lexicon term (alpha=0)", "no_lexicon", config, b.data);
  }
  {
    TriClusterConfig config = base;
    config.beta = 0.0;
    add("no graph term (beta=0)", "no_graph", config, b.data);
  }
  {
    TriClusterConfig config = base;
    config.init = InitStrategy::kRandom;
    add("random init (vs lexicon-seeded)", "random_init", config, b.data);
  }
  table.Print(std::cout);

  // Online ablation over the stream.
  const std::vector<Snapshot> snapshots = SplitByDay(b.dataset.corpus);
  TableWriter online_table("Online ablation (per-day stream averages)");
  online_table.SetHeader({"variant", "avg tweet acc", "avg user acc"});
  auto add_online = [&](const std::string& name, const std::string& slug,
                        const OnlineConfig& c) {
    const Stopwatch watch;
    const auto steps = RunTimeline(b.dataset.corpus, b.builder, snapshots,
                                   b.lexicon, TimelineMode::kOnline, c);
    const double stream_ms = watch.ElapsedMillis();
    const double tweet_acc = AverageTweetAccuracy(steps);
    const double user_acc = AverageUserAccuracy(steps);
    online_table.AddRow({name, TableWriter::Num(tweet_acc, 2),
                         TableWriter::Num(user_acc, 2)});
    reporter.Add("ablation/online/" + slug, stream_ms,
                 {{"avg_tweet_accuracy_pct", tweet_acc},
                  {"avg_user_accuracy_pct", user_acc}});
  };
  OnlineConfig online_base;
  online_base.base.max_iterations = flags.ScaledIters(50);
  online_base.base.track_loss = false;
  add_online("full online", "full", online_base);
  {
    OnlineConfig c = online_base;
    c.gamma = 0.0;
    add_online("no user temporal reg (gamma=0)", "no_gamma", c);
  }
  {
    OnlineConfig c = online_base;
    c.seed_users_from_history = false;
    add_online("no user warm start", "no_warm_start", c);
  }
  {
    OnlineConfig c = online_base;
    c.lexicon_blend = 0.0;
    add_online("no lexicon blend (paper-exact Sfw)", "no_lexicon_blend", c);
  }
  {
    OnlineConfig c = online_base;
    c.tau = 0.2;
    add_online("fast decay (tau=0.2)", "fast_decay", c);
  }
  online_table.Print(std::cout);
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_ablation_terms",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
