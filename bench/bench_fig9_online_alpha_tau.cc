/// Reproduces paper Figure 9: online clustering accuracy (user-level and
/// tweet-level) when varying the temporal feature-regularization weight α
/// and the time-decay factor τ on the Prop-30-like stream. The paper's
/// best setting is α = τ = 0.9.

#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/timeline.h"
#include "src/data/snapshots.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader(
      "Figure 9: online accuracy when varying alpha and tau");
  const bench_util::BenchDataset b = bench_util::MakeProp30();
  const std::vector<Snapshot> snapshots = SplitByDay(b.dataset.corpus);
  const std::vector<double> grid = {0.1, 0.3, 0.5, 0.7, 0.9};

  TableWriter user_table("User-level accuracy (%) over (alpha, tau)");
  TableWriter tweet_table("Tweet-level accuracy (%) over (alpha, tau)");
  std::vector<std::string> header = {"alpha\\tau"};
  for (double tau : grid) header.push_back(TableWriter::Num(tau, 1));
  user_table.SetHeader(header);
  tweet_table.SetHeader(header);

  double best_user = 0.0;
  double best_alpha = 0.0;
  double best_tau = 0.0;
  size_t runs = 0;
  const Stopwatch watch;
  for (double alpha : grid) {
    std::vector<std::string> user_row = {TableWriter::Num(alpha, 1)};
    std::vector<std::string> tweet_row = {TableWriter::Num(alpha, 1)};
    for (double tau : grid) {
      OnlineConfig config;
      config.base.max_iterations = flags.ScaledIters(50);
      config.base.track_loss = false;
      config.alpha = alpha;
      config.tau = tau;
      const auto steps =
          RunTimeline(b.dataset.corpus, b.builder, snapshots, b.lexicon,
                      TimelineMode::kOnline, config);
      ++runs;
      const double user_acc = AverageUserAccuracy(steps);
      const double tweet_acc = AverageTweetAccuracy(steps);
      user_row.push_back(TableWriter::Num(user_acc, 1));
      tweet_row.push_back(TableWriter::Num(tweet_acc, 1));
      if (user_acc > best_user) {
        best_user = user_acc;
        best_alpha = alpha;
        best_tau = tau;
      }
    }
    user_table.AddRow(user_row);
    tweet_table.AddRow(tweet_row);
  }
  const double grid_ms = watch.ElapsedMillis();
  user_table.Print(std::cout);
  tweet_table.Print(std::cout);
  std::cout << "\nbest user-level accuracy "
            << TableWriter::Num(best_user, 2) << "% at alpha=" << best_alpha
            << ", tau=" << best_tau
            << "\nPaper shape to check: best user-level accuracy toward "
               "high (alpha, tau); tweet-level far less sensitive.\n";
  reporter.Add("fig9/alpha_tau_grid/online", grid_ms,
               {{"timeline_runs", static_cast<double>(runs)},
                {"best_user_accuracy_pct", best_user},
                {"best_alpha", best_alpha},
                {"best_tau", best_tau}});
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig9_online_alpha_tau",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
