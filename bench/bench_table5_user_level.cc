/// Reproduces paper Table 5: user-level sentiment analysis comparison —
/// supervised (SVM, NB on user–feature rows), semi-supervised (LP on the
/// retweet graph, UserReg-10) and unsupervised (BACG, tri-clustering,
/// online tri-clustering) on both campaign topics.

#include <iostream>

#include "bench/methods.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

using bench_methods::MethodScores;

void Run() {
  bench_util::PrintHeader("Table 5: user-level sentiment comparison");

  const bench_util::BenchDataset prop30 = bench_util::MakeProp30();
  const bench_util::BenchDataset prop37 = bench_util::MakeProp37();

  TableWriter table(
      "User-level Accuracy / NMI, percent (cf. paper Table 5)");
  table.SetHeader({"method", "type", "acc-30", "acc-37", "nmi-30",
                   "nmi-37"});
  auto add = [&](const std::string& method, const std::string& type,
                 const MethodScores& s30, const MethodScores& s37) {
    table.AddRow({method, type, TableWriter::Num(s30.accuracy),
                  TableWriter::Num(s37.accuracy),
                  TableWriter::Num(s30.nmi), TableWriter::Num(s37.nmi)});
  };

  add("SVM [28]", "supervised", bench_methods::UserSvm(prop30),
      bench_methods::UserSvm(prop37));
  add("NB [11]", "supervised", bench_methods::UserNaiveBayes(prop30),
      bench_methods::UserNaiveBayes(prop37));
  add("LP-5 [30]", "semi",
      bench_methods::UserLabelPropagation(prop30, 0.05),
      bench_methods::UserLabelPropagation(prop37, 0.05));
  add("LP-10 [30]", "semi",
      bench_methods::UserLabelPropagation(prop30, 0.10),
      bench_methods::UserLabelPropagation(prop37, 0.10));
  add("UserReg-10 [7]", "semi", bench_methods::UserUserReg(prop30),
      bench_methods::UserUserReg(prop37));
  add("BACG [34]", "unsup", bench_methods::UserBacg(prop30),
      bench_methods::UserBacg(prop37));

  const TriClusterResult tri30 = bench_methods::RunOfflineTri(prop30);
  const TriClusterResult tri37 = bench_methods::RunOfflineTri(prop37);
  add("Tri-clustering", "unsup",
      bench_methods::ScoreClustering(tri30.UserClusters(),
                                     prop30.data.user_labels),
      bench_methods::ScoreClustering(tri37.UserClusters(),
                                     prop37.data.user_labels));

  const auto online30 = bench_methods::RunOnlineTri(prop30);
  const auto online37 = bench_methods::RunOnlineTri(prop37);
  add("Online tri-clustering", "unsup",
      bench_methods::ScoreClustering(online30.user_clusters,
                                     online30.user_labels),
      bench_methods::ScoreClustering(online37.user_clusters,
                                     online37.user_labels));

  table.Print(std::cout);
  std::cout << "\nPaper shape to check: tri-clustering close to the "
               "supervised methods, clearly above BACG and LP; online "
               "variant the best unsupervised row.\n";
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
