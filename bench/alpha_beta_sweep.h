#ifndef TRICLUST_BENCH_ALPHA_BETA_SWEEP_H_
#define TRICLUST_BENCH_ALPHA_BETA_SWEEP_H_

/// Shared (alpha, beta) grid-sweep driver of the paper's Figure 6 (user
/// level) and Figure 7 (tweet level) benches.

#include <iostream>
#include <string>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/eval/metrics.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace bench_sweep {

/// Runs the (α, β) grid and prints one table per metric and level.
/// Shared with the Figure 7 bench (tweet level). Reports the whole grid
/// as one JSON entry `<report_name>` (wall time of all fits; best-cell
/// coordinates and fit count as counters).
inline void RunAlphaBetaSweep(bool user_level, const std::string& report_name,
                              bench_flags::Reporter& reporter,
                              const bench_flags::Flags& flags) {
  const bench_util::BenchDataset b = bench_util::MakeProp30();
  const std::vector<double> grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  TriClusterConfig base;
  base.max_iterations = flags.ScaledIters(60);
  base.track_loss = false;
  const DenseMatrix sf0 = b.lexicon.BuildSf0(b.builder.vocabulary(),
                                             base.num_clusters);

  TableWriter acc_table(user_level
                            ? "User-level accuracy (%) over (alpha, beta)"
                            : "Tweet-level accuracy (%) over (alpha, beta)");
  TableWriter nmi_table(user_level
                            ? "User-level NMI (%) over (alpha, beta)"
                            : "Tweet-level NMI (%) over (alpha, beta)");
  std::vector<std::string> header = {"alpha\\beta"};
  for (double beta : grid) header.push_back(TableWriter::Num(beta, 1));
  acc_table.SetHeader(header);
  nmi_table.SetHeader(header);

  double best_acc = 0.0;
  double best_alpha = 0.0;
  double best_beta = 0.0;
  size_t fits = 0;
  const Stopwatch watch;
  for (double alpha : grid) {
    std::vector<std::string> acc_row = {TableWriter::Num(alpha, 1)};
    std::vector<std::string> nmi_row = {TableWriter::Num(alpha, 1)};
    for (double beta : grid) {
      TriClusterConfig config = base;
      config.alpha = alpha;
      config.beta = beta;
      const TriClusterResult r =
          OfflineTriClusterer(config).Run(b.data, sf0);
      ++fits;
      const std::vector<int> clusters =
          user_level ? r.UserClusters() : r.TweetClusters();
      const std::vector<Sentiment>& truth =
          user_level ? b.data.user_labels : b.data.tweet_labels;
      const double acc = 100.0 * ClusteringAccuracy(clusters, truth);
      const double nmi =
          100.0 * NormalizedMutualInformation(clusters, truth);
      acc_row.push_back(TableWriter::Num(acc, 1));
      nmi_row.push_back(TableWriter::Num(nmi, 1));
      if (acc > best_acc) {
        best_acc = acc;
        best_alpha = alpha;
        best_beta = beta;
      }
    }
    acc_table.AddRow(acc_row);
    nmi_table.AddRow(nmi_row);
  }
  const double grid_ms = watch.ElapsedMillis();
  acc_table.Print(std::cout);
  nmi_table.Print(std::cout);
  std::cout << "\nbest accuracy " << TableWriter::Num(best_acc, 2)
            << "% at alpha=" << best_alpha << ", beta=" << best_beta << "\n";
  reporter.Add(report_name, grid_ms,
               {{"fits", static_cast<double>(fits)},
                {"best_accuracy_pct", best_acc},
                {"best_alpha", best_alpha},
                {"best_beta", best_beta}});
}

}  // namespace bench_sweep
}  // namespace triclust


#endif  // TRICLUST_BENCH_ALPHA_BETA_SWEEP_H_
