#ifndef TRICLUST_BENCH_METHODS_H_
#define TRICLUST_BENCH_METHODS_H_

/// Method-comparison harness shared by the Table 4 (tweet-level) and
/// Table 5 (user-level) benches. Protocols follow the paper's §5:
///  * supervised methods (SVM, NB): 5-fold cross-validation on the labeled
///    set, accuracy only (no NMI — they are classifiers, not clusterings);
///  * semi-supervised (LP-5, LP-10, UserReg-10): seeded with 5%/10% labels,
///    scored on everything;
///  * unsupervised (ESSA, BACG, tri-clustering): clustering accuracy + NMI;
///  * online tri-clustering: Algorithm 2 over per-day snapshots, scores
///    pooled across the stream.

#include <cmath>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/baselines/aggregation.h"
#include "src/baselines/bacg.h"
#include "src/baselines/essa.h"
#include "src/baselines/label_propagation.h"
#include "src/baselines/linear_svm.h"
#include "src/baselines/naive_bayes.h"
#include "src/baselines/userreg.h"
#include "src/core/offline.h"
#include "src/core/online.h"
#include "src/data/snapshots.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"

namespace triclust {
namespace bench_methods {

struct MethodScores {
  double accuracy = std::nan("");
  double nmi = std::nan("");
};

inline constexpr double kNaN = 0;  // placeholder; use std::nan("") directly

// --- shared pieces -----------------------------------------------------------

inline TriClusterConfig OfflineConfig(const bench_flags::Flags& flags) {
  TriClusterConfig config;  // paper's balanced offline choice α=.05, β=.8
  config.max_iterations = flags.ScaledIters(100);
  config.track_loss = false;
  return config;
}

inline OnlineConfig OnlineCfg(const bench_flags::Flags& flags) {
  OnlineConfig config;  // paper's online choice α=τ=.9, γ=.2, w=2
  config.base = OfflineConfig(flags);
  config.base.max_iterations = flags.ScaledIters(60);
  return config;
}

inline DenseMatrix Sf0Of(const bench_util::BenchDataset& b, int k = 3) {
  return b.lexicon.BuildSf0(b.builder.vocabulary(), k);
}

/// Clusters → pooled accuracy/NMI against truth.
inline MethodScores ScoreClustering(const std::vector<int>& clusters,
                                    const std::vector<Sentiment>& truth) {
  MethodScores s;
  s.accuracy = 100.0 * ClusteringAccuracy(clusters, truth);
  s.nmi = 100.0 * NormalizedMutualInformation(clusters, truth);
  return s;
}

// --- tweet-level methods ------------------------------------------------------

inline MethodScores TweetSvm(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy =
      100.0 * CrossValidatedAccuracy(
                  b.data.tweet_labels, 5, 41,
                  [&](const std::vector<Sentiment>& masked) {
                    LinearSvm svm;
                    svm.Train(b.data.xp, masked);
                    return svm.Predict(b.data.xp);
                  });
  return s;
}

inline MethodScores TweetNaiveBayes(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy =
      100.0 * CrossValidatedAccuracy(
                  b.data.tweet_labels, 5, 42,
                  [&](const std::vector<Sentiment>& masked) {
                    MultinomialNaiveBayes nb;
                    nb.Train(b.data.xp, masked);
                    return nb.Predict(b.data.xp);
                  });
  return s;
}

inline MethodScores TweetLabelPropagation(const bench_util::BenchDataset& b,
                                          double fraction) {
  const auto seeds = SampleSeedLabels(b.data.tweet_labels, fraction, 43);
  const auto pred = PropagateBipartite(b.data.xp, seeds);
  MethodScores s;
  s.accuracy = 100.0 * ClassificationAccuracy(pred, b.data.tweet_labels);
  return s;
}

inline UserRegResult RunUserReg10(const bench_util::BenchDataset& b) {
  const auto seeds = SampleSeedLabels(b.data.tweet_labels, 0.10, 44);
  return RunUserReg(b.data, seeds);
}

inline MethodScores TweetUserReg(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy = 100.0 * ClassificationAccuracy(
                           RunUserReg10(b).tweet_predictions,
                           b.data.tweet_labels);
  return s;
}

inline MethodScores TweetEssa(const bench_util::BenchDataset& b,
                              const bench_flags::Flags& flags) {
  EssaOptions options;
  options.max_iterations = flags.ScaledIters(100);
  const TriClusterResult r = RunEssa(b.data.xp, Sf0Of(b), options);
  return ScoreClustering(r.TweetClusters(), b.data.tweet_labels);
}

/// Offline tri-clustering; result shared between tweet/user tables.
inline TriClusterResult RunOfflineTri(const bench_util::BenchDataset& b,
                                      const bench_flags::Flags& flags) {
  return OfflineTriClusterer(OfflineConfig(flags)).Run(b.data, Sf0Of(b));
}

/// Online tri-clustering over per-day snapshots; returns pooled
/// (cluster, label) pairs at both levels.
struct OnlinePooled {
  std::vector<int> tweet_clusters;
  std::vector<Sentiment> tweet_labels;
  std::vector<int> user_clusters;
  std::vector<Sentiment> user_labels;
};

inline OnlinePooled RunOnlineTri(const bench_util::BenchDataset& b,
                                 const bench_flags::Flags& flags) {
  OnlineTriClusterer online(OnlineCfg(flags), Sf0Of(b));
  OnlinePooled pooled;
  for (const Snapshot& snap : SplitByDay(b.dataset.corpus)) {
    const DatasetMatrices data =
        b.builder.Build(b.dataset.corpus, snap.tweet_ids, snap.last_day);
    const TriClusterResult r = online.ProcessSnapshot(data);
    if (data.num_tweets() == 0) continue;
    const auto tc = r.TweetClusters();
    pooled.tweet_clusters.insert(pooled.tweet_clusters.end(), tc.begin(),
                                 tc.end());
    pooled.tweet_labels.insert(pooled.tweet_labels.end(),
                               data.tweet_labels.begin(),
                               data.tweet_labels.end());
    const auto uc = r.UserClusters();
    pooled.user_clusters.insert(pooled.user_clusters.end(), uc.begin(),
                                uc.end());
    pooled.user_labels.insert(pooled.user_labels.end(),
                              data.user_labels.begin(),
                              data.user_labels.end());
  }
  return pooled;
}

// --- user-level methods -------------------------------------------------------

inline MethodScores UserSvm(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy =
      100.0 * CrossValidatedAccuracy(
                  b.data.user_labels, 5, 45,
                  [&](const std::vector<Sentiment>& masked) {
                    LinearSvm svm;
                    svm.Train(b.data.xu, masked);
                    return svm.Predict(b.data.xu);
                  });
  return s;
}

inline MethodScores UserNaiveBayes(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy =
      100.0 * CrossValidatedAccuracy(
                  b.data.user_labels, 5, 46,
                  [&](const std::vector<Sentiment>& masked) {
                    MultinomialNaiveBayes nb;
                    nb.Train(b.data.xu, masked);
                    return nb.Predict(b.data.xu);
                  });
  return s;
}

inline MethodScores UserLabelPropagation(const bench_util::BenchDataset& b,
                                         double fraction) {
  // Tan-et-al-style LP on the user–user retweet graph [30].
  const auto seeds = SampleSeedLabels(b.data.user_labels, fraction, 47);
  const auto pred = PropagateGraph(b.data.gu, seeds);
  MethodScores s;
  s.accuracy = 100.0 * ClassificationAccuracy(pred, b.data.user_labels);
  return s;
}

inline MethodScores UserUserReg(const bench_util::BenchDataset& b) {
  MethodScores s;
  s.accuracy = 100.0 * ClassificationAccuracy(
                           RunUserReg10(b).user_predictions,
                           b.data.user_labels);
  return s;
}

inline MethodScores UserBacg(const bench_util::BenchDataset& b) {
  const std::vector<int> clusters = RunBacg(b.data.xu, b.data.gu);
  return ScoreClustering(clusters, b.data.user_labels);
}

}  // namespace bench_methods
}  // namespace triclust

#endif  // TRICLUST_BENCH_METHODS_H_
