/// Reproduces paper Figure 6: user-level clustering accuracy and NMI of the
/// offline framework as a function of the lexicon weight α and the graph
/// weight β (grid sweep on the Prop-30-like campaign).

#include "bench/alpha_beta_sweep.h"

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig6_offline_user_sweep",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::bench_util::PrintHeader(
            "Figure 6: user-level quality when varying alpha and beta");
        triclust::bench_sweep::RunAlphaBetaSweep(
            /*user_level=*/true, "fig6/alpha_beta_grid/user", reporter,
            flags);
        std::cout << "\nPaper shape to check: graph regularization "
                     "(moderate-high beta) helps user-level accuracy; heavy "
                     "lexicon weight is inessential at user level.\n";
      });
}
