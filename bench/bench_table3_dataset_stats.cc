/// Reproduces paper Table 3: statistics of labeled tweets and users for the
/// two campaign topics. The paper's collection has partial human labels; the
/// generator knows every label, so this table reports the full ground truth
/// plus the same structural statistics (volume skew, graph size).

#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter) {
  bench_util::PrintHeader("Table 3: statistics of tweets and users");

  TableWriter tweets("Tweet label statistics (cf. paper Table 3)");
  tweets.SetHeader({"topic", "tweets", "pos", "neg", "neu", "retweets"});
  TableWriter users("User label statistics (cf. paper Table 3)");
  users.SetHeader({"topic", "users", "pos", "neg", "neu", "gu_edges"});

  for (const char* topic : {"prop30", "prop37"}) {
    const Stopwatch watch;
    const bench_util::BenchDataset b = topic == std::string("prop30")
                                           ? bench_util::MakeProp30()
                                           : bench_util::MakeProp37();
    const double prepare_ms = watch.ElapsedMillis();
    const auto tl = b.dataset.corpus.CountTweetLabels();
    size_t retweets = 0;
    for (const Tweet& t : b.dataset.corpus.tweets()) {
      if (t.IsRetweet()) ++retweets;
    }
    tweets.AddRow({b.name, std::to_string(b.dataset.corpus.num_tweets()),
                   std::to_string(tl.positive), std::to_string(tl.negative),
                   std::to_string(tl.neutral), std::to_string(retweets)});
    const auto ul = b.dataset.corpus.CountUserLabels();
    users.AddRow({b.name, std::to_string(b.dataset.corpus.num_users()),
                  std::to_string(ul.positive), std::to_string(ul.negative),
                  std::to_string(ul.neutral),
                  std::to_string(b.data.gu.num_edges())});
    reporter.Add(
        std::string("table3/dataset_stats/") + topic, prepare_ms,
        {{"tweets", static_cast<double>(b.dataset.corpus.num_tweets())},
         {"users", static_cast<double>(b.dataset.corpus.num_users())},
         {"tweet_pos", static_cast<double>(tl.positive)},
         {"tweet_neg", static_cast<double>(tl.negative)},
         {"retweets", static_cast<double>(retweets)},
         {"gu_edges", static_cast<double>(b.data.gu.num_edges())}});
  }
  tweets.Print(std::cout);
  users.Print(std::cout);
  std::cout << "\nPaper reference (real data): Prop30 8777 pos / 5014 neg "
               "tweets; Prop37 34789 pos / 2587 neg tweets (positively "
               "skewed) — the synthetic presets reproduce the balanced vs "
               "skewed shape at reduced scale.\n";
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_table3_dataset_stats",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags&) { triclust::Run(reporter); });
}
