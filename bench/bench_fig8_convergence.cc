/// Reproduces paper Figure 8: convergence of the offline algorithm — the
/// Frobenius loss of the tweet–feature approximation (a), the user–feature
/// approximation (b) and the total objective (c) across 100 multiplicative
/// iterations. The paper's observation: the total drops fast (~10
/// iterations), after which the algorithm trades the component losses
/// against each other around the balance point.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader("Figure 8: convergence of the offline algorithm");
  const bench_util::BenchDataset b = bench_util::MakeProp30();

  TriClusterConfig config;
  config.max_iterations = flags.ScaledIters(100);
  config.tolerance = 0.0;  // run the full 100 iterations, as the figure does
  config.track_loss = true;
  const DenseMatrix sf0 =
      b.lexicon.BuildSf0(b.builder.vocabulary(), config.num_clusters);
  const Stopwatch watch;
  const TriClusterResult r = OfflineTriClusterer(config).Run(b.data, sf0);
  const double solve_ms = watch.ElapsedMillis();

  TableWriter table(
      "Loss components per iteration (sqrt of squared Frobenius loss; "
      "cf. paper Fig. 8 a/b/c)");
  table.SetHeader({"iter", "||Xp-SpHpSf'||F", "||Xu-SuHuSf'||F",
                   "||Xr-SuSp'||F", "lexicon", "graph", "total"});
  for (size_t i = 0; i < r.loss_history.size(); ++i) {
    // Print every iteration early (the interesting regime), then every 10.
    if (i > 15 && i % 10 != 0 && i + 1 != r.loss_history.size()) continue;
    const LossComponents& loss = r.loss_history[i];
    table.AddRow({std::to_string(i),
                  TableWriter::Num(std::sqrt(loss.xp_loss), 2),
                  TableWriter::Num(std::sqrt(loss.xu_loss), 2),
                  TableWriter::Num(std::sqrt(loss.xr_loss), 2),
                  TableWriter::Num(loss.lexicon_loss, 2),
                  TableWriter::Num(loss.graph_loss, 4),
                  TableWriter::Num(loss.Total(), 2)});
  }
  table.Print(std::cout);

  double lowest = r.loss_history.front().Total();
  size_t lowest_iter = 0;
  for (size_t i = 0; i < r.loss_history.size(); ++i) {
    if (r.loss_history[i].Total() < lowest) {
      lowest = r.loss_history[i].Total();
      lowest_iter = i;
    }
  }
  std::cout << "\ninitial total " << r.loss_history.front().Total()
            << ", minimum total " << lowest << " at iteration "
            << lowest_iter << ", final total "
            << r.loss_history.back().Total() << "\n"
            << "Paper shape to check: steep descent within ~10 iterations, "
               "then bounded component trading (paper: 'the algorithm "
               "searches among each local optimum of the five components "
               "and finally finds the global balancing point').\n";
  reporter.Add("fig8/convergence/offline", solve_ms,
               {{"iterations", static_cast<double>(r.iterations)},
                {"initial_total_loss", r.loss_history.front().Total()},
                {"min_total_loss", lowest},
                {"final_total_loss", r.loss_history.back().Total()}});
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig8_convergence",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
