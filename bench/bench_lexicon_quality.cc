/// Robustness sweep over prior-lexicon quality: accuracy of offline
/// tri-clustering as a function of lexicon coverage and polarity-error
/// rate. Backs the paper's positioning that the framework "does not require
/// any labeling or input from human" beyond a (possibly automatically
/// built, hence imperfect) word list — quality should degrade gracefully,
/// not collapse, as the prior gets worse.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/eval/metrics.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run() {
  bench_util::PrintHeader(
      "Robustness: accuracy vs prior-lexicon coverage and error rate");
  // Regenerate once; derive priors of varying quality from the same truth.
  const SyntheticDataset dataset = GenerateSynthetic(Prop30LikeConfig());
  MatrixBuilder builder;
  builder.Fit(dataset.corpus);
  const DatasetMatrices data = builder.BuildAll(dataset.corpus);

  TriClusterConfig config;
  config.max_iterations = 60;
  config.track_loss = false;

  TableWriter coverage_table(
      "Tweet/user accuracy (%) vs lexicon coverage (error rate 5%)");
  coverage_table.SetHeader({"coverage", "tweet acc", "user acc",
                            "tweet NMI"});
  for (const double coverage : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05}) {
    const SentimentLexicon lexicon =
        CorruptLexicon(dataset.true_lexicon, coverage, 0.05, 99);
    const DenseMatrix sf0 =
        lexicon.BuildSf0(builder.vocabulary(), config.num_clusters);
    const TriClusterResult r = OfflineTriClusterer(config).Run(data, sf0);
    coverage_table.AddRow(
        {TableWriter::Num(coverage, 2),
         TableWriter::Num(100.0 * ClusteringAccuracy(r.TweetClusters(),
                                                     data.tweet_labels)),
         TableWriter::Num(100.0 * ClusteringAccuracy(r.UserClusters(),
                                                     data.user_labels)),
         TableWriter::Num(100.0 * NormalizedMutualInformation(
                                      r.TweetClusters(),
                                      data.tweet_labels))});
  }
  coverage_table.Print(std::cout);

  TableWriter error_table(
      "Tweet/user accuracy (%) vs lexicon error rate (coverage 60%)");
  error_table.SetHeader({"error rate", "tweet acc", "user acc",
                         "tweet NMI"});
  for (const double error : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const SentimentLexicon lexicon =
        CorruptLexicon(dataset.true_lexicon, 0.6, error, 99);
    const DenseMatrix sf0 =
        lexicon.BuildSf0(builder.vocabulary(), config.num_clusters);
    const TriClusterResult r = OfflineTriClusterer(config).Run(data, sf0);
    error_table.AddRow(
        {TableWriter::Num(error, 2),
         TableWriter::Num(100.0 * ClusteringAccuracy(r.TweetClusters(),
                                                     data.tweet_labels)),
         TableWriter::Num(100.0 * ClusteringAccuracy(r.UserClusters(),
                                                     data.user_labels)),
         TableWriter::Num(100.0 * NormalizedMutualInformation(
                                      r.TweetClusters(),
                                      data.tweet_labels))});
  }
  error_table.Print(std::cout);
  std::cout << "\nShape to check: graceful degradation — accuracy falls "
               "with prior quality but stays well above chance even at low "
               "coverage, because the co-clustering propagates sentiment "
               "from covered words to co-occurring ones.\n";
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
