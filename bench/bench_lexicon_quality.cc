/// Robustness sweep over prior-lexicon quality: accuracy of offline
/// tri-clustering as a function of lexicon coverage and polarity-error
/// rate. Backs the paper's positioning that the framework "does not require
/// any labeling or input from human" beyond a (possibly automatically
/// built, hence imperfect) word list — quality should degrade gracefully,
/// not collapse, as the prior gets worse.

#include <array>
#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/eval/metrics.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader(
      "Robustness: accuracy vs prior-lexicon coverage and error rate");
  // Regenerate once; derive priors of varying quality from the same truth.
  const SyntheticDataset dataset = GenerateSynthetic(Prop30LikeConfig());
  MatrixBuilder builder;
  builder.Fit(dataset.corpus);
  const DatasetMatrices data = builder.BuildAll(dataset.corpus);

  TriClusterConfig config;
  config.max_iterations = flags.ScaledIters(60);
  config.track_loss = false;

  auto fit = [&](const std::string& scenario, double coverage, double error) {
    const SentimentLexicon lexicon =
        CorruptLexicon(dataset.true_lexicon, coverage, error, 99);
    const DenseMatrix sf0 =
        lexicon.BuildSf0(builder.vocabulary(), config.num_clusters);
    const Stopwatch watch;
    const TriClusterResult r = OfflineTriClusterer(config).Run(data, sf0);
    const double fit_ms = watch.ElapsedMillis();
    const double tweet_acc =
        100.0 * ClusteringAccuracy(r.TweetClusters(), data.tweet_labels);
    const double user_acc =
        100.0 * ClusteringAccuracy(r.UserClusters(), data.user_labels);
    const double tweet_nmi = 100.0 * NormalizedMutualInformation(
                                         r.TweetClusters(), data.tweet_labels);
    reporter.Add(scenario, fit_ms, {{"tweet_accuracy_pct", tweet_acc},
                                    {"user_accuracy_pct", user_acc},
                                    {"tweet_nmi_pct", tweet_nmi}});
    return std::array<double, 3>{tweet_acc, user_acc, tweet_nmi};
  };

  TableWriter coverage_table(
      "Tweet/user accuracy (%) vs lexicon coverage (error rate 5%)");
  coverage_table.SetHeader({"coverage", "tweet acc", "user acc",
                            "tweet NMI"});
  for (const double coverage : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05}) {
    const auto s = fit("lexicon/coverage_sweep/coverage:" +
                           TableWriter::Num(coverage, 2),
                       coverage, 0.05);
    coverage_table.AddRow({TableWriter::Num(coverage, 2),
                           TableWriter::Num(s[0]), TableWriter::Num(s[1]),
                           TableWriter::Num(s[2])});
  }
  coverage_table.Print(std::cout);

  TableWriter error_table(
      "Tweet/user accuracy (%) vs lexicon error rate (coverage 60%)");
  error_table.SetHeader({"error rate", "tweet acc", "user acc",
                         "tweet NMI"});
  for (const double error : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const auto s = fit("lexicon/error_sweep/error:" +
                           TableWriter::Num(error, 2),
                       0.6, error);
    error_table.AddRow({TableWriter::Num(error, 2), TableWriter::Num(s[0]),
                        TableWriter::Num(s[1]), TableWriter::Num(s[2])});
  }
  error_table.Print(std::cout);
  std::cout << "\nShape to check: graceful degradation — accuracy falls "
               "with prior quality but stays well above chance even at low "
               "coverage, because the co-clustering propagates sentiment "
               "from covered words to co-occurring ones.\n";
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_lexicon_quality",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
