/// Reproduces paper Table 4: tweet-level sentiment analysis comparison —
/// supervised (SVM, NB), semi-supervised (LP-5, LP-10, UserReg-10) and
/// unsupervised (ESSA, tri-clustering, online tri-clustering) on both
/// campaign topics. Accuracy for all methods; NMI for the clusterings.

#include <iostream>

#include "bench/methods.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

using bench_methods::MethodScores;

void Run() {
  bench_util::PrintHeader("Table 4: tweet-level sentiment comparison");

  const bench_util::BenchDataset prop30 = bench_util::MakeProp30();
  const bench_util::BenchDataset prop37 = bench_util::MakeProp37();

  TableWriter table(
      "Tweet-level Accuracy / NMI, percent (cf. paper Table 4)");
  table.SetHeader({"method", "type", "acc-30", "acc-37", "nmi-30",
                   "nmi-37"});

  auto add = [&](const std::string& method, const std::string& type,
                 const MethodScores& s30, const MethodScores& s37) {
    table.AddRow({method, type, TableWriter::Num(s30.accuracy),
                  TableWriter::Num(s37.accuracy),
                  TableWriter::Num(s30.nmi), TableWriter::Num(s37.nmi)});
  };

  add("SVM [28]", "supervised", bench_methods::TweetSvm(prop30),
      bench_methods::TweetSvm(prop37));
  add("NB [11]", "supervised", bench_methods::TweetNaiveBayes(prop30),
      bench_methods::TweetNaiveBayes(prop37));
  add("LP-5 [12,29]", "semi",
      bench_methods::TweetLabelPropagation(prop30, 0.05),
      bench_methods::TweetLabelPropagation(prop37, 0.05));
  add("LP-10 [12,29]", "semi",
      bench_methods::TweetLabelPropagation(prop30, 0.10),
      bench_methods::TweetLabelPropagation(prop37, 0.10));
  add("UserReg-10 [7]", "semi", bench_methods::TweetUserReg(prop30),
      bench_methods::TweetUserReg(prop37));
  add("ESSA [15]", "unsup", bench_methods::TweetEssa(prop30),
      bench_methods::TweetEssa(prop37));

  const TriClusterResult tri30 = bench_methods::RunOfflineTri(prop30);
  const TriClusterResult tri37 = bench_methods::RunOfflineTri(prop37);
  add("Tri-clustering", "unsup",
      bench_methods::ScoreClustering(tri30.TweetClusters(),
                                     prop30.data.tweet_labels),
      bench_methods::ScoreClustering(tri37.TweetClusters(),
                                     prop37.data.tweet_labels));

  const auto online30 = bench_methods::RunOnlineTri(prop30);
  const auto online37 = bench_methods::RunOnlineTri(prop37);
  add("Online tri-clustering", "unsup",
      bench_methods::ScoreClustering(online30.tweet_clusters,
                                     online30.tweet_labels),
      bench_methods::ScoreClustering(online37.tweet_clusters,
                                     online37.tweet_labels));

  table.Print(std::cout);
  std::cout << "\nPaper shape to check: tri-clustering beats ESSA on both "
               "topics and approaches the supervised methods; the online "
               "variant beats offline (feature evolution).\n";
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::Run();
  return 0;
}
