/// Reproduces paper Table 4: tweet-level sentiment analysis comparison —
/// supervised (SVM, NB), semi-supervised (LP-5, LP-10, UserReg-10) and
/// unsupervised (ESSA, tri-clustering, online tri-clustering) on both
/// campaign topics. Accuracy for all methods; NMI for the clusterings.

#include <cmath>
#include <functional>
#include <iostream>

#include "bench/methods.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

using bench_methods::MethodScores;

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader("Table 4: tweet-level sentiment comparison");

  const bench_util::BenchDataset prop30 = bench_util::MakeProp30();
  const bench_util::BenchDataset prop37 = bench_util::MakeProp37();

  TableWriter table(
      "Tweet-level Accuracy / NMI, percent (cf. paper Table 4)");
  table.SetHeader({"method", "type", "acc-30", "acc-37", "nmi-30",
                   "nmi-37"});

  // Runs one method on both topics, timing the pair; NMI counters are
  // emitted only for clustering methods (classifiers score NaN there,
  // which must never reach the JSON report).
  auto add = [&](const std::string& method, const std::string& slug,
                 const std::string& type,
                 const std::function<MethodScores(
                     const bench_util::BenchDataset&)>& fn) {
    const Stopwatch watch;
    const MethodScores s30 = fn(prop30);
    const MethodScores s37 = fn(prop37);
    const double both_ms = watch.ElapsedMillis();
    table.AddRow({method, type, TableWriter::Num(s30.accuracy),
                  TableWriter::Num(s37.accuracy),
                  TableWriter::Num(s30.nmi), TableWriter::Num(s37.nmi)});
    std::vector<std::pair<std::string, double>> counters = {
        {"accuracy_prop30_pct", s30.accuracy},
        {"accuracy_prop37_pct", s37.accuracy}};
    if (std::isfinite(s30.nmi)) counters.push_back({"nmi_prop30_pct", s30.nmi});
    if (std::isfinite(s37.nmi)) counters.push_back({"nmi_prop37_pct", s37.nmi});
    reporter.Add("table4/tweet_level/" + slug, both_ms, counters);
  };

  add("SVM [28]", "svm", "supervised", bench_methods::TweetSvm);
  add("NB [11]", "nb", "supervised", bench_methods::TweetNaiveBayes);
  add("LP-5 [12,29]", "lp5", "semi",
      [](const bench_util::BenchDataset& b) {
        return bench_methods::TweetLabelPropagation(b, 0.05);
      });
  add("LP-10 [12,29]", "lp10", "semi",
      [](const bench_util::BenchDataset& b) {
        return bench_methods::TweetLabelPropagation(b, 0.10);
      });
  add("UserReg-10 [7]", "userreg10", "semi", bench_methods::TweetUserReg);
  add("ESSA [15]", "essa", "unsup",
      [&](const bench_util::BenchDataset& b) {
        return bench_methods::TweetEssa(b, flags);
      });
  add("Tri-clustering", "triclust", "unsup",
      [&](const bench_util::BenchDataset& b) {
        const TriClusterResult r = bench_methods::RunOfflineTri(b, flags);
        return bench_methods::ScoreClustering(r.TweetClusters(),
                                              b.data.tweet_labels);
      });
  add("Online tri-clustering", "online_triclust", "unsup",
      [&](const bench_util::BenchDataset& b) {
        const auto pooled = bench_methods::RunOnlineTri(b, flags);
        return bench_methods::ScoreClustering(pooled.tweet_clusters,
                                              pooled.tweet_labels);
      });

  table.Print(std::cout);
  std::cout << "\nPaper shape to check: tri-clustering beats ESSA on both "
               "topics and approaches the supervised methods; the online "
               "variant beats offline (feature evolution).\n";
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_table4_tweet_level",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
