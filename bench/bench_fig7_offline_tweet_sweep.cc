/// Reproduces paper Figure 7: tweet-level clustering accuracy and NMI of
/// the offline framework as a function of the lexicon weight α and the
/// graph weight β. The paper's finding: tweet-level quality is much less
/// parameter-sensitive than user-level quality and prefers a light lexicon
/// regularization over none.

#include "bench/alpha_beta_sweep.h"

int main() {
  triclust::bench_util::PrintHeader(
      "Figure 7: tweet-level quality when varying alpha and beta");
  triclust::bench_sweep::RunAlphaBetaSweep(/*user_level=*/false);
  std::cout << "\nPaper shape to check: tweet-level accuracy varies within "
               "a narrow band across the grid (the paper sees 81-82%), "
               "while Figure 6's user-level accuracy swings much wider.\n";
  return 0;
}
