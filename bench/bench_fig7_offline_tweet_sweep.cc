/// Reproduces paper Figure 7: tweet-level clustering accuracy and NMI of
/// the offline framework as a function of the lexicon weight α and the
/// graph weight β. The paper's finding: tweet-level quality is much less
/// parameter-sensitive than user-level quality and prefers a light lexicon
/// regularization over none.

#include "bench/alpha_beta_sweep.h"

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig7_offline_tweet_sweep",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::bench_util::PrintHeader(
            "Figure 7: tweet-level quality when varying alpha and beta");
        triclust::bench_sweep::RunAlphaBetaSweep(
            /*user_level=*/false, "fig7/alpha_beta_grid/tweet", reporter,
            flags);
        std::cout << "\nPaper shape to check: tweet-level accuracy varies "
                     "within a narrow band across the grid (the paper sees "
                     "81-82%), while Figure 6's user-level accuracy swings "
                     "much wider.\n";
      });
}
