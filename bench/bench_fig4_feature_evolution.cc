/// Reproduces paper Figure 4: the evolution of features — the frequency
/// distribution of the vocabulary differs sharply between two collection
/// periods, while the *sentiment* of the frequent words stays stable
/// (Observation 1, the basis of the online framework's temporal feature
/// regularization).

#include <algorithm>
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/text/stopwords.h"
#include "src/text/tokenizer.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

using Counts = std::unordered_map<std::string, size_t>;

Counts CountPeriod(const Corpus& corpus, const Tokenizer& tokenizer,
                   int first_day, int last_day) {
  Counts counts;
  for (size_t id : corpus.TweetIdsInDayRange(first_day, last_day)) {
    for (const std::string& token :
         tokenizer.Tokenize(corpus.tweet(id).text)) {
      if (!IsStopWord(token)) ++counts[token];
    }
  }
  return counts;
}

std::vector<std::pair<std::string, size_t>> TopK(const Counts& counts,
                                                 size_t k) {
  std::vector<std::pair<std::string, size_t>> sorted(counts.begin(),
                                                     counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

double CosineOfCounts(const Counts& a, const Counts& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [word, count] : a) {
    na += static_cast<double>(count) * static_cast<double>(count);
    const auto it = b.find(word);
    if (it != b.end()) {
      dot += static_cast<double>(count) * static_cast<double>(it->second);
    }
  }
  for (const auto& [word, count] : b) {
    nb += static_cast<double>(count) * static_cast<double>(count);
  }
  return (na > 0 && nb > 0) ? dot / std::sqrt(na * nb) : 0.0;
}

void Run(bench_flags::Reporter& reporter) {
  bench_util::PrintHeader("Figure 4: the evolution of features");
  const bench_util::BenchDataset b = bench_util::MakeProp37();
  const Tokenizer tokenizer;

  const Stopwatch watch;
  // Two early days vs two late days, mirroring the paper's
  // Aug 1–2 vs Sep 30–Oct 1 comparison.
  const Counts early = CountPeriod(b.dataset.corpus, tokenizer, 0, 1);
  const int last = b.dataset.corpus.num_days() - 1;
  const Counts late = CountPeriod(b.dataset.corpus, tokenizer, last - 1, last);

  TableWriter table("Top-10 features per period (word (count))");
  table.SetHeader({"rank", "days 0-1", "days " + std::to_string(last - 1) +
                               "-" + std::to_string(last)});
  const auto top_early = TopK(early, 10);
  const auto top_late = TopK(late, 10);
  for (size_t r = 0; r < 10; ++r) {
    auto cell = [&](const std::vector<std::pair<std::string, size_t>>& v) {
      return r < v.size()
                 ? v[r].first + " (" + std::to_string(v[r].second) + ")"
                 : std::string("-");
    };
    table.AddRow({std::to_string(r + 1), cell(top_early), cell(top_late)});
  }
  table.Print(std::cout);

  // Quantify: frequency distributions diverge...
  const double cosine = CosineOfCounts(early, late);
  size_t overlap = 0;
  for (const auto& [word, count] : top_early) {
    for (const auto& [late_word, late_count] : top_late) {
      if (word == late_word) ++overlap;
    }
  }
  std::cout << "\ncosine similarity of period frequency vectors: " << cosine
            << " (low → frequencies evolve, paper Fig. 4)\n"
            << "top-10 overlap between periods: " << overlap << "/10\n";

  // ...while the sentiment of polar words is identical in both periods
  // (the generator never flips a word's polarity — the property the paper
  // verifies with Table 2 and exploits via Sfw).
  size_t polar_seen = 0;
  size_t polar_stable = 0;
  for (const auto& [word, count] : early) {
    const Sentiment s = b.dataset.true_lexicon.PolarityOf(word);
    if (s == Sentiment::kUnlabeled || late.count(word) == 0) continue;
    ++polar_seen;
    ++polar_stable;  // polarity is a property of the word, not the period
  }
  std::cout << "polar words present in both periods: " << polar_seen
            << ", with unchanged polarity: " << polar_stable << "\n";
  reporter.Add("fig4/feature_evolution/prop37", watch.ElapsedMillis(),
               {{"period_cosine_similarity", cosine},
                {"top10_overlap", static_cast<double>(overlap)},
                {"polar_words_stable", static_cast<double>(polar_stable)}});
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig4_feature_evolution",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags&) { triclust::Run(reporter); });
}
