/// Reproduces paper Figure 12: online vs mini-batch vs full-batch on the
/// higher-volume, positively-skewed Prop-37-like stream — per-day running
/// time (a), tweet-level accuracy (b) and user-level accuracy (c).

#include "bench/timeline_figure.h"

int main() {
  const auto b = triclust::bench_util::MakeProp37();
  triclust::bench_fig::RunTimelineFigure(
      "Figure 12: online performance, Prop-37-like stream", b);
  return 0;
}
