/// Reproduces paper Figure 12: online vs mini-batch vs full-batch on the
/// higher-volume, positively-skewed Prop-37-like stream — per-day running
/// time (a), tweet-level accuracy (b) and user-level accuracy (c).

#include "bench/timeline_figure.h"

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig12_online_prop37",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        const auto b = triclust::bench_util::MakeProp37();
        triclust::bench_fig::RunTimelineFigure(
            "Figure 12: online performance, Prop-37-like stream", b,
            "fig12/timeline/prop37", reporter, flags);
      });
}
