/// Reproduces paper Table 2: top-8 words with the highest frequency in each
/// pos/neg tweet class, demonstrating that high-frequency polar vocabulary
/// is stable and class-aligned (the basis of Observation 1).

#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/text/stopwords.h"
#include "src/text/tokenizer.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter) {
  bench_util::PrintHeader(
      "Table 2: top-8 words with highest frequency per class");
  const bench_util::BenchDataset b = bench_util::MakeProp37();

  const Stopwatch watch;
  Tokenizer tokenizer;
  std::unordered_map<std::string, size_t> pos_counts;
  std::unordered_map<std::string, size_t> neg_counts;
  for (const Tweet& t : b.dataset.corpus.tweets()) {
    auto* counts = t.label == Sentiment::kPositive  ? &pos_counts
                   : t.label == Sentiment::kNegative ? &neg_counts
                                                     : nullptr;
    if (counts == nullptr) continue;
    for (const std::string& token : tokenizer.Tokenize(t.text)) {
      if (IsStopWord(token)) continue;
      ++(*counts)[token];
    }
  }

  auto top8 = [](const std::unordered_map<std::string, size_t>& counts) {
    std::vector<std::pair<std::string, size_t>> sorted(counts.begin(),
                                                       counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& lhs, const auto& rhs) {
                return lhs.second != rhs.second ? lhs.second > rhs.second
                                                : lhs.first < rhs.first;
              });
    if (sorted.size() > 8) sorted.resize(8);
    return sorted;
  };

  TableWriter table("Top-8 words per class (word (count), cf. paper Table 2)");
  table.SetHeader({"rank", "positive", "negative"});
  const auto pos = top8(pos_counts);
  const auto neg = top8(neg_counts);
  for (size_t r = 0; r < 8; ++r) {
    auto cell = [&](const std::vector<std::pair<std::string, size_t>>& v) {
      return r < v.size()
                 ? v[r].first + " (" + std::to_string(v[r].second) + ")"
                 : std::string("-");
    };
    table.AddRow({std::to_string(r + 1), cell(pos), cell(neg)});
  }
  table.Print(std::cout);

  // Observation 1's second half: the top words' class alignment matches the
  // generating lexicon.
  size_t aligned = 0;
  size_t polar = 0;
  for (const auto& [word, count] : pos) {
    const Sentiment truth = b.dataset.true_lexicon.PolarityOf(word);
    if (truth == Sentiment::kUnlabeled) continue;
    ++polar;
    if (truth == Sentiment::kPositive) ++aligned;
  }
  for (const auto& [word, count] : neg) {
    const Sentiment truth = b.dataset.true_lexicon.PolarityOf(word);
    if (truth == Sentiment::kUnlabeled) continue;
    ++polar;
    if (truth == Sentiment::kNegative) ++aligned;
  }
  std::cout << "\npolar words among top-8 lists: " << polar
            << ", class-aligned: " << aligned << "\n";
  reporter.Add("table2/top_words/prop37", watch.ElapsedMillis(),
               {{"polar_in_top8", static_cast<double>(polar)},
                {"class_aligned", static_cast<double>(aligned)}});
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_table2_top_words",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags&) { triclust::Run(reporter); });
}
