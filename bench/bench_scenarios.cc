/// Adversarial-scenario benchmarks: wall time and throughput of the full
/// multi-method scenario runner (src/eval/method_runner.h) over every
/// catalog entry, plus the cost split between the tri-cluster replay and
/// the pooled baselines, and the streaming-loader overhead of replaying a
/// scenario corpus through TsvStreamReader instead of a whole-file
/// ReadTsv. These are robustness-path numbers: the catalog is the
/// hostile-workload suite CI gates on, so its runtime is the price of
/// every scenario smoke run.
///
/// Accepts the google-benchmark flag surface (see bench/bench_flags.h):
/// --benchmark_min_time=0.01x scales the scenario population and solver
/// iterations down for CI smoke runs, --benchmark_format=json /
/// --benchmark_out=... emit a JSON report.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/data/corpus_io.h"
#include "src/data/scenario.h"
#include "src/eval/method_runner.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

bench_flags::Flags g_flags;
bench_flags::Reporter* g_reporter = nullptr;

/// Scenario scale for this run: full catalog size by default, shrunk —
/// but never below the 0.5 floor the expectations are calibrated for —
/// on smoke runs.
double BenchScale() {
  return g_flags.work_scale < 1.0 ? 0.5 : 1.0;
}

MethodRunnerOptions BenchOptions(std::vector<std::string> methods) {
  MethodRunnerOptions options;
  options.methods = std::move(methods);
  options.max_iterations = g_flags.ScaledIters(options.max_iterations);
  return options;
}

/// Full catalog through every method: the cost of one CI scenario gate.
void RunCatalogSweep() {
  bench_util::PrintHeader(
      "Scenario suite: multi-method runner over the hostile catalog");
  TableWriter table("RunScenario, all methods (triclust+lexvote+lp10+"
                    "userreg10)");
  table.SetHeader({"scenario", "tweets", "days", "wall ms", "tweets/s",
                   "tri t-acc", "tri u-acc"});
  for (const Scenario& scenario : AllScenarios(BenchScale())) {
    Stopwatch watch;
    auto run = RunScenario(scenario, BenchOptions(
        {"triclust", "lexvote", "lp10", "userreg10"}));
    const double wall_ms = watch.ElapsedMillis();
    if (!run.ok()) {
      std::cerr << scenario.name << ": " << run.status().ToString() << "\n";
      std::exit(1);
    }
    const double tweets = static_cast<double>(run.value().replay.total_tweets);
    const double rate = wall_ms > 0.0 ? tweets / (wall_ms / 1000.0) : 0.0;
    table.AddRow({scenario.name, std::to_string(run.value().replay.total_tweets),
                  std::to_string(run.value().replay_horizon_days),
                  TableWriter::Num(wall_ms, 1), TableWriter::Num(rate, 0),
                  TableWriter::Num(run.value().triclust_aggregate.tweet_accuracy, 3),
                  TableWriter::Num(run.value().triclust_aggregate.user_accuracy, 3)});
    if (g_reporter != nullptr) {
      g_reporter->Add("scenario_all_methods/" + scenario.name, wall_ms,
                      {{"tweets_per_second", rate},
                       {"tweet_accuracy",
                        run.value().triclust_aggregate.tweet_accuracy}});
    }
  }
  table.Print(std::cout);
}

/// Tri-cluster replay alone vs the baseline pool alone: where the
/// scenario gate's time actually goes.
void RunMethodCostSplit() {
  bench_util::PrintHeader(
      "Scenario suite: tri-cluster replay vs pooled-baseline cost");
  TableWriter table("Per-method-group wall time (spam_botnet workload)");
  table.SetHeader({"methods", "wall ms", "share of all-methods run"});
  auto scenario = GetScenario("spam_botnet", BenchScale());
  if (!scenario.ok()) {
    std::cerr << scenario.status().ToString() << "\n";
    std::exit(1);
  }
  const std::vector<std::pair<std::string, std::vector<std::string>>> groups =
      {{"triclust only", {"triclust"}},
       {"baselines only", {"lexvote", "lp10", "userreg10"}},
       {"all methods", {"triclust", "lexvote", "lp10", "userreg10"}}};
  double all_ms = 0.0;
  std::vector<std::pair<std::string, double>> measured;
  for (const auto& group : groups) {
    Stopwatch watch;
    auto run = RunScenario(scenario.value(), BenchOptions(group.second));
    const double wall_ms = watch.ElapsedMillis();
    if (!run.ok()) {
      std::cerr << group.first << ": " << run.status().ToString() << "\n";
      std::exit(1);
    }
    measured.emplace_back(group.first, wall_ms);
    if (group.first == "all methods") all_ms = wall_ms;
    if (g_reporter != nullptr) {
      g_reporter->Add("scenario_cost_split/" + group.first, wall_ms);
    }
  }
  for (const auto& m : measured) {
    const double share = all_ms > 0.0 ? m.second / all_ms : 0.0;
    table.AddRow({m.first, TableWriter::Num(m.second, 1),
                  TableWriter::Num(100.0 * share, 1) + "%"});
  }
  table.Print(std::cout);
}

/// Whole-file ReadTsv vs the bounded-memory TsvStreamReader walking the
/// same scenario corpus day by day: the load-side price of the O(one
/// day-chunk) replay mode.
void RunStreamingLoaderSweep() {
  bench_util::PrintHeader(
      "Scenario suite: whole-file load vs bounded-memory day streaming");
  TableWriter table("TSV load of the burst_extreme corpus");
  table.SetHeader({"path", "tweets", "wall ms", "peak resident text"});
  auto scenario = GetScenario("burst_extreme", BenchScale());
  if (!scenario.ok()) {
    std::cerr << scenario.status().ToString() << "\n";
    std::exit(1);
  }
  const Corpus corpus = GenerateSynthetic(scenario.value().config).corpus;
  std::ostringstream buffer;
  if (const Status s = WriteTsv(corpus, &buffer); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::exit(1);
  }
  const std::string tsv = buffer.str();

  std::istringstream whole_in(tsv);
  Stopwatch watch;
  auto whole = ReadTsv(&whole_in, "<bench>");
  const double whole_ms = watch.ElapsedMillis();
  if (!whole.ok()) {
    std::cerr << whole.status().ToString() << "\n";
    std::exit(1);
  }
  size_t whole_text = 0;
  for (const auto& t : whole.value().tweets()) whole_text += t.text.size();
  table.AddRow({"ReadTsv (whole file)",
                std::to_string(whole.value().num_tweets()),
                TableWriter::Num(whole_ms, 1),
                std::to_string(whole_text) + " B"});

  watch.Restart();
  auto reader_or = TsvStreamReader::Open(
      std::make_unique<std::istringstream>(tsv), "<bench>");
  if (!reader_or.ok()) {
    std::cerr << reader_or.status().ToString() << "\n";
    std::exit(1);
  }
  auto reader = std::move(reader_or).value();
  size_t streamed_tweets = 0;
  size_t peak_day_text = 0;
  TsvDayBatch batch;
  while (true) {
    const Result<bool> more = reader->NextDay(&batch);
    if (!more.ok()) {
      std::cerr << more.status().ToString() << "\n";
      std::exit(1);
    }
    if (!more.value()) break;
    streamed_tweets += batch.tweet_ids.size();
    size_t day_text = 0;
    for (const size_t id : batch.tweet_ids) {
      day_text += reader->corpus().tweet(id).text.size();
    }
    if (day_text > peak_day_text) peak_day_text = day_text;
    reader->ReleaseText(batch);
  }
  const double stream_ms = watch.ElapsedMillis();
  table.AddRow({"ReadTsvStream (one day-chunk)",
                std::to_string(streamed_tweets),
                TableWriter::Num(stream_ms, 1),
                std::to_string(peak_day_text) + " B"});
  table.Print(std::cout);
  if (g_reporter != nullptr) {
    g_reporter->Add("scenario_loader/whole_file", whole_ms);
    g_reporter->Add("scenario_loader/day_stream", stream_ms,
                    {{"peak_day_text_bytes",
                      static_cast<double>(peak_day_text)}});
  }
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_scenarios",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::g_flags = flags;
        triclust::g_reporter = &reporter;

        triclust::RunCatalogSweep();
        triclust::RunMethodCostSplit();
        triclust::RunStreamingLoaderSweep();
      });
}
