#ifndef TRICLUST_BENCH_BENCH_UTIL_H_
#define TRICLUST_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "src/data/matrix_builder.h"
#include "src/data/synthetic.h"
#include "src/text/lexicon.h"

namespace triclust {
namespace bench_util {

/// \file
/// Shared dataset preparation for the bench/ executables.
///
/// Two conventions keep the JSON reports (bench/bench_flags.h) usable by
/// the statistical harness (tools/bench_runner.py):
///
/// - **Preparation is not measurement.** `Prepare` (generation,
///   vectorization, lexicon corruption) runs *outside* any timed section;
///   a reported `real_time` covers only the solve/sweep under study, so
///   repetition statistics measure the kernel, not the generator.
/// - **Determinism.** Every dataset is seeded, so counters derived from
///   the data (accuracy, nnz, label counts) are identical across
///   repetitions and aggregate to zero variance in the harness — a
///   nonzero stddev on such a counter indicates a determinism bug, and
///   the report makes it visible.

/// One fully-prepared experimental dataset: corpus + matrices + the
/// imperfect prior lexicon used as Sf0 (60% coverage, 5% polarity noise —
/// mimicking the automatically-built word lists of Smith et al. [28]).
struct BenchDataset {
  std::string name;
  SyntheticDataset dataset;
  MatrixBuilder builder;
  DatasetMatrices data;
  SentimentLexicon lexicon;
};

inline BenchDataset Prepare(const std::string& name,
                            const SyntheticConfig& config) {
  BenchDataset b;
  b.name = name;
  b.dataset = GenerateSynthetic(config);
  b.builder.Fit(b.dataset.corpus);
  b.data = b.builder.BuildAll(b.dataset.corpus);
  b.lexicon = CorruptLexicon(b.dataset.true_lexicon, /*coverage=*/0.6,
                             /*error_rate=*/0.05, /*seed=*/99);
  return b;
}

/// The Prop-30-like campaign (balanced stances, paper Table 3 row 1).
inline BenchDataset MakeProp30() {
  return Prepare("Prop30-like", Prop30LikeConfig());
}

/// The Prop-37-like campaign (positively skewed, higher volume).
inline BenchDataset MakeProp37() {
  return Prepare("Prop37-like", Prop37LikeConfig());
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n############################################################\n"
            << "# " << title << "\n"
            << "# (synthetic substitute for the paper's California-ballot\n"
            << "#  Twitter collection; see DESIGN.md section 4)\n"
            << "############################################################\n";
}

}  // namespace bench_util
}  // namespace triclust

#endif  // TRICLUST_BENCH_BENCH_UTIL_H_
