#ifndef TRICLUST_BENCH_BENCH_FLAGS_H_
#define TRICLUST_BENCH_BENCH_FLAGS_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace triclust {
namespace bench_flags {

/// \file
/// google-benchmark-compatible command-line surface and JSON reporter for
/// the plain (non-libbenchmark) bench executables, so one CI invocation
/// style drives the whole bench/ directory and one artifact shape feeds
/// the statistical harness (tools/bench_runner.py).
///
/// ## The JSON report contract
///
/// Every bench binary emits a report of the shape
///
/// ```json
/// {
///   "context": {
///     "schema": "triclust-bench/1",
///     "executable": "bench_serving",
///     "num_cpus": 16,
///     "work_scale": 0.01,
///     "repetitions": 1,
///     "force_scalar": false
///   },
///   "benchmarks": [
///     {
///       "name": "serving/throughput/campaigns:2/threads:1",
///       "run_name": "serving/throughput/campaigns:2/threads:1",
///       "run_type": "iteration",
///       "iterations": 1,
///       "repetition_index": 0,
///       "repetitions": 1,
///       "real_time": 12.5,
///       "cpu_time": 12.5,
///       "time_unit": "ms",
///       "tweets_per_second": 48000.0
///     }
///   ]
/// }
/// ```
///
/// tools/bench_runner.py depends on exactly these fields; the normative
/// description lives in docs/BENCHMARK.md ("Report JSON schema"). The
/// ground rules:
///
/// - `context.schema` names this per-run shape (`triclust-bench/1`) and
///   is bumped on any incompatible change. Reports from the real
///   google-benchmark library (bench_kernels) carry no `schema` key; the
///   runner accepts both.
/// - `name` identifies one measured scenario. Names are hierarchical
///   `area/scenario/knob:value/...` paths, stable across runs — they are
///   the join key for baselines, so renaming one orphans its history.
/// - `real_time` is wall time of the measured section in `time_unit`
///   (always `"ms"` here). `cpu_time` mirrors `real_time` (these benches
///   measure wall time; the field exists for gbench tooling parity).
/// - Counters are extra numeric fields inlined into the entry (the
///   google-benchmark convention). Naming: `snake_case`, with an
///   explicit unit suffix (`_ms`, `_per_second`, `_pct`) unless the value
///   is a dimensionless ratio/count (`speedup_vs_serial`, `iterations`).
///   Counters derived from deterministic computation (accuracy, nnz)
///   aggregate to zero variance in the harness; timing counters do not.
/// - `run_type` is `"iteration"` for every entry; aggregate statistics
///   are the *runner's* job, never computed in-binary. Consumers must
///   skip entries with `run_type == "aggregate"` anyway (bench_kernels
///   emits them under its native `--benchmark_repetitions`).
/// - `repetition_index` counts duplicate `name`s within one process run
///   (in-process repetitions, see `--benchmark_repetitions` below); the
///   runner additionally repeats at process level and tracks its own
///   repetition axis.
///
/// ## Flags
///
///   --benchmark_min_time=0.01x   work scale: fraction of the default
///                                work per measurement (suffix `x`, as in
///                                google-benchmark's per-iteration form).
///                                Values ≥ 1 keep the full default sweep.
///   --benchmark_repetitions=N   repeat the whole measured sweep N times
///                                in-process; every entry is emitted per
///                                repetition with its repetition_index.
///   --benchmark_format=json     emit results as JSON instead of tables.
///   --benchmark_out=<path>      write the JSON report to <path> (always
///                                JSON, independent of the console format).
///
/// Unknown --benchmark_* flags are ignored (forward compatibility with CI
/// runner scripts); anything else aborts with a usage message.
struct Flags {
  /// Multiplier in (0, 1] applied to solver iterations / sweep sizes.
  double work_scale = 1.0;
  /// In-process repetitions of the whole measured sweep (≥ 1).
  int repetitions = 1;
  bool json_console = false;
  std::string out_path;

  /// `base` iterations scaled down for smoke runs, never below 1.
  int ScaledIters(int base) const {
    const double scaled = static_cast<double>(base) * work_scale;
    return scaled < 1.0 ? 1 : static_cast<int>(scaled);
  }
  /// Milliseconds scaled down for smoke runs (pacing intervals).
  double ScaledMs(double base_ms) const { return base_ms * work_scale; }
};

inline Flags Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // Only the `<frac>x` (per-iteration multiplier) form scales work.
      // The seconds forms (`0.5s` or a bare double) ask for a *minimum
      // runtime*, which these fixed-sweep benches cannot enforce — treat
      // them as "run the full default sweep" rather than silently
      // reshaping it.
      std::string value = value_of("--benchmark_min_time=");
      if (!value.empty() && value.back() == 'x') {
        value.pop_back();
        const double parsed = std::atof(value.c_str());
        if (parsed > 0.0 && parsed < 1.0) flags.work_scale = parsed;
      }
    } else if (arg.rfind("--benchmark_repetitions=", 0) == 0) {
      const int parsed =
          std::atoi(value_of("--benchmark_repetitions=").c_str());
      if (parsed >= 1) flags.repetitions = parsed;
    } else if (arg.rfind("--benchmark_format=", 0) == 0) {
      flags.json_console = value_of("--benchmark_format=") == "json";
    } else if (arg.rfind("--benchmark_out=", 0) == 0) {
      flags.out_path = value_of("--benchmark_out=");
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Ignored for compatibility with generic benchmark runners.
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nsupported: --benchmark_min_time=<frac>x "
                   "--benchmark_repetitions=<n> "
                   "--benchmark_format=console|json "
                   "--benchmark_out=<path>\n";
      std::exit(2);
    }
  }
  return flags;
}

/// Collects named measurements and renders them in google-benchmark's JSON
/// report shape ({"context": ..., "benchmarks": [...]}), so artifact
/// tooling written for libbenchmark output (perf-trajectory dashboards,
/// regression differs, tools/bench_runner.py) ingests these reports
/// unchanged. The emitted fields are the contract documented at the top
/// of this header.
class Reporter {
 public:
  explicit Reporter(std::string executable, Flags flags)
      : executable_(std::move(executable)), flags_(std::move(flags)) {}

  /// Records one measurement. `real_ms` is wall time of the measured
  /// section; `counters` are additional rate/ratio metrics
  /// ({name, value} pairs — see the counter-naming contract above).
  /// Calling Add again with the same `name` (the in-process repetition
  /// loop of BenchMain does) appends a new entry with the next
  /// repetition_index rather than overwriting.
  void Add(const std::string& name, double real_ms,
           const std::vector<std::pair<std::string, double>>& counters = {}) {
    Entry e;
    e.name = name;
    e.real_ms = real_ms;
    e.repetition_index = name_counts_[name]++;
    e.counters = counters;
    entries_.push_back(std::move(e));
  }

  /// Writes the JSON report to --benchmark_out (if set) and to stdout when
  /// --benchmark_format=json. Returns false if the output file could not
  /// be written — callers should exit non-zero so CI fails loudly.
  bool Write() const {
    if (flags_.json_console) std::cout << Json();
    if (flags_.out_path.empty()) return true;
    std::ofstream out(flags_.out_path);
    if (!out) {
      std::cerr << "cannot write benchmark report: " << flags_.out_path
                << "\n";
      return false;
    }
    out << Json();
    return out.good();
  }

 private:
  struct Entry {
    std::string name;
    double real_ms = 0.0;
    int repetition_index = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(ch);
    }
    return out;
  }

  /// TRICLUST_FORCE_SCALAR pins every kernel to the scalar bodies (see
  /// src/matrix/kernel_dispatch.h); recorded so a report can never be
  /// mistaken for the dispatched configuration it did not measure.
  static bool ForceScalarActive() {
    const char* env = std::getenv("TRICLUST_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }

  std::string Json() const {
    std::ostringstream os;
    os << "{\n  \"context\": {\n"
       << "    \"schema\": \"triclust-bench/1\",\n"
       << "    \"executable\": \"" << Escaped(executable_) << "\",\n"
       << "    \"num_cpus\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "    \"work_scale\": " << flags_.work_scale << ",\n"
       << "    \"repetitions\": " << flags_.repetitions << ",\n"
       << "    \"force_scalar\": " << (ForceScalarActive() ? "true" : "false")
       << "\n"
       << "  },\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << "    {\n"
         << "      \"name\": \"" << Escaped(e.name) << "\",\n"
         << "      \"run_name\": \"" << Escaped(e.name) << "\",\n"
         << "      \"run_type\": \"iteration\",\n"
         << "      \"iterations\": 1,\n"
         << "      \"repetition_index\": " << e.repetition_index << ",\n"
         << "      \"repetitions\": " << flags_.repetitions << ",\n"
         << "      \"real_time\": " << e.real_ms << ",\n"
         << "      \"cpu_time\": " << e.real_ms << ",\n"
         << "      \"time_unit\": \"ms\"";
      for (const auto& counter : e.counters) {
        os << ",\n      \"" << Escaped(counter.first)
           << "\": " << counter.second;
      }
      os << "\n    }" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  }

  std::string executable_;
  Flags flags_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, int> name_counts_;
};

/// Shared main() body of every plain bench binary: parses the flag
/// surface, runs `body(reporter, flags)` once per requested in-process
/// repetition, and writes the report. Console tables print once per
/// repetition (as google-benchmark does); JSON entries carry their
/// repetition_index. Returns the process exit code.
///
/// ```cpp
/// int main(int argc, char** argv) {
///   return triclust::bench_flags::BenchMain(
///       argc, argv, "bench_fig8_convergence",
///       [](triclust::bench_flags::Reporter& reporter,
///          const triclust::bench_flags::Flags& flags) {
///         triclust::Run(reporter, flags);
///       });
/// }
/// ```
template <typename Body>
int BenchMain(int argc, char** argv, const std::string& executable,
              Body body) {
  const Flags flags = Parse(argc, argv);
  Reporter reporter(executable, flags);
  for (int rep = 0; rep < flags.repetitions; ++rep) {
    body(reporter, flags);
  }
  return reporter.Write() ? 0 : 1;
}

}  // namespace bench_flags
}  // namespace triclust

#endif  // TRICLUST_BENCH_BENCH_FLAGS_H_
