#ifndef TRICLUST_BENCH_BENCH_FLAGS_H_
#define TRICLUST_BENCH_BENCH_FLAGS_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace triclust {
namespace bench_flags {

/// google-benchmark-compatible command-line surface for the plain
/// (non-libbenchmark) bench executables, so one CI invocation style drives
/// the whole bench/ directory:
///
///   --benchmark_min_time=0.01x   work scale: fraction of the default
///                                work per measurement (suffix `x`, as in
///                                google-benchmark's per-iteration form).
///                                Values ≥ 1 keep the full default sweep.
///   --benchmark_format=json     emit results as JSON instead of tables.
///   --benchmark_out=<path>      write the JSON report to <path> (always
///                                JSON, independent of the console format).
///
/// Unknown --benchmark_* flags are ignored (forward compatibility with CI
/// runner scripts); anything else aborts with a usage message.
struct Flags {
  /// Multiplier in (0, 1] applied to solver iterations / sweep sizes.
  double work_scale = 1.0;
  bool json_console = false;
  std::string out_path;

  /// `base` iterations scaled down for smoke runs, never below 1.
  int ScaledIters(int base) const {
    const double scaled = static_cast<double>(base) * work_scale;
    return scaled < 1.0 ? 1 : static_cast<int>(scaled);
  }
  /// Milliseconds scaled down for smoke runs (pacing intervals).
  double ScaledMs(double base_ms) const { return base_ms * work_scale; }
};

inline Flags Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // Only the `<frac>x` (per-iteration multiplier) form scales work.
      // The seconds forms (`0.5s` or a bare double) ask for a *minimum
      // runtime*, which these fixed-sweep benches cannot enforce — treat
      // them as "run the full default sweep" rather than silently
      // reshaping it.
      std::string value = value_of("--benchmark_min_time=");
      if (!value.empty() && value.back() == 'x') {
        value.pop_back();
        const double parsed = std::atof(value.c_str());
        if (parsed > 0.0 && parsed < 1.0) flags.work_scale = parsed;
      }
    } else if (arg.rfind("--benchmark_format=", 0) == 0) {
      flags.json_console = value_of("--benchmark_format=") == "json";
    } else if (arg.rfind("--benchmark_out=", 0) == 0) {
      flags.out_path = value_of("--benchmark_out=");
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Ignored for compatibility with generic benchmark runners.
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nsupported: --benchmark_min_time=<frac>x "
                   "--benchmark_format=console|json "
                   "--benchmark_out=<path>\n";
      std::exit(2);
    }
  }
  return flags;
}

/// Collects named measurements and renders them in google-benchmark's JSON
/// report shape ({"context": ..., "benchmarks": [...]}), so artifact
/// tooling written for libbenchmark output (perf-trajectory dashboards,
/// regression differs) ingests these reports unchanged.
class Reporter {
 public:
  explicit Reporter(std::string executable, Flags flags)
      : executable_(std::move(executable)), flags_(std::move(flags)) {}

  /// Records one measurement. `real_ms` is wall time; `counters` are
  /// additional rate/ratio metrics ({name, value} pairs).
  void Add(const std::string& name, double real_ms,
           const std::vector<std::pair<std::string, double>>& counters = {}) {
    Entry e;
    e.name = name;
    e.real_ms = real_ms;
    e.counters = counters;
    entries_.push_back(std::move(e));
  }

  /// Writes the JSON report to --benchmark_out (if set) and to stdout when
  /// --benchmark_format=json. Returns false if the output file could not
  /// be written — callers should exit non-zero so CI fails loudly.
  bool Write() const {
    if (flags_.json_console) std::cout << Json();
    if (flags_.out_path.empty()) return true;
    std::ofstream out(flags_.out_path);
    if (!out) {
      std::cerr << "cannot write benchmark report: " << flags_.out_path
                << "\n";
      return false;
    }
    out << Json();
    return out.good();
  }

 private:
  struct Entry {
    std::string name;
    double real_ms = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      out.push_back(ch);
    }
    return out;
  }

  std::string Json() const {
    std::ostringstream os;
    os << "{\n  \"context\": {\n"
       << "    \"executable\": \"" << Escaped(executable_) << "\",\n"
       << "    \"num_cpus\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "    \"work_scale\": " << flags_.work_scale << "\n"
       << "  },\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << "    {\n"
         << "      \"name\": \"" << Escaped(e.name) << "\",\n"
         << "      \"run_name\": \"" << Escaped(e.name) << "\",\n"
         << "      \"run_type\": \"iteration\",\n"
         << "      \"iterations\": 1,\n"
         << "      \"real_time\": " << e.real_ms << ",\n"
         << "      \"cpu_time\": " << e.real_ms << ",\n"
         << "      \"time_unit\": \"ms\"";
      for (const auto& counter : e.counters) {
        os << ",\n      \"" << Escaped(counter.first)
           << "\": " << counter.second;
      }
      os << "\n    }" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  }

  std::string executable_;
  Flags flags_;
  std::vector<Entry> entries_;
};

}  // namespace bench_flags
}  // namespace triclust

#endif  // TRICLUST_BENCH_BENCH_FLAGS_H_
