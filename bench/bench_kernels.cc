/// Kernel microbenchmarks (google-benchmark): the sparse–dense products and
/// multiplicative update rules that dominate Algorithm 1/2 runtime, plus
/// one full offline iteration. These back the paper's complexity claim
/// (§3.2): per-iteration cost O(k·(nl + ml + nm + m²)) dominated by the
/// O(nnz·k) sparse products.

#include <benchmark/benchmark.h>

#include "src/core/updates.h"
#include "src/data/synthetic.h"
#include "src/matrix/kernel_dispatch.h"
#include "src/matrix/ops.h"
#include "src/text/tokenizer.h"
#include "src/text/vectorizer.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace triclust {
namespace {

/// Thread counts for the parallel-kernel sweeps: serial baseline, 2, 4, and
/// whatever the machine offers (0 = hardware concurrency).
void ThreadSweep(benchmark::internal::Benchmark* b,
                 std::initializer_list<int64_t> sizes) {
  for (const int64_t size : sizes) {
    for (const int64_t threads : {1, 2, 4, 0}) {
      b->Args({size, threads});
    }
  }
}

SparseMatrix MakeSparse(size_t rows, size_t cols, size_t nnz_per_row,
                        uint64_t seed) {
  Rng rng(seed);
  SparseMatrix::Builder builder(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t p = 0; p < nnz_per_row; ++p) {
      builder.Add(i, rng.NextUint64Below(cols), rng.Uniform(0.1, 1.0));
    }
  }
  return builder.Build();
}

void BM_SpMM(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(static_cast<int>(state.range(1)));
  const SparseMatrix x = MakeSparse(n, 5000, 12, 1);
  Rng rng(2);
  const DenseMatrix d = DenseMatrix::Random(5000, 3, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    SpMMInto(x, d, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.nnz()));
}
BENCHMARK(BM_SpMM)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadSweep(b, {1000, 10000, 50000});
});

/// Legacy serial scatter-transpose product, kept as the baseline for the
/// cached-transpose reformulation below.
void BM_SpTMM(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SparseMatrix x = MakeSparse(n, 5000, 12, 3);
  Rng rng(4);
  const DenseMatrix d = DenseMatrix::Random(n, 3, &rng, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpTMM(x, d));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.nnz()));
}
BENCHMARK(BM_SpTMM)->Arg(1000)->Arg(10000)->Arg(50000);

/// Xᵀ·D as the solver now computes it: parallel SpMM over a transpose the
/// update workspace caches once per fit (the transpose cost is excluded,
/// as it is amortized over all iterations).
void BM_SpTMMViaCachedTranspose(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(static_cast<int>(state.range(1)));
  const SparseMatrix x = MakeSparse(n, 5000, 12, 3);
  const SparseMatrix xt = x.Transposed();
  Rng rng(4);
  const DenseMatrix d = DenseMatrix::Random(n, 3, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    SpMMInto(xt, d, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.nnz()));
}
BENCHMARK(BM_SpTMMViaCachedTranspose)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadSweep(b, {1000, 10000, 50000});
    });

/// The k×k reduction workhorse (SᵀS and friends) over a tall factor.
void BM_MatMulAtB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(static_cast<int>(state.range(1)));
  Rng rng(5);
  const DenseMatrix s = DenseMatrix::Random(n, 3, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    MatMulAtBInto(s, s, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MatMulAtB)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadSweep(b, {10000, 100000, 1000000});
});

void BM_FactorizationLoss(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(static_cast<int>(state.range(1)));
  const SparseMatrix x = MakeSparse(n, n / 2, 10, 5);
  Rng rng(6);
  const DenseMatrix u = DenseMatrix::Random(n, 3, &rng, 0.0, 1.0);
  const DenseMatrix v = DenseMatrix::Random(n / 2, 3, &rng, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FactorizationLossSquared(x, u, v));
  }
}
BENCHMARK(BM_FactorizationLoss)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadSweep(b, {2000, 20000});
});

/// One full offline sweep (all five update rules) on a synthetic problem of
/// n tweets, n/4 users, 5000 features, k = 3, with the workspace-cached
/// transposes and scratch the production solvers use.
void BM_OfflineIteration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(static_cast<int>(state.range(1)));
  const size_t m = n / 4;
  const size_t l = 5000;
  const size_t k = 3;
  const SparseMatrix xp = MakeSparse(n, l, 12, 7);
  const SparseMatrix xu = MakeSparse(m, l, 40, 8);
  const SparseMatrix xr = MakeSparse(m, n, 5, 9);
  const UserGraph gu = [&] {
    Rng rng(10);
    std::vector<UserGraph::Edge> edges;
    for (size_t i = 0; i < m; ++i) {
      edges.push_back({i, rng.NextUint64Below(m), 1.0});
    }
    return UserGraph::FromEdges(m, edges);
  }();
  Rng rng(11);
  DenseMatrix sp = DenseMatrix::Random(n, k, &rng, 0.1, 1.0);
  DenseMatrix su = DenseMatrix::Random(m, k, &rng, 0.1, 1.0);
  DenseMatrix sf = DenseMatrix::Random(l, k, &rng, 0.1, 1.0);
  DenseMatrix hp = DenseMatrix::Random(k, k, &rng, 0.1, 1.0);
  DenseMatrix hu = DenseMatrix::Random(k, k, &rng, 0.1, 1.0);
  const DenseMatrix sf0 = DenseMatrix::Random(l, k, &rng, 0.1, 1.0);

  update::UpdateWorkspace workspace;
  for (auto _ : state) {
    update::UpdateSp(xp, xr, sf, hp, su, &sp, 1e-12, 0.0, nullptr, nullptr,
                     &workspace);
    update::UpdateHp(xp, sp, sf, &hp, 1e-12, &workspace);
    update::UpdateSu(xu, xr, gu, sf, hu, sp, 0.8, nullptr, nullptr, &su,
                     1e-12, 0.0, &workspace);
    update::UpdateHu(xu, su, sf, &hu, 1e-12, &workspace);
    update::UpdateSf(xp, xu, sp, su, hp, hu, 0.05, sf0, &sf, 1e-12, 0.0,
                     &workspace);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(xp.nnz() + xu.nnz() + xr.nnz()));
}
BENCHMARK(BM_OfflineIteration)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadSweep(b, {2000, 10000, 40000});
});

/// --- kernel-dispatch A/B sweeps -------------------------------------------
///
/// Paper-shape single-core benchmarks over the fixed-k hot kernels
/// (k ∈ {2, 3, 4} — the paper's sentiment clustering runs k = 3). Their
/// names carry no dispatch mode on purpose: the A/B protocol is to run the
/// binary twice with --benchmark_format=json, once under
/// TRICLUST_FORCE_SCALAR=1 and once dispatched, and diff the two artifacts
/// with tools/bench_compare.py (names must line up across the runs).
/// nnz/element counters are emitted so the JSON is self-describing.

void BM_SpMMPaperShape(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(1);
  // Prop 30 scale: ~50k tweets × 5k vocabulary, ~12 terms per tweet.
  const SparseMatrix x = MakeSparse(50000, 5000, 12, 21);
  Rng rng(22);
  const DenseMatrix d = DenseMatrix::Random(5000, k, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    SpMMInto(x, d, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  state.counters["k"] = static_cast<double>(k);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.nnz()));
}
BENCHMARK(BM_SpMMPaperShape)->Arg(2)->Arg(3)->Arg(4);

void BM_MatMulAtBPaperShape(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(1);
  Rng rng(23);
  const DenseMatrix s = DenseMatrix::Random(100000, k, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    MatMulAtBInto(s, s, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["rows"] = static_cast<double>(s.rows());
  state.counters["k"] = static_cast<double>(k);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.rows()));
}
BENCHMARK(BM_MatMulAtBPaperShape)->Arg(2)->Arg(3)->Arg(4);

void BM_MulUpdatePaperShape(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(1);
  Rng rng(24);
  DenseMatrix m = DenseMatrix::Random(100000, k, &rng, 0.1, 1.0);
  const DenseMatrix numer = DenseMatrix::Random(100000, k, &rng, 0.0, 1.0);
  const DenseMatrix denom = DenseMatrix::Random(100000, k, &rng, 0.0, 1.0);
  for (auto _ : state) {
    MultiplicativeUpdateInPlace(&m, numer, denom, 1e-12);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["elements"] = static_cast<double>(m.size());
  state.counters["k"] = static_cast<double>(k);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.size()));
}
BENCHMARK(BM_MulUpdatePaperShape)->Arg(2)->Arg(3)->Arg(4);

void BM_FactorizationLossPaperShape(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ScopedNumThreads threads(1);
  const SparseMatrix x = MakeSparse(50000, 5000, 12, 25);
  Rng rng(26);
  const DenseMatrix u = DenseMatrix::Random(50000, k, &rng, 0.0, 1.0);
  const DenseMatrix v = DenseMatrix::Random(5000, k, &rng, 0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FactorizationLossSquared(x, u, v));
  }
  state.counters["nnz"] = static_cast<double>(x.nnz());
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_FactorizationLossPaperShape)->Arg(2)->Arg(3)->Arg(4);

/// In-process dispatch-variant sweep (no env round-trips): arg0 = k,
/// arg1 = KernelMode (0 auto, 1 scalar, 2 fast), installed thread-local for
/// the run. Under TRICLUST_FORCE_SCALAR=1 all variants collapse to scalar —
/// use the env-based A/B above for gating numbers.
void BM_SpMMDispatchSweep(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ScopedKernelMode mode(static_cast<KernelMode>(state.range(1)));
  const ScopedNumThreads threads(1);
  const SparseMatrix x = MakeSparse(50000, 5000, 12, 27);
  Rng rng(28);
  const DenseMatrix d = DenseMatrix::Random(5000, k, &rng, 0.0, 1.0);
  DenseMatrix c;
  for (auto _ : state) {
    SpMMInto(x, d, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.nnz()));
}
BENCHMARK(BM_SpMMDispatchSweep)->Apply([](benchmark::internal::Benchmark* b) {
  for (const int64_t k : {2, 3, 4, 7}) {
    for (const int64_t mode : {0, 1, 2}) {
      b->Args({k, mode});
    }
  }
});

void BM_Tokenize(benchmark::State& state) {
  const SyntheticDataset d = GenerateSynthetic(Prop30LikeConfig());
  const Tokenizer tokenizer;
  size_t tweets = 0;
  for (auto _ : state) {
    for (const Tweet& t : d.corpus.tweets()) {
      benchmark::DoNotOptimize(tokenizer.Tokenize(t.text));
      ++tweets;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(tweets));
}
BENCHMARK(BM_Tokenize);

void BM_VectorizerFitTransform(benchmark::State& state) {
  const SyntheticDataset d = GenerateSynthetic(Prop30LikeConfig());
  const Tokenizer tokenizer;
  std::vector<std::vector<std::string>> docs;
  docs.reserve(d.corpus.num_tweets());
  for (const Tweet& t : d.corpus.tweets()) {
    docs.push_back(tokenizer.Tokenize(t.text));
  }
  for (auto _ : state) {
    DocumentVectorizer vectorizer;
    benchmark::DoNotOptimize(vectorizer.FitTransform(docs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_VectorizerFitTransform);

void BM_SparseTranspose(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SparseMatrix x = MakeSparse(n, 5000, 12, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.Transposed());
  }
}
BENCHMARK(BM_SparseTranspose)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace triclust

BENCHMARK_MAIN();
