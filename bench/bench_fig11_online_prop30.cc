/// Reproduces paper Figure 11: online vs mini-batch vs full-batch on the
/// Prop-30-like stream — per-day running time (a), tweet-level accuracy (b)
/// and user-level accuracy (c).

#include "bench/timeline_figure.h"

int main() {
  const auto b = triclust::bench_util::MakeProp30();
  triclust::bench_fig::RunTimelineFigure(
      "Figure 11: online performance, Prop-30-like stream", b);
  return 0;
}
