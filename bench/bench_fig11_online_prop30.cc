/// Reproduces paper Figure 11: online vs mini-batch vs full-batch on the
/// Prop-30-like stream — per-day running time (a), tweet-level accuracy (b)
/// and user-level accuracy (c).

#include "bench/timeline_figure.h"

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig11_online_prop30",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        const auto b = triclust::bench_util::MakeProp30();
        triclust::bench_fig::RunTimelineFigure(
            "Figure 11: online performance, Prop-30-like stream", b,
            "fig11/timeline/prop30", reporter, flags);
      });
}
