/// Reproduces paper Figure 10: online clustering accuracy when varying the
/// temporal user-regularization weight γ (all other parameters fixed).
/// The paper's findings: the best user-level accuracy is around γ = 0.2,
/// and γ has no effect on tweet-level accuracy (it only constrains Su).

#include <iostream>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/timeline.h"
#include "src/data/snapshots.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader("Figure 10: online accuracy when varying gamma");
  const bench_util::BenchDataset b = bench_util::MakeProp30();
  const std::vector<Snapshot> snapshots = SplitByDay(b.dataset.corpus);

  TableWriter table("Accuracy (%) vs gamma (cf. paper Fig. 10)");
  table.SetHeader({"gamma", "user-level", "tweet-level"});
  double best_user = 0.0;
  double best_gamma = 0.0;
  size_t runs = 0;
  const Stopwatch watch;
  for (double gamma : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    OnlineConfig config;
    config.base.max_iterations = flags.ScaledIters(50);
    config.base.track_loss = false;
    config.gamma = gamma;
    const auto steps =
        RunTimeline(b.dataset.corpus, b.builder, snapshots, b.lexicon,
                    TimelineMode::kOnline, config);
    ++runs;
    const double user_acc = AverageUserAccuracy(steps);
    const double tweet_acc = AverageTweetAccuracy(steps);
    table.AddRow({TableWriter::Num(gamma, 1),
                  TableWriter::Num(user_acc, 2),
                  TableWriter::Num(tweet_acc, 2)});
    if (user_acc > best_user) {
      best_user = user_acc;
      best_gamma = gamma;
    }
  }
  const double sweep_ms = watch.ElapsedMillis();
  table.Print(std::cout);
  std::cout << "\nbest user-level accuracy " << TableWriter::Num(best_user, 2)
            << "% at gamma=" << best_gamma
            << "\nPaper shape to check: a moderate gamma (paper: 0.2) "
               "maximizes user-level accuracy; tweet-level accuracy is "
               "essentially flat in gamma.\n";
  reporter.Add("fig10/gamma_sweep/online", sweep_ms,
               {{"timeline_runs", static_cast<double>(runs)},
                {"best_user_accuracy_pct", best_user},
                {"best_gamma", best_gamma}});
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_fig10_online_gamma",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
      });
}
