#ifndef TRICLUST_BENCH_TIMELINE_FIGURE_H_
#define TRICLUST_BENCH_TIMELINE_FIGURE_H_

/// Shared driver of the paper's Figure 11/12 benches: runs the online,
/// mini-batch and full-batch processing modes over a per-day stream and
/// prints the three per-day series (running time, tweet-level accuracy,
/// user-level accuracy) plus a whole-stream summary. Each mode is
/// reported as one JSON entry `<report_prefix>/mode:<mode>` whose
/// real_time is the whole-stream processing time.

#include <iostream>
#include <string>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/timeline.h"
#include "src/data/snapshots.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace bench_fig {

inline OnlineConfig TimelineConfig(const bench_flags::Flags& flags) {
  OnlineConfig config;
  config.base.max_iterations = flags.ScaledIters(60);
  config.base.track_loss = false;
  return config;
}

inline void RunTimelineFigure(const char* title,
                              const bench_util::BenchDataset& b,
                              const std::string& report_prefix,
                              bench_flags::Reporter& reporter,
                              const bench_flags::Flags& flags) {
  bench_util::PrintHeader(title);
  const std::vector<Snapshot> snapshots = SplitByDay(b.dataset.corpus);
  const OnlineConfig config = TimelineConfig(flags);

  const auto online = RunTimeline(b.dataset.corpus, b.builder, snapshots,
                                  b.lexicon, TimelineMode::kOnline, config);
  const auto mini = RunTimeline(b.dataset.corpus, b.builder, snapshots,
                                b.lexicon, TimelineMode::kMiniBatch, config);
  const auto full = RunTimeline(b.dataset.corpus, b.builder, snapshots,
                                b.lexicon, TimelineMode::kFullBatch, config);

  TableWriter table("Per-day series (cf. paper Fig. 11/12 a,b,c)");
  table.SetHeader({"day", "n(t)", "t_onl(ms)", "t_mini(ms)", "t_full(ms)",
                   "tw_onl", "tw_mini", "tw_full", "us_onl", "us_mini",
                   "us_full"});
  for (size_t s = 0; s < snapshots.size(); ++s) {
    table.AddRow({std::to_string(online[s].day),
                  std::to_string(online[s].num_tweets),
                  TableWriter::Num(online[s].seconds * 1e3, 1),
                  TableWriter::Num(mini[s].seconds * 1e3, 1),
                  TableWriter::Num(full[s].seconds * 1e3, 1),
                  TableWriter::Num(online[s].tweet_accuracy, 1),
                  TableWriter::Num(mini[s].tweet_accuracy, 1),
                  TableWriter::Num(full[s].tweet_accuracy, 1),
                  TableWriter::Num(online[s].user_accuracy, 1),
                  TableWriter::Num(mini[s].user_accuracy, 1),
                  TableWriter::Num(full[s].user_accuracy, 1)});
  }
  table.Print(std::cout);

  TableWriter summary("Stream summary");
  summary.SetHeader({"mode", "total time (s)", "avg tweet acc",
                     "avg user acc"});
  auto add = [&](const char* name,
                 const std::vector<TimelineStepMetrics>& steps) {
    summary.AddRow({name, TableWriter::Num(TotalSeconds(steps), 3),
                    TableWriter::Num(AverageTweetAccuracy(steps), 2),
                    TableWriter::Num(AverageUserAccuracy(steps), 2)});
    reporter.Add(
        report_prefix + "/mode:" + name, TotalSeconds(steps) * 1e3,
        {{"days", static_cast<double>(steps.size())},
         {"avg_tweet_accuracy_pct", AverageTweetAccuracy(steps)},
         {"avg_user_accuracy_pct", AverageUserAccuracy(steps)}});
  };
  add("online", online);
  add("mini-batch", mini);
  add("full-batch", full);
  summary.Print(std::cout);
  std::cout << "\nPaper shape to check: online ≈ full-batch accuracy at a "
               "fraction of full-batch time; mini-batch cheapest but least "
               "accurate.\n";
}

}  // namespace bench_fig
}  // namespace triclust

#endif  // TRICLUST_BENCH_TIMELINE_FIGURE_H_
