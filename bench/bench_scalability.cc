/// Scalability check of the complexity claim in the paper's §3.2: the
/// per-iteration cost of Algorithm 1 is O(r·k·(nl + ml + nm + m²)), and in
/// practice is dominated by the O(nnz·k) sparse products — so runtime should
/// grow ~linearly in corpus size at fixed density. This bench doubles the
/// campaign volume repeatedly and reports solve time per tweet.

#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/core/offline.h"
#include "src/util/parallel.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

/// Strong-scaling sweep: the same offline solve at 1/2/4/hardware threads.
/// With the row-partitioned kernels the speedup should track the physical
/// core count until the O(k²)-per-row arithmetic is memory-bound.
void RunThreadSweep(bench_flags::Reporter& reporter,
                    const bench_flags::Flags& flags) {
  bench_util::PrintHeader(
      "Scalability: offline solve time vs num_threads (parallel kernels)");
  const bench_util::BenchDataset b =
      bench_util::Prepare("thread-sweep", Prop30LikeConfig());
  const DenseMatrix sf0 = b.lexicon.BuildSf0(b.builder.vocabulary(), 3);

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(static_cast<int>(hw));

  TableWriter table("Offline solve, 30 iterations, k=3, varying threads");
  table.SetHeader({"threads", "time (s)", "speedup vs 1"});
  double serial_seconds = 0.0;
  for (const int threads : thread_counts) {
    TriClusterConfig solver_config;
    solver_config.max_iterations = flags.ScaledIters(30);
    solver_config.tolerance = 0.0;
    solver_config.track_loss = false;
    solver_config.num_threads = threads;

    Stopwatch watch;
    const TriClusterResult r =
        OfflineTriClusterer(solver_config).Run(b.data, sf0);
    const double seconds = watch.ElapsedSeconds();
    (void)r;
    if (threads == 1) serial_seconds = seconds;
    table.AddRow({std::to_string(threads), TableWriter::Num(seconds, 3),
                  TableWriter::Num(serial_seconds / seconds, 2)});
    reporter.Add("scalability/thread_sweep/threads:" + std::to_string(threads),
                 seconds * 1e3,
                 {{"speedup_vs_serial", serial_seconds / seconds}});
  }
  table.Print(std::cout);
  std::cout << "\nHardware concurrency on this machine: " << hw << "\n\n";
}

void Run(bench_flags::Reporter& reporter, const bench_flags::Flags& flags) {
  bench_util::PrintHeader(
      "Scalability: offline solve time vs corpus size (paper §3.2)");
  TableWriter table("Offline solve, 30 iterations, k=3");
  table.SetHeader({"tweets", "users", "features", "nnz(Xp)", "time (s)",
                   "us/tweet/iter"});

  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    SyntheticConfig config = Prop30LikeConfig();
    config.base_tweets_per_day *= scale;
    config.num_users =
        static_cast<size_t>(static_cast<double>(config.num_users) * scale);
    const bench_util::BenchDataset b =
        bench_util::Prepare("scaled", config);

    TriClusterConfig solver_config;
    solver_config.max_iterations = flags.ScaledIters(30);
    solver_config.tolerance = 0.0;
    solver_config.track_loss = false;
    const DenseMatrix sf0 = b.lexicon.BuildSf0(b.builder.vocabulary(), 3);

    Stopwatch watch;
    const TriClusterResult r =
        OfflineTriClusterer(solver_config).Run(b.data, sf0);
    const double seconds = watch.ElapsedSeconds();
    const double us_per_tweet_iter =
        seconds * 1e6 /
        (static_cast<double>(b.data.num_tweets()) * r.iterations);
    table.AddRow({std::to_string(b.data.num_tweets()),
                  std::to_string(b.data.num_users()),
                  std::to_string(b.data.num_features()),
                  std::to_string(b.data.xp.nnz()),
                  TableWriter::Num(seconds, 3),
                  TableWriter::Num(us_per_tweet_iter, 2)});
    reporter.Add("scalability/volume_sweep/scale:" + TableWriter::Num(scale, 1),
                 seconds * 1e3,
                 {{"tweets", static_cast<double>(b.data.num_tweets())},
                  {"users", static_cast<double>(b.data.num_users())},
                  {"xp_nnz", static_cast<double>(b.data.xp.nnz())},
                  {"us_per_tweet_iter", us_per_tweet_iter}});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: the per-tweet-per-iteration cost stays "
               "roughly flat as volume scales (near-linear total cost), "
               "confirming the O(nnz·k) kernel analysis.\n";
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_scalability",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::Run(reporter, flags);
        triclust::RunThreadSweep(reporter, flags);
      });
}
