/// Serving-layer throughput: N concurrent campaigns advanced day by day
/// through CampaignEngine, swept over campaigns × engine threads × per-fit
/// budget mode. With the hierarchical scheduler each sharded fit receives
/// its slice of the pool (threads / ready fits, remainder spilled), so a
/// *few*-campaign fleet keeps the whole machine busy: the budget sweep
/// reports the speedup of the hierarchical split over the historical
/// campaign-only sharding (per_fit_threads = 1). Per-campaign results are
/// bit-identical at every setting (width-invariant kernels).
///
/// Also reports the incremental-ingestion path in isolation: Append+Emit
/// versus re-running MatrixBuilder::Build per snapshot.
///
/// Accepts the google-benchmark flag surface (see bench/bench_flags.h):
/// --benchmark_min_time=0.01x scales solver iterations down for CI smoke
/// runs, --benchmark_format=json / --benchmark_out=... emit a JSON report.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/data/snapshots.h"
#include "src/serving/campaign_engine.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

struct CampaignData {
  SyntheticDataset dataset;
  std::vector<Snapshot> days;
  MatrixBuilder builder;
  DenseMatrix sf0;
  size_t total_tweets = 0;
};

CampaignData MakeCampaignData(uint64_t seed) {
  SyntheticConfig config = Prop30LikeConfig(seed);
  config.num_days = 6;
  config.base_tweets_per_day = 150.0;
  config.num_users = 400;
  config.burst_days = {};
  CampaignData c;
  c.dataset = GenerateSynthetic(config);
  c.days = SplitByDay(c.dataset.corpus);
  c.builder.Fit(c.dataset.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(c.dataset.true_lexicon, 0.6, 0.05, 99);
  c.sf0 = lexicon.BuildSf0(c.builder.vocabulary(), 3);
  c.total_tweets = c.dataset.corpus.num_tweets();
  return c;
}

OnlineConfig ServingConfig(const bench_flags::Flags& flags) {
  OnlineConfig config;
  config.base.max_iterations = flags.ScaledIters(25);
  config.base.tolerance = 0.0;  // fixed work per fit for clean scaling
  config.base.track_loss = false;
  return config;
}

/// Streams every campaign through one engine; returns elapsed seconds.
/// `per_fit_threads` = 1 reproduces the historical campaign-only sharding,
/// 0 enables the hierarchical per-fit budget split.
double RunFleet(std::vector<CampaignData>& campaigns, int num_threads,
                int per_fit_threads, const bench_flags::Flags& flags) {
  serving::CampaignEngine::Options options;
  options.num_threads = num_threads;
  options.per_fit_threads = per_fit_threads;
  serving::CampaignEngine engine(options);
  for (CampaignData& c : campaigns) {
    engine.AddCampaign("campaign-" + std::to_string(engine.num_campaigns()),
                       ServingConfig(flags), c.sf0, c.builder,
                       &c.dataset.corpus).ValueOrDie();
  }
  size_t max_days = 0;
  for (const CampaignData& c : campaigns) {
    max_days = std::max(max_days, c.days.size());
  }
  const Stopwatch watch;
  for (size_t day = 0; day < max_days; ++day) {
    for (size_t i = 0; i < campaigns.size(); ++i) {
      if (day < campaigns[i].days.size()) {
        engine.Ingest(i, campaigns[i].days[day].tweet_ids,
                      static_cast<int>(day));
      }
    }
    engine.Advance();
  }
  return watch.ElapsedSeconds();
}

/// Higher-volume campaign for the budget sweep: ≈1k-row snapshot matrices
/// give the kernel tier real row ranges to split, so the sweep measures
/// the hierarchical schedule rather than pool dispatch overhead on
/// toy-sized fits.
CampaignData MakeLargeCampaignData(uint64_t seed) {
  SyntheticConfig config = Prop30LikeConfig(seed);
  config.num_days = 4;
  config.base_tweets_per_day = 1000.0;
  config.num_users = 1500;
  config.burst_days = {};
  CampaignData c;
  c.dataset = GenerateSynthetic(config);
  c.days = SplitByDay(c.dataset.corpus);
  c.builder.Fit(c.dataset.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(c.dataset.true_lexicon, 0.6, 0.05, 99);
  c.sf0 = lexicon.BuildSf0(c.builder.vocabulary(), 3);
  c.total_tweets = c.dataset.corpus.num_tweets();
  return c;
}

std::vector<CampaignData> MakeFleet(size_t num_campaigns, bool large,
                                    size_t* total_tweets) {
  std::vector<CampaignData> campaigns;
  *total_tweets = 0;
  for (size_t i = 0; i < num_campaigns; ++i) {
    campaigns.push_back(large ? MakeLargeCampaignData(/*seed=*/42 + i)
                              : MakeCampaignData(/*seed=*/42 + i));
    *total_tweets += campaigns.back().total_tweets;
  }
  return campaigns;
}

void RunThroughputSweep(const bench_flags::Flags& flags,
                        bench_flags::Reporter* reporter) {
  bench_util::PrintHeader(
      "Serving throughput: campaigns x engine threads (hierarchical "
      "per-fit budgets)");

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(static_cast<int>(hw));

  for (const size_t num_campaigns : {2, 4, 8}) {
    size_t total_tweets = 0;
    std::vector<CampaignData> campaigns =
        MakeFleet(num_campaigns, /*large=*/false, &total_tweets);

    TableWriter table(std::to_string(num_campaigns) +
                      " campaigns, 6 days each, " +
                      std::to_string(flags.ScaledIters(25)) +
                      " iterations/snapshot");
    table.SetHeader(
        {"threads", "time (s)", "tweets/s", "speedup vs 1 thread"});
    double serial_seconds = 0.0;
    for (const int threads : thread_counts) {
      const double seconds =
          RunFleet(campaigns, threads, /*per_fit_threads=*/0, flags);
      if (threads == 1) serial_seconds = seconds;
      table.AddRow({std::to_string(threads), TableWriter::Num(seconds, 3),
                    TableWriter::Num(total_tweets / seconds, 0),
                    TableWriter::Num(serial_seconds / seconds, 2)});
      reporter->Add("serving/throughput/campaigns:" +
                        std::to_string(num_campaigns) +
                        "/threads:" + std::to_string(threads),
                    seconds * 1e3,
                    {{"tweets_per_second", total_tweets / seconds},
                     {"speedup_vs_serial", serial_seconds / seconds}});
    }
    table.Print(std::cout);
  }
  std::cout << "Hardware concurrency on this machine: " << hw << "\n";
}

/// The few-campaign gap the hierarchical scheduler closes: with fewer
/// ready campaigns than threads, campaign-only sharding (per-fit budget
/// pinned to 1, the pre-budget engine behavior) strands the rest of the
/// pool; the auto split hands each fit threads/ready and should win
/// clearly at 2 campaigns on ≥ 8 threads.
void RunBudgetSweep(const bench_flags::Flags& flags,
                    bench_flags::Reporter* reporter) {
  bench_util::PrintHeader(
      "Per-fit budget split: Advance() throughput, campaign-only sharding "
      "vs hierarchical budgets");

  // 4 and 8 always run — even on smaller machines, where the budgets
  // oversubscribe gracefully — so the artifact JSON carries the same
  // configuration points on every host; the full machine is added on top.
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = {4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  for (const size_t num_campaigns : {1, 2, 4}) {
    size_t total_tweets = 0;
    std::vector<CampaignData> campaigns =
        MakeFleet(num_campaigns, /*large=*/true, &total_tweets);

    TableWriter table(
        std::to_string(num_campaigns) + " campaign(s) x ~1k-row snapshots, " +
        std::to_string(flags.ScaledIters(25)) +
        " iterations/snapshot; baseline pins every fit to 1 thread");
    table.SetHeader({"threads", "campaign-only (s)", "hierarchical (s)",
                     "tweets/s (hier)", "speedup"});
    for (const int threads : thread_counts) {
      const double baseline_seconds =
          RunFleet(campaigns, threads, /*per_fit_threads=*/1, flags);
      const double split_seconds =
          RunFleet(campaigns, threads, /*per_fit_threads=*/0, flags);
      const double speedup = baseline_seconds / split_seconds;
      table.AddRow({std::to_string(threads),
                    TableWriter::Num(baseline_seconds, 3),
                    TableWriter::Num(split_seconds, 3),
                    TableWriter::Num(total_tweets / split_seconds, 0),
                    TableWriter::Num(speedup, 2)});
      reporter->Add("serving/budget_split/campaigns:" +
                        std::to_string(num_campaigns) +
                        "/threads:" + std::to_string(threads),
                    split_seconds * 1e3,
                    {{"tweets_per_second", total_tweets / split_seconds},
                     {"campaign_only_ms", baseline_seconds * 1e3},
                     {"speedup_vs_campaign_only", speedup}});
    }
    table.Print(std::cout);
  }
}

void RunIngestionBench(bench_flags::Reporter* reporter) {
  bench_util::PrintHeader(
      "Incremental ingestion: Append+EmitSnapshot vs per-snapshot Build");
  CampaignData c = MakeCampaignData(/*seed=*/42);

  // What matters for a request deadline is the cost paid *at the snapshot
  // boundary*: Build does everything there, the incremental path only
  // assembles rows vectorized earlier at arrival.
  TableWriter table("Per-day snapshot matrix construction (totals over all "
                    "days)");
  table.SetHeader({"path", "at boundary (ms)", "at arrival (ms)", "note"});
  {
    const Stopwatch watch;
    for (const Snapshot& day : c.days) {
      const DatasetMatrices data =
          c.builder.Build(c.dataset.corpus, day.tweet_ids, day.last_day);
      (void)data;
    }
    const double build_ms = watch.ElapsedMillis();
    table.AddRow({"Build per snapshot", TableWriter::Num(build_ms, 2),
                  "0.00", "full vectorization under the deadline"});
    reporter->Add("serving/ingestion/build_per_snapshot", build_ms);
  }
  {
    double ingest_ms = 0.0;
    double emit_ms = 0.0;
    for (const Snapshot& day : c.days) {
      Stopwatch watch;
      c.builder.Append(c.dataset.corpus, day.tweet_ids);
      ingest_ms += watch.ElapsedMillis();
      watch.Restart();
      const DatasetMatrices data =
          c.builder.EmitSnapshot(c.dataset.corpus, day.last_day);
      (void)data;
      emit_ms += watch.ElapsedMillis();
    }
    table.AddRow({"Append + EmitSnapshot", TableWriter::Num(emit_ms, 2),
                  TableWriter::Num(ingest_ms, 2),
                  "each tweet vectorized once when it arrives"});
    reporter->Add("serving/ingestion/append_emit", emit_ms,
                  {{"arrival_ms", ingest_ms}});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_serving",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::RunThroughputSweep(flags, &reporter);
        triclust::RunBudgetSweep(flags, &reporter);
        triclust::RunIngestionBench(&reporter);
      });
}
