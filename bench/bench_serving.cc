/// Serving-layer throughput: N concurrent campaigns advanced day by day
/// through CampaignEngine, swept over campaigns × engine threads. The
/// per-snapshot fits are independent given each campaign's window
/// aggregates, so multi-campaign throughput should scale with the engine's
/// thread budget until fits outnumber cores; per-campaign results are
/// bit-identical at every setting (serial kernels inside each sharded fit).
///
/// Also reports the incremental-ingestion path in isolation: Append+Emit
/// versus re-running MatrixBuilder::Build per snapshot.

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/data/snapshots.h"
#include "src/serving/campaign_engine.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

struct CampaignData {
  SyntheticDataset dataset;
  std::vector<Snapshot> days;
  MatrixBuilder builder;
  DenseMatrix sf0;
  size_t total_tweets = 0;
};

CampaignData MakeCampaignData(uint64_t seed) {
  SyntheticConfig config = Prop30LikeConfig(seed);
  config.num_days = 6;
  config.base_tweets_per_day = 150.0;
  config.num_users = 400;
  config.burst_days = {};
  CampaignData c;
  c.dataset = GenerateSynthetic(config);
  c.days = SplitByDay(c.dataset.corpus);
  c.builder.Fit(c.dataset.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(c.dataset.true_lexicon, 0.6, 0.05, 99);
  c.sf0 = lexicon.BuildSf0(c.builder.vocabulary(), 3);
  c.total_tweets = c.dataset.corpus.num_tweets();
  return c;
}

OnlineConfig ServingConfig() {
  OnlineConfig config;
  config.base.max_iterations = 25;
  config.base.tolerance = 0.0;  // fixed work per fit for clean scaling
  config.base.track_loss = false;
  return config;
}

/// Streams every campaign through one engine; returns elapsed seconds.
double RunFleet(std::vector<CampaignData>& campaigns, int num_threads) {
  serving::CampaignEngine::Options options;
  options.num_threads = num_threads;
  serving::CampaignEngine engine(options);
  for (CampaignData& c : campaigns) {
    engine.AddCampaign("campaign-" + std::to_string(engine.num_campaigns()),
                       ServingConfig(), c.sf0, c.builder, &c.dataset.corpus);
  }
  size_t max_days = 0;
  for (const CampaignData& c : campaigns) {
    max_days = std::max(max_days, c.days.size());
  }
  const Stopwatch watch;
  for (size_t day = 0; day < max_days; ++day) {
    for (size_t i = 0; i < campaigns.size(); ++i) {
      if (day < campaigns[i].days.size()) {
        engine.Ingest(i, campaigns[i].days[day].tweet_ids,
                      static_cast<int>(day));
      }
    }
    engine.Advance();
  }
  return watch.ElapsedSeconds();
}

void RunThroughputSweep() {
  bench_util::PrintHeader(
      "Serving throughput: campaigns x engine threads (sharded snapshot "
      "fits)");

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(static_cast<int>(hw));

  for (const size_t num_campaigns : {2, 4, 8}) {
    std::vector<CampaignData> campaigns;
    size_t total_tweets = 0;
    for (size_t i = 0; i < num_campaigns; ++i) {
      campaigns.push_back(MakeCampaignData(/*seed=*/42 + i));
      total_tweets += campaigns.back().total_tweets;
    }

    TableWriter table(std::to_string(num_campaigns) +
                      " campaigns, 6 days each, 25 iterations/snapshot");
    table.SetHeader(
        {"threads", "time (s)", "tweets/s", "speedup vs 1 thread"});
    double serial_seconds = 0.0;
    for (const int threads : thread_counts) {
      const double seconds = RunFleet(campaigns, threads);
      if (threads == 1) serial_seconds = seconds;
      table.AddRow({std::to_string(threads), TableWriter::Num(seconds, 3),
                    TableWriter::Num(total_tweets / seconds, 0),
                    TableWriter::Num(serial_seconds / seconds, 2)});
    }
    table.Print(std::cout);
  }
  std::cout << "Hardware concurrency on this machine: " << hw << "\n";
}

void RunIngestionBench() {
  bench_util::PrintHeader(
      "Incremental ingestion: Append+EmitSnapshot vs per-snapshot Build");
  CampaignData c = MakeCampaignData(/*seed=*/42);

  // What matters for a request deadline is the cost paid *at the snapshot
  // boundary*: Build does everything there, the incremental path only
  // assembles rows vectorized earlier at arrival.
  TableWriter table("Per-day snapshot matrix construction (totals over all "
                    "days)");
  table.SetHeader({"path", "at boundary (ms)", "at arrival (ms)", "note"});
  {
    const Stopwatch watch;
    for (const Snapshot& day : c.days) {
      const DatasetMatrices data =
          c.builder.Build(c.dataset.corpus, day.tweet_ids, day.last_day);
      (void)data;
    }
    table.AddRow({"Build per snapshot",
                  TableWriter::Num(watch.ElapsedMillis(), 2), "0.00",
                  "full vectorization under the deadline"});
  }
  {
    double ingest_ms = 0.0;
    double emit_ms = 0.0;
    for (const Snapshot& day : c.days) {
      Stopwatch watch;
      c.builder.Append(c.dataset.corpus, day.tweet_ids);
      ingest_ms += watch.ElapsedMillis();
      watch.Restart();
      const DatasetMatrices data =
          c.builder.EmitSnapshot(c.dataset.corpus, day.last_day);
      (void)data;
      emit_ms += watch.ElapsedMillis();
    }
    table.AddRow({"Append + EmitSnapshot", TableWriter::Num(emit_ms, 2),
                  TableWriter::Num(ingest_ms, 2),
                  "each tweet vectorized once when it arrives"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace triclust

int main() {
  triclust::RunThroughputSweep();
  triclust::RunIngestionBench();
  return 0;
}
