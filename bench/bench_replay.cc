/// Replay-path benchmarks: corpus TSV loader throughput, replay-driver
/// throughput as the corpus is partitioned into more concurrent topic
/// streams, pacing accuracy across speed-ups, the scoring overhead of the
/// replay-driven evaluation harness, and deferral behavior under deadline
/// stress. Complements bench_serving (which feeds the engine from
/// pre-split synthetic snapshots): here every corpus goes through the
/// on-disk TSV round trip first, exactly like an external dataset would.
///
/// Accepts the google-benchmark flag surface (see bench/bench_flags.h):
/// --benchmark_min_time=0.01x scales solver iterations and pacing down for
/// CI smoke runs, --benchmark_format=json / --benchmark_out=... emit a
/// JSON report.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_util.h"
#include "src/data/corpus_io.h"
#include "src/eval/timeline_eval.h"
#include "src/serving/replay.h"
#include "src/util/stopwatch.h"
#include "src/util/table_writer.h"

namespace triclust {
namespace {

/// Flag/report plumbing shared by every sweep (set once in main).
bench_flags::Flags g_flags;
bench_flags::Reporter* g_reporter = nullptr;

OnlineConfig ReplayConfig() {
  OnlineConfig config;
  config.base.max_iterations = g_flags.ScaledIters(25);
  config.base.tolerance = 0.0;  // fixed work per fit for clean scaling
  config.base.track_loss = false;
  return config;
}

struct LoadedCorpus {
  Corpus corpus;
  MatrixBuilder builder;
  DenseMatrix sf0;
};

/// Generates a corpus and pushes it through the WriteTsv/ReadTsv round trip
/// (timing both directions), so later sweeps run on loader-produced data.
LoadedCorpus LoadThroughTsv(TableWriter* io_table) {
  SyntheticConfig config = Prop30LikeConfig();
  config.num_days = 8;
  config.base_tweets_per_day = 220.0;
  config.num_users = 500;
  config.burst_days = {};
  SyntheticDataset dataset = GenerateSynthetic(config);

  std::ostringstream buffer;
  Stopwatch watch;
  const Status written = WriteTsv(dataset.corpus, &buffer);
  const double write_ms = watch.ElapsedMillis();
  if (!written.ok()) {
    std::cerr << "WriteTsv failed: " << written.ToString() << "\n";
    std::exit(1);
  }
  const std::string tsv = buffer.str();

  std::istringstream in(tsv);
  watch.Restart();
  auto loaded = ReadTsv(&in, "<bench>");
  const double read_ms = watch.ElapsedMillis();
  if (!loaded.ok()) {
    std::cerr << "ReadTsv failed: " << loaded.status().ToString() << "\n";
    std::exit(1);
  }

  const double mb = static_cast<double>(tsv.size()) / (1024.0 * 1024.0);
  io_table->AddRow({std::to_string(dataset.corpus.num_tweets()),
                    TableWriter::Num(mb, 2), TableWriter::Num(write_ms, 1),
                    TableWriter::Num(read_ms, 1),
                    TableWriter::Num(mb / (read_ms / 1e3), 1)});
  g_reporter->Add("replay/tsv_write", write_ms, {{"megabytes", mb}});
  g_reporter->Add("replay/tsv_read", read_ms,
                  {{"megabytes_per_second", mb / (read_ms / 1e3)}});

  LoadedCorpus out;
  out.corpus = std::move(loaded).value();
  out.builder.Fit(out.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(dataset.true_lexicon, 0.6, 0.05, 99);
  out.sf0 = lexicon.BuildSf0(out.builder.vocabulary(), 3);
  return out;
}

serving::ReplayStats RunReplay(const LoadedCorpus& data, size_t num_streams,
                               int threads,
                               const serving::ReplayOptions& options) {
  serving::CampaignEngine::Options engine_options;
  engine_options.num_threads = threads;
  serving::CampaignEngine engine(engine_options);
  const auto streams =
      serving::PartitionIntoStreams(data.corpus, num_streams);
  for (size_t s = 0; s < streams.size(); ++s) {
    engine.AddCampaign("topic-" + std::to_string(s), ReplayConfig(),
                       data.sf0, data.builder, &data.corpus).ValueOrDie();
  }
  serving::ReplayDriver driver(&engine);
  for (size_t s = 0; s < streams.size(); ++s) {
    driver.AddStream(s, streams[s]);
  }
  return driver.Replay(options);
}

void RunPartitionSweep(const LoadedCorpus& data) {
  bench_util::PrintHeader(
      "Replay throughput: one corpus partitioned into N topic streams "
      "(as fast as possible)");
  TableWriter table(
      "Flat-out replay, same total tweet volume at every partition width");
  table.SetHeader({"streams", "threads", "wall ms", "tweets/s",
                   "mean advance ms", "max advance ms"});
  for (const size_t streams : {1, 2, 4}) {
    for (const int threads : {1, 0}) {
      const serving::ReplayStats stats =
          RunReplay(data, streams, threads, serving::ReplayOptions());
      table.AddRow({std::to_string(streams),
                    threads == 0 ? "hw" : std::to_string(threads),
                    TableWriter::Num(stats.wall_ms, 0),
                    TableWriter::Num(stats.TweetsPerSecond(), 0),
                    TableWriter::Num(stats.MeanAdvanceMs(), 1),
                    TableWriter::Num(stats.MaxAdvanceMs(), 1)});
      g_reporter->Add(
          "replay/partition/streams:" + std::to_string(streams) +
              "/threads:" + (threads == 0 ? "hw" : std::to_string(threads)),
          stats.wall_ms,
          {{"tweets_per_second", stats.TweetsPerSecond()},
           {"max_advance_ms", stats.MaxAdvanceMs()}});
    }
  }
  table.Print(std::cout);
}

void RunSpeedupSweep(const LoadedCorpus& data) {
  bench_util::PrintHeader(
      "Paced replay: historical days released at day_interval_ms / speedup");
  const double interval_ms = g_flags.ScaledMs(400.0);
  TableWriter table("8-day stream, 2 topic streams, day interval " +
                    TableWriter::Num(interval_ms, 0) + " ms");
  table.SetHeader({"speedup", "wall ms", "expected ms", "mean wait ms"});
  for (const double speedup : {1.0, 4.0, 16.0}) {
    serving::ReplayOptions options;
    options.day_interval_ms = interval_ms;
    options.speedup = speedup;
    const serving::ReplayStats stats = RunReplay(data, 2, 0, options);
    double wait_ms = 0.0;
    for (const auto& d : stats.days) wait_ms += d.wait_ms;
    // Day d releases at d·interval/speedup: with D days the last release
    // is at (D−1)·interval/speedup, plus the work of the final day.
    const double expected =
        (static_cast<double>(stats.days.size()) - 1.0) * interval_ms /
        speedup;
    table.AddRow({TableWriter::Num(speedup, 0),
                  TableWriter::Num(stats.wall_ms, 0),
                  TableWriter::Num(expected, 0) + "+fit",
                  TableWriter::Num(wait_ms / stats.days.size(), 1)});
    g_reporter->Add("replay/paced/speedup:" + TableWriter::Num(speedup, 0),
                    stats.wall_ms,
                    {{"expected_release_ms", expected},
                     {"mean_wait_ms", wait_ms / stats.days.size()}});
  }
  table.Print(std::cout);
}

void RunEvalSweep(const LoadedCorpus& data) {
  bench_util::PrintHeader(
      "Replay-driven evaluation: per-day accuracy timelines scored while "
      "replaying (src/eval/timeline_eval.h)");
  TableWriter table(
      "Timeline eval riding a flat-out replay; eval ms is the total "
      "scoring overhead added to the run");
  table.SetHeader({"streams", "snapshots", "tweets scored", "tweet acc",
                   "user acc", "tweet NMI", "eval ms", "replay ms"});
  for (const size_t num_streams : {1, 2, 4}) {
    serving::CampaignEngine engine;
    const auto streams =
        serving::PartitionIntoStreams(data.corpus, num_streams);
    for (size_t s = 0; s < streams.size(); ++s) {
      engine.AddCampaign("topic-" + std::to_string(s), ReplayConfig(),
                         data.sf0, data.builder, &data.corpus).ValueOrDie();
    }
    serving::ReplayDriver driver(&engine);
    for (size_t s = 0; s < streams.size(); ++s) {
      driver.AddStream(s, streams[s]);
    }
    TimelineEvaluator evaluator(&engine);
    double eval_ms = 0.0;
    driver.AddObserver(
        [&](int day, const serving::CampaignEngine::SnapshotReport& r) {
          const Stopwatch score_clock;
          evaluator.Observe(day, r);
          eval_ms += score_clock.ElapsedMillis();
        });
    const serving::ReplayStats stats = driver.Replay();
    const TimelineAggregate aggregate = evaluator.RunAggregate();
    table.AddRow({std::to_string(num_streams),
                  std::to_string(aggregate.snapshots),
                  std::to_string(aggregate.tweets_scored),
                  TableWriter::Num(aggregate.tweet_accuracy, 3),
                  TableWriter::Num(aggregate.user_accuracy, 3),
                  TableWriter::Num(aggregate.tweet_nmi, 3),
                  TableWriter::Num(eval_ms, 1),
                  TableWriter::Num(stats.wall_ms, 0)});
    g_reporter->Add("replay/eval/streams:" + std::to_string(num_streams),
                    stats.wall_ms,
                    {{"eval_overhead_ms", eval_ms},
                     {"tweet_accuracy", aggregate.tweet_accuracy},
                     {"user_accuracy", aggregate.user_accuracy},
                     {"tweet_nmi", aggregate.tweet_nmi}});
  }
  table.Print(std::cout);
}

void RunDeadlineSweep(const LoadedCorpus& data) {
  bench_util::PrintHeader(
      "Deadline-stressed replay: deferral rate vs per-Advance deadline");
  TableWriter table(
      "4 topic streams, flat-out; deferred queues fold into later "
      "snapshots and a final drain pass");
  table.SetHeader({"deadline ms", "fits", "deferred", "wall ms",
                   "max advance ms"});
  for (const double deadline_ms : {0.0, 50.0, 5.0, 0.5}) {
    serving::ReplayOptions options;
    options.deadline_ms = deadline_ms;
    const serving::ReplayStats stats = RunReplay(data, 4, 0, options);
    table.AddRow({deadline_ms <= 0.0 ? "none"
                                     : TableWriter::Num(deadline_ms, 1),
                  std::to_string(stats.total_fits),
                  std::to_string(stats.total_deferred),
                  TableWriter::Num(stats.wall_ms, 0),
                  TableWriter::Num(stats.MaxAdvanceMs(), 1)});
    g_reporter->Add(
        "replay/deadline/ms:" +
            (deadline_ms <= 0.0 ? std::string("none")
                                : TableWriter::Num(deadline_ms, 1)),
        stats.wall_ms,
        {{"fits", static_cast<double>(stats.total_fits)},
         {"deferred", static_cast<double>(stats.total_deferred)}});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace triclust

int main(int argc, char** argv) {
  return triclust::bench_flags::BenchMain(
      argc, argv, "bench_replay",
      [](triclust::bench_flags::Reporter& reporter,
         const triclust::bench_flags::Flags& flags) {
        triclust::g_flags = flags;
        triclust::g_reporter = &reporter;

        triclust::bench_util::PrintHeader(
            "Corpus TSV loaders: WriteTsv/ReadTsv round-trip throughput");
        triclust::TableWriter io_table("In-memory TSV serialization");
        io_table.SetHeader(
            {"tweets", "MB", "write ms", "read ms", "read MB/s"});
        const triclust::LoadedCorpus data =
            triclust::LoadThroughTsv(&io_table);
        io_table.Print(std::cout);

        triclust::RunPartitionSweep(data);
        triclust::RunSpeedupSweep(data);
        triclust::RunEvalSweep(data);
        triclust::RunDeadlineSweep(data);
      });
}
