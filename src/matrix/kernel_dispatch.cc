#include "src/matrix/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/matrix/kernels.h"

namespace triclust {
namespace {

std::atomic<int> g_default_mode{static_cast<int>(KernelMode::kAuto)};

/// -1 = no scope installed on this thread; otherwise a KernelMode value.
thread_local int tls_mode = -1;

/// -1 = unprobed; 0/1 = cached TRICLUST_FORCE_SCALAR verdict.
std::atomic<int> g_force_scalar{-1};

bool ProbeForceScalar() {
  const char* value = std::getenv("TRICLUST_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_default_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return static_cast<KernelMode>(
      g_default_mode.load(std::memory_order_relaxed));
}

bool ForceScalarActive() {
  int cached = g_force_scalar.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = ProbeForceScalar() ? 1 : 0;
    g_force_scalar.store(cached, std::memory_order_relaxed);
  }
  return cached != 0;
}

KernelMode ActiveKernelMode() {
  if (ForceScalarActive()) return KernelMode::kScalar;
  if (tls_mode >= 0) return static_cast<KernelMode>(tls_mode);
  return GetKernelMode();
}

bool CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

bool CpuSupportsFma() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool Avx2KernelsCompiled() { return kernels::Avx2KernelsCompiled(); }

KernelDispatch ActiveDispatch() {
  KernelDispatch d;
  const KernelMode mode = ActiveKernelMode();
  if (mode == KernelMode::kScalar) return d;
  d.fixed_k = true;
  d.avx2 = CpuSupportsAvx2() && Avx2KernelsCompiled();
  d.fast = mode == KernelMode::kFast && d.avx2 && CpuSupportsFma();
  return d;
}

ScopedKernelMode::ScopedKernelMode(KernelMode mode) : previous_(tls_mode) {
  tls_mode = static_cast<int>(mode);
}

ScopedKernelMode::~ScopedKernelMode() { tls_mode = previous_; }

namespace internal {
void ReprobeKernelEnvForTesting() {
  g_force_scalar.store(-1, std::memory_order_relaxed);
}
}  // namespace internal

namespace kernels {

/// Selection order within a family: fast (when the mode opted in) beats
/// the bit-identical AVX2 body beats the fixed-k unroll beats the generic
/// reference. Every Select* must stay safe for arbitrary shapes — unknown
/// k always lands on a generic (or shape-agnostic vector) body.

SpMMRowsFn SelectSpMMRows(size_t k) {
  const KernelDispatch d = ActiveDispatch();
  switch (k) {
    case 2:
      if (d.avx2) return Avx2SpMMRowsK2;
      if (d.fixed_k) return SpMMRowsK2;
      break;
    case 3:
      if (d.avx2) return Avx2SpMMRowsK3;
      if (d.fixed_k) return SpMMRowsK3;
      break;
    case 4:
      if (d.fast) return FastSpMMRowsK4;
      if (d.avx2) return Avx2SpMMRowsK4;
      if (d.fixed_k) return SpMMRowsK4;
      break;
    default:
      if (d.avx2 && k > 4) return Avx2SpMMRowsWide;
      break;
  }
  return GenericSpMMRows;
}

AtBAccumulateFn SelectAtBAccumulate(size_t ka, size_t kb) {
  const KernelDispatch d = ActiveDispatch();
  if (ka == kb) {
    switch (ka) {
      case 2:
        if (d.avx2) return Avx2AtBAccumulateK2;
        if (d.fixed_k) return AtBAccumulateK2;
        break;
      case 3:
        if (d.avx2) return Avx2AtBAccumulateK3;
        if (d.fixed_k) return AtBAccumulateK3;
        break;
      case 4:
        if (d.fast) return FastAtBAccumulateK4;
        if (d.avx2) return Avx2AtBAccumulateK4;
        if (d.fixed_k) return AtBAccumulateK4;
        break;
      default:
        break;
    }
  }
  if (d.avx2 && kb > 4) return Avx2AtBAccumulateWide;
  return GenericAtBAccumulate;
}

MatMulRowsFn SelectMatMulRows(size_t p_dim, size_t n) {
  const KernelDispatch d = ActiveDispatch();
  if (p_dim == n) {
    switch (p_dim) {
      case 2:
        if (d.fixed_k) return MatMulRowsK2;
        break;
      case 3:
        if (d.fixed_k) return MatMulRowsK3;
        break;
      case 4:
        if (d.fixed_k) return MatMulRowsK4;
        break;
      default:
        break;
    }
  }
  // Large dense panels: L2 blocking (bit-identical; gated behind fixed_k
  // so kScalar remains the untouched historical loop).
  if (d.fixed_k && p_dim >= 64 && n >= 64) return BlockedMatMulRows;
  return GenericMatMulRows;
}

ABtRowsFn SelectABtRows(size_t p_dim) {
  const KernelDispatch d = ActiveDispatch();
  switch (p_dim) {
    case 2:
      if (d.fixed_k) return ABtRowsK2;
      break;
    case 3:
      if (d.fixed_k) return ABtRowsK3;
      break;
    case 4:
      if (d.fixed_k) return ABtRowsK4;
      break;
    default:
      break;
  }
  return GenericABtRows;
}

MulUpdateRangeFn SelectMulUpdateRange() {
  return ActiveDispatch().avx2 ? Avx2MulUpdateRange : GenericMulUpdateRange;
}

DotRangeFn SelectDotRange() {
  return ActiveDispatch().fast ? FastDotRange : GenericDotRange;
}

DiffSquaredRangeFn SelectDiffSquaredRange() {
  return ActiveDispatch().fast ? FastDiffSquaredRange
                               : GenericDiffSquaredRange;
}

SpCrossRowsFn SelectSpCrossRows(size_t k) {
  const KernelDispatch d = ActiveDispatch();
  switch (k) {
    case 2:
      if (d.fixed_k) return SpCrossRowsK2;
      break;
    case 3:
      if (d.fixed_k) return SpCrossRowsK3;
      break;
    case 4:
      if (d.fast) return FastSpCrossRowsK4;
      if (d.fixed_k) return SpCrossRowsK4;
      break;
    default:
      break;
  }
  return GenericSpCrossRows;
}

}  // namespace kernels
}  // namespace triclust
