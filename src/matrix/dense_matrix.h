#ifndef TRICLUST_SRC_MATRIX_DENSE_MATRIX_H_
#define TRICLUST_SRC_MATRIX_DENSE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "src/util/logging.h"

namespace triclust {

class Rng;

/// Row-major dense matrix of doubles.
///
/// The cluster-indicator matrices of the tri-clustering framework
/// (Sp ∈ R^{n×k}, Su ∈ R^{m×k}, Sf ∈ R^{l×k}) and the k×k association
/// matrices (Hp, Hu) are dense and tall-skinny (k is 2 or 3), so a simple
/// contiguous row-major layout is both cache-friendly for the SpMM kernels
/// and trivially correct. Copyable and movable.
class DenseMatrix {
 public:
  /// Empty 0×0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  /// rows×cols matrix filled with `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: DenseMatrix({{1,2},{3,4}}).
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n×n identity.
  static DenseMatrix Identity(size_t n);

  /// rows×cols with i.i.d. entries uniform in [lo, hi).
  static DenseMatrix Random(size_t rows, size_t cols, Rng* rng, double lo,
                            double hi);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t i, size_t j) {
    TRICLUST_CHECK_LT(i, rows_);
    TRICLUST_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double At(size_t i, size_t j) const {
    TRICLUST_CHECK_LT(i, rows_);
    TRICLUST_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  /// Unchecked element access for inner loops.
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Pointer to the start of row `i`.
  double* Row(size_t i) { return data_.data() + i * cols_; }
  const double* Row(size_t i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Reshapes to rows×cols, reusing the existing allocation when capacity
  /// allows (entries are unspecified afterwards). This is the workhorse of
  /// the solver's scratch-buffer reuse: after the first iteration sizes a
  /// workspace matrix, later Resize calls to the same shape are free.
  void Resize(size_t rows, size_t cols);

  /// Element-wise in-place operations.
  void AddInPlace(const DenseMatrix& other);
  void SubInPlace(const DenseMatrix& other);
  void ScaleInPlace(double factor);
  /// this += factor * other.
  void Axpy(double factor, const DenseMatrix& other);
  /// Clamps every entry to at least `floor` (keeps multiplicative updates in
  /// the positive orthant despite floating-point underflow).
  void ClampMin(double floor);

  /// Transposed copy.
  DenseMatrix Transposed() const;

  /// Extracts the sub-matrix of the given rows (in order).
  DenseMatrix SelectRows(const std::vector<size_t>& row_ids) const;

  /// Sum of all entries.
  double Sum() const;

  /// Max |entry|.
  double MaxAbs() const;

  /// Index of the largest entry in row `i` (ties break to the lowest index).
  size_t ArgMaxRow(size_t i) const;

  /// Argmax of each row, i.e. the hard cluster assignment of a
  /// cluster-indicator matrix.
  std::vector<int> RowArgMax() const;

  /// Normalizes each row to sum to one (rows of all zeros become uniform).
  void NormalizeRowsL1();

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_DENSE_MATRIX_H_
