/// AVX2 kernel bodies. This is the ONE translation unit compiled with
/// -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot contract
/// the bit-identical mul+add sequences into FMAs behind our back — see
/// CMakeLists.txt). It deliberately includes no project headers beyond
/// kernels.h (plain declarations): any inline function instantiated here
/// would be compiled with AVX2 and could be the copy the linker keeps,
/// crashing non-AVX2 hosts.
///
/// On targets where the compiler cannot produce AVX2 (no __AVX2__ after
/// the flags), every body forwards to its generic counterpart and
/// Avx2KernelsCompiled() reports false, so dispatch never advertises a
/// vector tier it does not have.
///
/// Bit-exactness notes for the bit-identical tier:
///  - products use separate _mm256_mul_pd + _mm256_add_pd (never FMA);
///    per output element that is the scalar op sequence on independent
///    lanes, so results match the generic loop bit-for-bit.
///  - the multiplicative update uses _mm256_max_pd(0, x), whose
///    second-operand NaN/±0 semantics exactly reproduce std::max(x, 0.0):
///    NaN propagates, -0.0 is kept (and neutralized by +eps), negatives
///    clamp. Per-lane div/sqrt are correctly rounded IEEE, like their
///    scalar forms.
///  - masked tails process the remaining lanes with the same per-lane ops.

#include "src/matrix/kernels.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace triclust {
namespace kernels {

#if defined(__AVX2__)

namespace {

/// Lane mask with the low `rem` (1–3) lanes active.
inline __m256i TailMask(size_t rem) {
  return _mm256_setr_epi64x(rem > 0 ? -1 : 0, rem > 1 ? -1 : 0,
                            rem > 2 ? -1 : 0, 0);
}

}  // namespace

bool Avx2KernelsCompiled() { return true; }

void Avx2SpMMRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t, double* c,
                    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    __m128d acc = _mm_setzero_pd();
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const __m128d v = _mm_set1_pd(values[p]);
      const __m128d drow =
          _mm_loadu_pd(d + static_cast<size_t>(col_idx[p]) * 2);
      acc = _mm_add_pd(acc, _mm_mul_pd(v, drow));
    }
    _mm_storeu_pd(c + i * 2, acc);
  }
}

void Avx2SpMMRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t, double* c,
                    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    __m128d acc01 = _mm_setzero_pd();
    double acc2 = 0.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      const double* drow = d + static_cast<size_t>(col_idx[p]) * 3;
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_set1_pd(v),
                                           _mm_loadu_pd(drow)));
      acc2 += v * drow[2];
    }
    double* crow = c + i * 3;
    _mm_storeu_pd(crow, acc01);
    crow[2] = acc2;
  }
}

void Avx2SpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t, double* c,
                    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const __m256d v = _mm256_set1_pd(values[p]);
      const __m256d drow =
          _mm256_loadu_pd(d + static_cast<size_t>(col_idx[p]) * 4);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v, drow));
    }
    _mm256_storeu_pd(c + i * 4, acc);
  }
}

void Avx2SpMMRowsWide(const size_t* row_ptr, const uint32_t* col_idx,
                      const double* values, const double* d, size_t k,
                      double* c, size_t row_begin, size_t row_end) {
  const size_t full = k / 4 * 4;
  const size_t rem = k - full;
  const __m256i tail = TailMask(rem);
  for (size_t i = row_begin; i < row_end; ++i) {
    double* crow = c + i * k;
    // 4-lane column blocks, each with its accumulator in a register across
    // the whole sparse row; the row's index/value arrays are re-walked per
    // block, which the d-row traffic dwarfs for k this large.
    for (size_t jb = 0; jb < full; jb += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        const __m256d v = _mm256_set1_pd(values[p]);
        const __m256d drow =
            _mm256_loadu_pd(d + static_cast<size_t>(col_idx[p]) * k + jb);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, drow));
      }
      _mm256_storeu_pd(crow + jb, acc);
    }
    if (rem > 0) {
      __m256d acc = _mm256_setzero_pd();
      for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        const __m256d v = _mm256_set1_pd(values[p]);
        const __m256d drow = _mm256_maskload_pd(
            d + static_cast<size_t>(col_idx[p]) * k + full, tail);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, drow));
      }
      _mm256_maskstore_pd(crow + full, tail, acc);
    }
  }
}

void Avx2AtBAccumulateK2(const double* a, size_t, const double* b, size_t,
                         size_t p_begin, size_t p_end, double* out) {
  __m128d acc0 = _mm_loadu_pd(out);
  __m128d acc1 = _mm_loadu_pd(out + 2);
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * 2;
    const __m128d brow = _mm_loadu_pd(b + p * 2);
    if (arow[0] != 0.0) {
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_set1_pd(arow[0]), brow));
    }
    if (arow[1] != 0.0) {
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_set1_pd(arow[1]), brow));
    }
  }
  _mm_storeu_pd(out, acc0);
  _mm_storeu_pd(out + 2, acc1);
}

void Avx2AtBAccumulateK3(const double* a, size_t, const double* b, size_t,
                         size_t p_begin, size_t p_end, double* out) {
  // 3-lane masked rows: lane 3 stays zero in every accumulator and is never
  // stored, so the three live lanes see exactly the scalar op sequence.
  const __m256i mask = TailMask(3);
  __m256d acc0 = _mm256_maskload_pd(out, mask);
  __m256d acc1 = _mm256_maskload_pd(out + 3, mask);
  __m256d acc2 = _mm256_maskload_pd(out + 6, mask);
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * 3;
    const __m256d brow = _mm256_maskload_pd(b + p * 3, mask);
    if (arow[0] != 0.0) {
      acc0 = _mm256_add_pd(acc0,
                           _mm256_mul_pd(_mm256_set1_pd(arow[0]), brow));
    }
    if (arow[1] != 0.0) {
      acc1 = _mm256_add_pd(acc1,
                           _mm256_mul_pd(_mm256_set1_pd(arow[1]), brow));
    }
    if (arow[2] != 0.0) {
      acc2 = _mm256_add_pd(acc2,
                           _mm256_mul_pd(_mm256_set1_pd(arow[2]), brow));
    }
  }
  _mm256_maskstore_pd(out, mask, acc0);
  _mm256_maskstore_pd(out + 3, mask, acc1);
  _mm256_maskstore_pd(out + 6, mask, acc2);
}

void Avx2AtBAccumulateK4(const double* a, size_t, const double* b, size_t,
                         size_t p_begin, size_t p_end, double* out) {
  __m256d acc0 = _mm256_loadu_pd(out);
  __m256d acc1 = _mm256_loadu_pd(out + 4);
  __m256d acc2 = _mm256_loadu_pd(out + 8);
  __m256d acc3 = _mm256_loadu_pd(out + 12);
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * 4;
    const __m256d brow = _mm256_loadu_pd(b + p * 4);
    // The a(p,i)==0 skip of the generic loop is kept per output row: av is
    // a scalar broadcast, so skipping is still an all-lanes decision.
    if (arow[0] != 0.0) {
      acc0 = _mm256_add_pd(acc0,
                           _mm256_mul_pd(_mm256_set1_pd(arow[0]), brow));
    }
    if (arow[1] != 0.0) {
      acc1 = _mm256_add_pd(acc1,
                           _mm256_mul_pd(_mm256_set1_pd(arow[1]), brow));
    }
    if (arow[2] != 0.0) {
      acc2 = _mm256_add_pd(acc2,
                           _mm256_mul_pd(_mm256_set1_pd(arow[2]), brow));
    }
    if (arow[3] != 0.0) {
      acc3 = _mm256_add_pd(acc3,
                           _mm256_mul_pd(_mm256_set1_pd(arow[3]), brow));
    }
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
  _mm256_storeu_pd(out + 8, acc2);
  _mm256_storeu_pd(out + 12, acc3);
}

void Avx2AtBAccumulateWide(const double* a, size_t ka, const double* b,
                           size_t kb, size_t p_begin, size_t p_end,
                           double* out) {
  const size_t full = kb / 4 * 4;
  const size_t rem = kb - full;
  const __m256i tail = TailMask(rem);
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * ka;
    const double* brow = b + p * kb;
    for (size_t i = 0; i < ka; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      const __m256d avv = _mm256_set1_pd(av);
      double* orow = out + i * kb;
      for (size_t j = 0; j < full; j += 4) {
        const __m256d sum = _mm256_add_pd(
            _mm256_loadu_pd(orow + j),
            _mm256_mul_pd(avv, _mm256_loadu_pd(brow + j)));
        _mm256_storeu_pd(orow + j, sum);
      }
      if (rem > 0) {
        const __m256d sum = _mm256_add_pd(
            _mm256_maskload_pd(orow + full, tail),
            _mm256_mul_pd(avv, _mm256_maskload_pd(brow + full, tail)));
        _mm256_maskstore_pd(orow + full, tail, sum);
      }
    }
  }
}

void Avx2MulUpdateRange(double* m, const double* numer, const double* denom,
                        double eps, size_t begin, size_t end) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d veps = _mm256_set1_pd(eps);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    // max(0, x) keeps x as the second operand so NaN propagates and ±0
    // keeps its sign, exactly like std::max(x, 0.0).
    const __m256d n = _mm256_add_pd(
        _mm256_max_pd(zero, _mm256_loadu_pd(numer + i)), veps);
    const __m256d d = _mm256_add_pd(
        _mm256_max_pd(zero, _mm256_loadu_pd(denom + i)), veps);
    const __m256d step = _mm256_sqrt_pd(_mm256_div_pd(n, d));
    _mm256_storeu_pd(m + i, _mm256_mul_pd(_mm256_loadu_pd(m + i), step));
  }
  if (i < end) GenericMulUpdateRange(m, numer, denom, eps, i, end);
}

void FastSpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t, double* c,
                    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      acc = _mm256_fmadd_pd(
          _mm256_set1_pd(values[p]),
          _mm256_loadu_pd(d + static_cast<size_t>(col_idx[p]) * 4), acc);
    }
    _mm256_storeu_pd(c + i * 4, acc);
  }
}

void FastAtBAccumulateK4(const double* a, size_t, const double* b, size_t,
                         size_t p_begin, size_t p_end, double* out) {
  __m256d acc0 = _mm256_loadu_pd(out);
  __m256d acc1 = _mm256_loadu_pd(out + 4);
  __m256d acc2 = _mm256_loadu_pd(out + 8);
  __m256d acc3 = _mm256_loadu_pd(out + 12);
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * 4;
    const __m256d brow = _mm256_loadu_pd(b + p * 4);
    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(arow[0]), brow, acc0);
    acc1 = _mm256_fmadd_pd(_mm256_set1_pd(arow[1]), brow, acc1);
    acc2 = _mm256_fmadd_pd(_mm256_set1_pd(arow[2]), brow, acc2);
    acc3 = _mm256_fmadd_pd(_mm256_set1_pd(arow[3]), brow, acc3);
  }
  _mm256_storeu_pd(out, acc0);
  _mm256_storeu_pd(out + 4, acc1);
  _mm256_storeu_pd(out + 8, acc2);
  _mm256_storeu_pd(out + 12, acc3);
}

namespace {

/// Fixed-order horizontal sum: ((l0 + l1) + (l2 + l3)). The lane split is
/// what makes the Fast reductions tolerance-only.
inline double HorizontalSum(__m256d v) {
  double lanes[4];
  _mm256_storeu_pd(lanes, v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

double FastDotRange(const double* x, const double* y, size_t begin,
                    size_t end) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                          acc);
  }
  double total = HorizontalSum(acc);
  for (; i < end; ++i) total += x[i] * y[i];
  return total;
}

double FastDiffSquaredRange(const double* x, const double* y, size_t begin,
                            size_t end) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_fmadd_pd(diff, diff, acc);
  }
  double total = HorizontalSum(acc);
  for (; i < end; ++i) {
    const double diff = x[i] - y[i];
    total += diff * diff;
  }
  return total;
}

double FastSpCrossRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                         const double* values, const double* u,
                         const double* v, size_t, size_t row_begin,
                         size_t row_end) {
  // Lane c accumulates Σ values[p]·u(i,c)·v(j,c); one horizontal sum at the
  // end instead of one per nonzero.
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = row_begin; i < row_end; ++i) {
    const __m256d urow = _mm256_loadu_pd(u + i * 4);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const __m256d vrow =
          _mm256_loadu_pd(v + static_cast<size_t>(col_idx[p]) * 4);
      acc = _mm256_fmadd_pd(_mm256_set1_pd(values[p]),
                            _mm256_mul_pd(urow, vrow), acc);
    }
  }
  return HorizontalSum(acc);
}

#else  // !defined(__AVX2__)

bool Avx2KernelsCompiled() { return false; }

void Avx2SpMMRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end) {
  GenericSpMMRows(row_ptr, col_idx, values, d, k, c, row_begin, row_end);
}
void Avx2SpMMRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end) {
  GenericSpMMRows(row_ptr, col_idx, values, d, k, c, row_begin, row_end);
}
void Avx2SpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end) {
  GenericSpMMRows(row_ptr, col_idx, values, d, k, c, row_begin, row_end);
}
void Avx2SpMMRowsWide(const size_t* row_ptr, const uint32_t* col_idx,
                      const double* values, const double* d, size_t k,
                      double* c, size_t row_begin, size_t row_end) {
  GenericSpMMRows(row_ptr, col_idx, values, d, k, c, row_begin, row_end);
}
void Avx2AtBAccumulateK2(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out) {
  GenericAtBAccumulate(a, ka, b, kb, p_begin, p_end, out);
}
void Avx2AtBAccumulateK3(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out) {
  GenericAtBAccumulate(a, ka, b, kb, p_begin, p_end, out);
}
void Avx2AtBAccumulateK4(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out) {
  GenericAtBAccumulate(a, ka, b, kb, p_begin, p_end, out);
}
void Avx2AtBAccumulateWide(const double* a, size_t ka, const double* b,
                           size_t kb, size_t p_begin, size_t p_end,
                           double* out) {
  GenericAtBAccumulate(a, ka, b, kb, p_begin, p_end, out);
}
void Avx2MulUpdateRange(double* m, const double* numer, const double* denom,
                        double eps, size_t begin, size_t end) {
  GenericMulUpdateRange(m, numer, denom, eps, begin, end);
}
void FastSpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end) {
  GenericSpMMRows(row_ptr, col_idx, values, d, k, c, row_begin, row_end);
}
void FastAtBAccumulateK4(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out) {
  GenericAtBAccumulate(a, ka, b, kb, p_begin, p_end, out);
}
double FastDotRange(const double* x, const double* y, size_t begin,
                    size_t end) {
  return GenericDotRange(x, y, begin, end);
}
double FastDiffSquaredRange(const double* x, const double* y, size_t begin,
                            size_t end) {
  return GenericDiffSquaredRange(x, y, begin, end);
}
double FastSpCrossRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                         const double* values, const double* u,
                         const double* v, size_t k, size_t row_begin,
                         size_t row_end) {
  return GenericSpCrossRows(row_ptr, col_idx, values, u, v, k, row_begin,
                            row_end);
}

#endif  // defined(__AVX2__)

}  // namespace kernels
}  // namespace triclust
