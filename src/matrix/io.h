#ifndef TRICLUST_SRC_MATRIX_IO_H_
#define TRICLUST_SRC_MATRIX_IO_H_

#include <istream>
#include <ostream>

#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"

namespace triclust {

/// Text (de)serialization of dense matrices, used by the online solver's
/// checkpointing and available for exporting factor matrices. Format: one
/// header line `rows cols`, then one row per line, full double precision
/// (%.17g round-trips exactly).
void WriteDenseMatrix(const DenseMatrix& matrix, std::ostream* os);

/// Reads a matrix written by WriteDenseMatrix. Returns ParseError on
/// malformed input.
Result<DenseMatrix> ReadDenseMatrix(std::istream* is);

}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_IO_H_
