#ifndef TRICLUST_SRC_MATRIX_SPARSE_MATRIX_H_
#define TRICLUST_SRC_MATRIX_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace triclust {

class DenseMatrix;

/// Immutable sparse matrix in Compressed Sparse Row (CSR) form.
///
/// The data matrices of the framework — tweet–feature Xp (n×l),
/// user–feature Xu (m×l), user–tweet Xr (m×n) and the user–user graph Gu
/// (m×m) — are extremely sparse (a tweet holds ~10 of tens of thousands of
/// features), so all solver kernels stream over CSR and never densify.
/// Within a row, column indices are sorted ascending and unique; duplicate
/// (i, j) insertions in the builder are coalesced by summation.
class SparseMatrix {
 public:
  /// Accumulates COO triplets and produces a canonical CSR matrix.
  class Builder {
   public:
    /// Fixes the dimensions up front; Add() checks bounds against them.
    Builder(size_t rows, size_t cols);

    /// Adds `value` at (row, col). Duplicates accumulate. Zero values are
    /// kept until Build(), which drops exact zeros (so `x + (-x)` vanishes).
    void Add(size_t row, size_t col, double value);

    size_t num_triplets() const { return entries_.size(); }

    /// Sorts, coalesces duplicates, drops zeros, and builds the CSR arrays.
    /// The builder is left empty and reusable.
    SparseMatrix Build();

   private:
    struct Entry {
      uint32_t row;
      uint32_t col;
      double value;
    };
    size_t rows_;
    size_t cols_;
    std::vector<Entry> entries_;
  };

  /// Empty 0×0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  /// CSR arrays. row_ptr has rows()+1 entries; the entries of row i live at
  /// positions [row_ptr[i], row_ptr[i+1]).
  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Number of stored entries in row `i`.
  size_t RowNnz(size_t i) const {
    TRICLUST_CHECK_LT(i, rows_);
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Value at (i, j); 0 when not stored. O(log RowNnz).
  double At(size_t i, size_t j) const;

  /// Sum of the entries in row `i`.
  double RowSum(size_t i) const;

  /// Sum of every column, as a dense vector of length cols().
  std::vector<double> ColumnSums() const;

  /// Sum over all stored values.
  double Sum() const;

  /// Σ v² over stored values, i.e. ||X||²F.
  double FrobeniusNormSquared() const;

  /// Transposed copy (CSR of the transpose, built in O(nnz)).
  SparseMatrix Transposed() const;

  /// Extracts the sub-matrix of the given rows (in order), keeping the
  /// column space. Used to slice Xu/Xr into new/evolving user blocks for the
  /// online algorithm.
  SparseMatrix SelectRows(const std::vector<size_t>& row_ids) const;

  /// Dense copy (tests/debugging only; asserts the result is small).
  DenseMatrix ToDense() const;

  /// Builds from a dense matrix, keeping entries with |v| > tolerance.
  static SparseMatrix FromDense(const DenseMatrix& dense,
                                double tolerance = 0.0);

 private:
  friend class Builder;
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_SPARSE_MATRIX_H_
