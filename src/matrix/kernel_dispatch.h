#ifndef TRICLUST_SRC_MATRIX_KERNEL_DISPATCH_H_
#define TRICLUST_SRC_MATRIX_KERNEL_DISPATCH_H_

namespace triclust {

/// Runtime kernel-specialization policy for the matrix kernels of
/// src/matrix/ops.h.
///
/// Every kernel keeps the generic double-loop of ops.cc as its reference
/// implementation (the bitwise reproducibility oracle of the whole repo —
/// see docs/ARCHITECTURE.md "Kernel dispatch"). On top of it, ops.cc may
/// select specialized bodies for the hot shapes of the paper (k = 2–4
/// cluster columns) and for the CPU at hand:
///
///  - fixed-k bodies: fully unrolled loops with the k-wide (or k×k)
///    accumulator held in registers. Same multiply/add sequence per output
///    element as the generic loop, therefore BIT-IDENTICAL to it.
///  - AVX2 bodies: element-parallel vector code where each output element
///    still sees the exact scalar operation sequence (independent lanes,
///    separate mul + add — never FMA — and IEEE per-lane max/div/sqrt), so
///    they are BIT-IDENTICAL to the generic loop as well.
///  - fast bodies: FMA contractions and vector-lane-split reductions that
///    reassociate floating-point sums. NOT bit-identical — equivalent to
///    the reference only within documented tolerance (see
///    tests/kernel_dispatch_test.cc) — and therefore strictly opt-in.
///
/// KernelMode picks which tiers a kernel call may use. The default, kAuto,
/// enables only the bit-identical tiers, so results are indistinguishable
/// from the historical generic loops at every thread width — the serving
/// and replay bitwise self-checks hold with no configuration.
enum class KernelMode {
  /// Fixed-k + bit-identical AVX2 specializations (the default). Results
  /// are bit-for-bit those of kScalar.
  kAuto = 0,
  /// Generic reference loops only — the oracle the equivalence tests pin
  /// every other tier against.
  kScalar = 1,
  /// Everything in kAuto plus the tolerance-only fast bodies (FMA,
  /// vector-lane reductions). Opt-in: changes low-order bits of reductions
  /// and k=4 products, documented in the equivalence suite.
  kFast = 2,
};

/// The tiers a kernel call may actually use, after resolving the mode
/// against the CPU probe and the TRICLUST_FORCE_SCALAR override. Field
/// implications: avx2 or fast set ⇒ fixed_k set; fast set ⇒ avx2 set.
struct KernelDispatch {
  /// Unrolled fixed-k scalar bodies (bit-identical).
  bool fixed_k = false;
  /// Bit-identical AVX2 element-parallel bodies (requires an AVX2 CPU and
  /// an AVX2-compiled kernel TU).
  bool avx2 = false;
  /// Tolerance-only FMA / lane-split bodies (requires kFast + AVX2 + FMA).
  bool fast = false;
};

/// Sets the process-wide default mode used by threads with no installed
/// scope. Atomic store, callable from any thread. Default: kAuto.
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

/// The mode the next kernel call on this thread resolves to:
///   1. kScalar when the TRICLUST_FORCE_SCALAR environment variable is set
///      to anything but "0" (probed once per process; the CI fallback leg
///      and "reproduce exactly anywhere" escape hatch — trumps everything);
///   2. otherwise the innermost ScopedKernelMode on this thread, if any;
///   3. otherwise the process-wide default.
KernelMode ActiveKernelMode();

/// ActiveKernelMode() intersected with the CPU capability probe — what a
/// kernel selection actually uses. Cheap (two atomic loads + a TLS read);
/// ops.cc calls it once per kernel invocation, on the calling thread, so
/// pool workers inherit the fit thread's decision.
KernelDispatch ActiveDispatch();

/// CPU capability probes (cached after the first call).
bool CpuSupportsAvx2();
bool CpuSupportsFma();

/// True when the AVX2 kernel TU was actually compiled with AVX2 (false on
/// non-x86 targets, where its symbols forward to the generic bodies).
bool Avx2KernelsCompiled();

/// True when TRICLUST_FORCE_SCALAR pins every kernel to the generic path.
bool ForceScalarActive();

/// RAII: installs `mode` as the calling thread's kernel mode for the
/// scope's lifetime (innermost wins, previous state restored on
/// destruction). THREAD-LOCAL, mirroring ScopedThreadBudget: concurrent
/// fits with different kernel modes never interfere. The solvers install
/// TriClusterConfig::kernel_mode for the duration of each fit.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode);
  ~ScopedKernelMode();
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  int previous_;
};

namespace internal {
/// Re-reads TRICLUST_FORCE_SCALAR (tests flip it mid-process; production
/// code treats the probe as process-constant).
void ReprobeKernelEnvForTesting();
}  // namespace internal

}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_KERNEL_DISPATCH_H_
