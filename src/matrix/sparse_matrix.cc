#include "src/matrix/sparse_matrix.h"

#include <algorithm>

#include "src/matrix/dense_matrix.h"

namespace triclust {

SparseMatrix::Builder::Builder(size_t rows, size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrix::Builder::Add(size_t row, size_t col, double value) {
  TRICLUST_CHECK_LT(row, rows_);
  TRICLUST_CHECK_LT(col, cols_);
  entries_.push_back(
      {static_cast<uint32_t>(row), static_cast<uint32_t>(col), value});
}

SparseMatrix SparseMatrix::Builder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix out;
  out.rows_ = rows_;
  out.cols_ = cols_;
  out.row_ptr_.assign(rows_ + 1, 0);
  out.col_idx_.reserve(entries_.size());
  out.values_.reserve(entries_.size());

  size_t i = 0;
  while (i < entries_.size()) {
    const uint32_t row = entries_[i].row;
    const uint32_t col = entries_[i].col;
    double sum = 0.0;
    while (i < entries_.size() && entries_[i].row == row &&
           entries_[i].col == col) {
      sum += entries_[i].value;
      ++i;
    }
    if (sum != 0.0) {
      out.col_idx_.push_back(col);
      out.values_.push_back(sum);
      ++out.row_ptr_[row + 1];
    }
  }
  for (size_t r = 0; r < rows_; ++r) {
    out.row_ptr_[r + 1] += out.row_ptr_[r];
  }
  entries_.clear();
  return out;
}

double SparseMatrix::At(size_t i, size_t j) const {
  TRICLUST_CHECK_LT(i, rows_);
  TRICLUST_CHECK_LT(j, cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<uint32_t>(j));
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

double SparseMatrix::RowSum(size_t i) const {
  TRICLUST_CHECK_LT(i, rows_);
  double total = 0.0;
  for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) total += values_[p];
  return total;
}

std::vector<double> SparseMatrix::ColumnSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t p = 0; p < values_.size(); ++p) {
    sums[col_idx_[p]] += values_[p];
  }
  return sums;
}

double SparseMatrix::Sum() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double SparseMatrix::FrobeniusNormSquared() const {
  double total = 0.0;
  for (double v : values_) total += v * v;
  return total;
}

SparseMatrix SparseMatrix::Transposed() const {
  SparseMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());

  // Counting sort by target row (= source column).
  for (uint32_t c : col_idx_) ++out.row_ptr_[c + 1];
  for (size_t r = 0; r < cols_; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];

  std::vector<size_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const size_t dst = cursor[col_idx_[p]]++;
      out.col_idx_[dst] = static_cast<uint32_t>(i);
      out.values_[dst] = values_[p];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::SelectRows(
    const std::vector<size_t>& row_ids) const {
  SparseMatrix out;
  out.rows_ = row_ids.size();
  out.cols_ = cols_;
  out.row_ptr_.assign(row_ids.size() + 1, 0);
  size_t total = 0;
  for (size_t r = 0; r < row_ids.size(); ++r) {
    TRICLUST_CHECK_LT(row_ids[r], rows_);
    total += RowNnz(row_ids[r]);
    out.row_ptr_[r + 1] = total;
  }
  out.col_idx_.reserve(total);
  out.values_.reserve(total);
  for (size_t row_id : row_ids) {
    for (size_t p = row_ptr_[row_id]; p < row_ptr_[row_id + 1]; ++p) {
      out.col_idx_.push_back(col_idx_[p]);
      out.values_.push_back(values_[p]);
    }
  }
  return out;
}

DenseMatrix SparseMatrix::ToDense() const {
  TRICLUST_CHECK_LE(rows_ * cols_, size_t{16} * 1024 * 1024);
  DenseMatrix dense(rows_, cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      dense(i, col_idx_[p]) = values_[p];
    }
  }
  return dense;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense,
                                     double tolerance) {
  Builder builder(dense.rows(), dense.cols());
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::abs(v) > tolerance) builder.Add(i, j, v);
    }
  }
  return builder.Build();
}

}  // namespace triclust
