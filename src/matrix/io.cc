#include "src/matrix/io.h"

#include <string>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

void WriteDenseMatrix(const DenseMatrix& matrix, std::ostream* os) {
  TRICLUST_CHECK(os != nullptr);
  *os << matrix.rows() << " " << matrix.cols() << "\n";
  for (size_t i = 0; i < matrix.rows(); ++i) {
    const double* row = matrix.Row(i);
    for (size_t j = 0; j < matrix.cols(); ++j) {
      if (j > 0) *os << " ";
      *os << StrFormat("%.17g", row[j]);
    }
    *os << "\n";
  }
}

Result<DenseMatrix> ReadDenseMatrix(std::istream* is) {
  TRICLUST_CHECK(is != nullptr);
  std::string header;
  if (!std::getline(*is, header)) {
    return Status::ParseError("missing matrix header");
  }
  const auto dims = SplitWhitespace(header);
  size_t rows = 0;
  size_t cols = 0;
  if (dims.size() != 2 || !ParseSizeT(dims[0], &rows) ||
      !ParseSizeT(dims[1], &cols)) {
    return Status::ParseError("malformed matrix header: " + header);
  }
  DenseMatrix matrix(rows, cols);
  std::string line;
  for (size_t i = 0; i < rows; ++i) {
    if (!std::getline(*is, line)) {
      return Status::ParseError("matrix truncated at row " +
                                std::to_string(i));
    }
    const auto fields = SplitWhitespace(line);
    if (fields.size() != cols) {
      return Status::ParseError("row " + std::to_string(i) + " has " +
                                std::to_string(fields.size()) +
                                " fields, want " + std::to_string(cols));
    }
    for (size_t j = 0; j < cols; ++j) {
      double value = 0.0;
      if (!ParseDouble(fields[j], &value)) {
        return Status::ParseError("bad value at (" + std::to_string(i) +
                                  "," + std::to_string(j) + ")");
      }
      matrix(i, j) = value;
    }
  }
  return matrix;
}

}  // namespace triclust
