#include "src/matrix/ops.h"

#include <cmath>

namespace triclust {

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t p = 0; p < a.cols(); ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b.Row(p);
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

DenseMatrix MatMulAtB(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix c(a.cols(), b.cols(), 0.0);
  for (size_t p = 0; p < a.rows(); ++p) {
    const double* arow = a.Row(p);
    const double* brow = b.Row(p);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

DenseMatrix MatMulABt(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix c(a.rows(), b.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double dot = 0.0;
      for (size_t p = 0; p < a.cols(); ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
  return c;
}

DenseMatrix SpMM(const SparseMatrix& x, const DenseMatrix& d) {
  TRICLUST_CHECK_EQ(x.cols(), d.rows());
  DenseMatrix c(x.rows(), d.cols(), 0.0);
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    double* crow = c.Row(i);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      const double* drow = d.Row(col_idx[p]);
      for (size_t j = 0; j < d.cols(); ++j) {
        crow[j] += v * drow[j];
      }
    }
  }
  return c;
}

DenseMatrix SpTMM(const SparseMatrix& x, const DenseMatrix& d) {
  TRICLUST_CHECK_EQ(x.rows(), d.rows());
  DenseMatrix c(x.cols(), d.cols(), 0.0);
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* drow = d.Row(i);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      double* crow = c.Row(col_idx[p]);
      for (size_t j = 0; j < d.cols(); ++j) {
        crow[j] += v * drow[j];
      }
    }
  }
  return c;
}

double FrobeniusNormSquared(const DenseMatrix& d) {
  double total = 0.0;
  const double* p = d.data();
  for (size_t i = 0; i < d.size(); ++i) total += p[i] * p[i];
  return total;
}

double FrobeniusDistanceSquared(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  double total = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = pa[i] - pb[i];
    total += diff * diff;
  }
  return total;
}

double TraceAtB(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  double total = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) total += pa[i] * pb[i];
  return total;
}

double FactorizationLossSquared(const SparseMatrix& x, const DenseMatrix& u,
                                const DenseMatrix& v) {
  TRICLUST_CHECK_EQ(x.rows(), u.rows());
  TRICLUST_CHECK_EQ(x.cols(), v.rows());
  TRICLUST_CHECK_EQ(u.cols(), v.cols());
  const size_t k = u.cols();

  double cross = 0.0;  // Σ Xᵢⱼ (Uᵢ·Vⱼ)
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* urow = u.Row(i);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double* vrow = v.Row(col_idx[p]);
      double dot = 0.0;
      for (size_t c = 0; c < k; ++c) dot += urow[c] * vrow[c];
      cross += values[p] * dot;
    }
  }

  const DenseMatrix utu = MatMulAtB(u, u);
  const DenseMatrix vtv = MatMulAtB(v, v);
  // tr((UᵀU)(VᵀV)) — both are k×k and symmetric.
  double quad = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      quad += utu(i, j) * vtv(j, i);
    }
  }
  return x.FrobeniusNormSquared() - 2.0 * cross + quad;
}

double TriFactorizationLossSquared(const SparseMatrix& x,
                                   const DenseMatrix& s, const DenseMatrix& h,
                                   const DenseMatrix& f) {
  return FactorizationLossSquared(x, MatMul(s, h), f);
}

double GraphLaplacianQuadraticForm(const SparseMatrix& g,
                                   const std::vector<double>& degrees,
                                   const DenseMatrix& s) {
  TRICLUST_CHECK_EQ(g.rows(), g.cols());
  TRICLUST_CHECK_EQ(g.rows(), s.rows());
  TRICLUST_CHECK_EQ(degrees.size(), s.rows());
  const size_t k = s.cols();

  double diag = 0.0;
  for (size_t i = 0; i < s.rows(); ++i) {
    const double* row = s.Row(i);
    double norm_sq = 0.0;
    for (size_t c = 0; c < k; ++c) norm_sq += row[c] * row[c];
    diag += degrees[i] * norm_sq;
  }

  double cross = 0.0;
  const auto& row_ptr = g.row_ptr();
  const auto& col_idx = g.col_idx();
  const auto& values = g.values();
  for (size_t i = 0; i < g.rows(); ++i) {
    const double* si = s.Row(i);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double* sj = s.Row(col_idx[p]);
      double dot = 0.0;
      for (size_t c = 0; c < k; ++c) dot += si[c] * sj[c];
      cross += values[p] * dot;
    }
  }
  return diag - cross;
}

void MultiplicativeUpdateInPlace(DenseMatrix* m, const DenseMatrix& numer,
                                 const DenseMatrix& denom, double eps) {
  TRICLUST_CHECK(m != nullptr);
  TRICLUST_CHECK_EQ(m->rows(), numer.rows());
  TRICLUST_CHECK_EQ(m->cols(), numer.cols());
  TRICLUST_CHECK_EQ(m->rows(), denom.rows());
  TRICLUST_CHECK_EQ(m->cols(), denom.cols());
  double* pm = m->data();
  const double* pn = numer.data();
  const double* pd = denom.data();
  for (size_t i = 0; i < m->size(); ++i) {
    // Negative intermediate values can only arise from floating-point noise
    // (all rule terms are constructed non-negative); clamp before the ratio.
    const double n = std::max(pn[i], 0.0) + eps;
    const double d = std::max(pd[i], 0.0) + eps;
    pm[i] *= std::sqrt(n / d);
  }
}

void SplitPositiveNegative(const DenseMatrix& m, DenseMatrix* positive,
                           DenseMatrix* negative) {
  TRICLUST_CHECK(positive != nullptr);
  TRICLUST_CHECK(negative != nullptr);
  *positive = DenseMatrix(m.rows(), m.cols());
  *negative = DenseMatrix(m.rows(), m.cols());
  const double* pm = m.data();
  double* pp = positive->data();
  double* pn = negative->data();
  for (size_t i = 0; i < m.size(); ++i) {
    const double abs = std::fabs(pm[i]);
    pp[i] = 0.5 * (abs + pm[i]);
    pn[i] = 0.5 * (abs - pm[i]);
  }
}

DenseMatrix DiagScaleRows(const std::vector<double>& diag,
                          const DenseMatrix& d) {
  TRICLUST_CHECK_EQ(diag.size(), d.rows());
  DenseMatrix out(d.rows(), d.cols());
  for (size_t i = 0; i < d.rows(); ++i) {
    const double* src = d.Row(i);
    double* dst = out.Row(i);
    for (size_t j = 0; j < d.cols(); ++j) dst[j] = diag[i] * src[j];
  }
  return out;
}

bool IsNonNegative(const DenseMatrix& d) {
  const double* p = d.data();
  for (size_t i = 0; i < d.size(); ++i) {
    if (p[i] < 0.0) return false;
  }
  return true;
}

bool AllFinite(const DenseMatrix& d) {
  const double* p = d.data();
  for (size_t i = 0; i < d.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

}  // namespace triclust
