#include "src/matrix/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "src/matrix/kernel_dispatch.h"
#include "src/matrix/kernels.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace triclust {
namespace {

/// Minimum rows before a row-partitioned product is worth a pool dispatch;
/// below this (notably the k×k association algebra, k = 2–3) the
/// cross-thread synchronization dwarfs the arithmetic. Results are
/// bit-identical either way, so this is purely a scheduling threshold.
constexpr size_t kMinRowsToParallelize = 32;

std::atomic<uint64_t> g_sptmm_scatter_calls{0};

/// > 0 while a ScopedForbidSpTMMScatter is alive on this thread.
thread_local int tls_forbid_sptmm_scatter = 0;

}  // namespace

namespace internal {

uint64_t SpTMMScatterCalls() {
  return g_sptmm_scatter_calls.load(std::memory_order_relaxed);
}

ScopedForbidSpTMMScatter::ScopedForbidSpTMMScatter(bool enable)
    : enabled_(enable) {
  if (enabled_) ++tls_forbid_sptmm_scatter;
}

ScopedForbidSpTMMScatter::~ScopedForbidSpTMMScatter() {
  if (enabled_) --tls_forbid_sptmm_scatter;
}

}  // namespace internal

/// The dense/sparse products below all share one structure: ops.cc keeps
/// the shape checks, output sizing, and the parallel decomposition
/// (unchanged from the pre-dispatch code, so the bit-identical-at-every-
/// width contract of parallel.h is untouched), and the per-range body is
/// selected once per call from src/matrix/kernels.h — generic reference,
/// fixed-k unroll, or AVX2, per the active KernelMode (kernel_dispatch.h).
/// Selection happens here on the calling thread, so pool workers always
/// execute the fit thread's decision.

void MatMulInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  TRICLUST_CHECK(c != nullptr);
  TRICLUST_CHECK_EQ(a.cols(), b.rows());
  c->Resize(a.rows(), b.cols());
  const kernels::MatMulRowsFn body =
      kernels::SelectMatMulRows(a.cols(), b.cols());
  ParallelFor(0, a.rows(), kMinRowsToParallelize,
              [&](size_t row_begin, size_t row_end) {
                body(a.data(), a.cols(), b.data(), b.cols(), c->data(),
                     row_begin, row_end);
              });
}

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  MatMulInto(a, b, &c);
  return c;
}

void MatMulAtBInto(const DenseMatrix& a, const DenseMatrix& b,
                   DenseMatrix* c) {
  TRICLUST_CHECK(c != nullptr);
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  c->Resize(a.cols(), b.cols());
  const size_t out_size = c->size();
  const size_t rows = a.rows();
  const kernels::AtBAccumulateFn accumulate =
      kernels::SelectAtBAccumulate(a.cols(), b.cols());

  if (rows <= kReduceRowGrain) {
    c->Fill(0.0);
    accumulate(a.data(), a.cols(), b.data(), b.cols(), 0, rows, c->data());
    return;
  }
  // Output is a small k×k accumulator shared by every input row, so this is
  // a chunked reduction: fixed-grain row chunks (independent of the width)
  // accumulate into private buffers, combined in chunk order. The chunked
  // path runs at EVERY width — with a width of 1 the ParallelFor below
  // degrades to an inline loop over the same chunks — so the result is
  // bit-identical no matter what thread budget a fit runs under. The
  // partials buffer is thread-local so steady-state solver iterations stay
  // allocation-free (each concurrent fit drives its kernels from its own
  // thread; pool workers write through the captured pointer).
  const size_t num_chunks = (rows + kReduceRowGrain - 1) / kReduceRowGrain;
  static thread_local std::vector<double> partials_storage;
  partials_storage.assign(num_chunks * out_size, 0.0);
  // Captured as a plain pointer: a lambda body naming a thread_local would
  // resolve it per-executing-thread, handing each pool worker its own
  // (empty) vector instead of the driving thread's buffer.
  double* const partials = partials_storage.data();
  ParallelFor(0, num_chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
      const size_t lo = chunk * kReduceRowGrain;
      const size_t hi = std::min(rows, lo + kReduceRowGrain);
      accumulate(a.data(), a.cols(), b.data(), b.cols(), lo, hi,
                 partials + chunk * out_size);
    }
  });
  c->Fill(0.0);
  double* out = c->data();
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const double* partial = partials + chunk * out_size;
    for (size_t i = 0; i < out_size; ++i) out[i] += partial[i];
  }
}

DenseMatrix MatMulAtB(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  MatMulAtBInto(a, b, &c);
  return c;
}

void MatMulABtInto(const DenseMatrix& a, const DenseMatrix& b,
                   DenseMatrix* c) {
  TRICLUST_CHECK(c != nullptr);
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  c->Resize(a.rows(), b.rows());
  const kernels::ABtRowsFn body = kernels::SelectABtRows(a.cols());
  ParallelFor(0, a.rows(), kMinRowsToParallelize,
              [&](size_t row_begin, size_t row_end) {
                body(a.data(), a.cols(), b.data(), b.rows(), c->data(),
                     row_begin, row_end);
              });
}

DenseMatrix MatMulABt(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c;
  MatMulABtInto(a, b, &c);
  return c;
}

void SpMMInto(const SparseMatrix& x, const DenseMatrix& d, DenseMatrix* c) {
  TRICLUST_CHECK(c != nullptr);
  TRICLUST_CHECK_EQ(x.cols(), d.rows());
  c->Resize(x.rows(), d.cols());
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  const kernels::SpMMRowsFn body = kernels::SelectSpMMRows(d.cols());
  ParallelFor(0, x.rows(), kMinRowsToParallelize,
              [&](size_t row_begin, size_t row_end) {
                body(row_ptr.data(), col_idx.data(), values.data(), d.data(),
                     d.cols(), c->data(), row_begin, row_end);
              });
}

DenseMatrix SpMM(const SparseMatrix& x, const DenseMatrix& d) {
  DenseMatrix c;
  SpMMInto(x, d, &c);
  return c;
}

void SpTMMInto(const SparseMatrix& x, const DenseMatrix& d, DenseMatrix* c) {
  TRICLUST_CHECK(c != nullptr);
  TRICLUST_CHECK_EQ(x.rows(), d.rows());
  // Scatter canary: the update rules replace this serial scatter with the
  // parallel SpMM over a cached transpose whenever they hold a workspace,
  // and guard that hot path with ScopedForbidSpTMMScatter — reaching here
  // under the guard is a performance regression, not a correctness one, so
  // it trips loudly.
  g_sptmm_scatter_calls.fetch_add(1, std::memory_order_relaxed);
  TRICLUST_CHECK(tls_forbid_sptmm_scatter == 0);
  c->Resize(x.cols(), d.cols());
  c->Fill(0.0);
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* drow = d.Row(i);
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      double* crow = c->Row(col_idx[p]);
      for (size_t j = 0; j < d.cols(); ++j) {
        crow[j] += v * drow[j];
      }
    }
  }
}

DenseMatrix SpTMM(const SparseMatrix& x, const DenseMatrix& d) {
  DenseMatrix c;
  SpTMMInto(x, d, &c);
  return c;
}

double FrobeniusNormSquared(const DenseMatrix& d) {
  const double* p = d.data();
  const kernels::DotRangeFn body = kernels::SelectDotRange();
  return ParallelReduce(0, d.size(), kReduceFlatGrain,
                        [p, body](size_t begin, size_t end) {
                          return body(p, p, begin, end);
                        });
}

double FrobeniusDistanceSquared(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  const kernels::DiffSquaredRangeFn body = kernels::SelectDiffSquaredRange();
  return ParallelReduce(0, a.size(), kReduceFlatGrain,
                        [pa, pb, body](size_t begin, size_t end) {
                          return body(pa, pb, begin, end);
                        });
}

double TraceAtB(const DenseMatrix& a, const DenseMatrix& b) {
  TRICLUST_CHECK_EQ(a.rows(), b.rows());
  TRICLUST_CHECK_EQ(a.cols(), b.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  const kernels::DotRangeFn body = kernels::SelectDotRange();
  return ParallelReduce(0, a.size(), kReduceFlatGrain,
                        [pa, pb, body](size_t begin, size_t end) {
                          return body(pa, pb, begin, end);
                        });
}

double FactorizationLossSquared(const SparseMatrix& x, const DenseMatrix& u,
                                const DenseMatrix& v) {
  TRICLUST_CHECK_EQ(x.rows(), u.rows());
  TRICLUST_CHECK_EQ(x.cols(), v.rows());
  TRICLUST_CHECK_EQ(u.cols(), v.cols());
  const size_t k = u.cols();

  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  const kernels::SpCrossRowsFn cross_body = kernels::SelectSpCrossRows(k);
  // cross = Σ Xᵢⱼ (Uᵢ·Vⱼ), reduced over row ranges of X.
  const double cross = ParallelReduce(
      0, x.rows(), kReduceRowGrain, [&](size_t row_begin, size_t row_end) {
        return cross_body(row_ptr.data(), col_idx.data(), values.data(),
                          u.data(), v.data(), k, row_begin, row_end);
      });

  const DenseMatrix utu = MatMulAtB(u, u);
  const DenseMatrix vtv = MatMulAtB(v, v);
  // tr((UᵀU)(VᵀV)) — both are k×k and symmetric, so the trace is the
  // element-wise product; fold the mirrored off-diagonal pairs to walk only
  // the upper triangle.
  double quad = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double* urow = utu.Row(i);
    const double* vrow = vtv.Row(i);
    quad += urow[i] * vrow[i];
    double off = 0.0;
    for (size_t j = i + 1; j < k; ++j) off += urow[j] * vrow[j];
    quad += 2.0 * off;
  }
  return x.FrobeniusNormSquared() - 2.0 * cross + quad;
}

double TriFactorizationLossSquared(const SparseMatrix& x,
                                   const DenseMatrix& s, const DenseMatrix& h,
                                   const DenseMatrix& f) {
  return FactorizationLossSquared(x, MatMul(s, h), f);
}

double GraphLaplacianQuadraticForm(const SparseMatrix& g,
                                   const std::vector<double>& degrees,
                                   const DenseMatrix& s) {
  TRICLUST_CHECK_EQ(g.rows(), g.cols());
  TRICLUST_CHECK_EQ(g.rows(), s.rows());
  TRICLUST_CHECK_EQ(degrees.size(), s.rows());
  const size_t k = s.cols();

  const double diag = ParallelReduce(
      0, s.rows(), kReduceRowGrain, [&](size_t row_begin, size_t row_end) {
        double total = 0.0;
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* row = s.Row(i);
          double norm_sq = 0.0;
          for (size_t c = 0; c < k; ++c) norm_sq += row[c] * row[c];
          total += degrees[i] * norm_sq;
        }
        return total;
      });

  const auto& row_ptr = g.row_ptr();
  const auto& col_idx = g.col_idx();
  const auto& values = g.values();
  // Same shape as the factorization cross term (u = v = S over G's
  // sparsity), so it shares that kernel family.
  const kernels::SpCrossRowsFn cross_body = kernels::SelectSpCrossRows(k);
  const double cross = ParallelReduce(
      0, g.rows(), kReduceRowGrain, [&](size_t row_begin, size_t row_end) {
        return cross_body(row_ptr.data(), col_idx.data(), values.data(),
                          s.data(), s.data(), k, row_begin, row_end);
      });
  return diag - cross;
}

void MultiplicativeUpdateInPlace(DenseMatrix* m, const DenseMatrix& numer,
                                 const DenseMatrix& denom, double eps) {
  TRICLUST_CHECK(m != nullptr);
  TRICLUST_CHECK_EQ(m->rows(), numer.rows());
  TRICLUST_CHECK_EQ(m->cols(), numer.cols());
  TRICLUST_CHECK_EQ(m->rows(), denom.rows());
  TRICLUST_CHECK_EQ(m->cols(), denom.cols());
  double* pm = m->data();
  const double* pn = numer.data();
  const double* pd = denom.data();
  const kernels::MulUpdateRangeFn body = kernels::SelectMulUpdateRange();
  ParallelFor(0, m->size(), kReduceFlatGrain,
              [pm, pn, pd, eps, body](size_t begin, size_t end) {
                body(pm, pn, pd, eps, begin, end);
              });
}

void SplitPositiveNegative(const DenseMatrix& m, DenseMatrix* positive,
                           DenseMatrix* negative) {
  TRICLUST_CHECK(positive != nullptr);
  TRICLUST_CHECK(negative != nullptr);
  positive->Resize(m.rows(), m.cols());
  negative->Resize(m.rows(), m.cols());
  const double* pm = m.data();
  double* pp = positive->data();
  double* pn = negative->data();
  ParallelFor(0, m.size(), kReduceFlatGrain,
              [pm, pp, pn](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const double abs = std::fabs(pm[i]);
                  pp[i] = 0.5 * (abs + pm[i]);
                  pn[i] = 0.5 * (abs - pm[i]);
                }
              });
}

void DiagScaleRowsInto(const std::vector<double>& diag, const DenseMatrix& d,
                       DenseMatrix* out) {
  TRICLUST_CHECK(out != nullptr);
  TRICLUST_CHECK_EQ(diag.size(), d.rows());
  out->Resize(d.rows(), d.cols());
  ParallelFor(0, d.rows(), kReduceRowGrain,
              [&](size_t row_begin, size_t row_end) {
                for (size_t i = row_begin; i < row_end; ++i) {
                  const double* src = d.Row(i);
                  double* dst = out->Row(i);
                  for (size_t j = 0; j < d.cols(); ++j) {
                    dst[j] = diag[i] * src[j];
                  }
                }
              });
}

DenseMatrix DiagScaleRows(const std::vector<double>& diag,
                          const DenseMatrix& d) {
  DenseMatrix out;
  DiagScaleRowsInto(diag, d, &out);
  return out;
}

bool IsNonNegative(const DenseMatrix& d) {
  const double* p = d.data();
  for (size_t i = 0; i < d.size(); ++i) {
    if (p[i] < 0.0) return false;
  }
  return true;
}

bool AllFinite(const DenseMatrix& d) {
  const double* p = d.data();
  for (size_t i = 0; i < d.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

}  // namespace triclust
