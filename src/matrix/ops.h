#ifndef TRICLUST_SRC_MATRIX_OPS_H_
#define TRICLUST_SRC_MATRIX_OPS_H_

#include <cstdint>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"

namespace triclust {

/// All kernels below honor the process-wide thread budget of
/// src/util/parallel.h: the row-partitioned products split their output
/// rows across the pool (bit-identical to serial for every thread count),
/// the scalar reductions use fixed-grain chunked partial sums (bit-identical
/// across thread counts ≥ 2, within rounding of serial otherwise). With a
/// budget of 1 every kernel runs the exact historical serial loop.
///
/// Inner bodies (per row range / reduction chunk) are selected per call
/// from src/matrix/kernels.h according to the active KernelMode — see
/// src/matrix/kernel_dispatch.h for the mode semantics and the
/// bit-exactness contract of each tier. The parallel decomposition above is
/// mode-independent.
///
/// Each product has two forms: a value-returning convenience wrapper and an
/// `...Into` variant that writes into a caller-owned matrix, resizing it
/// without reallocation when its capacity suffices. The solver's update
/// pipeline calls the Into forms on workspace scratch so steady-state
/// iterations are allocation-free.

/// Dense kernels ------------------------------------------------------------

/// C = A·B. A is m×p, B is p×n.
DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& b);
void MatMulInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c);

/// C = Aᵀ·B. A is p×m, B is p×n (shared leading dimension p). This is the
/// k×k workhorse (SᵀS, SᵀX·, ...) so it streams both operands row-wise.
DenseMatrix MatMulAtB(const DenseMatrix& a, const DenseMatrix& b);
void MatMulAtBInto(const DenseMatrix& a, const DenseMatrix& b,
                   DenseMatrix* c);

/// C = A·Bᵀ. A is m×p, B is n×p.
DenseMatrix MatMulABt(const DenseMatrix& a, const DenseMatrix& b);
void MatMulABtInto(const DenseMatrix& a, const DenseMatrix& b,
                   DenseMatrix* c);

/// Sparse–dense kernels ------------------------------------------------------

/// C = X·D. X is CSR m×n, D is n×k. O(nnz·k). Row-partitioned.
DenseMatrix SpMM(const SparseMatrix& x, const DenseMatrix& d);
void SpMMInto(const SparseMatrix& x, const DenseMatrix& d, DenseMatrix* c);

/// C = Xᵀ·D. X is CSR m×n, D is m×k; computed by scattering rows of X so no
/// explicit transpose is materialized. O(nnz·k). The scatter writes collide
/// across rows, so this kernel is always serial — hot paths should instead
/// cache X's transpose once and call the parallel SpMM on it (what
/// update::UpdateWorkspace does); the summation order per output entry is
/// identical either way, so the two formulations agree bitwise.
DenseMatrix SpTMM(const SparseMatrix& x, const DenseMatrix& d);
void SpTMMInto(const SparseMatrix& x, const DenseMatrix& d, DenseMatrix* c);

/// Norms and traces -----------------------------------------------------------

/// ||D||²F.
double FrobeniusNormSquared(const DenseMatrix& d);

/// ||A − B||²F; shapes must match.
double FrobeniusDistanceSquared(const DenseMatrix& a, const DenseMatrix& b);

/// tr(AᵀB) = Σᵢⱼ AᵢⱼBᵢⱼ; shapes must match.
double TraceAtB(const DenseMatrix& a, const DenseMatrix& b);

/// ||X − U·Vᵀ||²F for sparse X (m×n), dense U (m×k), V (n×k), evaluated in
/// O(nnz·k + (m+n)·k²) without forming U·Vᵀ:
///   ||X||² − 2·Σ_{(i,j)∈nnz} Xᵢⱼ·(Uᵢ·Vⱼ) + tr((UᵀU)(VᵀV)).
double FactorizationLossSquared(const SparseMatrix& x, const DenseMatrix& u,
                                const DenseMatrix& v);

/// ||X − S·H·Fᵀ||²F, i.e. FactorizationLossSquared with U = S·H.
double TriFactorizationLossSquared(const SparseMatrix& x,
                                   const DenseMatrix& s, const DenseMatrix& h,
                                   const DenseMatrix& f);

/// Graph regularization tr(Sᵀ·L·S) for L = D − G where G is a symmetric
/// non-negative CSR adjacency and D its degree diagonal:
///   Σᵢ dᵢ·||Sᵢ||² − Σ_{(i,j)∈G} Gᵢⱼ·(Sᵢ·Sⱼ).
double GraphLaplacianQuadraticForm(const SparseMatrix& g,
                                   const std::vector<double>& degrees,
                                   const DenseMatrix& s);

/// Element-wise helpers used by the multiplicative update rules ---------------

/// out = M ∘ sqrt((numer + eps)/(denom + eps)), the guarded multiplicative
/// step shared by every update rule (paper Eq. 7/9/11/12/13/20–26). `eps`
/// keeps 0/0 stationary and denominators positive.
void MultiplicativeUpdateInPlace(DenseMatrix* m, const DenseMatrix& numer,
                                 const DenseMatrix& denom, double eps);

/// Splits M into its positive part (|M|+M)/2 and negative part (|M|−M)/2
/// (both entry-wise non-negative), the Δ⁺/Δ⁻ decomposition of the paper.
void SplitPositiveNegative(const DenseMatrix& m, DenseMatrix* positive,
                           DenseMatrix* negative);

/// out(i, :) = diag[i] * d(i, :). Used for the β·Du·Su Laplacian terms.
DenseMatrix DiagScaleRows(const std::vector<double>& diag,
                          const DenseMatrix& d);
void DiagScaleRowsInto(const std::vector<double>& diag, const DenseMatrix& d,
                       DenseMatrix* out);

/// True when every entry is ≥ 0 (invariant of all factor matrices).
bool IsNonNegative(const DenseMatrix& d);

/// True when every entry is finite.
bool AllFinite(const DenseMatrix& d);

namespace internal {

/// Process-wide count of SpTMMInto invocations (the serial scatter).
/// Monotonic; test hook for asserting hot paths route through the cached
/// transpose instead of the scatter.
uint64_t SpTMMScatterCalls();

/// While alive (and constructed with enable=true), any SpTMMInto call on
/// this thread trips a TRICLUST_CHECK. The update rules install it whenever
/// they hold a workspace, turning an accidental steady-state scatter into a
/// loud failure instead of a silent serial slowdown.
class ScopedForbidSpTMMScatter {
 public:
  explicit ScopedForbidSpTMMScatter(bool enable);
  ~ScopedForbidSpTMMScatter();
  ScopedForbidSpTMMScatter(const ScopedForbidSpTMMScatter&) = delete;
  ScopedForbidSpTMMScatter& operator=(const ScopedForbidSpTMMScatter&) =
      delete;

 private:
  bool enabled_;
};

}  // namespace internal

}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_OPS_H_
