#include "src/matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace triclust {

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& r : rows) {
    if (cols_ == 0) cols_ = r.size();
    TRICLUST_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Random(size_t rows, size_t cols, Rng* rng, double lo,
                                double hi) {
  TRICLUST_CHECK(rng != nullptr);
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data_[i] = rng->Uniform(lo, hi);
  return m;
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void DenseMatrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void DenseMatrix::AddInPlace(const DenseMatrix& other) {
  TRICLUST_CHECK_EQ(rows_, other.rows_);
  TRICLUST_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::SubInPlace(const DenseMatrix& other) {
  TRICLUST_CHECK_EQ(rows_, other.rows_);
  TRICLUST_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void DenseMatrix::ScaleInPlace(double factor) {
  for (double& v : data_) v *= factor;
}

void DenseMatrix::Axpy(double factor, const DenseMatrix& other) {
  TRICLUST_CHECK_EQ(rows_, other.rows_);
  TRICLUST_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

void DenseMatrix::ClampMin(double floor) {
  for (double& v : data_) v = std::max(v, floor);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::SelectRows(const std::vector<size_t>& row_ids) const {
  DenseMatrix out(row_ids.size(), cols_);
  for (size_t r = 0; r < row_ids.size(); ++r) {
    TRICLUST_CHECK_LT(row_ids[r], rows_);
    std::copy(Row(row_ids[r]), Row(row_ids[r]) + cols_, out.Row(r));
  }
  return out;
}

double DenseMatrix::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

double DenseMatrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

size_t DenseMatrix::ArgMaxRow(size_t i) const {
  TRICLUST_CHECK_LT(i, rows_);
  TRICLUST_CHECK_GT(cols_, 0u);
  const double* row = Row(i);
  size_t best = 0;
  for (size_t j = 1; j < cols_; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

std::vector<int> DenseMatrix::RowArgMax() const {
  std::vector<int> out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    out[i] = static_cast<int>(ArgMaxRow(i));
  }
  return out;
}

void DenseMatrix::NormalizeRowsL1() {
  for (size_t i = 0; i < rows_; ++i) {
    double* row = Row(i);
    double total = 0.0;
    for (size_t j = 0; j < cols_; ++j) total += std::fabs(row[j]);
    if (total <= 0.0) {
      for (size_t j = 0; j < cols_; ++j) row[j] = 1.0 / cols_;
    } else {
      for (size_t j = 0; j < cols_; ++j) row[j] /= total;
    }
  }
}

}  // namespace triclust
