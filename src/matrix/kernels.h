#ifndef TRICLUST_SRC_MATRIX_KERNELS_H_
#define TRICLUST_SRC_MATRIX_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace triclust {
namespace kernels {

/// Internal kernel bodies behind the public ops.h entry points.
///
/// ops.cc keeps ownership of shape checks, output sizing, and the parallel
/// decomposition (ParallelFor row ranges / fixed-grain reduction chunks —
/// the bit-identical-at-every-width contract of parallel.h). What it
/// delegates here is the body run over one row range / flat range /
/// accumulation chunk, selected once per kernel invocation on the calling
/// thread via the Select* functions below (which read the active dispatch,
/// see kernel_dispatch.h).
///
/// Everything is raw-pointer based on purpose: kernels_avx2.cc is the one
/// TU compiled with -mavx2, and keeping class headers (with their inline
/// member functions) out of it prevents the linker from ever picking an
/// AVX2-compiled copy of shared inline code for a non-AVX2 host.
///
/// Dense matrices are row-major with stride == cols (DenseMatrix layout);
/// sparse operands arrive as their CSR arrays.
///
/// Naming: Generic* is the reference loop (bitwise oracle), *K2/K3/K4 the
/// unrolled fixed-k bodies, Avx2* the bit-identical vector bodies, Fast*
/// the tolerance-only ones. See kernel_dispatch.h for the contract tiers.

/// --- body signatures -------------------------------------------------------

/// SpMM rows [row_begin, row_end): c(i,:) = Σ_p values[p]·d(col_idx[p],:),
/// k-wide rows. Zeroes each output row before accumulating.
using SpMMRowsFn = void (*)(const size_t* row_ptr, const uint32_t* col_idx,
                            const double* values, const double* d, size_t k,
                            double* c, size_t row_begin, size_t row_end);

/// MatMulAtB accumulation: out(ka×kb) += Σ_{p∈[p_begin,p_end)}
/// a(p,:)ᵀ·b(p,:). Adds into `out` (caller zeroes it), preserving the
/// generic per-element add order and its a(p,i)==0 skip.
using AtBAccumulateFn = void (*)(const double* a, size_t ka, const double* b,
                                 size_t kb, size_t p_begin, size_t p_end,
                                 double* out);

/// MatMul rows [row_begin, row_end): c(i,:) = Σ_p a(i,p)·b(p,:), where a is
/// ·×p_dim and b is p_dim×n. Zeroes each output row first; skips a(i,p)==0
/// like the generic loop.
using MatMulRowsFn = void (*)(const double* a, size_t p_dim, const double* b,
                              size_t n, double* c, size_t row_begin,
                              size_t row_end);

/// MatMulABt rows [row_begin, row_end): c(i,j) = a(i,:)·b(j,:) over the
/// shared p_dim; b has b_rows rows.
using ABtRowsFn = void (*)(const double* a, size_t p_dim, const double* b,
                           size_t b_rows, double* c, size_t row_begin,
                           size_t row_end);

/// Element range [begin, end) of the guarded multiplicative step
/// m[i] *= sqrt((max(n[i],0)+eps) / (max(d[i],0)+eps)).
using MulUpdateRangeFn = void (*)(double* m, const double* numer,
                                  const double* denom, double eps,
                                  size_t begin, size_t end);

/// Σ x[i]·y[i] over [begin, end) (TraceAtB; FrobeniusNormSquared with
/// x == y).
using DotRangeFn = double (*)(const double* x, const double* y, size_t begin,
                              size_t end);

/// Σ (x[i]−y[i])² over [begin, end).
using DiffSquaredRangeFn = double (*)(const double* x, const double* y,
                                      size_t begin, size_t end);

/// Σ_{i∈[row_begin,row_end)} Σ_{p∈row i} values[p]·(u(i,:)·v(col_idx[p],:))
/// — the cross term of FactorizationLossSquared and of the graph
/// Laplacian quadratic form. k-wide factor rows.
using SpCrossRowsFn = double (*)(const size_t* row_ptr,
                                 const uint32_t* col_idx,
                                 const double* values, const double* u,
                                 const double* v, size_t k, size_t row_begin,
                                 size_t row_end);

/// --- selection (reads ActiveDispatch(); call on the kernel's calling
/// thread, before handing the body to ParallelFor/ParallelReduce) ---------

SpMMRowsFn SelectSpMMRows(size_t k);
AtBAccumulateFn SelectAtBAccumulate(size_t ka, size_t kb);
MatMulRowsFn SelectMatMulRows(size_t p_dim, size_t n);
ABtRowsFn SelectABtRows(size_t p_dim);
MulUpdateRangeFn SelectMulUpdateRange();
DotRangeFn SelectDotRange();
DiffSquaredRangeFn SelectDiffSquaredRange();
SpCrossRowsFn SelectSpCrossRows(size_t k);

/// --- scalar bodies (kernels_fixed_k.cc) -----------------------------------

void GenericSpMMRows(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* d, size_t k,
                     double* c, size_t row_begin, size_t row_end);
void SpMMRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t k, double* c,
                size_t row_begin, size_t row_end);
void SpMMRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t k, double* c,
                size_t row_begin, size_t row_end);
void SpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t k, double* c,
                size_t row_begin, size_t row_end);

void GenericAtBAccumulate(const double* a, size_t ka, const double* b,
                          size_t kb, size_t p_begin, size_t p_end,
                          double* out);
void AtBAccumulateK2(const double* a, size_t ka, const double* b, size_t kb,
                     size_t p_begin, size_t p_end, double* out);
void AtBAccumulateK3(const double* a, size_t ka, const double* b, size_t kb,
                     size_t p_begin, size_t p_end, double* out);
void AtBAccumulateK4(const double* a, size_t ka, const double* b, size_t kb,
                     size_t p_begin, size_t p_end, double* out);

void GenericMatMulRows(const double* a, size_t p_dim, const double* b,
                       size_t n, double* c, size_t row_begin, size_t row_end);
/// L2-blocked variant of the generic loop for large p_dim×n panels: tiles
/// the inner dimension so the streamed b rows stay cache-resident across a
/// block of output rows. Per output element the p-order is unchanged
/// (ascending within and across tiles), so it is bit-identical.
void BlockedMatMulRows(const double* a, size_t p_dim, const double* b,
                       size_t n, double* c, size_t row_begin, size_t row_end);
void MatMulRowsK2(const double* a, size_t p_dim, const double* b, size_t n,
                  double* c, size_t row_begin, size_t row_end);
void MatMulRowsK3(const double* a, size_t p_dim, const double* b, size_t n,
                  double* c, size_t row_begin, size_t row_end);
void MatMulRowsK4(const double* a, size_t p_dim, const double* b, size_t n,
                  double* c, size_t row_begin, size_t row_end);

void GenericABtRows(const double* a, size_t p_dim, const double* b,
                    size_t b_rows, double* c, size_t row_begin,
                    size_t row_end);
void ABtRowsK2(const double* a, size_t p_dim, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end);
void ABtRowsK3(const double* a, size_t p_dim, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end);
void ABtRowsK4(const double* a, size_t p_dim, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end);

void GenericMulUpdateRange(double* m, const double* numer,
                           const double* denom, double eps, size_t begin,
                           size_t end);

double GenericDotRange(const double* x, const double* y, size_t begin,
                       size_t end);
double GenericDiffSquaredRange(const double* x, const double* y, size_t begin,
                               size_t end);

double GenericSpCrossRows(const size_t* row_ptr, const uint32_t* col_idx,
                          const double* values, const double* u,
                          const double* v, size_t k, size_t row_begin,
                          size_t row_end);
double SpCrossRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t k, size_t row_begin, size_t row_end);
double SpCrossRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t k, size_t row_begin, size_t row_end);
double SpCrossRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t k, size_t row_begin, size_t row_end);

/// --- AVX2 TU bodies (kernels_avx2.cc; forward to the generic bodies when
/// the TU is compiled without AVX2 — Avx2KernelsCompiled() tells which) ----

/// True when this build's AVX2 TU really carries vector code (i.e. the
/// compiler accepted -mavx2). The public triclust::Avx2KernelsCompiled()
/// forwards here.
bool Avx2KernelsCompiled();

/// Bit-identical tier (separate mul+add, per-lane IEEE ops).
void Avx2SpMMRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end);
void Avx2SpMMRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end);
void Avx2SpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end);
/// Any k ≥ 5: vectorizes the k-wide row accumulator in 4-lane blocks with
/// a masked tail, re-walking the sparse row once per block (per output
/// element the accumulation order is untouched — bit-identical).
void Avx2SpMMRowsWide(const size_t* row_ptr, const uint32_t* col_idx,
                      const double* values, const double* d, size_t k,
                      double* c, size_t row_begin, size_t row_end);
void Avx2AtBAccumulateK2(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out);
void Avx2AtBAccumulateK3(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out);
void Avx2AtBAccumulateK4(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out);
/// Any kb ≥ 5: vectorizes the kb-wide output row in 4-lane blocks with a
/// masked tail (bit-identical).
void Avx2AtBAccumulateWide(const double* a, size_t ka, const double* b,
                           size_t kb, size_t p_begin, size_t p_end,
                           double* out);
void Avx2MulUpdateRange(double* m, const double* numer, const double* denom,
                        double eps, size_t begin, size_t end);

/// Tolerance-only tier (FMA contraction / lane-split accumulators).
void FastSpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                    const double* values, const double* d, size_t k,
                    double* c, size_t row_begin, size_t row_end);
void FastAtBAccumulateK4(const double* a, size_t ka, const double* b,
                         size_t kb, size_t p_begin, size_t p_end,
                         double* out);
double FastDotRange(const double* x, const double* y, size_t begin,
                    size_t end);
double FastDiffSquaredRange(const double* x, const double* y, size_t begin,
                            size_t end);
double FastSpCrossRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                         const double* values, const double* u,
                         const double* v, size_t k, size_t row_begin,
                         size_t row_end);

}  // namespace kernels
}  // namespace triclust

#endif  // TRICLUST_SRC_MATRIX_KERNELS_H_
