#include <algorithm>
#include <cmath>

#include "src/matrix/kernels.h"

namespace triclust {
namespace kernels {

/// Generic reference bodies — the exact loops ops.cc ran before the
/// dispatch layer existed, and the bitwise oracle every specialized body
/// below is pinned against (tests/kernel_dispatch_test.cc). Change these
/// and every reproducibility guarantee in the repo moves with them.

void GenericSpMMRows(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* d, size_t k,
                     double* c, size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double* crow = c + i * k;
    for (size_t j = 0; j < k; ++j) crow[j] = 0.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      const double* drow = d + static_cast<size_t>(col_idx[p]) * k;
      for (size_t j = 0; j < k; ++j) {
        crow[j] += v * drow[j];
      }
    }
  }
}

void GenericAtBAccumulate(const double* a, size_t ka, const double* b,
                          size_t kb, size_t p_begin, size_t p_end,
                          double* out) {
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * ka;
    const double* brow = b + p * kb;
    for (size_t i = 0; i < ka; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out + i * kb;
      for (size_t j = 0; j < kb; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void GenericMatMulRows(const double* a, size_t p_dim, const double* b,
                       size_t n, double* c, size_t row_begin,
                       size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * p_dim;
    double* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = 0.0;
    for (size_t p = 0; p < p_dim; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void GenericABtRows(const double* a, size_t p_dim, const double* b,
                    size_t b_rows, double* c, size_t row_begin,
                    size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * p_dim;
    double* crow = c + i * b_rows;
    for (size_t j = 0; j < b_rows; ++j) {
      const double* brow = b + j * p_dim;
      double dot = 0.0;
      for (size_t p = 0; p < p_dim; ++p) dot += arow[p] * brow[p];
      crow[j] = dot;
    }
  }
}

void GenericMulUpdateRange(double* m, const double* numer,
                           const double* denom, double eps, size_t begin,
                           size_t end) {
  for (size_t i = begin; i < end; ++i) {
    // Negative intermediate values can only arise from floating-point
    // noise (all rule terms are constructed non-negative); clamp before
    // the ratio.
    const double n = std::max(numer[i], 0.0) + eps;
    const double d = std::max(denom[i], 0.0) + eps;
    m[i] *= std::sqrt(n / d);
  }
}

double GenericDotRange(const double* x, const double* y, size_t begin,
                       size_t end) {
  double total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    total += x[i] * y[i];
  }
  return total;
}

double GenericDiffSquaredRange(const double* x, const double* y, size_t begin,
                               size_t end) {
  double total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double diff = x[i] - y[i];
    total += diff * diff;
  }
  return total;
}

double GenericSpCrossRows(const size_t* row_ptr, const uint32_t* col_idx,
                          const double* values, const double* u,
                          const double* v, size_t k, size_t row_begin,
                          size_t row_end) {
  double total = 0.0;
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* urow = u + i * k;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double* vrow = v + static_cast<size_t>(col_idx[p]) * k;
      double dot = 0.0;
      for (size_t c = 0; c < k; ++c) dot += urow[c] * vrow[c];
      total += values[p] * dot;
    }
  }
  return total;
}

/// Fixed-k bodies: identical statement sequence per output element, with K
/// a compile-time constant so the accumulators live in registers for the
/// whole row (the generic loops must round-trip every += through memory —
/// the compiler cannot prove the output does not alias the inputs). The
/// inner loops below fully unroll at K ∈ {2,3,4}.

namespace {

template <size_t K>
void SpMMRowsFixed(const size_t* row_ptr, const uint32_t* col_idx,
                   const double* values, const double* d, double* c,
                   size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    double acc[K];
    for (size_t j = 0; j < K; ++j) acc[j] = 0.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      const double* drow = d + static_cast<size_t>(col_idx[p]) * K;
      for (size_t j = 0; j < K; ++j) acc[j] += v * drow[j];
    }
    double* crow = c + i * K;
    for (size_t j = 0; j < K; ++j) crow[j] = acc[j];
  }
}

template <size_t K>
void AtBAccumulateFixed(const double* a, const double* b, size_t p_begin,
                        size_t p_end, double* out) {
  // The K×K product is registers-resident: load once, accumulate across
  // the whole row range, store once.
  double acc[K][K];
  for (size_t i = 0; i < K; ++i) {
    for (size_t j = 0; j < K; ++j) acc[i][j] = out[i * K + j];
  }
  for (size_t p = p_begin; p < p_end; ++p) {
    const double* arow = a + p * K;
    const double* brow = b + p * K;
    for (size_t i = 0; i < K; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      for (size_t j = 0; j < K; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (size_t i = 0; i < K; ++i) {
    for (size_t j = 0; j < K; ++j) out[i * K + j] = acc[i][j];
  }
}

template <size_t K>
void MatMulRowsFixed(const double* a, const double* b, double* c,
                     size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * K;
    double acc[K];
    for (size_t j = 0; j < K; ++j) acc[j] = 0.0;
    for (size_t p = 0; p < K; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b + p * K;
      for (size_t j = 0; j < K; ++j) acc[j] += av * brow[j];
    }
    double* crow = c + i * K;
    for (size_t j = 0; j < K; ++j) crow[j] = acc[j];
  }
}

template <size_t K>
void ABtRowsFixed(const double* a, const double* b, size_t b_rows, double* c,
                  size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* arow = a + i * K;
    double ar[K];
    for (size_t p = 0; p < K; ++p) ar[p] = arow[p];
    double* crow = c + i * b_rows;
    for (size_t j = 0; j < b_rows; ++j) {
      const double* brow = b + j * K;
      double dot = 0.0;
      for (size_t p = 0; p < K; ++p) dot += ar[p] * brow[p];
      crow[j] = dot;
    }
  }
}

template <size_t K>
double SpCrossRowsFixed(const size_t* row_ptr, const uint32_t* col_idx,
                        const double* values, const double* u,
                        const double* v, size_t row_begin, size_t row_end) {
  double total = 0.0;
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* urow = u + i * K;
    double ur[K];
    for (size_t c = 0; c < K; ++c) ur[c] = urow[c];
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double* vrow = v + static_cast<size_t>(col_idx[p]) * K;
      double dot = 0.0;
      for (size_t c = 0; c < K; ++c) dot += ur[c] * vrow[c];
      total += values[p] * dot;
    }
  }
  return total;
}

}  // namespace

void SpMMRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t, double* c,
                size_t row_begin, size_t row_end) {
  SpMMRowsFixed<2>(row_ptr, col_idx, values, d, c, row_begin, row_end);
}
void SpMMRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t, double* c,
                size_t row_begin, size_t row_end) {
  SpMMRowsFixed<3>(row_ptr, col_idx, values, d, c, row_begin, row_end);
}
void SpMMRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                const double* values, const double* d, size_t, double* c,
                size_t row_begin, size_t row_end) {
  SpMMRowsFixed<4>(row_ptr, col_idx, values, d, c, row_begin, row_end);
}

void AtBAccumulateK2(const double* a, size_t, const double* b, size_t,
                     size_t p_begin, size_t p_end, double* out) {
  AtBAccumulateFixed<2>(a, b, p_begin, p_end, out);
}
void AtBAccumulateK3(const double* a, size_t, const double* b, size_t,
                     size_t p_begin, size_t p_end, double* out) {
  AtBAccumulateFixed<3>(a, b, p_begin, p_end, out);
}
void AtBAccumulateK4(const double* a, size_t, const double* b, size_t,
                     size_t p_begin, size_t p_end, double* out) {
  AtBAccumulateFixed<4>(a, b, p_begin, p_end, out);
}

void MatMulRowsK2(const double* a, size_t, const double* b, size_t, double* c,
                  size_t row_begin, size_t row_end) {
  MatMulRowsFixed<2>(a, b, c, row_begin, row_end);
}
void MatMulRowsK3(const double* a, size_t, const double* b, size_t, double* c,
                  size_t row_begin, size_t row_end) {
  MatMulRowsFixed<3>(a, b, c, row_begin, row_end);
}
void MatMulRowsK4(const double* a, size_t, const double* b, size_t, double* c,
                  size_t row_begin, size_t row_end) {
  MatMulRowsFixed<4>(a, b, c, row_begin, row_end);
}

void ABtRowsK2(const double* a, size_t, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end) {
  ABtRowsFixed<2>(a, b, b_rows, c, row_begin, row_end);
}
void ABtRowsK3(const double* a, size_t, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end) {
  ABtRowsFixed<3>(a, b, b_rows, c, row_begin, row_end);
}
void ABtRowsK4(const double* a, size_t, const double* b, size_t b_rows,
               double* c, size_t row_begin, size_t row_end) {
  ABtRowsFixed<4>(a, b, b_rows, c, row_begin, row_end);
}

double SpCrossRowsK2(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t, size_t row_begin, size_t row_end) {
  return SpCrossRowsFixed<2>(row_ptr, col_idx, values, u, v, row_begin,
                             row_end);
}
double SpCrossRowsK3(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t, size_t row_begin, size_t row_end) {
  return SpCrossRowsFixed<3>(row_ptr, col_idx, values, u, v, row_begin,
                             row_end);
}
double SpCrossRowsK4(const size_t* row_ptr, const uint32_t* col_idx,
                     const double* values, const double* u, const double* v,
                     size_t, size_t row_begin, size_t row_end) {
  return SpCrossRowsFixed<4>(row_ptr, col_idx, values, u, v, row_begin,
                             row_end);
}

/// L2-blocked generic MatMul. The plain loop streams all p_dim rows of b
/// per output row; once b outgrows L2 every output row re-fetches it from
/// memory. Tiling p (b rows) and revisiting a block of output rows per
/// tile keeps the b tile cache-resident. Per output element the adds still
/// happen in ascending p — tiles are visited in order — so the result is
/// bit-identical to GenericMatMulRows.
void BlockedMatMulRows(const double* a, size_t p_dim, const double* b,
                       size_t n, double* c, size_t row_begin,
                       size_t row_end) {
  constexpr size_t kRowBlock = 64;
  // Size the p tile so the b panel (tile × n doubles) stays within ~256 KiB
  // of L2, leaving room for the a and c rows.
  const size_t p_block =
      std::max<size_t>(16, (256u << 10) / (n * sizeof(double)));
  for (size_t ib = row_begin; ib < row_end; ib += kRowBlock) {
    const size_t ie = std::min(row_end, ib + kRowBlock);
    for (size_t i = ib; i < ie; ++i) {
      double* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] = 0.0;
    }
    for (size_t pb = 0; pb < p_dim; pb += p_block) {
      const size_t pe = std::min(p_dim, pb + p_block);
      for (size_t i = ib; i < ie; ++i) {
        const double* arow = a + i * p_dim;
        double* crow = c + i * n;
        for (size_t p = pb; p < pe; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          const double* brow = b + p * n;
          for (size_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace kernels
}  // namespace triclust
