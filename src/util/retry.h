#ifndef TRICLUST_SRC_UTIL_RETRY_H_
#define TRICLUST_SRC_UTIL_RETRY_H_

#include <functional>

#include "src/util/status.h"

namespace triclust {

/// Bounded exponential backoff for transient failures. Attempt a of
/// max_attempts sleeps min(base_delay_ms * multiplier^(a-1), max_delay_ms)
/// before retrying; the first attempt never sleeps. The defaults absorb a
/// short disk hiccup (~3 tries inside a few ms) without turning a real
/// outage into a hang.
struct RetryPolicy {
  /// Total attempts including the first. 1 = no retry.
  int max_attempts = 3;
  double base_delay_ms = 1.0;
  double max_delay_ms = 64.0;
  double multiplier = 2.0;
};

/// Injectable clock seam: receives the computed backoff delay before each
/// re-attempt. The default (used when a null Sleeper is passed) really
/// sleeps; tests pass a recorder to pin attempt counts and delays without
/// wall-clock time.
using Sleeper = std::function<void(double delay_ms)>;

/// Runs `op` until it succeeds, fails with a non-transient code, or
/// `policy.max_attempts` is exhausted; returns the last status. Only
/// kIoError is considered transient — every other error code (parse
/// errors, checksum mismatches, missing campaigns, ...) is deterministic
/// and retrying it would just triple the latency of the same answer.
/// `attempts_out` (optional) receives the number of attempts made.
/// Thread safety: stateless; `op` and `sleeper` are called on the caller
/// thread.
Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op,
                      const Sleeper& sleeper = nullptr,
                      int* attempts_out = nullptr);

/// The delay RetryTransient sleeps before re-attempt `attempt` (1-based
/// count of failures so far). Pure; exposed for tests.
double RetryBackoffDelayMs(const RetryPolicy& policy, int attempt);

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_RETRY_H_
