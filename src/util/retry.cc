#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace triclust {

double RetryBackoffDelayMs(const RetryPolicy& policy, int attempt) {
  double delay = policy.base_delay_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy.multiplier;
  return std::min(delay, policy.max_delay_ms);
}

Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op,
                      const Sleeper& sleeper, int* attempts_out) {
  Status status;
  int attempts = 0;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    attempts = attempt;
    status = op();
    if (status.ok() || status.code() != StatusCode::kIoError) break;
    if (attempt == max_attempts) break;
    const double delay_ms = RetryBackoffDelayMs(policy, attempt);
    if (sleeper) {
      sleeper(delay_ms);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return status;
}

}  // namespace triclust
