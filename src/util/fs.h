#ifndef TRICLUST_SRC_UTIL_FS_H_
#define TRICLUST_SRC_UTIL_FS_H_

#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace triclust {

/// A sequentially written file handle vended by FileSystem::NewWritableFile.
///
/// The write protocol mirrors POSIX durability rules: Append() hands bytes
/// to the OS (page cache), Sync() makes everything appended so far durable
/// (fsync), Close() releases the descriptor. Data that was never Sync()ed
/// has no durability guarantee — a crash may lose or truncate it — which is
/// exactly what FaultInjectionFileSystem simulates.
///
/// Thread safety: confine each handle to one thread.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(const std::string& data) = 0;

  /// Makes all appended data durable (fsync).
  virtual Status Sync() = 0;

  /// Flushes and releases the descriptor. Idempotent; called by the
  /// destructor if the owner did not (destructor swallows errors, so call
  /// Close() explicitly on paths that must report them).
  virtual Status Close() = 0;
};

/// The filesystem seam every durable write in triclust goes through
/// (AtomicWriteFile, CampaignStore, corpus/checkpoint writers). A small
/// virtual interface in the style of LevelDB's Env: production uses the
/// process-wide PosixFileSystem singleton (GetDefaultFileSystem()), tests
/// interpose FaultInjectionFileSystem to fail, tear, or "crash" any
/// individual operation deterministically.
///
/// Thread safety: implementations must tolerate concurrent calls from
/// multiple threads (PosixFileSystem is stateless; the fault injector
/// locks internally). Individual WritableFile handles are single-threaded.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for writing, truncating any existing contents.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Opens `path` for incremental (streaming) reads. The stream is
  /// positioned at the start of the file; the caller owns it and should
  /// confine it to one thread. Read-only probe for fault-injection
  /// purposes (like ReadFileToString). This is the seam behind
  /// TsvStreamReader's bounded-memory reads — the project-invariant
  /// linter (tools/lint_invariants.py) forbids opening std::ifstream
  /// directly outside src/util.
  virtual Result<std::unique_ptr<std::istream>> NewReadStream(
      const std::string& path) = 0;

  /// Atomically renames `from` to `to` (replacing `to`). Durability of the
  /// directory entry requires a subsequent SyncDirectory().
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes the file at `path`.
  virtual Status Remove(const std::string& path) = 0;

  /// fsyncs the directory at `path`, making renames/creates inside it
  /// durable.
  virtual Status SyncDirectory(const std::string& path) = 0;

  /// Creates `path` and any missing parents (mkdir -p); OK when it already
  /// exists as a directory.
  virtual Status CreateDirectories(const std::string& path) = 0;

  /// True when `path` exists (any file type). Read-only probe.
  virtual bool Exists(const std::string& path) = 0;

  /// Names of the entries in directory `path` (excluding "." and ".."), in
  /// unspecified order. Read-only probe.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;
};

/// The real thing: thin wrappers over open/write/fsync/rename/unlink.
class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::unique_ptr<std::istream>> NewReadStream(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDirectory(const std::string& path) override;
  Status CreateDirectories(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
};

/// The process-wide PosixFileSystem every default call site uses. Never
/// null; the singleton outlives static destructors (leaked intentionally).
FileSystem* GetDefaultFileSystem();

/// Deterministic fault injector wrapping a base FileSystem, in the style
/// of LevelDB/RocksDB's fault-injection env. Every *mutating* operation
/// (NewWritableFile, Append, Sync, Close, Rename, Remove, SyncDirectory,
/// CreateDirectories) is numbered 0, 1, 2, ... in call order; read-only
/// probes (Exists, ListDirectory, ReadFileToString) are passed through
/// uncounted. Three independently combinable fault modes:
///
///  - FailAt(n): mutating op number n and every later one fail with
///    IoError("injected fault ...") without touching the base filesystem.
///  - SetTransientFailures(k): the next k mutating ops fail, then
///    operation resumes normally — the flaky-disk model RetryPolicy is
///    tested against.
///  - SetTornWrites(true): every Append writes only a prefix (half) of its
///    payload to the base filesystem, then fails — the torn-write model.
///
/// Crash simulation: CrashAt(n) behaves like FailAt(n) but additionally
/// applies the power-loss model at that moment — all data appended but not
/// yet Sync()ed through this injector is dropped (files truncated to their
/// last synced length; never-synced files removed), exactly what a kernel
/// page cache loses when the power goes. Renames that already happened are
/// kept (the journalling assumption AtomicWriteFile's write-sync-rename
/// ordering is designed for; a writer that renames before syncing its data
/// is exposed by the truncation). DropUnsyncedData() applies the same
/// model on demand.
///
/// Counters/faults only track files written *through this injector*.
/// Thread safety: all state is mutex-guarded; safe for concurrent callers.
class FaultInjectionFileSystem : public FileSystem {
 public:
  /// `base` is borrowed and must outlive the injector.
  explicit FaultInjectionFileSystem(FileSystem* base);
  ~FaultInjectionFileSystem() override;

  // --- fault programming ----------------------------------------------------
  /// Mutating op `op` (0-based, counted from the last ResetFaults) and all
  /// later ones fail. -1 disables.
  void FailAt(int op) TRICLUST_EXCLUDES(mu_);
  /// Like FailAt, but the first failing op also drops all un-fsynced data.
  void CrashAt(int op) TRICLUST_EXCLUDES(mu_);
  /// The next `count` mutating ops fail, after which ops succeed again.
  void SetTransientFailures(int count) TRICLUST_EXCLUDES(mu_);
  /// When enabled, every Append writes half its payload and then fails.
  void SetTornWrites(bool enabled) TRICLUST_EXCLUDES(mu_);
  /// Clears all programmed faults and the op counter. Tracked sync state
  /// of live files is kept (it describes the disk, not the faults).
  void ResetFaults() TRICLUST_EXCLUDES(mu_);

  /// Applies the power-loss model now: truncate every tracked file to its
  /// last synced length, remove tracked files that were never synced.
  Status DropUnsyncedData() TRICLUST_EXCLUDES(mu_);

  // --- introspection --------------------------------------------------------
  /// Mutating ops attempted since the last ResetFaults (failed ones count).
  int mutating_ops() const TRICLUST_EXCLUDES(mu_);
  /// Ops that failed due to an injected fault since the last ResetFaults.
  int injected_failures() const TRICLUST_EXCLUDES(mu_);

  // --- FileSystem -----------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::unique_ptr<std::istream>> NewReadStream(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDirectory(const std::string& path) override;
  Status CreateDirectories(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  /// Durability bookkeeping for one file written through the injector.
  struct FileState {
    uint64_t length = 0;         ///< bytes appended so far
    uint64_t synced_length = 0;  ///< bytes covered by the last Sync()
    bool ever_synced = false;
  };

  /// Charges one mutating op against the programmed faults. Returns a
  /// non-OK status when this op must fail; applies the crash model first
  /// when the failing fault is a crash. Caller must NOT hold mu_ (the
  /// TRICLUST_EXCLUDES annotation makes a self-deadlocking call a
  /// compile error under clang).
  Status ChargeOp(const char* op_name, const std::string& path)
      TRICLUST_EXCLUDES(mu_);
  Status DropUnsyncedDataLocked() TRICLUST_REQUIRES(mu_);

  FileSystem* const base_;
  mutable Mutex mu_;
  int op_counter_ TRICLUST_GUARDED_BY(mu_) = 0;
  int injected_failures_ TRICLUST_GUARDED_BY(mu_) = 0;
  int fail_at_op_ TRICLUST_GUARDED_BY(mu_) = -1;
  bool crash_on_fail_ TRICLUST_GUARDED_BY(mu_) = false;
  bool crashed_ TRICLUST_GUARDED_BY(mu_) = false;
  int transient_failures_left_ TRICLUST_GUARDED_BY(mu_) = 0;
  bool torn_writes_ TRICLUST_GUARDED_BY(mu_) = false;
  std::map<std::string, FileState> files_ TRICLUST_GUARDED_BY(mu_);
};

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_FS_H_
