#ifndef TRICLUST_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define TRICLUST_SRC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These wrap the capability attributes understood by clang's
/// -Wthread-safety analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
/// so that lock-protected state can declare its lock at compile time:
///
///   Mutex mu_;
///   int counter_ TRICLUST_GUARDED_BY(mu_);
///
/// Under clang the analysis then rejects, at compile time, any access to
/// `counter_` on a path that does not hold `mu_` — the race TSan would
/// need a lucky interleaving to catch never builds. Under compilers
/// without the analysis (GCC) every macro expands to nothing, so the
/// annotations are free documentation.
///
/// The CI `static-analysis` job builds the tree with clang and
/// `-Werror=thread-safety` (CMake option TRICLUST_THREAD_SAFETY), and
/// tools/check_negative_compile.py proves the analysis actually fires by
/// compiling a seeded violation. Annotation conventions are documented in
/// docs/ARCHITECTURE.md ("Static analysis & contracts").

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TRICLUST_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef TRICLUST_THREAD_ANNOTATION_
#define TRICLUST_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable). Applied to Mutex.
#define TRICLUST_CAPABILITY(x) TRICLUST_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor. Applied to MutexLock.
#define TRICLUST_SCOPED_CAPABILITY TRICLUST_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define TRICLUST_GUARDED_BY(x) TRICLUST_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex (the
/// pointer itself may be read freely).
#define TRICLUST_PT_GUARDED_BY(x) TRICLUST_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed mutexes to be held by the caller.
#define TRICLUST_REQUIRES(...) \
  TRICLUST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed mutexes and does not release them.
#define TRICLUST_ACQUIRE(...) \
  TRICLUST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (held on entry).
#define TRICLUST_RELEASE(...) \
  TRICLUST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the mutex only when it returns the given value.
#define TRICLUST_TRY_ACQUIRE(...) \
  TRICLUST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed mutexes (the function acquires them
/// itself; holding one on entry would self-deadlock).
#define TRICLUST_EXCLUDES(...) \
  TRICLUST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis a
/// fact it cannot derive).
#define TRICLUST_ASSERT_CAPABILITY(x) \
  TRICLUST_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given mutex.
#define TRICLUST_RETURN_CAPABILITY(x) \
  TRICLUST_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the locking is correct but inexpressible.
#define TRICLUST_NO_THREAD_SAFETY_ANALYSIS \
  TRICLUST_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentation-only marker for state with no internal lock whose safety
/// contract is "the owner synchronizes all access externally" — e.g.
/// CampaignEngine, which is confined to one caller thread. The analysis
/// cannot check confinement, so this expands to nothing under every
/// compiler; it exists to make the contract greppable and uniform.
#define TRICLUST_EXTERNALLY_SYNCHRONIZED

#endif  // TRICLUST_SRC_UTIL_THREAD_ANNOTATIONS_H_
