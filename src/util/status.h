#ifndef TRICLUST_SRC_UTIL_STATUS_H_
#define TRICLUST_SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace triclust {

/// Error category for a failed operation. Mirrors the Status idiom used by
/// Arrow/RocksDB: fallible operations return a Status (or Result<T>) instead
/// of throwing; programming errors use TRICLUST_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kParseError = 7,
  kNotConverged = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an explanatory message.
/// A default-constructed Status is OK. Statuses are cheap to copy.
///
/// [[nodiscard]] on the class makes *every* function returning a Status
/// by value warn (error under -Werror / the CI builds) when the call
/// site drops the result — an unchecked save or close is exactly how
/// silent data loss ships. A deliberate discard must be spelled
/// `(void)expr;` with a comment saying why ignoring the error is
/// correct there.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. Accessing the value of an errored Result aborts, so check
/// ok() (or use ValueOr) first. [[nodiscard]] as with Status: dropping a
/// Result discards the error AND the value, which is never intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  /// The error status; OK if the result holds a value.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// The contained value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// The contained value; aborts with the error on failure. For callers
  /// with no recovery path (tests, benches, examples) — using it both
  /// satisfies [[nodiscard]] and turns a silently-ignored error into a
  /// loud one. Library code should propagate the Status instead.
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      internal_logging::FatalLogMessage(__FILE__, __LINE__,
                                        "Result::ValueOrDie on error")
          << ": " << status_.ToString();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::Internal("result holds no value");
};

/// Propagates an error Status out of the current function.
#define TRICLUST_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::triclust::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error Status out of the current function.
#define TRICLUST_ASSIGN_OR_RETURN(lhs, expr)            \
  auto TRICLUST_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!TRICLUST_CONCAT_(_res_, __LINE__).ok())          \
    return TRICLUST_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(TRICLUST_CONCAT_(_res_, __LINE__)).value()

#define TRICLUST_CONCAT_IMPL_(a, b) a##b
#define TRICLUST_CONCAT_(a, b) TRICLUST_CONCAT_IMPL_(a, b)

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_STATUS_H_
