#include "src/util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace triclust {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string buf(Trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseSizeT(std::string_view text, size_t* out) {
  const std::string buf(Trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseInt64(std::string_view text, long long* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace triclust
