#ifndef TRICLUST_SRC_UTIL_FILE_UTIL_H_
#define TRICLUST_SRC_UTIL_FILE_UTIL_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace triclust {

/// Crash-safe file replacement: runs `writer` against a pid-unique
/// temporary next to `path` (path + ".tmp.<pid>"), fsyncs it, then renames
/// it over `path` only after the write completed and reached disk, and
/// finally fsyncs the parent directory. A crash — or a writer error — at
/// any point leaves the previous contents of `path` intact; the temporary
/// is removed on failure. rename(2) on the same filesystem is atomic, so
/// readers never observe a half-written file.
///
/// Concurrent writers of the same `path` in different processes degrade to
/// last-rename-wins (never a torn file); two threads of one process
/// writing the same path are not supported — checkpoint writers are
/// expected to be exclusive per path within a process.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// Creates `path` and any missing parents (mkdir -p). OK when it already
/// exists as a directory.
Status CreateDirectories(const std::string& path);

/// True when `path` exists (any file type).
bool PathExists(const std::string& path);

/// Names of the entries in directory `path` (excluding "." and ".."), in
/// unspecified order.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_FILE_UTIL_H_
