#ifndef TRICLUST_SRC_UTIL_FILE_UTIL_H_
#define TRICLUST_SRC_UTIL_FILE_UTIL_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/fs.h"
#include "src/util/status.h"

namespace triclust {

/// Crash-safe file replacement through an explicit FileSystem: runs
/// `writer` into an in-memory buffer, writes the buffer to a pid-unique
/// temporary next to `path` (path + ".tmp.<pid>"), fsyncs it, renames it
/// over `path` only after the data reached disk, and finally fsyncs the
/// parent directory. A crash — or a writer/filesystem error — at any point
/// leaves the previous contents of `path` intact; the temporary is removed
/// on failure (best effort: if the filesystem itself is failing, the
/// orphaned `.tmp.<pid>` is reclaimed by the next CampaignStore::Save over
/// the directory). rename(2) on the same filesystem is atomic, so readers
/// never observe a half-written file. One edge is inherent to the
/// protocol: an error *after* the rename (directory fsync) reports failure
/// although the new complete contents are already in place — never a torn
/// file either way.
///
/// Concurrent writers of the same `path` in different processes degrade to
/// last-rename-wins (never a torn file); two threads of one process
/// writing the same path are not supported — checkpoint writers are
/// expected to be exclusive per path within a process.
Status AtomicWriteFile(FileSystem* fs, const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// AtomicWriteFile against the process-default PosixFileSystem — the
/// drop-in form every pre-seam call site keeps using.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// Creates `path` and any missing parents (mkdir -p) on the default
/// filesystem. OK when it already exists as a directory.
Status CreateDirectories(const std::string& path);

/// True when `path` exists on the default filesystem (any file type).
bool PathExists(const std::string& path);

/// Names of the entries in directory `path` (excluding "." and ".."), in
/// unspecified order, on the default filesystem.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

// --- checksummed payloads ----------------------------------------------------
//
// Integrity framing for checkpoint-style files (docs/FORMATS.md §4): the
// payload is followed by one trailer line
//
//   triclust-crc32 <8 lowercase hex digits> <payload byte count>\n
//
// where the CRC-32 (IEEE) covers exactly the payload bytes. Verification
// detects any flipped byte (checksum mismatch) and any truncation or
// padding (length mismatch) with a `<path>: ...` diagnostic. Files that
// predate the trailer are still readable: verification reports them as
// trailer-less instead of failing, and callers decide whether legacy is
// acceptable (the campaign store requires trailers from manifest format
// version 2 on).

/// Returns `payload` with the integrity trailer line appended.
std::string AppendChecksumTrailer(std::string payload);

/// Splits `contents` into payload + trailer and verifies both checksum and
/// length, returning the payload. When no trailer line is present the
/// entire contents are returned unchanged with `*had_trailer = false` —
/// the legacy-file path. `path` is used only in diagnostics
/// (`<path>: checksum mismatch ...`, `<path>: truncated payload ...`).
Result<std::string> VerifyChecksummedPayload(std::string contents,
                                             const std::string& path,
                                             bool* had_trailer);

/// AtomicWriteFile that appends the integrity trailer to what `writer`
/// produced before the bytes go to disk.
Status AtomicWriteFileChecksummed(
    FileSystem* fs, const std::string& path,
    const std::function<Status(std::ostream*)>& writer);

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_FILE_UTIL_H_
