#ifndef TRICLUST_SRC_UTIL_TABLE_WRITER_H_
#define TRICLUST_SRC_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace triclust {

/// Accumulates rows and renders an aligned plain-text table (for benchmark
/// harness stdout, mirroring the rows of the paper's tables) plus an optional
/// CSV form for downstream plotting.
class TableWriter {
 public:
  /// `title` is printed above the table (e.g. "Table 4: tweet-level ...").
  explicit TableWriter(std::string title);

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision, using "-" for
  /// NaN (the paper prints "–" for metrics a method does not produce).
  static std::string Num(double value, int precision = 2);

  /// Renders the aligned table to `os`.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// numeric tables) to `os`.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_TABLE_WRITER_H_
