#ifndef TRICLUST_SRC_UTIL_STOPWATCH_H_
#define TRICLUST_SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace triclust {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// online-vs-batch runtime comparisons (paper Fig. 11(a)/12(a)).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_STOPWATCH_H_
