#ifndef TRICLUST_SRC_UTIL_STRING_UTIL_H_
#define TRICLUST_SRC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace triclust {

/// Splits `text` on `delim`, keeping empty fields (so TSV round-trips).
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits `text` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseSizeT(std::string_view text, size_t* out);

/// Parses a signed integer; returns false on malformed or trailing
/// garbage (no whitespace trimming — fields are expected pre-trimmed).
bool ParseInt64(std::string_view text, long long* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_STRING_UTIL_H_
