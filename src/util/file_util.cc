#include "src/util/file_util.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "src/util/crc32.h"

namespace triclust {

namespace {

/// Directory component of `path` for the post-rename directory fsync.
std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  const std::string dir = path.substr(0, slash);
  return dir.empty() ? "/" : dir;
}

Status WriteBufferAtomically(FileSystem* fs, const std::string& path,
                             const std::string& payload) {
  // Pid-unique temp name: concurrent writers in *different* processes
  // degrade to last-rename-wins instead of tearing each other's temp file.
  // (Two threads of one process writing the same path remain unsupported —
  // see the header contract.)
  const std::string temp_path = path + ".tmp." + std::to_string(getpid());
  Status status;
  {
    TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                              fs->NewWritableFile(temp_path));
    status = file->Append(payload);
    // Data must be durable *before* the rename is journaled, or a power
    // loss could commit the new name pointing at truncated data (delayed
    // allocation) while the previous contents are already gone.
    if (status.ok()) status = file->Sync();
    if (status.ok()) status = file->Close();
  }
  if (status.ok()) status = fs->Rename(temp_path, path);
  if (!status.ok()) {
    (void)fs->Remove(temp_path);  // best effort; next Save reclaims stragglers
    return status;
  }
  // Make the rename itself durable (directory entry update). Past this
  // point the new contents are committed; a failure here is reported but
  // no longer removes anything.
  return fs->SyncDirectory(ParentDirectory(path));
}

}  // namespace

Status AtomicWriteFile(FileSystem* fs, const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  std::ostringstream buffer;
  TRICLUST_RETURN_IF_ERROR(writer(&buffer));
  if (!buffer) return Status::IoError("buffered write failed: " + path);
  return WriteBufferAtomically(fs, path, buffer.str());
}

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  return AtomicWriteFile(GetDefaultFileSystem(), path, writer);
}

Status CreateDirectories(const std::string& path) {
  return GetDefaultFileSystem()->CreateDirectories(path);
}

bool PathExists(const std::string& path) {
  return GetDefaultFileSystem()->Exists(path);
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  return GetDefaultFileSystem()->ListDirectory(path);
}

// --- checksummed payloads ----------------------------------------------------

namespace {

constexpr char kTrailerTag[] = "triclust-crc32 ";
constexpr size_t kTrailerTagLen = sizeof(kTrailerTag) - 1;

}  // namespace

std::string AppendChecksumTrailer(std::string payload) {
  const uint32_t crc = Crc32(payload);
  char trailer[64];
  std::snprintf(trailer, sizeof(trailer), "%s%08x %zu\n", kTrailerTag, crc,
                payload.size());
  payload += trailer;
  return payload;
}

Result<std::string> VerifyChecksummedPayload(std::string contents,
                                             const std::string& path,
                                             bool* had_trailer) {
  if (had_trailer != nullptr) *had_trailer = false;
  // The trailer is the final '\n'-terminated line; find its start.
  if (contents.empty() || contents.back() != '\n') return contents;
  const size_t prev_newline = contents.find_last_of('\n', contents.size() - 2);
  const size_t line_start =
      prev_newline == std::string::npos ? 0 : prev_newline + 1;
  if (contents.compare(line_start, kTrailerTagLen, kTrailerTag) != 0) {
    return contents;  // trailer-less legacy file
  }
  unsigned int stored_crc = 0;
  size_t declared_length = 0;
  char excess = '\0';
  const std::string line = contents.substr(line_start + kTrailerTagLen);
  if (std::sscanf(line.c_str(), "%8x %zu%c", &stored_crc, &declared_length,
                  &excess) != 3 ||
      excess != '\n') {
    return Status::ParseError(path + ": malformed checksum trailer: " +
                              line.substr(0, line.size() - 1));
  }
  contents.resize(line_start);  // strip the trailer; what remains is payload
  if (contents.size() != declared_length) {
    return Status::ParseError(
        path + ": truncated payload (trailer declares " +
        std::to_string(declared_length) + " bytes, " +
        std::to_string(contents.size()) + " present)");
  }
  const uint32_t computed = Crc32(contents);
  if (computed != static_cast<uint32_t>(stored_crc)) {
    char diag[128];
    std::snprintf(diag, sizeof(diag),
                  "%s: checksum mismatch (stored %08x, computed %08x)",
                  path.c_str(), stored_crc, computed);
    return Status::ParseError(diag);
  }
  if (had_trailer != nullptr) *had_trailer = true;
  return contents;
}

Status AtomicWriteFileChecksummed(
    FileSystem* fs, const std::string& path,
    const std::function<Status(std::ostream*)>& writer) {
  std::ostringstream buffer;
  TRICLUST_RETURN_IF_ERROR(writer(&buffer));
  if (!buffer) return Status::IoError("buffered write failed: " + path);
  return WriteBufferAtomically(fs, path, AppendChecksumTrailer(buffer.str()));
}

}  // namespace triclust
