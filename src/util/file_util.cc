#include "src/util/file_util.h"

#include <cstdio>
#include <fstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace triclust {

namespace {

/// fsync the file (or directory) at `path` via a fresh descriptor. POSIX
/// flushes the *file's* data for any descriptor of it, so syncing after the
/// ofstream closed is sufficient.
Status SyncPath(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  // Pid-unique temp name: concurrent writers in *different* processes
  // degrade to last-rename-wins instead of tearing each other's temp file.
  // (Two threads of one process writing the same path remain unsupported —
  // see the header contract.)
  const std::string temp_path =
      path + ".tmp." + std::to_string(getpid());
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open for writing: " + temp_path);
    }
    Status status = writer(&out);
    if (status.ok()) {
      out.flush();
      if (!out) status = Status::IoError("write failed: " + temp_path);
    }
    if (!status.ok()) {
      out.close();
      std::remove(temp_path.c_str());
      return status;
    }
  }  // close before sync/rename so the contents are fully handed to the OS
  // Data must be durable *before* the rename is journaled, or a power loss
  // could commit the new name pointing at truncated data (delayed
  // allocation) while the previous contents are already gone.
  Status synced = SyncPath(temp_path);
  if (!synced.ok()) {
    std::remove(temp_path.c_str());
    return synced;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("rename failed: " + temp_path + " -> " + path);
  }
  // Make the rename itself durable (directory entry update).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  return SyncPath(dir.empty() ? "/" : dir);
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Walk the path left to right, creating each component (mkdir -p).
  std::string prefix;
  size_t pos = 0;
  while (pos != std::string::npos) {
    const size_t next = path.find('/', pos + 1);
    prefix = next == std::string::npos ? path : path.substr(0, next);
    pos = next;
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (mkdir(prefix.c_str(), 0755) != 0) {
      struct stat st;
      if (stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        return Status::IoError("cannot create directory: " + prefix);
      }
    }
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    return Status::IoError("cannot open directory: " + path);
  }
  std::vector<std::string> names;
  while (const dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  closedir(dir);
  return names;
}

}  // namespace triclust
