#ifndef TRICLUST_SRC_UTIL_PARALLEL_H_
#define TRICLUST_SRC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace triclust {

/// Process-wide compute parallelism for the solver kernels.
///
/// The hot kernels of Algorithm 1/2 (SpMM, the dense k×k algebra, the loss
/// reductions) are row-partitionable, so they all funnel through the two
/// primitives below, backed by one persistent process-wide thread pool.
/// Workers are spawned lazily on the first parallel call and reused for the
/// lifetime of the process; a solver iteration therefore never pays thread
/// creation cost.
///
/// Determinism contract:
///  - ParallelFor: each index is processed by exactly one thread with the
///    same per-index code as the serial loop, so kernels that write disjoint
///    output rows are *bit-identical* for every thread count.
///  - ParallelReduce: the range is cut into fixed-size chunks (independent
///    of thread count), chunk partial sums are combined in chunk order.
///    Results are bit-identical across any thread count ≥ 2; the 1-thread
///    path sums the whole range in one chunk and is bit-identical to the
///    plain serial loop.
///
/// Thread count resolution: 0 = std::thread::hardware_concurrency(),
/// 1 = strict serial (no pool involvement), n = at most n concurrent
/// threads (the calling thread participates as one of them).
///
/// The budget is PROCESS-GLOBAL: two fits running concurrently on
/// different threads share (and stomp) one setting, so concurrent fits in
/// one process must use the same num_threads — or be serialized — to keep
/// the per-fit determinism guarantees. Parallelism *within* a fit is the
/// supported path to multicore; per-fit isolation of the budget would need
/// the thread count plumbed through every kernel call.

/// Sets the process-wide thread count used by subsequent kernel calls.
/// Thread safety: atomic store, callable from any thread — but because
/// the setting is process-global, changing it while another thread is
/// inside a fit changes *that* fit's behavior too; see the contract above.
void SetNumThreads(int n);

/// The configured thread count (0 = auto). Thread safety: atomic load,
/// callable from any thread.
int GetNumThreads();

/// The resolved concurrent-thread budget, always ≥ 1 (0 resolved through
/// hardware_concurrency). Thread safety: callable from any thread.
int EffectiveNumThreads();

/// RAII: sets the process-wide thread count for a scope (one solver fit),
/// restoring the previous value on destruction. This is how
/// TriClusterConfig::num_threads flows from a clusterer into the kernels.
///
/// Thread safety: the guarded setting is PROCESS-GLOBAL, so two scopes
/// live on different threads stomp each other's value (and the restore
/// order is last-destroyed-wins). Use one scope at a time per process —
/// or ScopedSerialKernels, which is per-thread, for concurrent fits.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

/// RAII: forces every kernel call made by the *current thread* onto the
/// exact serial code path for the scope's lifetime — the same path as a
/// thread budget of 1 — regardless of the process-wide setting. Nested
/// scopes compose (the previous mode is restored on destruction).
///
/// This is how the serving layer runs many independent campaign fits
/// concurrently without touching the process-global budget: each sharded
/// fit wraps itself in a ScopedSerialKernels, so its kernels are
/// bit-identical to a standalone num_threads = 1 fit whether the fit runs
/// inline, on a pool worker, or next to seven sibling fits. (Kernels
/// running *inside* a pool job already degrade to serial; this scope makes
/// that guarantee explicit and independent of how the fit was scheduled.)
///
/// Thread safety: the guarded flag is thread-local, so scopes on
/// different threads are fully independent — this is the concurrency-safe
/// counterpart of ScopedNumThreads.
class ScopedSerialKernels {
 public:
  ScopedSerialKernels();
  ~ScopedSerialKernels();
  ScopedSerialKernels(const ScopedSerialKernels&) = delete;
  ScopedSerialKernels& operator=(const ScopedSerialKernels&) = delete;

 private:
  bool previous_;
};

/// Runs body(chunk_begin, chunk_end) over disjoint sub-ranges covering
/// [begin, end). `grain` is the minimum chunk size (load-balancing hint;
/// does not affect results for disjoint-output bodies). With an effective
/// thread count of 1 — or when called from inside another parallel region —
/// runs body(begin, end) inline.
///
/// Thread safety: callable from any thread, including pool workers (the
/// nested call degrades to the inline serial path rather than deadlocking
/// on the pool). The caller must ensure bodies on different sub-ranges
/// touch disjoint data.
///
/// Bodies should not throw: an exception on the calling thread is
/// propagated only after all pool workers drained the job, and an
/// exception on a worker thread terminates the process (std::thread
/// semantics). The solver kernels satisfy this — they only fail via
/// TRICLUST_CHECK, which aborts.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Sum of chunk_sum(chunk_begin, chunk_end) over fixed-size chunks of
/// [begin, end), combined in chunk order (see determinism contract above).
/// `grain` is the fixed chunk size and must not depend on the thread count.
/// Thread safety: as ParallelFor; chunk_sum must be a pure function of its
/// range (it may run on any thread, in any order).
double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_sum);

/// Default fixed chunk sizes for the reductions (rows of a factor matrix /
/// flat element ranges). Exposed so tests can mirror the chunking.
inline constexpr size_t kReduceRowGrain = 1024;
inline constexpr size_t kReduceFlatGrain = 8192;

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_PARALLEL_H_
