#ifndef TRICLUST_SRC_UTIL_PARALLEL_H_
#define TRICLUST_SRC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace triclust {

/// Hierarchical compute parallelism for the solver kernels.
///
/// The hot kernels of Algorithm 1/2 (SpMM, the dense k×k algebra, the loss
/// reductions) are row-partitionable, so they all funnel through the two
/// primitives below, backed by one persistent process-wide worker pool.
/// Workers are spawned lazily on the first parallel call and reused for the
/// lifetime of the process; a solver iteration therefore never pays thread
/// creation cost.
///
/// The scheduler is TWO-LEVEL. The pool accepts any number of concurrent
/// jobs: a campaign-tier ParallelFor can fan a batch of solver fits out
/// across the fleet while each fit's kernel-tier ParallelFor/ParallelReduce
/// calls run row-parallel *inside* their campaign task, all sharing one set
/// of workers. What keeps the tiers from oversubscribing each other is the
/// per-fit ThreadBudget: every parallel call resolves its width from the
/// budget installed on the calling thread (see ScopedThreadBudget), not
/// from a process-global count, so a serving layer can hand each of R
/// concurrent fits roughly threads/R of the machine and still use all of it
/// when R is small.
///
/// Width resolution for a ParallelFor/ParallelReduce call, in order:
///  1. the ThreadBudget installed on the calling thread, if any
///     (ScopedThreadBudget / ScopedSerialKernels);
///  2. otherwise, 1 if the thread is executing a chunk of another parallel
///     region (implicit nesting degrades to serial rather than exploding);
///  3. otherwise, the process-wide default (SetNumThreads).
/// Budgets do not leak downward: a chunk body starts with no installed
/// budget (rule 2 applies) and must install its own to go parallel — this
/// is exactly what CampaignEngine does per sharded fit.
///
/// Determinism contract — results are bit-identical at EVERY width:
///  - ParallelFor: each index is processed by exactly one thread with the
///    same per-index code as the serial loop, so kernels that write
///    disjoint output rows are bit-identical for every width.
///  - ParallelReduce: the range is cut into fixed-size chunks (independent
///    of the width), chunk partial sums are combined in chunk order, and
///    the 1-width path walks the *same* chunks in the same combine order
///    serially. Results are therefore bit-identical across all widths,
///    including 1 — which is what lets a fit running under any budget split
///    reproduce a standalone serial fit exactly.
///
/// Thread count resolution: 0 = std::thread::hardware_concurrency(),
/// 1 = strict serial (no pool involvement), n = at most n concurrent
/// threads (the calling thread participates as one of them). An
/// oversubscribed schedule (budgets summing past the pool) degrades
/// gracefully: helpers are a scheduling hint, each job always makes
/// progress on its submitting thread, and results never depend on how many
/// helpers actually joined.

/// Sets the process-wide *default* width used by parallel calls from
/// threads with no installed ThreadBudget. Thread safety: atomic store,
/// callable from any thread.
void SetNumThreads(int n);

/// The configured process-wide default (0 = auto). Thread safety: atomic
/// load, callable from any thread.
int GetNumThreads();

/// The resolved process-wide default, always ≥ 1 (0 resolved through
/// hardware_concurrency). Thread safety: callable from any thread.
int EffectiveNumThreads();

/// The width the *next* ParallelFor/ParallelReduce on this thread would
/// use, after budget → nesting → global resolution (always ≥ 1). Exposed
/// for tests and for kernels that pick an algorithm by width.
int CurrentParallelWidth();

/// An explicit per-fit thread budget: how many concurrent threads one
/// solver fit may occupy. A budget is a plain value — copy it, store it in
/// a workspace, pass it down — and takes effect only while installed on a
/// thread via ScopedThreadBudget. 0 resolves to hardware concurrency; an
/// *ambient* budget (the default-constructed value) means "no opinion":
/// installing it is a no-op and the thread keeps resolving by rules 2–3.
class ThreadBudget {
 public:
  /// Ambient: defer to the calling context (nesting rule / global default).
  ThreadBudget() : threads_(kAmbient) {}
  /// Explicit budget of `threads` (≥ 0; 0 = hardware concurrency).
  explicit ThreadBudget(int threads);

  static ThreadBudget Ambient() { return ThreadBudget(); }
  static ThreadBudget Serial() { return ThreadBudget(1); }

  bool is_ambient() const { return threads_ == kAmbient; }
  /// The raw setting (0 = auto). Must not be called on an ambient budget.
  int threads() const;
  /// The resolved concurrent-thread width, always ≥ 1. Must not be called
  /// on an ambient budget.
  int resolved() const;

 private:
  friend class ScopedThreadBudget;
  static constexpr int kAmbient = -1;
  int threads_;
};

/// RAII: installs `budget` as the calling thread's budget for the scope's
/// lifetime, restoring the previous state on destruction. Installing an
/// ambient budget is a no-op (the previous state stays in effect). Scopes
/// nest (innermost wins) and are THREAD-LOCAL: budgets on different
/// threads are fully independent, so concurrent fits with different
/// budgets never stomp each other — this replaces the historical
/// process-global ScopedNumThreads for everything that may run
/// concurrently.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(ThreadBudget budget);
  ~ScopedThreadBudget();
  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int previous_;
  bool installed_;
};

/// RAII: sets the process-wide default width for a scope, restoring the
/// previous value on destruction. The guarded setting is PROCESS-GLOBAL,
/// so two scopes live on different threads stomp each other's value — use
/// ScopedThreadBudget (per-thread) for anything concurrent. Retained for
/// single-threaded callers (tests, CLI tools) that want to steer code they
/// do not own a config for.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

/// RAII: forces every kernel call made by the *current thread* onto the
/// serial code path for the scope's lifetime — shorthand for
/// ScopedThreadBudget(ThreadBudget::Serial()). Nested scopes compose, and
/// a nested ScopedThreadBudget with a wider budget overrides it (innermost
/// wins), which is how a budget-of-1 campaign fit degenerates to exactly
/// this scope's historical behavior.
class ScopedSerialKernels {
 public:
  ScopedSerialKernels();
  ~ScopedSerialKernels();
  ScopedSerialKernels(const ScopedSerialKernels&) = delete;
  ScopedSerialKernels& operator=(const ScopedSerialKernels&) = delete;

 private:
  ScopedThreadBudget budget_;
};

/// Runs body(chunk_begin, chunk_end) over disjoint sub-ranges covering
/// [begin, end). `grain` is the minimum chunk size (load-balancing hint;
/// does not affect results for disjoint-output bodies). With a resolved
/// width of 1 — or when called from inside another parallel region with no
/// budget installed — runs body(begin, end) inline.
///
/// Thread safety: callable from any thread, including pool workers. Calls
/// from distinct threads run as concurrent pool jobs sharing the worker
/// set; a chunk body that installs a ThreadBudget may itself call
/// ParallelFor (the two-level schedule). The caller must ensure bodies on
/// different sub-ranges touch disjoint data.
///
/// Bodies should not throw: an exception on the calling thread is
/// propagated only after all pool workers drained the job, and an
/// exception on a worker thread terminates the process (std::thread
/// semantics). The solver kernels satisfy this — they only fail via
/// TRICLUST_CHECK, which aborts.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Sum of chunk_sum(chunk_begin, chunk_end) over fixed-size chunks of
/// [begin, end), combined in chunk order. `grain` is the fixed chunk size
/// and must not depend on the width. Bit-identical at every width,
/// including 1 (see the determinism contract above). Thread safety: as
/// ParallelFor; chunk_sum must be a pure function of its range (it may run
/// on any thread, in any order).
double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_sum);

/// Default fixed chunk sizes for the reductions (rows of a factor matrix /
/// flat element ranges). Exposed so tests can mirror the chunking.
inline constexpr size_t kReduceRowGrain = 1024;
inline constexpr size_t kReduceFlatGrain = 8192;

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_PARALLEL_H_
