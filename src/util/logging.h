#ifndef TRICLUST_SRC_UTIL_LOGGING_H_
#define TRICLUST_SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace triclust {

/// Severity for log messages emitted through TRICLUST_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Process-wide minimum severity; messages below it are dropped.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates a single log line and flushes it (with severity prefix) to
/// stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage variant that aborts the process after flushing. Used by
/// TRICLUST_CHECK for unrecoverable programming errors.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the process-wide minimum log severity.
inline void SetLogLevel(LogLevel level) {
  internal_logging::SetMinLogLevel(level);
}

/// Streams a log line at the given severity:
///   TRICLUST_LOG(kInfo) << "converged after " << iters << " iterations";
#define TRICLUST_LOG(severity)                                      \
  ::triclust::internal_logging::LogMessage(                         \
      ::triclust::LogLevel::severity, __FILE__, __LINE__)

/// Aborts with a diagnostic when `condition` is false. For programming
/// errors only; recoverable failures must return Status instead.
#define TRICLUST_CHECK(condition)                                   \
  (condition) ? (void)0                                             \
              : (void)::triclust::internal_logging::FatalLogMessage( \
                    __FILE__, __LINE__, #condition)

#define TRICLUST_CHECK_EQ(a, b) TRICLUST_CHECK((a) == (b))
#define TRICLUST_CHECK_NE(a, b) TRICLUST_CHECK((a) != (b))
#define TRICLUST_CHECK_LT(a, b) TRICLUST_CHECK((a) < (b))
#define TRICLUST_CHECK_LE(a, b) TRICLUST_CHECK((a) <= (b))
#define TRICLUST_CHECK_GT(a, b) TRICLUST_CHECK((a) > (b))
#define TRICLUST_CHECK_GE(a, b) TRICLUST_CHECK((a) >= (b))

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_LOGGING_H_
