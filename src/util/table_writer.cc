#include "src/util/table_writer.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

TableWriter::TableWriter(std::string title) : title_(std::move(title)) {}

void TableWriter::SetHeader(std::vector<std::string> header) {
  TRICLUST_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  TRICLUST_CHECK(!header_.empty());
  TRICLUST_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double value, int precision) {
  if (std::isnan(value)) return "-";
  return StrFormat("%.*f", precision, value);
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
      os << " | ";
    }
    os << "\n";
  };

  size_t total = 1;
  for (size_t w : widths) total += w + 3;

  os << "\n== " << title_ << " ==\n";
  print_row(header_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void TableWriter::PrintCsv(std::ostream& os) const {
  os << "# " << title_ << "\n";
  os << Join(header_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
  os.flush();
}

}  // namespace triclust
