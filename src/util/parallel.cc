#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace triclust {
namespace {

std::atomic<int> g_num_threads{1};

/// The calling thread's installed budget (ThreadBudget::kAmbient = none).
thread_local int t_budget = -1;

/// True while the current thread is executing a chunk of a parallel region;
/// nested ParallelFor/ParallelReduce calls with no installed budget then
/// degrade to inline serial execution instead of exploding recursively.
thread_local bool t_in_parallel_region = false;

int ResolveWidth(int raw) {
  if (raw > 0) return raw;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Persistent work-sharing pool with concurrent jobs — the backbone of the
/// two-level schedule. Any thread (including a pool worker running a
/// campaign-tier chunk) may submit a job; the submitter always participates
/// in its own job, so every job makes progress even when all workers are
/// busy elsewhere, which makes the nested submit-and-wait pattern
/// deadlock-free: waits only ever point down the nesting tree, and the
/// leaves never block. Workers are added lazily (never removed, capped) and
/// the singleton is intentionally leaked to avoid static-destruction races
/// with user code running at exit.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool;
    return *pool;
  }

  /// Executes chunk_fn(i) for every i in [0, num_chunks) using at most
  /// `width` concurrent threads (including the caller). Returns after all
  /// chunks completed. Helpers are best-effort: if none are free the
  /// caller simply runs every chunk itself.
  void Run(int width, size_t num_chunks,
           const std::function<void(size_t)>& chunk_fn) {
    if (width <= 1 || num_chunks <= 1) {
      for (size_t i = 0; i < num_chunks; ++i) chunk_fn(i);
      return;
    }
    Job job;
    job.chunk_fn = &chunk_fn;
    job.num_chunks = num_chunks;
    job.helper_slots =
        static_cast<int>(std::min<size_t>(width - 1, num_chunks - 1));
    {
      MutexLock lock(&mutex_);
      GrowWorkersLocked(job.helper_slots);
      job.next = jobs_;
      jobs_ = &job;
    }
    wake_cv_.SignalAll();
    try {
      RunChunks(job);
    } catch (...) {
      // The job (and the std::function behind chunk_fn) lives in this
      // frame: helpers must drain before the exception unwinds it. A body
      // throwing on a *worker* thread still terminates the process
      // (std::thread semantics) — see the contract in parallel.h.
      Retire(&job);
      throw;
    }
    Retire(&job);
  }

 private:
  /// One in-flight parallel region, linked into the pool's job list while
  /// helpers may still join. Chunks are claimed dynamically through
  /// next_chunk; the fixed chunk *layout* is the caller's, so claiming
  /// order never affects results.
  ///
  /// helper_slots, active_helpers, and next are guarded by the pool's
  /// mutex_ (inexpressible as TRICLUST_GUARDED_BY — the analysis cannot
  /// name a member of the *enclosing* object from a nested struct);
  /// next_chunk is a lock-free claim counter.
  struct Job {
    const std::function<void(size_t)>* chunk_fn = nullptr;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    /// Helper join slots remaining (beyond the submitting thread).
    int helper_slots = 0;
    /// Helpers currently executing chunks; the submitter waits for 0.
    int active_helpers = 0;
    Job* next = nullptr;
  };

  ThreadPool() = default;

  /// Caps lazy worker growth. Generous on purpose: oversubscribed budget
  /// schedules (tested explicitly) should degrade by OS time-slicing, not
  /// by silently reshaping the schedule.
  static int WorkerCap() {
    static const int cap = std::max(4 * ResolveWidth(0), 8);
    return cap;
  }

  void GrowWorkersLocked(int helpers_wanted) TRICLUST_REQUIRES(mutex_) {
    const int deficit = helpers_wanted - idle_workers_;
    const int room = WorkerCap() - static_cast<int>(workers_.size());
    const int spawn = std::min(deficit, room);
    for (int i = 0; i < spawn; ++i) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  Job* ClaimableJobLocked() TRICLUST_REQUIRES(mutex_) {
    for (Job* job = jobs_; job != nullptr; job = job->next) {
      if (job->helper_slots > 0 &&
          job->next_chunk.load(std::memory_order_relaxed) < job->num_chunks) {
        return job;
      }
    }
    return nullptr;
  }

  /// Executes chunks of `job` until the claim counter is exhausted. Chunk
  /// bodies run with the nesting flag set and no installed budget, so a
  /// plain kernel chunk stays serial while a campaign-tier chunk can
  /// install its own per-fit budget and fan out again (two-level
  /// schedule). RAII so a throwing body cannot leave the thread's state
  /// corrupted.
  static void RunChunks(Job& job) {
    struct ScopeGuard {
      bool saved_region;
      int saved_budget;
      ScopeGuard()
          : saved_region(t_in_parallel_region), saved_budget(t_budget) {
        t_in_parallel_region = true;
        t_budget = -1;
      }
      ~ScopeGuard() {
        t_in_parallel_region = saved_region;
        t_budget = saved_budget;
      }
    } guard;
    for (;;) {
      const size_t i = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.num_chunks) break;
      (*job.chunk_fn)(i);
    }
  }

  /// Unlinks `job` once no helper can touch it again. Helpers only claim
  /// linked jobs under the mutex, so after this returns the job frame is
  /// safe to unwind.
  void Retire(Job* job) TRICLUST_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    job->helper_slots = 0;  // no new joiners
    while (job->active_helpers != 0) done_cv_.Wait(&mutex_);
    Job** link = &jobs_;
    while (*link != job) link = &(*link)->next;
    *link = job->next;
  }

  void WorkerMain() {
    for (;;) WorkerStep();
  }

  /// One claim-run-report cycle of a pool worker: wait for a claimable
  /// job (returning on a wakeup with none, so WorkerMain re-enters), run
  /// its chunks unlocked, and report completion. Split out of WorkerMain
  /// so every lock acquisition is a scoped region the thread-safety
  /// analysis can follow — an infinite loop holding the lock across
  /// iterations is beyond it.
  void WorkerStep() TRICLUST_EXCLUDES(mutex_) {
    Job* job = nullptr;
    {
      MutexLock lock(&mutex_);
      job = ClaimableJobLocked();
      if (job == nullptr) {
        ++idle_workers_;
        wake_cv_.Wait(&mutex_);
        --idle_workers_;
        return;
      }
      --job->helper_slots;
      ++job->active_helpers;
    }
    RunChunks(*job);
    MutexLock lock(&mutex_);
    if (--job->active_helpers == 0) done_cv_.SignalAll();
  }

  Mutex mutex_;
  CondVar wake_cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_ TRICLUST_GUARDED_BY(mutex_);
  int idle_workers_ TRICLUST_GUARDED_BY(mutex_) = 0;
  /// Intrusive list of in-flight jobs (stack frames of their submitters).
  Job* jobs_ TRICLUST_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace

void SetNumThreads(int n) {
  TRICLUST_CHECK_GE(n, 0);
  g_num_threads.store(n, std::memory_order_relaxed);
}

int GetNumThreads() { return g_num_threads.load(std::memory_order_relaxed); }

int EffectiveNumThreads() { return ResolveWidth(GetNumThreads()); }

int CurrentParallelWidth() {
  if (t_budget >= 0) return ResolveWidth(t_budget);
  if (t_in_parallel_region) return 1;
  return EffectiveNumThreads();
}

ThreadBudget::ThreadBudget(int threads) : threads_(threads) {
  TRICLUST_CHECK_GE(threads, 0);
}

int ThreadBudget::threads() const {
  TRICLUST_CHECK(!is_ambient());
  return threads_;
}

int ThreadBudget::resolved() const { return ResolveWidth(threads()); }

ScopedThreadBudget::ScopedThreadBudget(ThreadBudget budget)
    : previous_(t_budget), installed_(!budget.is_ambient()) {
  if (installed_) t_budget = budget.threads_;
}

ScopedThreadBudget::~ScopedThreadBudget() {
  if (installed_) t_budget = previous_;
}

ScopedNumThreads::ScopedNumThreads(int n) : previous_(GetNumThreads()) {
  SetNumThreads(n);
}

ScopedNumThreads::~ScopedNumThreads() { SetNumThreads(previous_); }

ScopedSerialKernels::ScopedSerialKernels() : budget_(ThreadBudget::Serial()) {}

ScopedSerialKernels::~ScopedSerialKernels() = default;

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const int width = CurrentParallelWidth();
  if (width <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  // Oversplit (~4 chunks per thread) so dynamic claiming balances uneven
  // rows, e.g. skewed sparse row lengths.
  const size_t target_chunks = static_cast<size_t>(width) * 4;
  const size_t chunk =
      std::max(grain, std::max<size_t>(1, (n + target_chunks - 1) /
                                              target_chunks));
  const size_t num_chunks = (n + chunk - 1) / chunk;
  ThreadPool::Instance().Run(width, num_chunks, [&](size_t i) {
    const size_t lo = begin + i * chunk;
    const size_t hi = std::min(end, lo + chunk);
    body(lo, hi);
  });
}

double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_sum) {
  if (begin >= end) return 0.0;
  TRICLUST_CHECK_GT(grain, 0u);
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) return chunk_sum(begin, end);
  const int width = CurrentParallelWidth();
  if (width <= 1) {
    // Same fixed chunks, same combine order as the parallel path below —
    // this is what makes the reduction bit-identical at EVERY width, so a
    // fit under any thread budget reproduces a serial fit exactly.
    double total = 0.0;
    for (size_t i = 0; i < num_chunks; ++i) {
      const size_t lo = begin + i * grain;
      const size_t hi = std::min(end, lo + grain);
      total += chunk_sum(lo, hi);
    }
    return total;
  }
  // Fixed-size chunks: the partition depends only on (n, grain), never on
  // the width, and partials are combined in chunk order — see the
  // determinism contract in parallel.h.
  std::vector<double> partials(num_chunks, 0.0);
  ThreadPool::Instance().Run(width, num_chunks, [&](size_t i) {
    const size_t lo = begin + i * grain;
    const size_t hi = std::min(end, lo + grain);
    partials[i] = chunk_sum(lo, hi);
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

}  // namespace triclust
