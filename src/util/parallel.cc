#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/logging.h"

namespace triclust {
namespace {

std::atomic<int> g_num_threads{1};

/// True while the current thread is executing a chunk of a parallel region;
/// nested ParallelFor/ParallelReduce calls then degrade to inline serial
/// execution instead of deadlocking on the shared pool.
thread_local bool t_in_parallel_region = false;

/// Persistent work-sharing pool. One job at a time; the submitting thread
/// participates in the job, so a pool serving n-way parallelism keeps n−1
/// workers. Workers are added lazily (never removed) and the singleton is
/// intentionally leaked to avoid static-destruction races with user code
/// running at exit.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool;
    return *pool;
  }

  /// Executes chunk_fn(i) for every i in [0, num_chunks) using at most
  /// `threads` concurrent threads (including the caller). Returns after all
  /// chunks completed.
  void Run(int threads, size_t num_chunks,
           const std::function<void(size_t)>& chunk_fn) {
    if (threads <= 1 || num_chunks <= 1) {
      for (size_t i = 0; i < num_chunks; ++i) chunk_fn(i);
      return;
    }
    // One job at a time; concurrent top-level submitters queue here.
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    const int helpers =
        static_cast<int>(std::min<size_t>(threads - 1, num_chunks - 1));
    EnsureWorkers(helpers);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      chunk_fn_ = &chunk_fn;
      num_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      active_helpers_ = helpers;
      pending_helpers_ = helpers;
      ++generation_;
    }
    wake_cv_.notify_all();
    try {
      RunChunks();
    } catch (...) {
      // The job state (and the std::function behind chunk_fn_) lives in the
      // caller's frame: helpers must drain before the exception unwinds it.
      // A body throwing on a *worker* thread still terminates the process
      // (std::thread semantics) — see the contract in parallel.h.
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return pending_helpers_ == 0; });
      chunk_fn_ = nullptr;
      throw;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_helpers_ == 0; });
    chunk_fn_ = nullptr;
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(int n) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < n) {
      const int id = static_cast<int>(workers_.size());
      workers_.emplace_back([this, id] { WorkerMain(id); });
    }
  }

  void RunChunks() {
    // RAII so a throwing body cannot leave the thread marked in-region
    // (which would silently serialize all its future parallel calls).
    struct RegionGuard {
      RegionGuard() { t_in_parallel_region = true; }
      ~RegionGuard() { t_in_parallel_region = false; }
    } guard;
    for (;;) {
      const size_t i = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks_) break;
      (*chunk_fn_)(i);
    }
  }

  void WorkerMain(int id) {
    uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock,
                      [&] { return generation_ != seen_generation; });
        seen_generation = generation_;
        if (id >= active_helpers_) continue;  // not part of this job
      }
      RunChunks();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_helpers_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex job_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(size_t)>* chunk_fn_ = nullptr;
  size_t num_chunks_ = 0;
  std::atomic<size_t> next_chunk_{0};
  int active_helpers_ = 0;
  int pending_helpers_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

void SetNumThreads(int n) {
  TRICLUST_CHECK_GE(n, 0);
  g_num_threads.store(n, std::memory_order_relaxed);
}

int GetNumThreads() { return g_num_threads.load(std::memory_order_relaxed); }

int EffectiveNumThreads() {
  const int n = GetNumThreads();
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ScopedNumThreads::ScopedNumThreads(int n) : previous_(GetNumThreads()) {
  SetNumThreads(n);
}

ScopedNumThreads::~ScopedNumThreads() { SetNumThreads(previous_); }

ScopedSerialKernels::ScopedSerialKernels()
    : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

ScopedSerialKernels::~ScopedSerialKernels() {
  t_in_parallel_region = previous_;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const int threads = EffectiveNumThreads();
  if (threads <= 1 || t_in_parallel_region || n <= grain) {
    body(begin, end);
    return;
  }
  // Oversplit (~4 chunks per thread) so dynamic claiming balances uneven
  // rows, e.g. skewed sparse row lengths.
  const size_t target_chunks = static_cast<size_t>(threads) * 4;
  const size_t chunk =
      std::max(grain, std::max<size_t>(1, (n + target_chunks - 1) /
                                              target_chunks));
  const size_t num_chunks = (n + chunk - 1) / chunk;
  ThreadPool::Instance().Run(threads, num_chunks, [&](size_t i) {
    const size_t lo = begin + i * chunk;
    const size_t hi = std::min(end, lo + chunk);
    body(lo, hi);
  });
}

double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_sum) {
  if (begin >= end) return 0.0;
  TRICLUST_CHECK_GT(grain, 0u);
  const size_t n = end - begin;
  const int threads = EffectiveNumThreads();
  if (threads <= 1 || t_in_parallel_region || n <= grain) {
    return chunk_sum(begin, end);
  }
  // Fixed-size chunks: the partition depends only on (n, grain), never on
  // the thread count, and partials are combined in chunk order — see the
  // determinism contract in parallel.h.
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<double> partials(num_chunks, 0.0);
  ThreadPool::Instance().Run(threads, num_chunks, [&](size_t i) {
    const size_t lo = begin + i * grain;
    const size_t hi = std::min(end, lo + grain);
    partials[i] = chunk_sum(lo, hi);
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

}  // namespace triclust
