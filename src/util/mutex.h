#ifndef TRICLUST_SRC_UTIL_MUTEX_H_
#define TRICLUST_SRC_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace triclust {

/// Annotated mutual-exclusion lock — a thin std::mutex wrapper carrying
/// the capability attributes clang's -Wthread-safety analysis checks
/// against (see src/util/thread_annotations.h). All lock-protected state
/// in triclust uses this type plus TRICLUST_GUARDED_BY so that an access
/// outside the lock is a compile error under clang, not a latent race.
///
/// Style (LevelDB port::Mutex): prefer the RAII MutexLock; call
/// Lock()/Unlock() directly only in code that must release mid-scope
/// (e.g. the worker loop in parallel.cc).
class TRICLUST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TRICLUST_ACQUIRE() { mu_.lock(); }
  void Unlock() TRICLUST_RELEASE() { mu_.unlock(); }
  bool TryLock() TRICLUST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op at runtime; teaches the analysis the lock is held on paths it
  /// cannot follow (callback indirection and the like).
  void AssertHeld() TRICLUST_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock: acquires the mutex for the lifetime of the scope. The
/// SCOPED_CAPABILITY annotation lets the analysis track the acquire in
/// the constructor and the release in the destructor.
class TRICLUST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TRICLUST_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() TRICLUST_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with the annotated Mutex. Wait() carries the
/// standard condition-variable contract: the caller holds the mutex, the
/// wait releases it while blocked and reacquires it before returning —
/// which to the analysis is simply "requires the mutex", since it is held
/// at both edges of the call. Spurious wakeups are possible; always wait
/// in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu (held by the caller), blocks until notified
  /// (or spuriously woken), and reacquires *mu before returning.
  void Wait(Mutex* mu) TRICLUST_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller keeps holding the mutex
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_MUTEX_H_
