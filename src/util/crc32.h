#ifndef TRICLUST_SRC_UTIL_CRC32_H_
#define TRICLUST_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace triclust {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/`cksum -o 3`
/// variant) of `len` bytes at `data`. Pass a previous return value as
/// `seed` to checksum a byte stream incrementally:
///   crc = Crc32(a.data(), a.size());
///   crc = Crc32(b.data(), b.size(), crc);   // == Crc32 of a+b
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Convenience overload for whole strings.
inline uint32_t Crc32(const std::string& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_CRC32_H_
