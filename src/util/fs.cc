#include "src/util/fs.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace triclust {

// --- PosixFileSystem ---------------------------------------------------------

namespace {

/// fd-backed writable file; Sync is a real fsync, so the durability the
/// interface promises is the durability the kernel delivers.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const std::string& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("write failed: " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IoError("fsync failed: " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IoError("close failed: " + path_);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

/// fsync the file or directory at `path` via a fresh descriptor.
Status SyncExistingPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixFileSystem::NewWritableFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("cannot open for writing: " + path);
  return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
}

Result<std::string> PosixFileSystem::ReadFileToString(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return contents.str();
}

Result<std::unique_ptr<std::istream>> PosixFileSystem::NewReadStream(
    const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) return Status::IoError("cannot open for reading: " + path);
  return std::unique_ptr<std::istream>(std::move(in));
}

Status PosixFileSystem::Rename(const std::string& from,
                               const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename failed: " + from + " -> " + to);
  }
  return Status::OK();
}

Status PosixFileSystem::Remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return Status::IoError("remove failed: " + path);
  }
  return Status::OK();
}

Status PosixFileSystem::SyncDirectory(const std::string& path) {
  return SyncExistingPath(path.empty() ? "." : path);
}

Status PosixFileSystem::CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Walk the path left to right, creating each component (mkdir -p).
  std::string prefix;
  size_t pos = 0;
  while (pos != std::string::npos) {
    const size_t next = path.find('/', pos + 1);
    prefix = next == std::string::npos ? path : path.substr(0, next);
    pos = next;
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (mkdir(prefix.c_str(), 0755) != 0) {
      struct stat st;
      if (stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        return Status::IoError("cannot create directory: " + prefix);
      }
    }
  }
  return Status::OK();
}

bool PosixFileSystem::Exists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> PosixFileSystem::ListDirectory(
    const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    return Status::IoError("cannot open directory: " + path);
  }
  std::vector<std::string> names;
  while (const dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  closedir(dir);
  return names;
}

FileSystem* GetDefaultFileSystem() {
  // Leaked on purpose: call sites may persist state during static
  // destruction, and a destructed singleton would turn those into UB.
  static PosixFileSystem* const kDefault = new PosixFileSystem();
  return kDefault;
}

// --- FaultInjectionFileSystem ------------------------------------------------

/// WritableFile wrapper that charges each Append/Sync/Close against the
/// injector's fault schedule and maintains the file's synced-length
/// bookkeeping for the crash model. Named (not anonymous-namespace) so the
/// friend declaration in fs.h reaches it.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionFileSystem* fs, std::string path,
                             std::unique_ptr<WritableFile> base)
      : fs_(fs), path_(std::move(path)), base_(std::move(base)) {}

  ~FaultInjectionWritableFile() override = default;  // base_ closes itself

  Status Append(const std::string& data) override {
    TRICLUST_RETURN_IF_ERROR(fs_->ChargeOp("append", path_));
    bool torn;
    {
      MutexLock lock(&fs_->mu_);
      torn = fs_->torn_writes_;
    }
    if (torn) {
      // Short write: a durable-looking prefix lands, the tail never does.
      const std::string prefix = data.substr(0, data.size() / 2);
      // Deliberate discard: the injected IoError below is the outcome the
      // caller must see; a failure writing the torn prefix only makes the
      // simulated crash torn at offset 0 instead.
      (void)base_->Append(prefix);
      MutexLock lock(&fs_->mu_);
      fs_->files_[path_].length += prefix.size();
      ++fs_->injected_failures_;
      return Status::IoError("injected torn write: " + path_);
    }
    TRICLUST_RETURN_IF_ERROR(base_->Append(data));
    MutexLock lock(&fs_->mu_);
    fs_->files_[path_].length += data.size();
    return Status::OK();
  }

  Status Sync() override {
    TRICLUST_RETURN_IF_ERROR(fs_->ChargeOp("sync", path_));
    TRICLUST_RETURN_IF_ERROR(base_->Sync());
    MutexLock lock(&fs_->mu_);
    auto& state = fs_->files_[path_];
    state.synced_length = state.length;
    state.ever_synced = true;
    return Status::OK();
  }

  Status Close() override {
    TRICLUST_RETURN_IF_ERROR(fs_->ChargeOp("close", path_));
    return base_->Close();
  }

 private:
  FaultInjectionFileSystem* const fs_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionFileSystem::FaultInjectionFileSystem(FileSystem* base)
    : base_(base) {}

FaultInjectionFileSystem::~FaultInjectionFileSystem() = default;

void FaultInjectionFileSystem::FailAt(int op) {
  MutexLock lock(&mu_);
  fail_at_op_ = op;
  crash_on_fail_ = false;
}

void FaultInjectionFileSystem::CrashAt(int op) {
  MutexLock lock(&mu_);
  fail_at_op_ = op;
  crash_on_fail_ = true;
}

void FaultInjectionFileSystem::SetTransientFailures(int count) {
  MutexLock lock(&mu_);
  transient_failures_left_ = count;
}

void FaultInjectionFileSystem::SetTornWrites(bool enabled) {
  MutexLock lock(&mu_);
  torn_writes_ = enabled;
}

void FaultInjectionFileSystem::ResetFaults() {
  MutexLock lock(&mu_);
  op_counter_ = 0;
  injected_failures_ = 0;
  fail_at_op_ = -1;
  crash_on_fail_ = false;
  crashed_ = false;
  transient_failures_left_ = 0;
  torn_writes_ = false;
}

int FaultInjectionFileSystem::mutating_ops() const {
  MutexLock lock(&mu_);
  return op_counter_;
}

int FaultInjectionFileSystem::injected_failures() const {
  MutexLock lock(&mu_);
  return injected_failures_;
}

Status FaultInjectionFileSystem::ChargeOp(const char* op_name,
                                          const std::string& path) {
  MutexLock lock(&mu_);
  const int op = op_counter_++;
  if (crashed_) {
    ++injected_failures_;
    return Status::IoError(std::string("injected crash (filesystem down): ") +
                           op_name + " " + path);
  }
  if (fail_at_op_ >= 0 && op >= fail_at_op_) {
    ++injected_failures_;
    if (crash_on_fail_) {
      crashed_ = true;
      // Deliberate discard: the injected fault below is the caller-visible
      // outcome; a truncate error while shredding the page cache cannot
      // make the simulated power loss any more failed.
      (void)DropUnsyncedDataLocked();  // power loss: the page cache is gone
    }
    return Status::IoError(std::string("injected fault at op ") +
                           std::to_string(op) + ": " + op_name + " " + path);
  }
  if (transient_failures_left_ > 0) {
    --transient_failures_left_;
    ++injected_failures_;
    return Status::IoError(std::string("injected transient fault: ") +
                           op_name + " " + path);
  }
  return Status::OK();
}

Status FaultInjectionFileSystem::DropUnsyncedData() {
  MutexLock lock(&mu_);
  return DropUnsyncedDataLocked();
}

Status FaultInjectionFileSystem::DropUnsyncedDataLocked() {
  Status first_error;
  for (auto it = files_.begin(); it != files_.end();) {
    const std::string& path = it->first;
    FileState& state = it->second;
    if (!state.ever_synced) {
      // Created and never fsynced: the file itself may not have survived.
      (void)base_->Remove(path);  // best effort — it may already be gone
      it = files_.erase(it);
      continue;
    }
    if (state.length > state.synced_length) {
      // Appended-but-unsynced tail: truncate to the durable prefix. The
      // crash model needs a real truncate, which the FileSystem interface
      // deliberately does not offer writers; go to the OS directly.
      if (::truncate(path.c_str(),
                     static_cast<off_t>(state.synced_length)) != 0 &&
          first_error.ok()) {
        first_error = Status::IoError("crash-model truncate failed: " + path);
      }
      state.length = state.synced_length;
    }
    ++it;
  }
  return first_error;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionFileSystem::NewWritableFile(
    const std::string& path) {
  TRICLUST_RETURN_IF_ERROR(ChargeOp("open", path));
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                            base_->NewWritableFile(path));
  {
    MutexLock lock(&mu_);
    files_[path] = FileState{};  // O_TRUNC: previous durability is void
  }
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(this, path, std::move(base)));
}

Result<std::string> FaultInjectionFileSystem::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Result<std::unique_ptr<std::istream>> FaultInjectionFileSystem::NewReadStream(
    const std::string& path) {
  // Read-only probe: passed through uncounted, like ReadFileToString.
  return base_->NewReadStream(path);
}

Status FaultInjectionFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  TRICLUST_RETURN_IF_ERROR(ChargeOp("rename", from));
  TRICLUST_RETURN_IF_ERROR(base_->Rename(from, to));
  MutexLock lock(&mu_);
  const auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionFileSystem::Remove(const std::string& path) {
  TRICLUST_RETURN_IF_ERROR(ChargeOp("remove", path));
  TRICLUST_RETURN_IF_ERROR(base_->Remove(path));
  MutexLock lock(&mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionFileSystem::SyncDirectory(const std::string& path) {
  TRICLUST_RETURN_IF_ERROR(ChargeOp("syncdir", path));
  return base_->SyncDirectory(path);
}

Status FaultInjectionFileSystem::CreateDirectories(const std::string& path) {
  TRICLUST_RETURN_IF_ERROR(ChargeOp("mkdir", path));
  return base_->CreateDirectories(path);
}

bool FaultInjectionFileSystem::Exists(const std::string& path) {
  return base_->Exists(path);
}

Result<std::vector<std::string>> FaultInjectionFileSystem::ListDirectory(
    const std::string& path) {
  return base_->ListDirectory(path);
}

}  // namespace triclust
