#ifndef TRICLUST_SRC_UTIL_RNG_H_
#define TRICLUST_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace triclust {

/// Deterministic pseudo-random number generator (xoshiro256**) with the
/// sampling helpers the synthetic-data generator and the solvers need.
///
/// Every stochastic component in the library takes an explicit seed so that
/// experiments are reproducible bit-for-bit across runs; nothing in the
/// library reads entropy from the environment.
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with splitmix64 so nearby
  /// seeds produce unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Samples an index from unnormalized non-negative `weights`.
  /// Weights summing to zero yield a uniform draw.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples from a Zipf distribution over {0, ..., n-1} with exponent `s`
  /// (probability of rank r proportional to 1/(r+1)^s). Uses an inverted-CDF
  /// table; intended for n up to a few hundred thousand.
  size_t Zipf(size_t n, double s);

  /// Poisson-distributed count with the given mean (Knuth's method for small
  /// means, normal approximation above 64).
  int Poisson(double mean);

  /// Random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent generator stream (useful for parallel workloads
  /// needing decorrelated per-worker RNGs).
  Rng Fork();

 private:
  uint64_t state_[4];
  // Cached Zipf CDF so repeated draws with identical (n, s) are O(log n).
  std::vector<double> zipf_cdf_;
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_UTIL_RNG_H_
