#include "src/util/rng.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace triclust {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro requires a non-zero state; splitmix cannot produce all-zero from
  // any seed, but keep the guarantee explicit.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TRICLUST_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextUint64Below(uint64_t bound) {
  TRICLUST_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TRICLUST_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64Below(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mean + stddev * z0;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  TRICLUST_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TRICLUST_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return NextUint64Below(weights.size());
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  TRICLUST_CHECK_GT(n, 0u);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double cum = 0.0;
    for (size_t r = 0; r < n; ++r) {
      cum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      zipf_cdf_[r] = cum;
    }
    for (auto& v : zipf_cdf_) v /= cum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<size_t>(std::min<ptrdiff_t>(
      it - zipf_cdf_.begin(), static_cast<ptrdiff_t>(n) - 1));
}

int Rng::Poisson(double mean) {
  TRICLUST_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return std::max(0, static_cast<int>(std::lround(v)));
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int count = 0;
  while (prod > limit) {
    ++count;
    prod *= NextDouble();
  }
  return count;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextUint64Below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace triclust
