#ifndef TRICLUST_SRC_DATA_SYNTHETIC_H_
#define TRICLUST_SRC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/data/corpus.h"
#include "src/text/lexicon.h"

namespace triclust {

/// Configuration of the synthetic Twitter-campaign generator.
///
/// The generator substitutes for the paper's proprietary November-2012
/// California-ballot collection (Propositions 30/37); see DESIGN.md §4 for
/// the substitution argument. Every mechanism the tri-clustering framework
/// exploits is a knob here, so experiments can both reproduce the paper's
/// comparisons and ablate the data assumptions.
struct SyntheticConfig {
  uint64_t seed = 42;

  // --- population ---
  size_t num_users = 600;
  /// Stance prior over {pos, neg, neu}; needs not be normalized.
  double stance_pos = 0.45;
  double stance_neg = 0.35;
  double stance_neu = 0.20;
  /// Per-day probability that a user flips stance (Observation 2: small).
  double user_flip_prob = 0.015;
  /// Zipf exponent of per-user activity (long-tail: few super-active users).
  double user_activity_zipf = 1.1;

  // --- vocabulary ---
  size_t num_polar_words_per_class = 120;
  size_t num_topic_words = 300;
  size_t num_function_words = 150;
  /// Zipf exponent of within-pool word frequencies.
  double word_zipf = 1.05;
  /// Vocabulary drift (paper Observation 1 / Figure 4): the Zipf rank order
  /// of the polar and topic pools rotates by this fraction of the pool per
  /// day, so which words are *popular* changes over the campaign while each
  /// word's sentiment stays fixed. 0 disables drift.
  double vocab_drift_per_day = 0.04;

  // --- tweet volume ---
  int num_days = 30;
  double base_tweets_per_day = 250.0;
  /// Days with a volume burst (e.g. debate nights, election day).
  std::vector<int> burst_days = {20};
  double burst_multiplier = 4.0;
  /// Days with zero tweet volume (outages, degenerate replay days). Stance
  /// trajectories still evolve through the silence. Overrides bursts.
  std::vector<int> dead_days;

  // --- adversarial knobs (scenario suite; all inert by default) -----------
  /// First day of a topic hijack: from this day on, the polar word pools
  /// swap roles in generated text (positive-stance authors draw from the
  /// negative pool and vice versa), so tweet text contradicts any lexicon
  /// built before the hijack while user stances and labels are unchanged.
  /// Negative disables.
  int hijack_day = -1;
  /// Spam/botnet authors appended after the genuine population. They are
  /// kUnlabeled (excluded from accuracy) but flood the matrix with
  /// high-polar-rate text of a random class each tweet. Spam draws from a
  /// separate RNG stream, so enabling it never perturbs the genuine
  /// corpus for a given seed; spam tweets are never retweeted by genuine
  /// users.
  size_t num_spam_users = 0;
  /// Poisson mean of per-spam-user daily tweet volume.
  double spam_tweets_per_user_per_day = 0.0;
  /// Fraction of spam tweet tokens drawn from a polar pool.
  double spam_polar_word_rate = 0.9;

  // --- tweet content ---
  int min_tokens_per_tweet = 6;
  int max_tokens_per_tweet = 14;
  /// Fraction of tokens drawn from the author-stance polar pool.
  double polar_word_rate = 0.35;
  /// Probability a "polar" token actually comes from the opposite pool
  /// (the paper's "Monsanto is pure evil" effect: tweet-level text lies).
  double off_class_noise = 0.12;
  /// Probability a pos/neg user emits a neutral tweet.
  double off_stance_tweet_prob = 0.10;
  /// Rate at which neutral tweets still emit polar words (random class).
  double neutral_polar_rate = 0.06;
  /// Probability a tweet gets an emoticon matching its class.
  double emoticon_prob = 0.15;

  // --- retweets ---
  /// Fraction of each day's volume that are retweets of recent tweets.
  double retweet_fraction = 0.25;
  /// Probability a retweet links same-stance users (graph homophily; the
  /// signal behind the β graph-regularization term).
  double retweet_homophily = 0.85;
  /// How many previous days retweets can reach back to.
  int retweet_window_days = 2;
};

/// Prop-30-like preset: balanced stances, moderate volume (the paper's
/// "Temporary Taxes to Fund Education" topic — 8777 pos / 5014 neg tweets).
SyntheticConfig Prop30LikeConfig(uint64_t seed = 42);

/// Prop-37-like preset: heavily positive-skewed, higher volume (the paper's
/// "Genetically Engineered Foods" topic — 34789 pos / 2587 neg tweets).
SyntheticConfig Prop37LikeConfig(uint64_t seed = 43);

/// A generated campaign: the corpus plus the generator's exact word-polarity
/// ground truth (used to derive realistic, imperfect priors).
struct SyntheticDataset {
  Corpus corpus;
  /// Complete, error-free polarity of every polar word.
  SentimentLexicon true_lexicon;
};

/// Generates a corpus from `config`. Deterministic in config.seed.
SyntheticDataset GenerateSynthetic(const SyntheticConfig& config);

/// Derives an imperfect prior lexicon from the ground truth: keeps each
/// entry with probability `coverage` and flips its polarity with probability
/// `error_rate` — mimicking the automatically-built word lists of [28].
SentimentLexicon CorruptLexicon(const SentimentLexicon& truth,
                                double coverage, double error_rate,
                                uint64_t seed);

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_SYNTHETIC_H_
