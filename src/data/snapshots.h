#ifndef TRICLUST_SRC_DATA_SNAPSHOTS_H_
#define TRICLUST_SRC_DATA_SNAPSHOTS_H_

#include <vector>

#include "src/data/corpus.h"

namespace triclust {

/// One temporal snapshot of the stream: the tweets whose timestamps fall in
/// [first_day, last_day]. The online framework consumes these in order.
struct Snapshot {
  int first_day = 0;
  int last_day = 0;
  std::vector<size_t> tweet_ids;

  size_t size() const { return tweet_ids.size(); }
};

/// Splits the corpus into one snapshot per day (the paper's experimental
/// granularity: "we set the unit of timestamp as per day"). Empty days
/// produce empty snapshots so day indices stay aligned.
std::vector<Snapshot> SplitByDay(const Corpus& corpus);

/// Splits into consecutive windows of `days_per_window` days.
std::vector<Snapshot> SplitByWindow(const Corpus& corpus,
                                    int days_per_window);

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_SNAPSHOTS_H_
