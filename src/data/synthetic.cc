#include "src/data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "src/text/tokenizer.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace triclust {

namespace {

// Themed names for the most frequent polar words, echoing the paper's
// Table 2 vocabulary; remaining polar words get generated names.
constexpr std::array<std::string_view, 10> kThemedPositive = {
    "#yeson37",      "labelgmo", "monsanto", "stopmonsanto", "carighttoknow",
    "health",        "safe",     "cancer",   "righttoknow",  "organic"};
constexpr std::array<std::string_view, 10> kThemedNegative = {
    "corn",   "farmer", "#noprop37", "crop",  "million",
    "feed",   "india",  "seed",      "biotech", "yield"};
constexpr std::array<std::string_view, 12> kThemedTopic = {
    "gmo",   "prop37", "california", "ballot",  "label", "food",
    "vote",  "measure", "initiative", "genetic", "crops", "election"};

struct WordPools {
  std::vector<std::string> positive;
  std::vector<std::string> negative;
  std::vector<std::string> topic;
  std::vector<std::string> function;
};

WordPools BuildWordPools(const SyntheticConfig& config) {
  WordPools pools;
  pools.positive.reserve(config.num_polar_words_per_class);
  pools.negative.reserve(config.num_polar_words_per_class);
  for (size_t i = 0; i < config.num_polar_words_per_class; ++i) {
    pools.positive.push_back(
        i < kThemedPositive.size()
            ? std::string(kThemedPositive[i])
            : StrFormat("proword%zu", i));
    pools.negative.push_back(
        i < kThemedNegative.size()
            ? std::string(kThemedNegative[i])
            : StrFormat("conword%zu", i));
  }
  pools.topic.reserve(config.num_topic_words);
  for (size_t i = 0; i < config.num_topic_words; ++i) {
    pools.topic.push_back(i < kThemedTopic.size()
                              ? std::string(kThemedTopic[i])
                              : StrFormat("topicword%zu", i));
  }
  pools.function.reserve(config.num_function_words);
  for (size_t i = 0; i < config.num_function_words; ++i) {
    pools.function.push_back(StrFormat("fillerword%zu", i));
  }
  return pools;
}

Sentiment SampleStance(const SyntheticConfig& config, Rng* rng) {
  const size_t c = rng->Categorical(
      {config.stance_pos, config.stance_neg, config.stance_neu});
  return SentimentFromIndex(static_cast<int>(c));
}

Sentiment FlipStance(Sentiment current, Rng* rng) {
  // A flip moves to one of the other two classes uniformly.
  const int cur = SentimentIndex(current);
  const int offset = 1 + static_cast<int>(rng->NextUint64Below(2));
  return SentimentFromIndex((cur + offset) % kNumSentimentClasses);
}

}  // namespace

SyntheticConfig Prop30LikeConfig(uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_users = 500;
  config.stance_pos = 0.45;
  config.stance_neg = 0.35;
  config.stance_neu = 0.20;
  config.num_days = 30;
  config.base_tweets_per_day = 160.0;
  config.burst_days = {8, 24};
  config.burst_multiplier = 5.0;
  return config;
}

SyntheticConfig Prop37LikeConfig(uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_users = 800;
  config.stance_pos = 0.72;
  config.stance_neg = 0.16;
  config.stance_neu = 0.12;
  config.num_days = 30;
  config.base_tweets_per_day = 320.0;
  config.burst_days = {12, 24};
  config.burst_multiplier = 4.0;
  return config;
}

SyntheticDataset GenerateSynthetic(const SyntheticConfig& config) {
  TRICLUST_CHECK_GT(config.num_users, 0u);
  TRICLUST_CHECK_GT(config.num_days, 0);
  TRICLUST_CHECK_GE(config.min_tokens_per_tweet, 1);
  TRICLUST_CHECK_GE(config.max_tokens_per_tweet,
                    config.min_tokens_per_tweet);
  Rng rng(config.seed);
  const WordPools pools = BuildWordPools(config);

  SyntheticDataset dataset;
  for (const std::string& w : pools.positive) {
    dataset.true_lexicon.Add(w, Sentiment::kPositive);
  }
  for (const std::string& w : pools.negative) {
    dataset.true_lexicon.Add(w, Sentiment::kNegative);
  }

  Corpus& corpus = dataset.corpus;

  // --- users: stance trajectories and long-tail activity -------------------
  std::vector<Sentiment> stance(config.num_users);
  std::vector<double> activity(config.num_users);
  for (size_t u = 0; u < config.num_users; ++u) {
    corpus.AddUser(StrFormat("user%zu", u));
    stance[u] = SampleStance(config, &rng);
    activity[u] =
        1.0 / std::pow(static_cast<double>(u % 97 + 1),
                       config.user_activity_zipf);
  }

  std::vector<std::array<int, 3>> stance_days(
      config.num_users, std::array<int, 3>{0, 0, 0});

  // Tweets of the recent window, per class, for retweet selection.
  std::vector<std::vector<size_t>> recent_by_class(kNumSentimentClasses);
  std::vector<std::vector<size_t>> today_by_class(kNumSentimentClasses);
  std::vector<int> recent_day_of;  // parallel to corpus tweets

  // Drifting popularity (Observation 1): the Zipf head rotates through the
  // pool over the campaign, so different words are frequent in different
  // periods while polarities never change.
  int current_day = 0;
  auto sample_word = [&](const std::vector<std::string>& pool, bool drifts,
                         Rng* r) -> const std::string& {
    const size_t rank = r->Zipf(pool.size(), config.word_zipf);
    if (!drifts || config.vocab_drift_per_day <= 0.0) return pool[rank];
    const size_t offset = static_cast<size_t>(
        config.vocab_drift_per_day * static_cast<double>(current_day) *
        static_cast<double>(pool.size()));
    return pool[(rank + offset) % pool.size()];
  };

  // Topic hijack (scenario suite): once active, text-level polarity is
  // inverted — the pools swap roles — while stances and labels stay put.
  const auto hijacked = [&]() {
    return config.hijack_day >= 0 && current_day >= config.hijack_day;
  };

  auto compose_text = [&](Sentiment cls, Rng* r) {
    const int len = static_cast<int>(r->UniformInt(
        config.min_tokens_per_tweet, config.max_tokens_per_tweet));
    std::vector<std::string> tokens;
    tokens.reserve(static_cast<size_t>(len) + 1);
    for (int i = 0; i < len; ++i) {
      const double roll = r->NextDouble();
      if (cls != Sentiment::kNeutral && roll < config.polar_word_rate) {
        const bool off_class = r->Bernoulli(config.off_class_noise);
        const bool positive =
            ((cls == Sentiment::kPositive) != off_class) != hijacked();
        tokens.push_back(sample_word(
            positive ? pools.positive : pools.negative, /*drifts=*/true, r));
      } else if (cls == Sentiment::kNeutral &&
                 roll < config.neutral_polar_rate) {
        tokens.push_back(
            sample_word(r->Bernoulli(0.5) ? pools.positive : pools.negative,
                        /*drifts=*/true, r));
      } else if (roll < 0.75) {
        tokens.push_back(sample_word(pools.topic, /*drifts=*/true, r));
      } else {
        tokens.push_back(sample_word(pools.function, /*drifts=*/false, r));
      }
    }
    if (cls == Sentiment::kPositive && r->Bernoulli(config.emoticon_prob)) {
      tokens.emplace_back(hijacked() ? ":(" : ":)");
    } else if (cls == Sentiment::kNegative &&
               r->Bernoulli(config.emoticon_prob)) {
      tokens.emplace_back(hijacked() ? ":)" : ":(");
    }
    return Join(tokens, " ");
  };

  // Spam/botnet population (scenario suite). Spam users sit after the
  // genuine ids and draw from their own RNG stream so that, for a fixed
  // seed, the genuine corpus is bit-identical whether or not spam is
  // enabled. Spam tweets and users are kUnlabeled: they poison the matrix
  // and the user graph without entering accuracy denominators.
  Rng spam_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<size_t> spam_users;
  spam_users.reserve(config.num_spam_users);
  for (size_t s = 0; s < config.num_spam_users; ++s) {
    spam_users.push_back(corpus.AddUser(StrFormat("spambot%zu", s)));
  }
  auto emit_spam_day = [&](int day, std::vector<int>* day_of) {
    if (spam_users.empty() || config.spam_tweets_per_user_per_day <= 0.0) {
      return;
    }
    for (size_t spammer : spam_users) {
      const int n = spam_rng.Poisson(config.spam_tweets_per_user_per_day);
      for (int i = 0; i < n; ++i) {
        const int len = static_cast<int>(spam_rng.UniformInt(
            config.min_tokens_per_tweet, config.max_tokens_per_tweet));
        std::vector<std::string> tokens;
        tokens.reserve(static_cast<size_t>(len));
        for (int t = 0; t < len; ++t) {
          if (spam_rng.NextDouble() < config.spam_polar_word_rate) {
            tokens.push_back(sample_word(spam_rng.Bernoulli(0.5)
                                             ? pools.positive
                                             : pools.negative,
                                         /*drifts=*/true, &spam_rng));
          } else {
            tokens.push_back(
                sample_word(pools.topic, /*drifts=*/true, &spam_rng));
          }
        }
        const size_t id = corpus.AddTweet(spammer, day, Join(tokens, " "),
                                          Sentiment::kUnlabeled);
        day_of->push_back(day);
        TRICLUST_CHECK_EQ(day_of->size(), id + 1);
      }
    }
  };

  for (int day = 0; day < config.num_days; ++day) {
    current_day = day;
    // Stance evolution (Observation 2: sticky).
    for (size_t u = 0; u < config.num_users; ++u) {
      if (rng.Bernoulli(config.user_flip_prob)) {
        stance[u] = FlipStance(stance[u], &rng);
      }
      corpus.SetUserSentimentAt(u, day, stance[u]);
      ++stance_days[u][SentimentIndex(stance[u])];
    }

    double volume = config.base_tweets_per_day;
    for (int burst : config.burst_days) {
      if (burst == day) volume *= config.burst_multiplier;
    }
    bool dead = false;
    for (int d : config.dead_days) {
      if (d == day) dead = true;
    }
    // Dead days skip the Poisson draw entirely (not Poisson(0)) so that a
    // config without dead days replays the exact same RNG sequence.
    const int tweets_today = dead ? 0 : rng.Poisson(volume);

    for (auto& v : today_by_class) v.clear();

    for (int i = 0; i < tweets_today; ++i) {
      const size_t author = rng.Categorical(activity);

      // Retweet path: copy a recent tweet, preferring stance-matching
      // authors (homophily).
      if (!recent_day_of.empty() && rng.Bernoulli(config.retweet_fraction)) {
        const int want_cls =
            rng.Bernoulli(config.retweet_homophily)
                ? SentimentIndex(stance[author])
                : static_cast<int>(
                      rng.NextUint64Below(kNumSentimentClasses));
        const auto& pool = !recent_by_class[want_cls].empty()
                               ? recent_by_class[want_cls]
                               : recent_by_class[SentimentIndex(
                                     stance[author])];
        if (!pool.empty()) {
          const size_t orig = pool[rng.NextUint64Below(pool.size())];
          const Tweet& original = corpus.tweet(orig);
          if (original.user != author) {
            const size_t id = corpus.AddTweet(
                author, day, original.text, original.label,
                static_cast<ptrdiff_t>(orig));
            recent_day_of.push_back(day);
            TRICLUST_CHECK_EQ(recent_day_of.size(), id + 1);
            continue;
          }
        }
      }

      // Original tweet path.
      Sentiment cls = stance[author];
      if (cls != Sentiment::kNeutral &&
          rng.Bernoulli(config.off_stance_tweet_prob)) {
        cls = Sentiment::kNeutral;
      }
      const size_t id =
          corpus.AddTweet(author, day, compose_text(cls, &rng), cls);
      recent_day_of.push_back(day);
      TRICLUST_CHECK_EQ(recent_day_of.size(), id + 1);
      today_by_class[SentimentIndex(cls)].push_back(id);
    }

    // Spam floods the day after genuine traffic; its ids never enter the
    // retweet-candidate pools, so genuine users never amplify bots.
    if (!dead) emit_spam_day(day, &recent_day_of);

    // Roll the retweet-candidate window forward.
    for (int c = 0; c < kNumSentimentClasses; ++c) {
      auto& recent = recent_by_class[c];
      recent.insert(recent.end(), today_by_class[c].begin(),
                    today_by_class[c].end());
      recent.erase(
          std::remove_if(recent.begin(), recent.end(),
                         [&](size_t id) {
                           return recent_day_of[id] <
                                  day - config.retweet_window_days + 1;
                         }),
          recent.end());
    }
  }

  // Static user label = majority stance over the window.
  for (size_t u = 0; u < config.num_users; ++u) {
    const auto& days = stance_days[u];
    int best = 0;
    for (int c = 1; c < kNumSentimentClasses; ++c) {
      if (days[c] > days[best]) best = c;
    }
    corpus.mutable_user(u).label = SentimentFromIndex(best);
  }
  return dataset;
}

SentimentLexicon CorruptLexicon(const SentimentLexicon& truth,
                                double coverage, double error_rate,
                                uint64_t seed) {
  TRICLUST_CHECK_GE(coverage, 0.0);
  TRICLUST_CHECK_LE(coverage, 1.0);
  TRICLUST_CHECK_GE(error_rate, 0.0);
  TRICLUST_CHECK_LE(error_rate, 1.0);
  Rng rng(seed);
  SentimentLexicon out;
  // Entries() order is hash-map dependent; sort for determinism.
  auto entries = truth.Entries();
  std::sort(entries.begin(), entries.end());
  for (const auto& [word, polarity] : entries) {
    if (!rng.Bernoulli(coverage)) continue;
    Sentiment p = polarity;
    if (rng.Bernoulli(error_rate)) {
      p = (p == Sentiment::kPositive) ? Sentiment::kNegative
                                      : Sentiment::kPositive;
    }
    out.Add(word, p);
  }
  return out;
}

}  // namespace triclust
