#ifndef TRICLUST_SRC_DATA_CORPUS_H_
#define TRICLUST_SRC_DATA_CORPUS_H_

#include <string>
#include <vector>

#include "src/text/sentiment.h"
#include "src/util/status.h"

namespace triclust {

/// One tweet p = <x, u, t> (paper §2): text, author, timestamp (a day
/// index), plus ground-truth annotations used only for evaluation.
struct Tweet {
  /// Dense id == index in Corpus::tweets().
  size_t id = 0;
  /// Author's user id.
  size_t user = 0;
  /// Day index (0-based within the collection window).
  int day = 0;
  /// Raw text (tokenized lazily by MatrixBuilder).
  std::string text;
  /// Ground-truth sentiment; kUnlabeled when not annotated.
  Sentiment label = Sentiment::kUnlabeled;
  /// Id of the original tweet when this is a retweet; -1 otherwise.
  ptrdiff_t retweet_of = -1;

  bool IsRetweet() const { return retweet_of >= 0; }
};

/// One user with its static ground-truth stance (the labels of paper
/// Table 3; kUnlabeled for the unannotated majority).
struct UserInfo {
  /// Dense id == index in Corpus::users().
  size_t id = 0;
  /// Display handle ("user42").
  std::string handle;
  /// Static (whole-window) ground-truth sentiment.
  Sentiment label = Sentiment::kUnlabeled;
};

/// A temporal tweet collection about one topic: the input of Problem 1.
///
/// Owns users, tweets (sorted by day on Finalize()), and — when produced by
/// the synthetic generator — the per-day ground-truth sentiment of each user
/// used to score dynamic user-level accuracy.
class Corpus {
 public:
  Corpus() = default;

  /// Adds a user; returns its id.
  size_t AddUser(std::string handle,
                 Sentiment label = Sentiment::kUnlabeled);

  /// Adds a tweet; returns its id. `retweet_of` must be an existing tweet.
  size_t AddTweet(size_t user, int day, std::string text,
                  Sentiment label = Sentiment::kUnlabeled,
                  ptrdiff_t retweet_of = -1);

  /// Releases a tweet's text (the dominant memory term of a large corpus),
  /// keeping its constant-size metadata — author, day, label, retweet link —
  /// which is all that matrix assembly and evaluation read. The bounded-
  /// memory replay path (ReadTsvStream) calls this once a day's tweets are
  /// vectorized into the engine; the tweet must not be re-tokenized
  /// afterwards (MatrixBuilder::Append on a released tweet sees empty
  /// text).
  void ReleaseTweetText(size_t id);

  /// Records the ground-truth sentiment of `user` on `day` (generator only).
  void SetUserSentimentAt(size_t user, int day, Sentiment sentiment);

  /// Ground-truth sentiment of `user` on `day`; falls back to the static
  /// label when no temporal annotation exists.
  Sentiment UserSentimentAt(size_t user, int day) const;

  /// True when any per-day user annotations were recorded.
  bool HasTemporalUserLabels() const { return !user_sentiment_by_day_.empty(); }

  /// Explicit per-day annotation of `user` on `day`, kUnlabeled when none
  /// was recorded — unlike UserSentimentAt, never falls back to the static
  /// label. This is the serialization view of the temporal annotations.
  Sentiment ExplicitUserSentimentAt(size_t user, int day) const;

  /// 1 + the last annotated day of `user` (0 when unannotated).
  int num_annotated_days(size_t user) const;

  size_t num_tweets() const { return tweets_.size(); }
  size_t num_users() const { return users_.size(); }

  /// Number of distinct days: 1 + max day index (0 when empty).
  int num_days() const;

  const std::vector<Tweet>& tweets() const { return tweets_; }
  const std::vector<UserInfo>& users() const { return users_; }
  const Tweet& tweet(size_t id) const;
  const UserInfo& user(size_t id) const;
  UserInfo& mutable_user(size_t id);

  /// Ids of tweets with day in [first_day, last_day], in id order.
  std::vector<size_t> TweetIdsInDayRange(int first_day, int last_day) const;

  /// Count of tweets labeled with each sentiment (pos, neg, neu, unlabeled).
  struct LabelCounts {
    size_t positive = 0;
    size_t negative = 0;
    size_t neutral = 0;
    size_t unlabeled = 0;
  };
  LabelCounts CountTweetLabels() const;
  LabelCounts CountUserLabels() const;

  /// TSV persistence. Thin wrappers over WriteTsv/ReadTsv
  /// (src/data/corpus_io.h); the format is specified in docs/FORMATS.md.
  Status SaveTsv(const std::string& path) const;
  static Result<Corpus> LoadTsv(const std::string& path);

 private:
  std::vector<Tweet> tweets_;
  std::vector<UserInfo> users_;
  // user_sentiment_by_day_[user][day]; ragged, kUnlabeled-padded.
  std::vector<std::vector<Sentiment>> user_sentiment_by_day_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_CORPUS_H_
