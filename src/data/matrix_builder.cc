#include "src/data/matrix_builder.h"

#include <unordered_map>
#include <utility>

#include "src/util/logging.h"

namespace triclust {

MatrixBuilder::MatrixBuilder(TokenizerOptions tokenizer_options,
                             VectorizerOptions vectorizer_options)
    : tokenizer_(tokenizer_options), vectorizer_(vectorizer_options) {}

void MatrixBuilder::Fit(const Corpus& corpus) {
  tokens_by_tweet_.clear();
  tokens_by_tweet_.reserve(corpus.num_tweets());
  for (const Tweet& t : corpus.tweets()) {
    tokens_by_tweet_.push_back(tokenizer_.Tokenize(t.text));
  }
  vectorizer_.Fit(tokens_by_tweet_);
  fitted_ = true;
}

void MatrixBuilder::FitStreamBegin() {
  tokens_by_tweet_.clear();
  fitted_ = false;
  vectorizer_.FitStreamBegin();
}

void MatrixBuilder::FitStreamCount(const std::string& text) {
  vectorizer_.FitStreamCount(tokenizer_.Tokenize(text));
}

void MatrixBuilder::FitStreamAdmitBegin() { vectorizer_.FitStreamAdmitBegin(); }

void MatrixBuilder::FitStreamAdmit(const std::string& text) {
  vectorizer_.FitStreamAdmit(tokenizer_.Tokenize(text));
}

void MatrixBuilder::FitStreamFinish() {
  vectorizer_.FitStreamFinish();
  fitted_ = true;
}

DatasetMatrices MatrixBuilder::Assemble(const Corpus& corpus,
                                        std::vector<size_t> tweet_ids,
                                        SparseMatrix xp,
                                        int user_label_day) const {
  DatasetMatrices out;
  out.tweet_ids = std::move(tweet_ids);
  out.xp = std::move(xp);

  // Row maps.
  std::unordered_map<size_t, size_t> tweet_row;
  tweet_row.reserve(out.tweet_ids.size());
  for (size_t i = 0; i < out.tweet_ids.size(); ++i) {
    TRICLUST_CHECK_LT(out.tweet_ids[i], corpus.num_tweets());
    tweet_row[out.tweet_ids[i]] = i;
  }

  std::unordered_map<size_t, size_t> user_row;
  for (size_t tweet_id : out.tweet_ids) {
    const size_t author = corpus.tweet(tweet_id).user;
    if (user_row.emplace(author, out.user_ids.size()).second) {
      out.user_ids.push_back(author);
    }
  }

  // Xu: user–feature = sum of the user's tweet rows.
  {
    SparseMatrix::Builder builder(out.user_ids.size(), out.xp.cols());
    const auto& row_ptr = out.xp.row_ptr();
    const auto& col_idx = out.xp.col_idx();
    const auto& values = out.xp.values();
    for (size_t i = 0; i < out.tweet_ids.size(); ++i) {
      const size_t urow = user_row.at(corpus.tweet(out.tweet_ids[i]).user);
      for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        builder.Add(urow, col_idx[p], values[p]);
      }
    }
    out.xu = builder.Build();
  }

  // Xr: posting incidence, plus retweet incidence onto in-subset originals.
  // Gu: one unit of weight per retweet event whose two endpoints are both
  // active in the subset.
  {
    SparseMatrix::Builder builder(out.user_ids.size(), out.tweet_ids.size());
    std::vector<UserGraph::Edge> edges;
    for (size_t i = 0; i < out.tweet_ids.size(); ++i) {
      const Tweet& t = corpus.tweet(out.tweet_ids[i]);
      const size_t urow = user_row.at(t.user);
      builder.Add(urow, i, 1.0);
      if (t.IsRetweet()) {
        const Tweet& original =
            corpus.tweet(static_cast<size_t>(t.retweet_of));
        const auto orig_row = tweet_row.find(original.id);
        if (orig_row != tweet_row.end()) {
          builder.Add(urow, orig_row->second, 1.0);
        }
        const auto author_row = user_row.find(original.user);
        if (author_row != user_row.end() && author_row->second != urow) {
          edges.push_back({urow, author_row->second, 1.0});
        }
      }
    }
    out.xr = builder.Build();
    out.gu = UserGraph::FromEdges(out.user_ids.size(), edges);
  }

  // Ground truth.
  out.tweet_labels.reserve(out.tweet_ids.size());
  for (size_t tweet_id : out.tweet_ids) {
    out.tweet_labels.push_back(corpus.tweet(tweet_id).label);
  }
  out.user_labels.reserve(out.user_ids.size());
  for (size_t user_id : out.user_ids) {
    out.user_labels.push_back(
        user_label_day >= 0
            ? corpus.UserSentimentAt(user_id, user_label_day)
            : corpus.user(user_id).label);
  }
  return out;
}

DatasetMatrices MatrixBuilder::Build(const Corpus& corpus,
                                     const std::vector<size_t>& tweet_ids,
                                     int user_label_day) const {
  TRICLUST_CHECK(fitted_);
  // Xp: tweet–feature.
  std::vector<std::vector<std::string>> docs;
  docs.reserve(tweet_ids.size());
  for (size_t tweet_id : tweet_ids) {
    TRICLUST_CHECK_LT(tweet_id, tokens_by_tweet_.size());
    docs.push_back(tokens_by_tweet_[tweet_id]);
  }
  return Assemble(corpus, tweet_ids, vectorizer_.Transform(docs),
                  user_label_day);
}

DatasetMatrices MatrixBuilder::BuildAll(const Corpus& corpus) const {
  std::vector<size_t> all(corpus.num_tweets());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return Build(corpus, all);
}

void MatrixBuilder::Append(const Corpus& corpus, size_t tweet_id) {
  Append(corpus, std::vector<size_t>{tweet_id});
}

void MatrixBuilder::Append(const Corpus& corpus,
                           const std::vector<size_t>& tweet_ids) {
  TRICLUST_CHECK(fitted_);
  if (tweet_ids.empty()) return;
  // Vectorize the whole batch in one Transform. Per-document tf-idf
  // weighting and L2 normalization are independent of the rest of the
  // batch, so each row is identical to the one Build() — or a
  // one-tweet Append — would produce.
  std::vector<std::vector<std::string>> docs;
  docs.reserve(tweet_ids.size());
  for (size_t tweet_id : tweet_ids) {
    TRICLUST_CHECK_LT(tweet_id, corpus.num_tweets());
    if (tweet_id < tokens_by_tweet_.size()) {
      docs.push_back(tokens_by_tweet_[tweet_id]);
    } else {
      // Arrived after Fit(): tokenize on the fly (OOV tokens drop out).
      docs.push_back(tokenizer_.Tokenize(corpus.tweet(tweet_id).text));
    }
  }
  const SparseMatrix rows = vectorizer_.Transform(docs);
  const auto& row_ptr = rows.row_ptr();
  for (size_t i = 0; i < tweet_ids.size(); ++i) {
    const auto begin = static_cast<ptrdiff_t>(row_ptr[i]);
    const auto end = static_cast<ptrdiff_t>(row_ptr[i + 1]);
    PendingRow pending;
    pending.cols.assign(rows.col_idx().begin() + begin,
                        rows.col_idx().begin() + end);
    pending.values.assign(rows.values().begin() + begin,
                          rows.values().begin() + end);
    pending_ids_.push_back(tweet_ids[i]);
    pending_rows_.push_back(std::move(pending));
  }
}

DatasetMatrices MatrixBuilder::EmitSnapshot(const Corpus& corpus,
                                            int user_label_day) {
  TRICLUST_CHECK(fitted_);
  SparseMatrix::Builder builder(pending_rows_.size(),
                                vectorizer_.vocabulary().size());
  for (size_t i = 0; i < pending_rows_.size(); ++i) {
    const PendingRow& row = pending_rows_[i];
    for (size_t p = 0; p < row.cols.size(); ++p) {
      builder.Add(i, row.cols[p], row.values[p]);
    }
  }
  DatasetMatrices out = Assemble(corpus, std::move(pending_ids_),
                                 builder.Build(), user_label_day);
  pending_ids_.clear();
  pending_rows_.clear();
  return out;
}

}  // namespace triclust
