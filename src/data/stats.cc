#include "src/data/stats.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/logging.h"

namespace triclust {

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double total = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    TRICLUST_CHECK_GE(values[i], 0.0);
    total += values[i];
    weighted += static_cast<double>(i + 1) * values[i];
  }
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

CorpusStats ComputeCorpusStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_tweets = corpus.num_tweets();
  stats.num_users = corpus.num_users();
  stats.num_days = corpus.num_days();
  stats.daily_volume.assign(
      static_cast<size_t>(std::max(stats.num_days, 0)), 0);
  stats.user_activity.assign(corpus.num_users(), 0);

  std::vector<std::unordered_set<int>> active_days(corpus.num_users());
  for (const Tweet& t : corpus.tweets()) {
    if (t.IsRetweet()) ++stats.num_retweets;
    ++stats.daily_volume[static_cast<size_t>(t.day)];
    ++stats.user_activity[t.user];
    active_days[t.user].insert(t.day);
  }

  std::vector<double> activity;
  activity.reserve(corpus.num_users());
  size_t active_users = 0;
  size_t returning = 0;
  for (size_t u = 0; u < corpus.num_users(); ++u) {
    activity.push_back(static_cast<double>(stats.user_activity[u]));
    if (!active_days[u].empty()) {
      ++active_users;
      if (active_days[u].size() > 1) ++returning;
    }
  }
  stats.activity_gini = GiniCoefficient(std::move(activity));
  stats.returning_user_fraction =
      active_users == 0 ? 0.0
                        : static_cast<double>(returning) /
                              static_cast<double>(active_users);
  return stats;
}

}  // namespace triclust
