#ifndef TRICLUST_SRC_DATA_SCENARIO_H_
#define TRICLUST_SRC_DATA_SCENARIO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/util/status.h"

namespace triclust {

/// Adversarial scenario suite: named hostile workloads for the serving
/// stack, each a composition of SyntheticConfig knobs plus a
/// machine-readable expectation record.
///
/// A scenario answers "what should the system do under this attack" in a
/// form CI can check: the corpus is seeded (bit-identical per scenario
/// name and scale), and the expectations are floors/limits with generous
/// margins below the observed seeded values — they catch regressions in
/// robustness (a quarantine storm, an accuracy collapse), not run-to-run
/// noise, of which there is none.
///
/// The catalog (GetScenario / AllScenarios):
///   spam_botnet    — a bot fleet floods the matrix with high-polarity
///                    unlabeled spam; genuine accuracy must hold and no
///                    campaign may be quarantined by the flood.
///   topic_hijack   — the polar vocabulary swaps roles mid-campaign, so
///                    text contradicts any pre-hijack lexicon; the online
///                    solver must track the swap (Observation 1 taken to
///                    its adversarial extreme).
///   burst_extreme  — repeated volume bursts an order of magnitude over
///                    baseline (election-night load), stressing snapshot
///                    batching.
///   campaign_churn — campaigns are retired and launched mid-replay; the
///                    fleet's per-campaign results must match a fleet
///                    that never co-hosted them.
///   empty_days     — dead days (including the stream's very first days
///                    and multi-day runs of silence) that inject
///                    zero-event snapshots into every campaign.
///   drift_storm    — vocabulary drift and off-class noise far above the
///                    paper's observed rates; the floor scenario for how
///                    much signal the coupling still extracts.
///
/// Scenarios run through the replay stack (ReplayDriver +
/// TimelineEvaluator) for the tri-cluster solver and the baseline methods
/// via RunMethodComparison (src/eval/method_runner.h);
/// `examples/replay --scenario=<name>` is the CLI entry and
/// tests/scenario_test.cc pins every expectation record.

/// Machine-readable expectations of one scenario. Accuracy floors are
/// fractions in [0, 1] (the unit of TimelineEvaluator metrics) and apply
/// to the tri-cluster run aggregate (RunAggregate micro-averages) at any
/// scale ≥ 0.5; health limits apply to the final fleet HealthReport.
struct ScenarioExpectation {
  /// Floors on the run-aggregate clustering accuracy of the tri-cluster
  /// method over the replay (0 = no floor).
  double min_tweet_accuracy = 0.0;
  double min_user_accuracy = 0.0;
  /// Fleet health at the end of the replay: at most this many campaigns
  /// quarantined, at least this many healthy, exactly this many retired.
  size_t max_quarantined = 0;
  size_t min_healthy = 0;
  size_t expected_retired = 0;
  /// Every replay day must be walked (the scenario's day count).
  int expected_days = 0;
  /// The generated corpus must carry at least this much traffic at scale
  /// 1 (scaled down proportionally by GetScenario's scale).
  size_t min_tweets = 0;
};

/// One event of a campaign-churn schedule, applied by the replay day hook
/// before the day's traffic is released.
struct ChurnEvent {
  enum class Action { kRetire = 0, kLaunch = 1 };

  /// Replay day the event fires on.
  int day = 0;
  Action action = Action::kRetire;
  /// kRetire: the id of the campaign to retire (ids are dense in
  /// registration order; launched campaigns extend the sequence).
  size_t campaign = 0;
  /// kLaunch: the name to register the new campaign under.
  std::string name;

  bool operator==(const ChurnEvent& other) const {
    return day == other.day && action == other.action &&
           campaign == other.campaign && name == other.name;
  }
};

/// A named hostile workload: generator knobs, prior-lexicon corruption,
/// fleet shape, churn schedule, and the expectation record.
struct Scenario {
  std::string name;
  std::string description;
  /// Generator knobs (seeded; GenerateSynthetic(config) is the corpus).
  SyntheticConfig config;
  /// Prior-lexicon corruption applied to the generator's ground-truth
  /// lexicon (CorruptLexicon arguments) — the imperfect word list the
  /// engine actually gets.
  double lexicon_coverage = 0.6;
  double lexicon_error_rate = 0.05;
  uint64_t lexicon_seed = 99;
  /// Campaigns registered before the replay starts (fed author-disjoint
  /// slices via PartitionIntoStreams; launched campaigns add more).
  size_t num_campaigns = 2;
  /// Day-ordered churn schedule (empty for most scenarios).
  std::vector<ChurnEvent> churn;
  ScenarioExpectation expect;

  /// Total streams the scenario uses: the initial fleet plus one
  /// author-disjoint slice per launch event.
  size_t NumStreams() const;
};

/// Names of every registered scenario, in catalog order.
std::vector<std::string> ScenarioNames();

/// Builds scenario `name` at `scale` ∈ (0, 1]: population and volume
/// knobs (users, tweets/day, spam fleet) are multiplied by `scale`, while
/// the day structure — day count, hijack/burst/dead days, churn days —
/// is kept, so a reduced-scale CI run exercises the same timeline shape.
/// Expectation floors are calibrated to hold at any scale ≥ 0.5.
/// NotFound for an unknown name; InvalidArgument for a bad scale.
Result<Scenario> GetScenario(const std::string& name, double scale = 1.0);

/// The whole catalog at `scale` (ScenarioNames order).
std::vector<Scenario> AllScenarios(double scale = 1.0);

/// Serializes a churn schedule as TSV, one event per line:
/// "day<TAB>retire<TAB><campaign>" or "day<TAB>launch<TAB><name>".
/// Round-trips exactly through ReadChurnScheduleTsv
/// (tests/property_test.cc pins this).
Status WriteChurnScheduleTsv(const std::vector<ChurnEvent>& schedule,
                             std::ostream* os);

/// Parses a churn schedule written by WriteChurnScheduleTsv. Lines
/// starting with '#' are comments. ParseError with "<source>:<line>:"
/// diagnostics on malformed rows (same convention as corpus TSV).
Result<std::vector<ChurnEvent>> ReadChurnScheduleTsv(
    std::istream* is, const std::string& source_name = "<stream>");

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_SCENARIO_H_
