#ifndef TRICLUST_SRC_DATA_CORPUS_IO_H_
#define TRICLUST_SRC_DATA_CORPUS_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/data/corpus.h"
#include "src/util/status.h"

namespace triclust {

/// Reader/writer of the corpus TSV format — the on-disk form by which
/// external temporal tweet collections reach the engine (the paper's real
/// datasets are collections of exactly this shape: tweets with an author, a
/// day timestamp, optional sentiment annotations, and retweet links).
///
/// The format is specified normatively in docs/FORMATS.md. In short, a file
/// is a sequence of tab-separated rows, one record each:
///
///   U <id> <handle> <label>                       — one user
///   T <id> <user> <day> <label> <retweet_of> <text> — one tweet
///   D <user> <day> <label>                        — per-day user annotation
///
/// Labels are the sentiment vocabulary {pos, neg, neu, unlabeled}; legacy
/// integer codes {-1, 0, 1, 2} are also accepted on read. Tweet text is
/// escaped (\t, \n, \r, \\) so arbitrary text round-trips byte-for-byte.
/// Lines starting with '#' are comments. Ids must be dense and in order;
/// every cross-reference (tweet → user, retweet → earlier tweet, label day)
/// is validated, and every diagnostic carries the offending
/// "<source>:<line>:" prefix so a malformed external dataset pinpoints its
/// own bad row.
///
/// WriteTsv(corpus, path) → ReadTsv(path) reproduces the corpus exactly:
/// users, tweets (including text bytes), static labels, retweet links, and
/// the per-day temporal annotations. Files written by older versions of
/// this repo (integer labels, unescaped text, no D rows) load unchanged:
/// their "#users\t<count>" banner switches the reader to raw text fields,
/// so a literal backslash sequence in legacy text is not mistaken for an
/// escape.
///
/// Thread safety: the functions are stateless and re-entrant; concurrent
/// calls on distinct streams/paths are safe. The path-taking WriteTsv goes
/// through AtomicWriteFile, so a reader never observes a torn file.

/// Serializes `corpus` to `os`. Returns IoError when the stream fails.
Status WriteTsv(const Corpus& corpus, std::ostream* os);

/// Atomically replaces `path` with the serialized corpus
/// (write-temp-then-fsync-then-rename; see AtomicWriteFile).
Status WriteTsv(const Corpus& corpus, const std::string& path);

/// Parses a corpus from `is`. `source_name` prefixes diagnostics (a path,
/// or "<stream>"). Returns ParseError with "<source>:<line>: <why>" on the
/// first malformed row; the partially-built corpus is discarded.
Result<Corpus> ReadTsv(std::istream* is,
                       const std::string& source_name = "<stream>");

/// Parses the corpus stored at `path` (IoError when unreadable).
Result<Corpus> ReadTsv(const std::string& path);

/// Parses a sentiment label token: the names "pos", "neg", "neu",
/// "unlabeled" or the legacy integer codes 0, 1, 2, -1. Returns false on
/// anything else.
bool ParseSentimentLabel(const std::string& token, Sentiment* out);

/// Escapes tweet text for a TSV field: backslash, tab, newline, and
/// carriage return become \\, \t, \n, \r.
std::string EscapeTsvField(const std::string& text);

/// Inverse of EscapeTsvField. Unknown escape sequences are preserved
/// verbatim (so legacy files containing raw backslashes load unchanged).
std::string UnescapeTsvField(const std::string& text);

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_CORPUS_IO_H_
