#ifndef TRICLUST_SRC_DATA_CORPUS_IO_H_
#define TRICLUST_SRC_DATA_CORPUS_IO_H_

#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/data/corpus.h"
#include "src/util/status.h"

namespace triclust {

/// Reader/writer of the corpus TSV format — the on-disk form by which
/// external temporal tweet collections reach the engine (the paper's real
/// datasets are collections of exactly this shape: tweets with an author, a
/// day timestamp, optional sentiment annotations, and retweet links).
///
/// The format is specified normatively in docs/FORMATS.md. In short, a file
/// is a sequence of tab-separated rows, one record each:
///
///   U <id> <handle> <label>                       — one user
///   T <id> <user> <day> <label> <retweet_of> <text> — one tweet
///   D <user> <day> <label>                        — per-day user annotation
///
/// Labels are the sentiment vocabulary {pos, neg, neu, unlabeled}; legacy
/// integer codes {-1, 0, 1, 2} are also accepted on read. Tweet text is
/// escaped (\t, \n, \r, \\) so arbitrary text round-trips byte-for-byte.
/// Lines starting with '#' are comments. Ids must be dense and in order;
/// every cross-reference (tweet → user, retweet → earlier tweet, label day)
/// is validated, and every diagnostic carries the offending
/// "<source>:<line>:" prefix so a malformed external dataset pinpoints its
/// own bad row.
///
/// WriteTsv(corpus, path) → ReadTsv(path) reproduces the corpus exactly:
/// users, tweets (including text bytes), static labels, retweet links, and
/// the per-day temporal annotations. Files written by older versions of
/// this repo (integer labels, unescaped text, no D rows) load unchanged:
/// their "#users\t<count>" banner switches the reader to raw text fields,
/// so a literal backslash sequence in legacy text is not mistaken for an
/// escape.
///
/// Thread safety: the functions are stateless and re-entrant; concurrent
/// calls on distinct streams/paths are safe. The path-taking WriteTsv goes
/// through AtomicWriteFile, so a reader never observes a torn file.

/// Serializes `corpus` to `os`. Returns IoError when the stream fails.
Status WriteTsv(const Corpus& corpus, std::ostream* os);

/// Atomically replaces `path` with the serialized corpus
/// (write-temp-then-fsync-then-rename; see AtomicWriteFile).
Status WriteTsv(const Corpus& corpus, const std::string& path);

/// Parses a corpus from `is`. `source_name` prefixes diagnostics (a path,
/// or "<stream>"). Returns ParseError with "<source>:<line>: <why>" on the
/// first malformed row; the partially-built corpus is discarded.
Result<Corpus> ReadTsv(std::istream* is,
                       const std::string& source_name = "<stream>");

/// Parses the corpus stored at `path` (IoError when unreadable).
Result<Corpus> ReadTsv(const std::string& path);

/// One day-chunk yielded by the streaming reader: the ids of the tweets
/// appended to the growing corpus for `day` (empty for a gap day with no
/// tweets, so replay day indices stay aligned with ReadTsv + SplitByDay).
struct TsvDayBatch {
  int day = 0;
  std::vector<size_t> tweet_ids;
};

/// Chunked streaming reader for corpora that do not fit in RAM.
///
/// Open() parses the preamble — every U and D row — into a skeleton
/// corpus; NextDay() then appends one day's tweets at a time, and
/// ReleaseText() drops a finished day's tweet text (the dominant memory
/// term of a real collection) while keeping the constant-size metadata
/// that matrix assembly, the retweet graph, and evaluation read. Peak
/// memory is therefore O(users + per-day annotations + tweet metadata +
/// ONE day-chunk of text), instead of the whole file.
///
/// The reader requires the canonical section order WriteTsv emits (all U
/// rows, then all D rows, then T rows with non-decreasing day); ReadTsv
/// accepts arbitrary interleavings, the streaming reader rejects them
/// with a ParseError naming the offending line. Diagnostics carry the
/// same "<source>:<line>:" prefix as ReadTsv, with line numbers counted
/// from the start of the file — a malformed row in the 40th day-chunk
/// still pinpoints its absolute line.
///
/// The ids NextDay() yields, and the corpus the reader grows, are
/// identical to what ReadTsv + SplitByDay produce for the same file
/// (tests/corpus_io_test.cc pins this), which is what makes a streamed
/// replay bit-identical to the whole-file path.
class TsvStreamReader {
 public:
  /// Opens `path` (IoError when unreadable) and parses the preamble.
  static Result<std::unique_ptr<TsvStreamReader>> Open(
      const std::string& path);

  /// Stream variant; `source_name` prefixes diagnostics.
  static Result<std::unique_ptr<TsvStreamReader>> Open(
      std::unique_ptr<std::istream> is, const std::string& source_name);

  ~TsvStreamReader();
  TsvStreamReader(const TsvStreamReader&) = delete;
  TsvStreamReader& operator=(const TsvStreamReader&) = delete;

  /// The growing corpus: users and per-day annotations after Open(), plus
  /// every tweet yielded so far. Stable address; safe to register with a
  /// CampaignEngine while days keep arriving.
  const Corpus& corpus() const;

  /// Appends the next day's tweets to the corpus and describes them in
  /// `*batch`. Days are yielded consecutively from 0, including empty gap
  /// days. Returns false when the file is exhausted, or the first
  /// ParseError/IoError encountered.
  Result<bool> NextDay(TsvDayBatch* batch);

  /// Releases the text of every tweet in `batch` (see
  /// Corpus::ReleaseTweetText). Call after the batch has been vectorized.
  void ReleaseText(const TsvDayBatch& batch);

  /// Moves the finished corpus out of the reader (ReadTsvStream's return
  /// path). The reader must not be used afterwards.
  Corpus TakeCorpus();

 private:
  struct Impl;
  TsvStreamReader();
  std::unique_ptr<Impl> impl_;
};

/// Day callback of ReadTsvStream: the day index, the corpus grown so far
/// (the day's tweet text is still present), and the day's tweet ids.
/// Returning a non-OK status aborts the stream and propagates the error.
using TsvDayCallback = std::function<Status(
    int day, const Corpus& corpus, const std::vector<size_t>& tweet_ids)>;

/// Streams the corpus at `path` one day-chunk at a time with bounded
/// memory: invokes `on_day` for every day in order (including empty gap
/// days), releasing each day's tweet text once its callback returns.
/// Returns the final corpus — complete metadata and annotations, but with
/// every tweet's text released.
Result<Corpus> ReadTsvStream(const std::string& path,
                             const TsvDayCallback& on_day);

/// Parses a sentiment label token: the names "pos", "neg", "neu",
/// "unlabeled" or the legacy integer codes 0, 1, 2, -1. Returns false on
/// anything else.
bool ParseSentimentLabel(const std::string& token, Sentiment* out);

/// Escapes tweet text for a TSV field: backslash, tab, newline, and
/// carriage return become \\, \t, \n, \r.
std::string EscapeTsvField(const std::string& text);

/// Inverse of EscapeTsvField. Unknown escape sequences are preserved
/// verbatim (so legacy files containing raw backslashes load unchanged).
std::string UnescapeTsvField(const std::string& text);

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_CORPUS_IO_H_
