#include "src/data/corpus_io.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/file_util.h"
#include "src/util/fs.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

namespace {

/// Upper bound on day indices accepted from disk. Day fields beyond this are
/// far more likely corrupted than a century-long collection; rejecting them
/// keeps one bad row from inflating every downstream per-day structure.
constexpr int kMaxDay = 36500;

}  // namespace

bool ParseSentimentLabel(const std::string& token, Sentiment* out) {
  if (token == "pos" || token == "0") {
    *out = Sentiment::kPositive;
  } else if (token == "neg" || token == "1") {
    *out = Sentiment::kNegative;
  } else if (token == "neu" || token == "2") {
    *out = Sentiment::kNeutral;
  } else if (token == "unlabeled" || token == "-1") {
    *out = Sentiment::kUnlabeled;
  } else {
    return false;
  }
  return true;
}

std::string EscapeTsvField(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string UnescapeTsvField(const std::string& text) {
  std::string raw;
  raw.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      raw += text[i];
      continue;
    }
    switch (text[i + 1]) {
      case '\\':
        raw += '\\';
        ++i;
        break;
      case 't':
        raw += '\t';
        ++i;
        break;
      case 'n':
        raw += '\n';
        ++i;
        break;
      case 'r':
        raw += '\r';
        ++i;
        break;
      default:
        // Unknown escape: keep the backslash so legacy text is unchanged.
        raw += '\\';
    }
  }
  return raw;
}

Status WriteTsv(const Corpus& corpus, std::ostream* os) {
  std::ostream& out = *os;
  out << "# triclust corpus tsv 1\n";
  out << "# U\tid\thandle\tlabel\n";
  out << "# T\tid\tuser\tday\tlabel\tretweet_of\ttext\n";
  out << "# D\tuser\tday\tlabel\n";
  for (const UserInfo& u : corpus.users()) {
    out << "U\t" << u.id << "\t" << EscapeTsvField(u.handle) << "\t"
        << SentimentName(u.label) << "\n";
  }
  for (size_t u = 0; u < corpus.num_users(); ++u) {
    const int days = corpus.num_annotated_days(u);
    for (int day = 0; day < days; ++day) {
      const Sentiment s = corpus.ExplicitUserSentimentAt(u, day);
      if (s == Sentiment::kUnlabeled) continue;
      out << "D\t" << u << "\t" << day << "\t" << SentimentName(s) << "\n";
    }
  }
  for (const Tweet& t : corpus.tweets()) {
    out << "T\t" << t.id << "\t" << t.user << "\t" << t.day << "\t"
        << SentimentName(t.label) << "\t" << t.retweet_of << "\t"
        << EscapeTsvField(t.text) << "\n";
  }
  if (!out) return Status::IoError("corpus TSV write failed");
  return Status::OK();
}

Status WriteTsv(const Corpus& corpus, const std::string& path) {
  return AtomicWriteFile(path, [&corpus](std::ostream* os) {
    return WriteTsv(corpus, os);
  });
}

namespace {

/// Row-level TSV parsing shared by ReadTsv and TsvStreamReader, so both
/// paths validate identically and emit byte-identical
/// "<source>:<line>:" diagnostics. The context tracks the file-global
/// line number and the legacy raw-text mode across day-chunk boundaries.
struct TsvParseContext {
  std::string source_name;
  size_t line_no = 0;
  // Files from the pre-corpus_io writer open with a "#users\t<count>"
  // banner as their FIRST line and wrote handle/text fields raw (no
  // escaping) — a literal backslash-t in them is text, not a tab. Detect
  // the banner (first line only, so a stray comment in a new-format file
  // cannot flip the mode mid-stream) and skip unescaping so those bytes
  // load unchanged.
  bool legacy_raw_text = false;

  Status Fail(const std::string& why) const {
    return Status::ParseError(source_name + ":" + std::to_string(line_no) +
                              ": " + why);
  }

  std::string Decode(const std::string& field) const {
    return legacy_raw_text ? field : UnescapeTsvField(field);
  }

  /// Counts, banner-detects, and CRLF-normalizes one raw line. Returns
  /// false when the line carries no record (blank or comment).
  bool Preprocess(std::string* line) {
    ++line_no;
    if (line_no == 1 && line->compare(0, 7, "#users\t") == 0) {
      legacy_raw_text = true;
    }
    // Tolerate CRLF line endings (externally-prepared files): the
    // trailing CR is a line-ending artifact, not field content — real
    // carriage returns inside text arrive as the \r escape. Legacy files
    // are exempt: their writer escaped nothing, so a trailing CR there is
    // content, which the pre-corpus_io loader preserved.
    if (!legacy_raw_text && !line->empty() && line->back() == '\r') {
      line->pop_back();
    }
    return !(line->empty() || (*line)[0] == '#');
  }

  Status HandleUser(const std::vector<std::string>& fields, Corpus* corpus) {
    if (fields.size() != 4) {
      return Fail("user row needs 4 fields, got " +
                  std::to_string(fields.size()));
    }
    size_t id = 0;
    if (!ParseSizeT(fields[1], &id)) {
      return Fail("malformed user id '" + fields[1] + "'");
    }
    if (id != corpus->num_users()) {
      return Fail("non-contiguous user id " + fields[1] + " (expected " +
                  std::to_string(corpus->num_users()) + ")");
    }
    Sentiment label = Sentiment::kUnlabeled;
    if (!ParseSentimentLabel(fields[3], &label)) {
      return Fail("unknown label '" + fields[3] + "'");
    }
    corpus->AddUser(Decode(fields[2]), label);
    return Status::OK();
  }

  Status HandleTweet(const std::vector<std::string>& fields, Corpus* corpus,
                     long long* day_out) {
    if (fields.size() != 7) {
      return Fail("tweet row needs 7 fields, got " +
                  std::to_string(fields.size()));
    }
    size_t id = 0;
    if (!ParseSizeT(fields[1], &id)) {
      return Fail("malformed tweet id '" + fields[1] + "'");
    }
    if (id != corpus->num_tweets()) {
      return Fail("non-contiguous tweet id " + fields[1] + " (expected " +
                  std::to_string(corpus->num_tweets()) + ")");
    }
    size_t user = 0;
    if (!ParseSizeT(fields[2], &user)) {
      return Fail("malformed user id '" + fields[2] + "'");
    }
    if (user >= corpus->num_users()) {
      return Fail("tweet references undefined user " + fields[2]);
    }
    long long day = 0;
    if (!ParseInt64(fields[3], &day) || day < 0 || day > kMaxDay) {
      return Fail("day '" + fields[3] + "' out of range [0, " +
                  std::to_string(kMaxDay) + "]");
    }
    Sentiment label = Sentiment::kUnlabeled;
    if (!ParseSentimentLabel(fields[4], &label)) {
      return Fail("unknown label '" + fields[4] + "'");
    }
    long long retweet_of = -1;
    if (!ParseInt64(fields[5], &retweet_of) || retweet_of < -1) {
      return Fail("malformed retweet_of '" + fields[5] + "'");
    }
    if (retweet_of >= static_cast<long long>(id)) {
      return Fail("retweet_of " + fields[5] +
                  " must reference an earlier tweet");
    }
    corpus->AddTweet(user, static_cast<int>(day), Decode(fields[6]), label,
                     static_cast<ptrdiff_t>(retweet_of));
    *day_out = day;
    return Status::OK();
  }

  Status HandleDayLabel(const std::vector<std::string>& fields,
                        Corpus* corpus, long long* day_out) {
    if (fields.size() != 4) {
      return Fail("day-label row needs 4 fields, got " +
                  std::to_string(fields.size()));
    }
    size_t user = 0;
    if (!ParseSizeT(fields[1], &user)) {
      return Fail("malformed user id '" + fields[1] + "'");
    }
    if (user >= corpus->num_users()) {
      return Fail("day label references undefined user " + fields[1]);
    }
    long long day = 0;
    if (!ParseInt64(fields[2], &day) || day < 0 || day > kMaxDay) {
      return Fail("day '" + fields[2] + "' out of range [0, " +
                  std::to_string(kMaxDay) + "]");
    }
    Sentiment label = Sentiment::kUnlabeled;
    if (!ParseSentimentLabel(fields[3], &label)) {
      return Fail("unknown label '" + fields[3] + "'");
    }
    if (label == Sentiment::kUnlabeled) {
      return Fail("day annotation must carry a pos/neg/neu label");
    }
    corpus->SetUserSentimentAt(user, static_cast<int>(day), label);
    *day_out = day;
    return Status::OK();
  }
};

}  // namespace

Result<Corpus> ReadTsv(std::istream* is, const std::string& source_name) {
  Corpus corpus;
  std::string line;
  TsvParseContext ctx;
  ctx.source_name = source_name;
  // Day extremes, for the epoch-days warnings below.
  long long first_populated_day = kMaxDay + 1;
  long long max_tweet_day = -1;
  long long max_label_day = -1;
  while (std::getline(*is, line)) {
    if (!ctx.Preprocess(&line)) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "U") {
      TRICLUST_RETURN_IF_ERROR(ctx.HandleUser(fields, &corpus));
    } else if (fields[0] == "T") {
      long long day = 0;
      TRICLUST_RETURN_IF_ERROR(ctx.HandleTweet(fields, &corpus, &day));
      first_populated_day = std::min(first_populated_day, day);
      max_tweet_day = std::max(max_tweet_day, day);
    } else if (fields[0] == "D") {
      long long day = 0;
      TRICLUST_RETURN_IF_ERROR(ctx.HandleDayLabel(fields, &corpus, &day));
      first_populated_day = std::min(first_populated_day, day);
      max_label_day = std::max(max_label_day, day);
    } else {
      return ctx.Fail("unknown row tag '" + fields[0] + "'");
    }
  }
  if (is->bad()) return Status::IoError(source_name + ": read failed");
  // Day indices are meant to be zero-based within the collection window
  // (FORMATS.md §1.1). A large empty prefix — the classic symptom of
  // absolute days-since-epoch timestamps, on tweets or on per-day labels —
  // still parses, but every day-indexed consumer (snapshot splitting,
  // replay, the per-user label vectors) pays for the empty days; flag it.
  if (first_populated_day <= kMaxDay && first_populated_day > 365) {
    TRICLUST_LOG(kWarning)
        << source_name << ": first populated day is " << first_populated_day
        << " — days should be zero-based within the collection window; "
        << "day-indexed consumers (replay, snapshot splitting, per-day "
        << "labels) will walk the empty prefix first";
  }
  // D rows far beyond the tweet window are the same mistake hidden behind
  // day-0 tweets: the annotations sit where no evaluation ever looks.
  if (max_label_day > max_tweet_day + 365) {
    TRICLUST_LOG(kWarning)
        << source_name << ": per-day labels reach day " << max_label_day
        << " but the last tweet is on day " << max_tweet_day
        << " — the day bases look mismatched, so evaluations would never "
        << "consult the out-of-window annotations";
  }
  return corpus;
}

Result<Corpus> ReadTsv(const std::string& path) {
  // Through the FileSystem seam (like every durable-I/O path): direct
  // std::ifstream opens outside src/util are a lint error (fs-seam rule).
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<std::istream> in,
                            GetDefaultFileSystem()->NewReadStream(path));
  return ReadTsv(in.get(), path);
}

struct TsvStreamReader::Impl {
  std::unique_ptr<std::istream> input;
  TsvParseContext ctx;
  Corpus corpus;

  // The one tweet read past the current day boundary. T rows are id-ordered,
  // so it is already appended to the corpus (dense ids stay intact); its id
  // is simply not yielded until NextDay() reaches its day.
  bool has_pending = false;
  size_t pending_id = 0;
  int pending_day = 0;

  /// The day the next NextDay() call will yield.
  int next_day = 0;
  /// Day of the last T row parsed, for the non-decreasing-day check.
  int last_tweet_day = -1;
  /// True once the input has been read to EOF.
  bool exhausted = false;
  bool warned = false;

  // Day extremes, for the same epoch-days warnings ReadTsv emits.
  long long first_populated_day = kMaxDay + 1;
  long long max_tweet_day = -1;
  long long max_label_day = -1;

  /// Emits ReadTsv's epoch-days warnings once, when the stream is done.
  void WarnIfEpochDays() {
    if (warned) return;
    warned = true;
    if (first_populated_day <= kMaxDay && first_populated_day > 365) {
      TRICLUST_LOG(kWarning)
          << ctx.source_name << ": first populated day is "
          << first_populated_day
          << " — days should be zero-based within the collection window; "
          << "day-indexed consumers (replay, snapshot splitting, per-day "
          << "labels) will walk the empty prefix first";
    }
    if (max_label_day > max_tweet_day + 365) {
      TRICLUST_LOG(kWarning)
          << ctx.source_name << ": per-day labels reach day " << max_label_day
          << " but the last tweet is on day " << max_tweet_day
          << " — the day bases look mismatched, so evaluations would never "
          << "consult the out-of-window annotations";
    }
  }
};

TsvStreamReader::TsvStreamReader() : impl_(new Impl) {}
TsvStreamReader::~TsvStreamReader() = default;

Result<std::unique_ptr<TsvStreamReader>> TsvStreamReader::Open(
    const std::string& path) {
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<std::istream> file,
                            GetDefaultFileSystem()->NewReadStream(path));
  return Open(std::move(file), path);
}

Result<std::unique_ptr<TsvStreamReader>> TsvStreamReader::Open(
    std::unique_ptr<std::istream> is, const std::string& source_name) {
  std::unique_ptr<TsvStreamReader> reader(new TsvStreamReader());
  Impl& impl = *reader->impl_;
  impl.input = std::move(is);
  impl.ctx.source_name = source_name;
  // Preamble: every U row, then every D row, up to the first T row. The
  // skeleton corpus this builds (users + per-day annotations) is exactly
  // what campaign registration and evaluation need before any tweet
  // arrives.
  std::string line;
  bool seen_day_label = false;
  while (std::getline(*impl.input, line)) {
    if (!impl.ctx.Preprocess(&line)) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "U") {
      if (seen_day_label) {
        return impl.ctx.Fail(
            "user row after day-label rows (the streaming reader requires "
            "the canonical section order WriteTsv emits: U, then D, then "
            "day-ordered T)");
      }
      TRICLUST_RETURN_IF_ERROR(impl.ctx.HandleUser(fields, &impl.corpus));
    } else if (fields[0] == "D") {
      seen_day_label = true;
      long long day = 0;
      TRICLUST_RETURN_IF_ERROR(
          impl.ctx.HandleDayLabel(fields, &impl.corpus, &day));
      impl.first_populated_day = std::min(impl.first_populated_day, day);
      impl.max_label_day = std::max(impl.max_label_day, day);
    } else if (fields[0] == "T") {
      long long day = 0;
      TRICLUST_RETURN_IF_ERROR(
          impl.ctx.HandleTweet(fields, &impl.corpus, &day));
      impl.first_populated_day = std::min(impl.first_populated_day, day);
      impl.max_tweet_day = std::max(impl.max_tweet_day, day);
      impl.has_pending = true;
      impl.pending_id = impl.corpus.num_tweets() - 1;
      impl.pending_day = static_cast<int>(day);
      impl.last_tweet_day = static_cast<int>(day);
      break;
    } else {
      return impl.ctx.Fail("unknown row tag '" + fields[0] + "'");
    }
  }
  if (impl.input->bad()) {
    return Status::IoError(source_name + ": read failed");
  }
  if (!impl.has_pending) impl.exhausted = true;
  return reader;
}

const Corpus& TsvStreamReader::corpus() const { return impl_->corpus; }

Result<bool> TsvStreamReader::NextDay(TsvDayBatch* batch) {
  Impl& impl = *impl_;
  batch->tweet_ids.clear();
  if (impl.exhausted && !impl.has_pending) {
    impl.WarnIfEpochDays();
    return false;
  }
  batch->day = impl.next_day;
  // Invariant at entry: a pending tweet exists (reading only stops at a
  // day boundary or EOF, and EOF without a pending tweet returned false
  // above).
  if (impl.pending_day > impl.next_day) {
    // Gap day with no tweets: yield it empty so streamed day indices stay
    // aligned with ReadTsv + SplitByDay, which emits empty snapshots too.
    ++impl.next_day;
    return true;
  }
  batch->tweet_ids.push_back(impl.pending_id);
  impl.has_pending = false;
  std::string line;
  while (std::getline(*impl.input, line)) {
    if (!impl.ctx.Preprocess(&line)) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "T") {
      long long day = 0;
      TRICLUST_RETURN_IF_ERROR(
          impl.ctx.HandleTweet(fields, &impl.corpus, &day));
      impl.first_populated_day = std::min(impl.first_populated_day, day);
      impl.max_tweet_day = std::max(impl.max_tweet_day, day);
      if (day < impl.last_tweet_day) {
        return impl.ctx.Fail(
            "tweet day " + std::to_string(day) + " goes backwards after day " +
            std::to_string(impl.last_tweet_day) +
            " (the streaming reader requires day-ordered T rows)");
      }
      impl.last_tweet_day = static_cast<int>(day);
      const size_t id = impl.corpus.num_tweets() - 1;
      if (day == impl.next_day) {
        batch->tweet_ids.push_back(id);
      } else {
        impl.has_pending = true;
        impl.pending_id = id;
        impl.pending_day = static_cast<int>(day);
        break;
      }
    } else if (fields[0] == "U" || fields[0] == "D") {
      return impl.ctx.Fail(
          std::string(fields[0] == "U" ? "user" : "day-label") +
          " row after tweet rows (the streaming reader requires the "
          "canonical section order WriteTsv emits: U, then D, then "
          "day-ordered T)");
    } else {
      return impl.ctx.Fail("unknown row tag '" + fields[0] + "'");
    }
  }
  if (impl.input->bad()) {
    return Status::IoError(impl.ctx.source_name + ": read failed");
  }
  if (!impl.has_pending) impl.exhausted = true;
  ++impl.next_day;
  return true;
}

void TsvStreamReader::ReleaseText(const TsvDayBatch& batch) {
  for (const size_t id : batch.tweet_ids) {
    impl_->corpus.ReleaseTweetText(id);
  }
}

Corpus TsvStreamReader::TakeCorpus() { return std::move(impl_->corpus); }

Result<Corpus> ReadTsvStream(const std::string& path,
                             const TsvDayCallback& on_day) {
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<TsvStreamReader> reader,
                            TsvStreamReader::Open(path));
  TsvDayBatch batch;
  while (true) {
    TRICLUST_ASSIGN_OR_RETURN(const bool more, reader->NextDay(&batch));
    if (!more) break;
    TRICLUST_RETURN_IF_ERROR(on_day(batch.day, reader->corpus(),
                                    batch.tweet_ids));
    reader->ReleaseText(batch);
  }
  return reader->TakeCorpus();
}

}  // namespace triclust
