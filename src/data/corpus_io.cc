#include "src/data/corpus_io.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "src/util/file_util.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

namespace {

/// Upper bound on day indices accepted from disk. Day fields beyond this are
/// far more likely corrupted than a century-long collection; rejecting them
/// keeps one bad row from inflating every downstream per-day structure.
constexpr int kMaxDay = 36500;

}  // namespace

bool ParseSentimentLabel(const std::string& token, Sentiment* out) {
  if (token == "pos" || token == "0") {
    *out = Sentiment::kPositive;
  } else if (token == "neg" || token == "1") {
    *out = Sentiment::kNegative;
  } else if (token == "neu" || token == "2") {
    *out = Sentiment::kNeutral;
  } else if (token == "unlabeled" || token == "-1") {
    *out = Sentiment::kUnlabeled;
  } else {
    return false;
  }
  return true;
}

std::string EscapeTsvField(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string UnescapeTsvField(const std::string& text) {
  std::string raw;
  raw.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      raw += text[i];
      continue;
    }
    switch (text[i + 1]) {
      case '\\':
        raw += '\\';
        ++i;
        break;
      case 't':
        raw += '\t';
        ++i;
        break;
      case 'n':
        raw += '\n';
        ++i;
        break;
      case 'r':
        raw += '\r';
        ++i;
        break;
      default:
        // Unknown escape: keep the backslash so legacy text is unchanged.
        raw += '\\';
    }
  }
  return raw;
}

Status WriteTsv(const Corpus& corpus, std::ostream* os) {
  std::ostream& out = *os;
  out << "# triclust corpus tsv 1\n";
  out << "# U\tid\thandle\tlabel\n";
  out << "# T\tid\tuser\tday\tlabel\tretweet_of\ttext\n";
  out << "# D\tuser\tday\tlabel\n";
  for (const UserInfo& u : corpus.users()) {
    out << "U\t" << u.id << "\t" << EscapeTsvField(u.handle) << "\t"
        << SentimentName(u.label) << "\n";
  }
  for (size_t u = 0; u < corpus.num_users(); ++u) {
    const int days = corpus.num_annotated_days(u);
    for (int day = 0; day < days; ++day) {
      const Sentiment s = corpus.ExplicitUserSentimentAt(u, day);
      if (s == Sentiment::kUnlabeled) continue;
      out << "D\t" << u << "\t" << day << "\t" << SentimentName(s) << "\n";
    }
  }
  for (const Tweet& t : corpus.tweets()) {
    out << "T\t" << t.id << "\t" << t.user << "\t" << t.day << "\t"
        << SentimentName(t.label) << "\t" << t.retweet_of << "\t"
        << EscapeTsvField(t.text) << "\n";
  }
  if (!out) return Status::IoError("corpus TSV write failed");
  return Status::OK();
}

Status WriteTsv(const Corpus& corpus, const std::string& path) {
  return AtomicWriteFile(path, [&corpus](std::ostream* os) {
    return WriteTsv(corpus, os);
  });
}

Result<Corpus> ReadTsv(std::istream* is, const std::string& source_name) {
  Corpus corpus;
  std::string line;
  size_t line_no = 0;
  // Files from the pre-corpus_io writer open with a "#users\t<count>"
  // banner as their FIRST line and wrote handle/text fields raw (no
  // escaping) — a literal backslash-t in them is text, not a tab. Detect
  // the banner (first line only, so a stray comment in a new-format file
  // cannot flip the mode mid-stream) and skip unescaping so those bytes
  // load unchanged.
  bool legacy_raw_text = false;
  const auto decode_field = [&legacy_raw_text](const std::string& field) {
    return legacy_raw_text ? field : UnescapeTsvField(field);
  };
  // Day extremes, for the epoch-days warnings below.
  long long first_populated_day = kMaxDay + 1;
  long long max_tweet_day = -1;
  long long max_label_day = -1;
  while (std::getline(*is, line)) {
    ++line_no;
    if (line_no == 1 && line.compare(0, 7, "#users\t") == 0) {
      legacy_raw_text = true;
    }
    // Tolerate CRLF line endings (externally-prepared files): the
    // trailing CR is a line-ending artifact, not field content — real
    // carriage returns inside text arrive as the \r escape. Legacy files
    // are exempt: their writer escaped nothing, so a trailing CR there is
    // content, which the pre-corpus_io loader preserved.
    if (!legacy_raw_text && !line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    const auto fail = [&](const std::string& why) {
      return Status::ParseError(source_name + ":" + std::to_string(line_no) +
                                ": " + why);
    };
    if (fields[0] == "U") {
      if (fields.size() != 4) {
        return fail("user row needs 4 fields, got " +
                    std::to_string(fields.size()));
      }
      size_t id = 0;
      if (!ParseSizeT(fields[1], &id)) {
        return fail("malformed user id '" + fields[1] + "'");
      }
      if (id != corpus.num_users()) {
        return fail("non-contiguous user id " + fields[1] + " (expected " +
                    std::to_string(corpus.num_users()) + ")");
      }
      Sentiment label = Sentiment::kUnlabeled;
      if (!ParseSentimentLabel(fields[3], &label)) {
        return fail("unknown label '" + fields[3] + "'");
      }
      corpus.AddUser(decode_field(fields[2]), label);
    } else if (fields[0] == "T") {
      if (fields.size() != 7) {
        return fail("tweet row needs 7 fields, got " +
                    std::to_string(fields.size()));
      }
      size_t id = 0;
      if (!ParseSizeT(fields[1], &id)) {
        return fail("malformed tweet id '" + fields[1] + "'");
      }
      if (id != corpus.num_tweets()) {
        return fail("non-contiguous tweet id " + fields[1] + " (expected " +
                    std::to_string(corpus.num_tweets()) + ")");
      }
      size_t user = 0;
      if (!ParseSizeT(fields[2], &user)) {
        return fail("malformed user id '" + fields[2] + "'");
      }
      if (user >= corpus.num_users()) {
        return fail("tweet references undefined user " + fields[2]);
      }
      long long day = 0;
      if (!ParseInt64(fields[3], &day) || day < 0 || day > kMaxDay) {
        return fail("day '" + fields[3] + "' out of range [0, " +
                    std::to_string(kMaxDay) + "]");
      }
      Sentiment label = Sentiment::kUnlabeled;
      if (!ParseSentimentLabel(fields[4], &label)) {
        return fail("unknown label '" + fields[4] + "'");
      }
      long long retweet_of = -1;
      if (!ParseInt64(fields[5], &retweet_of) || retweet_of < -1) {
        return fail("malformed retweet_of '" + fields[5] + "'");
      }
      if (retweet_of >= static_cast<long long>(id)) {
        return fail("retweet_of " + fields[5] +
                    " must reference an earlier tweet");
      }
      first_populated_day = std::min(first_populated_day, day);
      max_tweet_day = std::max(max_tweet_day, day);
      corpus.AddTweet(user, static_cast<int>(day), decode_field(fields[6]),
                      label, static_cast<ptrdiff_t>(retweet_of));
    } else if (fields[0] == "D") {
      if (fields.size() != 4) {
        return fail("day-label row needs 4 fields, got " +
                    std::to_string(fields.size()));
      }
      size_t user = 0;
      if (!ParseSizeT(fields[1], &user)) {
        return fail("malformed user id '" + fields[1] + "'");
      }
      if (user >= corpus.num_users()) {
        return fail("day label references undefined user " + fields[1]);
      }
      long long day = 0;
      if (!ParseInt64(fields[2], &day) || day < 0 || day > kMaxDay) {
        return fail("day '" + fields[2] + "' out of range [0, " +
                    std::to_string(kMaxDay) + "]");
      }
      Sentiment label = Sentiment::kUnlabeled;
      if (!ParseSentimentLabel(fields[3], &label)) {
        return fail("unknown label '" + fields[3] + "'");
      }
      if (label == Sentiment::kUnlabeled) {
        return fail("day annotation must carry a pos/neg/neu label");
      }
      first_populated_day = std::min(first_populated_day, day);
      max_label_day = std::max(max_label_day, day);
      corpus.SetUserSentimentAt(user, static_cast<int>(day), label);
    } else {
      return fail("unknown row tag '" + fields[0] + "'");
    }
  }
  if (is->bad()) return Status::IoError(source_name + ": read failed");
  // Day indices are meant to be zero-based within the collection window
  // (FORMATS.md §1.1). A large empty prefix — the classic symptom of
  // absolute days-since-epoch timestamps, on tweets or on per-day labels —
  // still parses, but every day-indexed consumer (snapshot splitting,
  // replay, the per-user label vectors) pays for the empty days; flag it.
  if (first_populated_day <= kMaxDay && first_populated_day > 365) {
    TRICLUST_LOG(kWarning)
        << source_name << ": first populated day is " << first_populated_day
        << " — days should be zero-based within the collection window; "
        << "day-indexed consumers (replay, snapshot splitting, per-day "
        << "labels) will walk the empty prefix first";
  }
  // D rows far beyond the tweet window are the same mistake hidden behind
  // day-0 tweets: the annotations sit where no evaluation ever looks.
  if (max_label_day > max_tweet_day + 365) {
    TRICLUST_LOG(kWarning)
        << source_name << ": per-day labels reach day " << max_label_day
        << " but the last tweet is on day " << max_tweet_day
        << " — the day bases look mismatched, so evaluations would never "
        << "consult the out-of-window annotations";
  }
  return corpus;
}

Result<Corpus> ReadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadTsv(&in, path);
}

}  // namespace triclust
