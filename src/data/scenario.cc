#include "src/data/scenario.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/data/corpus_io.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

namespace {

/// Common base of the catalog: a Prop-30-like 20-day campaign, small
/// enough that every scenario replays in seconds yet large enough that
/// the accuracy floors are stable. Scenario seeds are offsets from here
/// so no two scenarios share a corpus.
SyntheticConfig BaseConfig(uint64_t seed_offset) {
  SyntheticConfig config;
  config.seed = 4242 + seed_offset;
  config.num_users = 400;
  config.num_days = 20;
  config.base_tweets_per_day = 150.0;
  config.burst_days = {12};
  config.burst_multiplier = 3.0;
  return config;
}

/// Population/volume knobs scale; the day structure does not (see
/// GetScenario's contract).
void ApplyScale(double scale, SyntheticConfig* config) {
  if (scale == 1.0) return;
  config->num_users = std::max<size_t>(
      50, static_cast<size_t>(std::lround(config->num_users * scale)));
  config->base_tweets_per_day =
      std::max(20.0, config->base_tweets_per_day * scale);
  config->num_spam_users =
      static_cast<size_t>(std::lround(config->num_spam_users * scale));
}

Scenario SpamBotnet() {
  Scenario s;
  s.name = "spam_botnet";
  s.description =
      "a coordinated bot fleet (half the genuine population, several "
      "tweets each per day, 90% polar tokens of a random class) floods "
      "every campaign's matrix with unlabeled spam";
  s.config = BaseConfig(1);
  s.config.num_spam_users = 200;
  s.config.spam_tweets_per_user_per_day = 2.5;
  s.config.spam_polar_word_rate = 0.9;
  s.expect.min_tweet_accuracy = 0.42;
  s.expect.min_user_accuracy = 0.42;
  // Spam is noise, not poison: it must never produce non-finite factors,
  // so the flood alone may not quarantine (or even degrade past recovery)
  // any campaign.
  s.expect.max_quarantined = 0;
  s.expect.min_healthy = s.num_campaigns;
  s.expect.expected_days = s.config.num_days;
  s.expect.min_tweets = 4000;
  return s;
}

Scenario TopicHijack() {
  Scenario s;
  s.name = "topic_hijack";
  s.description =
      "the polar word pools swap roles on day 10 of 20: text generated "
      "after the hijack contradicts every lexicon learned before it, "
      "while user stances and labels are unchanged";
  s.config = BaseConfig(2);
  s.config.hijack_day = 10;
  // Half the stream actively contradicts the prior; the floor is what the
  // online solver still extracts across the flip.
  s.expect.min_tweet_accuracy = 0.55;
  s.expect.min_user_accuracy = 0.55;
  s.expect.max_quarantined = 0;
  s.expect.min_healthy = s.num_campaigns;
  s.expect.expected_days = s.config.num_days;
  s.expect.min_tweets = 2000;
  return s;
}

Scenario BurstExtreme() {
  Scenario s;
  s.name = "burst_extreme";
  s.description =
      "election-night load: three burst days at 12x the base volume, "
      "stressing snapshot batching and per-day solve latency";
  s.config = BaseConfig(3);
  s.config.burst_days = {5, 12, 18};
  s.config.burst_multiplier = 12.0;
  s.expect.min_tweet_accuracy = 0.60;
  s.expect.min_user_accuracy = 0.60;
  s.expect.max_quarantined = 0;
  s.expect.min_healthy = s.num_campaigns;
  s.expect.expected_days = s.config.num_days;
  s.expect.min_tweets = 6000;
  return s;
}

Scenario CampaignChurn() {
  Scenario s;
  s.name = "campaign_churn";
  s.description =
      "fleet churn mid-replay: campaign 0 is retired on day 7, a third "
      "campaign launches on day 9, campaign 1 is retired on day 15 — the "
      "survivors' factors must be bit-identical to a fleet that never "
      "co-hosted them";
  s.config = BaseConfig(4);
  s.churn.push_back({7, ChurnEvent::Action::kRetire, 0, ""});
  s.churn.push_back({9, ChurnEvent::Action::kLaunch, 0, "late-entry"});
  s.churn.push_back({15, ChurnEvent::Action::kRetire, 1, ""});
  s.expect.min_tweet_accuracy = 0.55;
  s.expect.min_user_accuracy = 0.50;
  s.expect.max_quarantined = 0;
  // One launched minus two retired: one live campaign at the end.
  s.expect.min_healthy = 1;
  s.expect.expected_retired = 2;
  s.expect.expected_days = s.config.num_days;
  // Lower than the other scenarios: retired campaigns stop ingesting, so
  // the replay carries roughly half the generated traffic.
  s.expect.min_tweets = 1500;
  return s;
}

Scenario EmptyDays() {
  Scenario s;
  s.name = "empty_days";
  s.description =
      "degenerate stream: the campaign opens with two dead days, goes "
      "silent for a three-day run in the middle, and ends on a dead day "
      "— every campaign sees zero-event snapshots at every position";
  s.config = BaseConfig(5);
  s.config.dead_days = {0, 1, 9, 10, 11, 19};
  s.expect.min_tweet_accuracy = 0.60;
  s.expect.min_user_accuracy = 0.55;
  s.expect.max_quarantined = 0;
  s.expect.min_healthy = s.num_campaigns;
  s.expect.expected_days = s.config.num_days - 1;  // day 19 is dead:
  // num_days() is derived from the last populated day, so the replay
  // horizon ends at day 18 (matching ReadTsv + SplitByDay of the same
  // corpus, which cannot see trailing silence either).
  s.expect.min_tweets = 1500;
  return s;
}

Scenario DriftStorm() {
  Scenario s;
  s.name = "drift_storm";
  s.description =
      "vocabulary drift at 6x the paper's observed rate plus doubled "
      "off-class noise: the floor scenario for how much signal the "
      "tri-cluster coupling still extracts from a churning vocabulary";
  s.config = BaseConfig(6);
  s.config.vocab_drift_per_day = 0.25;
  s.config.off_class_noise = 0.25;
  s.expect.min_tweet_accuracy = 0.60;
  s.expect.min_user_accuracy = 0.55;
  s.expect.max_quarantined = 0;
  s.expect.min_healthy = s.num_campaigns;
  s.expect.expected_days = s.config.num_days;
  s.expect.min_tweets = 2000;
  return s;
}

}  // namespace

size_t Scenario::NumStreams() const {
  size_t launches = 0;
  for (const ChurnEvent& e : churn) {
    if (e.action == ChurnEvent::Action::kLaunch) ++launches;
  }
  return num_campaigns + launches;
}

std::vector<std::string> ScenarioNames() {
  return {"spam_botnet",    "topic_hijack", "burst_extreme",
          "campaign_churn", "empty_days",   "drift_storm"};
}

Result<Scenario> GetScenario(const std::string& name, double scale) {
  if (!(scale > 0.0) || scale > 1.0) {
    return Status::InvalidArgument("scenario scale must be in (0, 1], got " +
                                   std::to_string(scale));
  }
  Scenario scenario;
  if (name == "spam_botnet") {
    scenario = SpamBotnet();
  } else if (name == "topic_hijack") {
    scenario = TopicHijack();
  } else if (name == "burst_extreme") {
    scenario = BurstExtreme();
  } else if (name == "campaign_churn") {
    scenario = CampaignChurn();
  } else if (name == "empty_days") {
    scenario = EmptyDays();
  } else if (name == "drift_storm") {
    scenario = DriftStorm();
  } else {
    std::string known;
    for (const std::string& n : ScenarioNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown scenario '" + name + "' (known: " +
                            known + ")");
  }
  ApplyScale(scale, &scenario.config);
  scenario.expect.min_tweets = static_cast<size_t>(
      std::lround(scenario.expect.min_tweets * scale));
  return scenario;
}

std::vector<Scenario> AllScenarios(double scale) {
  std::vector<Scenario> all;
  for (const std::string& name : ScenarioNames()) {
    Result<Scenario> scenario = GetScenario(name, scale);
    TRICLUST_CHECK(scenario.ok());
    all.push_back(std::move(scenario).value());
  }
  return all;
}

Status WriteChurnScheduleTsv(const std::vector<ChurnEvent>& schedule,
                             std::ostream* os) {
  std::ostream& out = *os;
  out << "# triclust churn schedule tsv 1\n";
  out << "# <day>\tretire\t<campaign>  |  <day>\tlaunch\t<name>\n";
  for (const ChurnEvent& e : schedule) {
    if (e.action == ChurnEvent::Action::kRetire) {
      out << e.day << "\tretire\t" << e.campaign << "\n";
    } else {
      out << e.day << "\tlaunch\t" << EscapeTsvField(e.name) << "\n";
    }
  }
  if (!out) return Status::IoError("churn schedule write failed");
  return Status::OK();
}

Result<std::vector<ChurnEvent>> ReadChurnScheduleTsv(
    std::istream* is, const std::string& source_name) {
  std::vector<ChurnEvent> schedule;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      return Status::ParseError(source_name + ":" + std::to_string(line_no) +
                                ": " + why);
    };
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return fail("churn event needs 3 fields, got " +
                  std::to_string(fields.size()));
    }
    ChurnEvent event;
    long long day = 0;
    if (!ParseInt64(fields[0], &day) || day < 0) {
      return fail("malformed day '" + fields[0] + "'");
    }
    event.day = static_cast<int>(day);
    if (fields[1] == "retire") {
      event.action = ChurnEvent::Action::kRetire;
      if (!ParseSizeT(fields[2], &event.campaign)) {
        return fail("malformed campaign id '" + fields[2] + "'");
      }
    } else if (fields[1] == "launch") {
      event.action = ChurnEvent::Action::kLaunch;
      event.name = UnescapeTsvField(fields[2]);
      if (event.name.empty()) return fail("launch event needs a name");
    } else {
      return fail("unknown churn action '" + fields[1] + "'");
    }
    if (!schedule.empty() && event.day < schedule.back().day) {
      return fail("churn events must be day-ordered (day " +
                  std::to_string(event.day) + " after day " +
                  std::to_string(schedule.back().day) + ")");
    }
    schedule.push_back(std::move(event));
  }
  if (is->bad()) return Status::IoError(source_name + ": read failed");
  return schedule;
}

}  // namespace triclust
