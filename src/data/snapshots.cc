#include "src/data/snapshots.h"

#include "src/util/logging.h"

namespace triclust {

std::vector<Snapshot> SplitByDay(const Corpus& corpus) {
  return SplitByWindow(corpus, 1);
}

std::vector<Snapshot> SplitByWindow(const Corpus& corpus,
                                    int days_per_window) {
  TRICLUST_CHECK_GE(days_per_window, 1);
  const int days = corpus.num_days();
  std::vector<Snapshot> snapshots;
  for (int start = 0; start < days; start += days_per_window) {
    Snapshot snap;
    snap.first_day = start;
    snap.last_day = std::min(start + days_per_window - 1, days - 1);
    snapshots.push_back(std::move(snap));
  }
  for (const Tweet& t : corpus.tweets()) {
    const size_t idx = static_cast<size_t>(t.day / days_per_window);
    TRICLUST_CHECK_LT(idx, snapshots.size());
    snapshots[idx].tweet_ids.push_back(t.id);
  }
  return snapshots;
}

}  // namespace triclust
