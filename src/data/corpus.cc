#include "src/data/corpus.h"

#include <algorithm>
#include <fstream>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace triclust {

size_t Corpus::AddUser(std::string handle, Sentiment label) {
  const size_t id = users_.size();
  users_.push_back({id, std::move(handle), label});
  return id;
}

size_t Corpus::AddTweet(size_t user, int day, std::string text,
                        Sentiment label, ptrdiff_t retweet_of) {
  TRICLUST_CHECK_LT(user, users_.size());
  TRICLUST_CHECK_GE(day, 0);
  if (retweet_of >= 0) {
    TRICLUST_CHECK_LT(static_cast<size_t>(retweet_of), tweets_.size());
  }
  const size_t id = tweets_.size();
  tweets_.push_back({id, user, day, std::move(text), label, retweet_of});
  return id;
}

void Corpus::SetUserSentimentAt(size_t user, int day, Sentiment sentiment) {
  TRICLUST_CHECK_LT(user, users_.size());
  TRICLUST_CHECK_GE(day, 0);
  if (user_sentiment_by_day_.size() < users_.size()) {
    user_sentiment_by_day_.resize(users_.size());
  }
  auto& days = user_sentiment_by_day_[user];
  if (days.size() <= static_cast<size_t>(day)) {
    days.resize(static_cast<size_t>(day) + 1, Sentiment::kUnlabeled);
  }
  days[static_cast<size_t>(day)] = sentiment;
}

Sentiment Corpus::UserSentimentAt(size_t user, int day) const {
  TRICLUST_CHECK_LT(user, users_.size());
  if (user < user_sentiment_by_day_.size()) {
    const auto& days = user_sentiment_by_day_[user];
    if (day >= 0 && static_cast<size_t>(day) < days.size() &&
        days[static_cast<size_t>(day)] != Sentiment::kUnlabeled) {
      return days[static_cast<size_t>(day)];
    }
  }
  return users_[user].label;
}

int Corpus::num_days() const {
  int max_day = -1;
  for (const Tweet& t : tweets_) max_day = std::max(max_day, t.day);
  return max_day + 1;
}

const Tweet& Corpus::tweet(size_t id) const {
  TRICLUST_CHECK_LT(id, tweets_.size());
  return tweets_[id];
}

const UserInfo& Corpus::user(size_t id) const {
  TRICLUST_CHECK_LT(id, users_.size());
  return users_[id];
}

UserInfo& Corpus::mutable_user(size_t id) {
  TRICLUST_CHECK_LT(id, users_.size());
  return users_[id];
}

std::vector<size_t> Corpus::TweetIdsInDayRange(int first_day,
                                               int last_day) const {
  std::vector<size_t> ids;
  for (const Tweet& t : tweets_) {
    if (t.day >= first_day && t.day <= last_day) ids.push_back(t.id);
  }
  return ids;
}

namespace {

void Tally(Sentiment s, Corpus::LabelCounts* counts) {
  switch (s) {
    case Sentiment::kPositive:
      ++counts->positive;
      break;
    case Sentiment::kNegative:
      ++counts->negative;
      break;
    case Sentiment::kNeutral:
      ++counts->neutral;
      break;
    case Sentiment::kUnlabeled:
      ++counts->unlabeled;
      break;
  }
}

int SentimentToInt(Sentiment s) { return static_cast<int>(s); }

Sentiment SentimentFromInt(int v) { return static_cast<Sentiment>(v); }

}  // namespace

Corpus::LabelCounts Corpus::CountTweetLabels() const {
  LabelCounts counts;
  for (const Tweet& t : tweets_) Tally(t.label, &counts);
  return counts;
}

Corpus::LabelCounts Corpus::CountUserLabels() const {
  LabelCounts counts;
  for (const UserInfo& u : users_) Tally(u.label, &counts);
  return counts;
}

Status Corpus::SaveTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "#users\t" << users_.size() << "\n";
  for (const UserInfo& u : users_) {
    out << "U\t" << u.id << "\t" << u.handle << "\t"
        << SentimentToInt(u.label) << "\n";
  }
  for (const Tweet& t : tweets_) {
    std::string text = t.text;
    std::replace(text.begin(), text.end(), '\t', ' ');
    std::replace(text.begin(), text.end(), '\n', ' ');
    out << "T\t" << t.id << "\t" << t.user << "\t" << t.day << "\t"
        << SentimentToInt(t.label) << "\t" << t.retweet_of << "\t" << text
        << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Corpus> Corpus::LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  Corpus corpus;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    const auto fail = [&](const std::string& why) {
      return Status::ParseError(path + ":" + std::to_string(line_no) + ": " +
                                why);
    };
    if (fields[0] == "U") {
      if (fields.size() != 4) return fail("user row needs 4 fields");
      size_t id = 0;
      double label = 0;
      if (!ParseSizeT(fields[1], &id) || !ParseDouble(fields[3], &label)) {
        return fail("malformed user row");
      }
      const size_t got = corpus.AddUser(
          fields[2], SentimentFromInt(static_cast<int>(label)));
      if (got != id) return fail("non-contiguous user ids");
    } else if (fields[0] == "T") {
      if (fields.size() != 7) return fail("tweet row needs 7 fields");
      size_t id = 0;
      size_t user = 0;
      double day = 0;
      double label = 0;
      double retweet_of = 0;
      if (!ParseSizeT(fields[1], &id) || !ParseSizeT(fields[2], &user) ||
          !ParseDouble(fields[3], &day) || !ParseDouble(fields[4], &label) ||
          !ParseDouble(fields[5], &retweet_of)) {
        return fail("malformed tweet row");
      }
      if (user >= corpus.num_users()) return fail("tweet references bad user");
      const size_t got = corpus.AddTweet(
          user, static_cast<int>(day), fields[6],
          SentimentFromInt(static_cast<int>(label)),
          static_cast<ptrdiff_t>(retweet_of));
      if (got != id) return fail("non-contiguous tweet ids");
    } else {
      return fail("unknown row tag '" + fields[0] + "'");
    }
  }
  return corpus;
}

}  // namespace triclust
