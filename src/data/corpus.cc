#include "src/data/corpus.h"

#include <algorithm>

#include "src/data/corpus_io.h"
#include "src/util/logging.h"

namespace triclust {

size_t Corpus::AddUser(std::string handle, Sentiment label) {
  const size_t id = users_.size();
  users_.push_back({id, std::move(handle), label});
  return id;
}

size_t Corpus::AddTweet(size_t user, int day, std::string text,
                        Sentiment label, ptrdiff_t retweet_of) {
  TRICLUST_CHECK_LT(user, users_.size());
  TRICLUST_CHECK_GE(day, 0);
  if (retweet_of >= 0) {
    TRICLUST_CHECK_LT(static_cast<size_t>(retweet_of), tweets_.size());
  }
  const size_t id = tweets_.size();
  tweets_.push_back({id, user, day, std::move(text), label, retweet_of});
  return id;
}

void Corpus::ReleaseTweetText(size_t id) {
  TRICLUST_CHECK_LT(id, tweets_.size());
  // shrink_to_fit via swap: clear() alone keeps the heap allocation.
  std::string().swap(tweets_[id].text);
}

void Corpus::SetUserSentimentAt(size_t user, int day, Sentiment sentiment) {
  TRICLUST_CHECK_LT(user, users_.size());
  TRICLUST_CHECK_GE(day, 0);
  if (user_sentiment_by_day_.size() < users_.size()) {
    user_sentiment_by_day_.resize(users_.size());
  }
  auto& days = user_sentiment_by_day_[user];
  if (days.size() <= static_cast<size_t>(day)) {
    days.resize(static_cast<size_t>(day) + 1, Sentiment::kUnlabeled);
  }
  days[static_cast<size_t>(day)] = sentiment;
}

Sentiment Corpus::UserSentimentAt(size_t user, int day) const {
  TRICLUST_CHECK_LT(user, users_.size());
  if (user < user_sentiment_by_day_.size()) {
    const auto& days = user_sentiment_by_day_[user];
    if (day >= 0 && static_cast<size_t>(day) < days.size() &&
        days[static_cast<size_t>(day)] != Sentiment::kUnlabeled) {
      return days[static_cast<size_t>(day)];
    }
  }
  return users_[user].label;
}

Sentiment Corpus::ExplicitUserSentimentAt(size_t user, int day) const {
  TRICLUST_CHECK_LT(user, users_.size());
  if (user < user_sentiment_by_day_.size() && day >= 0) {
    const auto& days = user_sentiment_by_day_[user];
    if (static_cast<size_t>(day) < days.size()) {
      return days[static_cast<size_t>(day)];
    }
  }
  return Sentiment::kUnlabeled;
}

int Corpus::num_annotated_days(size_t user) const {
  TRICLUST_CHECK_LT(user, users_.size());
  if (user >= user_sentiment_by_day_.size()) return 0;
  return static_cast<int>(user_sentiment_by_day_[user].size());
}

int Corpus::num_days() const {
  int max_day = -1;
  for (const Tweet& t : tweets_) max_day = std::max(max_day, t.day);
  return max_day + 1;
}

const Tweet& Corpus::tweet(size_t id) const {
  TRICLUST_CHECK_LT(id, tweets_.size());
  return tweets_[id];
}

const UserInfo& Corpus::user(size_t id) const {
  TRICLUST_CHECK_LT(id, users_.size());
  return users_[id];
}

UserInfo& Corpus::mutable_user(size_t id) {
  TRICLUST_CHECK_LT(id, users_.size());
  return users_[id];
}

std::vector<size_t> Corpus::TweetIdsInDayRange(int first_day,
                                               int last_day) const {
  std::vector<size_t> ids;
  for (const Tweet& t : tweets_) {
    if (t.day >= first_day && t.day <= last_day) ids.push_back(t.id);
  }
  return ids;
}

namespace {

void Tally(Sentiment s, Corpus::LabelCounts* counts) {
  switch (s) {
    case Sentiment::kPositive:
      ++counts->positive;
      break;
    case Sentiment::kNegative:
      ++counts->negative;
      break;
    case Sentiment::kNeutral:
      ++counts->neutral;
      break;
    case Sentiment::kUnlabeled:
      ++counts->unlabeled;
      break;
  }
}

}  // namespace

Corpus::LabelCounts Corpus::CountTweetLabels() const {
  LabelCounts counts;
  for (const Tweet& t : tweets_) Tally(t.label, &counts);
  return counts;
}

Corpus::LabelCounts Corpus::CountUserLabels() const {
  LabelCounts counts;
  for (const UserInfo& u : users_) Tally(u.label, &counts);
  return counts;
}

Status Corpus::SaveTsv(const std::string& path) const {
  return WriteTsv(*this, path);
}

Result<Corpus> Corpus::LoadTsv(const std::string& path) {
  return ReadTsv(path);
}

}  // namespace triclust
