#ifndef TRICLUST_SRC_DATA_MATRIX_BUILDER_H_
#define TRICLUST_SRC_DATA_MATRIX_BUILDER_H_

#include <vector>

#include "src/data/corpus.h"
#include "src/graph/user_graph.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/tokenizer.h"
#include "src/text/vectorizer.h"

namespace triclust {

/// The matrix view of (a subset of) a corpus: the three bipartite graphs of
/// the tripartite decomposition plus the user–user graph, with row-id maps
/// back into the corpus and the ground-truth labels used for evaluation.
struct DatasetMatrices {
  /// Tweet–feature matrix Xp (n×l).
  SparseMatrix xp;
  /// User–feature matrix Xu (m×l): sum of each user's tweet rows.
  SparseMatrix xu;
  /// User–tweet matrix Xr (m×n): posting and retweeting incidence.
  SparseMatrix xr;
  /// User–user retweet graph Gu (m×m), one unit of weight per retweet event.
  UserGraph gu;

  /// Row i of Xp is corpus tweet tweet_ids[i].
  std::vector<size_t> tweet_ids;
  /// Row j of Xu/Xr is corpus user user_ids[j].
  std::vector<size_t> user_ids;

  /// Ground-truth labels aligned with the rows above (kUnlabeled allowed).
  std::vector<Sentiment> tweet_labels;
  std::vector<Sentiment> user_labels;

  size_t num_tweets() const { return tweet_ids.size(); }
  size_t num_users() const { return user_ids.size(); }
  size_t num_features() const { return xp.cols(); }
};

/// Builds DatasetMatrices from a corpus against a single fixed vocabulary.
///
/// Fit() tokenizes the whole corpus once and learns the feature space; every
/// subsequent Build() (full corpus or one temporal snapshot) maps onto that
/// shared space, which keeps Sf(t) dimensionally consistent across online
/// snapshots. Out-of-vocabulary tokens in later snapshots are dropped,
/// matching how a deployed system would pin its feature hash space.
///
/// Streaming ingestion: Append() accumulates tweets into a *pending
/// snapshot*, vectorizing each tweet once on arrival — O(tokens of the new
/// tweet), independent of how much is already pending — and EmitSnapshot()
/// assembles the accumulated rows into DatasetMatrices identical to what
/// Build() would produce for the same tweet ids. This is the ingestion path
/// of the serving layer: a request deadline pays only for the matrices'
/// assembly, never for re-tokenizing or re-weighting the backlog. Tweets
/// added to the corpus after Fit() are tokenized on the fly (their
/// out-of-vocabulary tokens drop out, as in Build).
class MatrixBuilder {
 public:
  explicit MatrixBuilder(TokenizerOptions tokenizer_options = {},
                         VectorizerOptions vectorizer_options = {});

  /// Tokenizes all tweets and fixes the vocabulary.
  void Fit(const Corpus& corpus);

  // --- streaming Fit (bounded memory) ---------------------------------------
  // Fit for corpora that do not fit in RAM: feed every tweet's text once
  // to FitStreamCount, then once more IN THE SAME (id) ORDER to
  // FitStreamAdmit, then call FitStreamFinish — typically two passes of
  // ReadTsvStream over the same file. The learned feature space is
  // identical to Fit() over the same texts, and every later Append /
  // EmitSnapshot row matches the in-memory path bit for bit (Append
  // re-tokenizes on the fly; no token cache is retained, so Build() —
  // which requires the cache — CHECK-fails on a stream-fitted builder).

  /// Starts the document-frequency pass; discards any previous fit.
  void FitStreamBegin();
  /// Folds one tweet's text into the document-frequency pass.
  void FitStreamCount(const std::string& text);
  /// Ends the df pass and starts the vocabulary-admission pass.
  void FitStreamAdmitBegin();
  /// Folds one tweet's text into the admission pass (same order).
  void FitStreamAdmit(const std::string& text);
  /// Completes the streaming fit; the builder is now Fit.
  void FitStreamFinish();

  /// Learned feature space (valid after Fit()).
  const Vocabulary& vocabulary() const { return vectorizer_.vocabulary(); }

  /// Builds matrices over the given tweets (typically one snapshot).
  /// Users = authors of those tweets. When `user_label_day` ≥ 0, user labels
  /// are the temporal ground truth at that day; otherwise static labels.
  DatasetMatrices Build(const Corpus& corpus,
                        const std::vector<size_t>& tweet_ids,
                        int user_label_day = -1) const;

  /// Builds matrices over the whole corpus.
  DatasetMatrices BuildAll(const Corpus& corpus) const;

  /// Appends one tweet to the pending snapshot (O(its tokens)).
  void Append(const Corpus& corpus, size_t tweet_id);

  /// Appends a batch of tweets to the pending snapshot.
  void Append(const Corpus& corpus, const std::vector<size_t>& tweet_ids);

  /// Number of tweets accumulated since the last EmitSnapshot().
  size_t num_pending() const { return pending_ids_.size(); }

  /// Assembles the pending snapshot — bitwise identical to
  /// Build(corpus, <appended ids in order>, user_label_day) — and clears
  /// the pending buffer. O(pending tweets), no tokenization.
  DatasetMatrices EmitSnapshot(const Corpus& corpus, int user_label_day = -1);

 private:
  /// One vectorized pending tweet: its canonical Xp row.
  struct PendingRow {
    std::vector<uint32_t> cols;
    std::vector<double> values;
  };

  /// Shared tail of Build/EmitSnapshot: everything past Xp (row maps, Xu,
  /// Xr, Gu, labels) derived from an already-vectorized Xp.
  DatasetMatrices Assemble(const Corpus& corpus,
                           std::vector<size_t> tweet_ids, SparseMatrix xp,
                           int user_label_day) const;

  Tokenizer tokenizer_;
  DocumentVectorizer vectorizer_;
  std::vector<std::vector<std::string>> tokens_by_tweet_;
  bool fitted_ = false;

  std::vector<size_t> pending_ids_;
  std::vector<PendingRow> pending_rows_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_MATRIX_BUILDER_H_
