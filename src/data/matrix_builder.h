#ifndef TRICLUST_SRC_DATA_MATRIX_BUILDER_H_
#define TRICLUST_SRC_DATA_MATRIX_BUILDER_H_

#include <vector>

#include "src/data/corpus.h"
#include "src/graph/user_graph.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/tokenizer.h"
#include "src/text/vectorizer.h"

namespace triclust {

/// The matrix view of (a subset of) a corpus: the three bipartite graphs of
/// the tripartite decomposition plus the user–user graph, with row-id maps
/// back into the corpus and the ground-truth labels used for evaluation.
struct DatasetMatrices {
  /// Tweet–feature matrix Xp (n×l).
  SparseMatrix xp;
  /// User–feature matrix Xu (m×l): sum of each user's tweet rows.
  SparseMatrix xu;
  /// User–tweet matrix Xr (m×n): posting and retweeting incidence.
  SparseMatrix xr;
  /// User–user retweet graph Gu (m×m), one unit of weight per retweet event.
  UserGraph gu;

  /// Row i of Xp is corpus tweet tweet_ids[i].
  std::vector<size_t> tweet_ids;
  /// Row j of Xu/Xr is corpus user user_ids[j].
  std::vector<size_t> user_ids;

  /// Ground-truth labels aligned with the rows above (kUnlabeled allowed).
  std::vector<Sentiment> tweet_labels;
  std::vector<Sentiment> user_labels;

  size_t num_tweets() const { return tweet_ids.size(); }
  size_t num_users() const { return user_ids.size(); }
  size_t num_features() const { return xp.cols(); }
};

/// Builds DatasetMatrices from a corpus against a single fixed vocabulary.
///
/// Fit() tokenizes the whole corpus once and learns the feature space; every
/// subsequent Build() (full corpus or one temporal snapshot) maps onto that
/// shared space, which keeps Sf(t) dimensionally consistent across online
/// snapshots. Out-of-vocabulary tokens in later snapshots are dropped,
/// matching how a deployed system would pin its feature hash space.
class MatrixBuilder {
 public:
  explicit MatrixBuilder(TokenizerOptions tokenizer_options = {},
                         VectorizerOptions vectorizer_options = {});

  /// Tokenizes all tweets and fixes the vocabulary.
  void Fit(const Corpus& corpus);

  /// Learned feature space (valid after Fit()).
  const Vocabulary& vocabulary() const { return vectorizer_.vocabulary(); }

  /// Builds matrices over the given tweets (typically one snapshot).
  /// Users = authors of those tweets. When `user_label_day` ≥ 0, user labels
  /// are the temporal ground truth at that day; otherwise static labels.
  DatasetMatrices Build(const Corpus& corpus,
                        const std::vector<size_t>& tweet_ids,
                        int user_label_day = -1) const;

  /// Builds matrices over the whole corpus.
  DatasetMatrices BuildAll(const Corpus& corpus) const;

 private:
  Tokenizer tokenizer_;
  DocumentVectorizer vectorizer_;
  std::vector<std::vector<std::string>> tokens_by_tweet_;
  bool fitted_ = false;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_MATRIX_BUILDER_H_
