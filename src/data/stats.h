#ifndef TRICLUST_SRC_DATA_STATS_H_
#define TRICLUST_SRC_DATA_STATS_H_

#include <vector>

#include "src/data/corpus.h"

namespace triclust {

/// Descriptive statistics of a corpus, used by the dataset-statistics bench
/// (paper Table 3), the volume curves of Fig. 11/12, and the generator's
/// own validation tests.
struct CorpusStats {
  size_t num_tweets = 0;
  size_t num_users = 0;
  int num_days = 0;
  size_t num_retweets = 0;
  /// Tweets per day, index = day.
  std::vector<size_t> daily_volume;
  /// Tweets authored per user, index = user id.
  std::vector<size_t> user_activity;
  /// Gini coefficient of user activity in [0, 1]; high = long tail (the
  /// paper's "super-active users" phenomenon).
  double activity_gini = 0.0;
  /// Fraction of active users posting on more than one day.
  double returning_user_fraction = 0.0;
};

/// Computes all statistics in one pass over the corpus.
CorpusStats ComputeCorpusStats(const Corpus& corpus);

/// Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated).
double GiniCoefficient(std::vector<double> values);

}  // namespace triclust

#endif  // TRICLUST_SRC_DATA_STATS_H_
