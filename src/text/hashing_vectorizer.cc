#include "src/text/hashing_vectorizer.h"

#include <cmath>
#include <unordered_map>

#include "src/matrix/dense_matrix.h"
#include "src/text/stopwords.h"
#include "src/util/logging.h"

namespace triclust {

namespace {

/// FNV-1a with a seed mix: fast, stable across platforms.
uint64_t HashToken(std::string_view token, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

HashingVectorizer::HashingVectorizer(HashingVectorizerOptions options)
    : options_(options) {
  TRICLUST_CHECK_GT(options_.num_buckets, 0u);
}

size_t HashingVectorizer::BucketOf(std::string_view token) const {
  return HashToken(token, options_.seed) % options_.num_buckets;
}

SparseMatrix HashingVectorizer::Transform(
    const std::vector<std::vector<std::string>>& documents) const {
  SparseMatrix::Builder builder(documents.size(), options_.num_buckets);
  for (size_t d = 0; d < documents.size(); ++d) {
    std::unordered_map<size_t, double> counts;
    for (const std::string& token : documents[d]) {
      if (options_.remove_stopwords && IsStopWord(token)) continue;
      counts[BucketOf(token)] += 1.0;
    }
    double norm_sq = 0.0;
    for (const auto& [bucket, count] : counts) norm_sq += count * count;
    const double inv_norm =
        (options_.l2_normalize && norm_sq > 0.0) ? 1.0 / std::sqrt(norm_sq)
                                                 : 1.0;
    for (const auto& [bucket, count] : counts) {
      builder.Add(d, bucket, count * inv_norm);
    }
  }
  return builder.Build();
}

DenseMatrix HashingVectorizer::BuildHashedSf0(const SentimentLexicon& lexicon,
                                              int num_classes,
                                              double confidence) const {
  TRICLUST_CHECK_GE(num_classes, 2);
  TRICLUST_CHECK_GT(confidence, 0.0);
  TRICLUST_CHECK_LE(confidence, 1.0);
  const size_t k = static_cast<size_t>(num_classes);

  // Vote per bucket; conflicting votes cancel to "unknown".
  std::vector<int> bucket_class(options_.num_buckets, -1);
  std::vector<bool> conflicted(options_.num_buckets, false);
  for (const auto& [word, polarity] : lexicon.Entries()) {
    const int cls = SentimentIndex(polarity);
    if (cls >= num_classes) continue;
    const size_t bucket = BucketOf(word);
    if (bucket_class[bucket] == -1) {
      bucket_class[bucket] = cls;
    } else if (bucket_class[bucket] != cls) {
      conflicted[bucket] = true;
    }
  }

  const double uniform = 1.0 / static_cast<double>(k);
  const double off_mass = (1.0 - confidence) / static_cast<double>(k - 1);
  DenseMatrix sf0(options_.num_buckets, k, uniform);
  for (size_t b = 0; b < options_.num_buckets; ++b) {
    if (bucket_class[b] < 0 || conflicted[b]) continue;
    for (size_t c = 0; c < k; ++c) {
      sf0(b, c) = (static_cast<int>(c) == bucket_class[b]) ? confidence
                                                           : off_mass;
    }
  }
  return sf0;
}

}  // namespace triclust
