#include "src/text/stopwords.h"

#include <algorithm>
#include <iterator>

namespace triclust {

namespace {

// Sorted ascending so membership is a binary search (checked by tests).
constexpr std::string_view kStopWords[] = {
    "a",       "about",   "after",   "again",   "all",      "also",
    "am",      "amp",     "an",      "and",     "any",      "are",
    "as",      "at",      "be",      "because", "been",     "before",
    "being",   "between", "both",    "but",     "by",       "can",
    "could",   "did",     "do",      "does",    "doing",    "down",
    "during",  "each",    "few",     "for",     "from",     "further",
    "had",     "has",     "have",    "having",  "he",       "her",
    "here",    "hers",    "him",     "his",     "how",      "i",
    "if",      "in",      "into",    "is",      "it",       "its",
    "just",    "me",      "more",    "most",    "my",       "no",
    "nor",     "not",     "now",     "of",      "off",      "on",
    "once",    "only",    "or",      "other",   "our",      "ours",
    "out",     "over",    "own",     "same",    "she",      "should",
    "so",      "some",    "such",    "than",    "that",     "the",
    "their",   "theirs",  "them",    "then",    "there",    "these",
    "they",    "this",    "those",   "through", "to",       "too",
    "under",   "until",   "up",      "very",    "via",      "was",
    "we",      "were",    "what",    "when",    "where",    "which",
    "while",   "who",     "whom",    "why",     "will",     "with",
    "would",   "you",     "your",    "yours",   "yourself",
};

}  // namespace

bool IsStopWord(std::string_view word) {
  return std::binary_search(std::begin(kStopWords), std::end(kStopWords),
                            word);
}

size_t StopWordCount() { return std::size(kStopWords); }

}  // namespace triclust
