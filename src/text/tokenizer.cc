#include "src/text/tokenizer.h"

#include <array>
#include <cctype>

#include "src/util/string_util.h"

namespace triclust {

namespace {

constexpr std::array<std::string_view, 12> kPositiveEmoticons = {
    ":)", ":-)", ":d", ":-d", "=)", ";)", ";-)",
    ":]", "=d", "<3", "(:", "^_^"};

constexpr std::array<std::string_view, 10> kNegativeEmoticons = {
    ":(", ":-(", ":'(", "=(", ":[", "d:", ":/", ":-/", "):", ">:("};

bool IsUrlToken(std::string_view token) {
  return StartsWith(token, "http://") || StartsWith(token, "https://") ||
         StartsWith(token, "www.");
}

bool IsAllDigits(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Strips leading/trailing punctuation from a plain word, keeping inner
/// apostrophes/hyphens ("don't", "agri-tech").
std::string_view StripOuterPunct(std::string_view token) {
  size_t begin = 0;
  size_t end = token.size();
  auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (begin < end && !is_word_char(token[begin])) ++begin;
  while (end > begin && !is_word_char(token[end - 1])) --end;
  return token.substr(begin, end - begin);
}

}  // namespace

bool IsPositiveEmoticon(std::string_view token) {
  const std::string lower = ToLowerAscii(token);
  for (std::string_view e : kPositiveEmoticons) {
    if (lower == e) return true;
  }
  return false;
}

bool IsNegativeEmoticon(std::string_view token) {
  const std::string lower = ToLowerAscii(token);
  for (std::string_view e : kNegativeEmoticons) {
    if (lower == e) return true;
  }
  return false;
}

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  for (const std::string& raw : SplitWhitespace(text)) {
    std::string token = options_.lowercase ? ToLowerAscii(raw) : raw;

    if (options_.strip_retweet_marker && (token == "rt" || raw == "RT")) {
      continue;
    }
    if (options_.strip_urls && IsUrlToken(token)) continue;

    if (options_.map_emoticons) {
      if (IsPositiveEmoticon(token)) {
        out.emplace_back(kPositiveEmoticonToken);
        continue;
      }
      if (IsNegativeEmoticon(token)) {
        out.emplace_back(kNegativeEmoticonToken);
        continue;
      }
    }

    if (!token.empty() && token[0] == '#') {
      if (!options_.keep_hashtags) continue;
      const std::string_view body = StripOuterPunct(
          std::string_view(token).substr(1));
      if (body.empty()) continue;
      out.push_back("#" + std::string(body));
      continue;
    }

    if (!token.empty() && token[0] == '@') {
      if (!options_.keep_mentions) continue;
      const std::string_view body = StripOuterPunct(
          std::string_view(token).substr(1));
      if (body.empty()) continue;
      out.push_back("@" + std::string(body));
      continue;
    }

    const std::string_view word = StripOuterPunct(token);
    if (word.size() < options_.min_token_length) continue;
    if (options_.strip_numbers && IsAllDigits(word)) continue;
    out.emplace_back(word);
  }
  return out;
}

}  // namespace triclust
