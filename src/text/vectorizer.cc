#include "src/text/vectorizer.h"

#include <cmath>
#include <unordered_map>

#include "src/text/stopwords.h"
#include "src/util/logging.h"

namespace triclust {

DocumentVectorizer::DocumentVectorizer(VectorizerOptions options)
    : options_(options) {}

void DocumentVectorizer::Fit(
    const std::vector<std::vector<std::string>>& documents) {
  // First pass: document frequencies over the raw token space.
  std::unordered_map<std::string, size_t> df;
  for (const auto& doc : documents) {
    std::unordered_map<std::string, bool> seen;
    for (const std::string& token : doc) {
      if (options_.remove_stopwords && IsStopWord(token)) continue;
      if (!seen.emplace(token, true).second) continue;
      ++df[token];
    }
  }

  // Second pass: admit features meeting the document-frequency floor, in
  // first-appearance order so ids are deterministic.
  vocabulary_ = Vocabulary();
  document_frequency_.clear();
  for (const auto& doc : documents) {
    for (const std::string& token : doc) {
      if (options_.remove_stopwords && IsStopWord(token)) continue;
      const auto it = df.find(token);
      if (it == df.end() || it->second < options_.min_document_frequency) {
        continue;
      }
      if (!vocabulary_.Contains(token)) {
        vocabulary_.GetOrAdd(token);
        document_frequency_.push_back(it->second);
      }
    }
  }
  num_fit_documents_ = documents.size();
  fitted_ = true;
}

void DocumentVectorizer::FitStreamBegin() {
  stream_phase_ = StreamPhase::kCounting;
  stream_df_.clear();
  stream_counted_docs_ = 0;
  stream_admitted_docs_ = 0;
  fitted_ = false;
}

void DocumentVectorizer::FitStreamCount(
    const std::vector<std::string>& document) {
  TRICLUST_CHECK(stream_phase_ == StreamPhase::kCounting);
  // Mirrors the first pass of Fit() exactly: per-document dedup after
  // stop-word removal.
  std::unordered_map<std::string, bool> seen;
  for (const std::string& token : document) {
    if (options_.remove_stopwords && IsStopWord(token)) continue;
    if (!seen.emplace(token, true).second) continue;
    ++stream_df_[token];
  }
  ++stream_counted_docs_;
}

void DocumentVectorizer::FitStreamAdmitBegin() {
  TRICLUST_CHECK(stream_phase_ == StreamPhase::kCounting);
  stream_phase_ = StreamPhase::kAdmitting;
  vocabulary_ = Vocabulary();
  document_frequency_.clear();
}

void DocumentVectorizer::FitStreamAdmit(
    const std::vector<std::string>& document) {
  TRICLUST_CHECK(stream_phase_ == StreamPhase::kAdmitting);
  // Mirrors the second pass of Fit(): admission in first-appearance order,
  // so feature ids match the in-memory fit bit for bit.
  for (const std::string& token : document) {
    if (options_.remove_stopwords && IsStopWord(token)) continue;
    const auto it = stream_df_.find(token);
    if (it == stream_df_.end() ||
        it->second < options_.min_document_frequency) {
      continue;
    }
    if (!vocabulary_.Contains(token)) {
      vocabulary_.GetOrAdd(token);
      document_frequency_.push_back(it->second);
    }
  }
  ++stream_admitted_docs_;
}

void DocumentVectorizer::FitStreamFinish() {
  TRICLUST_CHECK(stream_phase_ == StreamPhase::kAdmitting);
  // Unequal pass lengths mean the caller re-streamed a different corpus —
  // the vocabulary would silently diverge from the idf denominators.
  TRICLUST_CHECK_EQ(stream_counted_docs_, stream_admitted_docs_);
  num_fit_documents_ = stream_counted_docs_;
  fitted_ = true;
  stream_phase_ = StreamPhase::kNone;
  stream_df_ = {};
}

double DocumentVectorizer::IdfWeight(size_t feature_id) const {
  const double n = static_cast<double>(num_fit_documents_);
  const double df = static_cast<double>(document_frequency_[feature_id]);
  return std::log((1.0 + n) / (1.0 + df)) + 1.0;
}

size_t DocumentVectorizer::DocumentFrequency(size_t id) const {
  TRICLUST_CHECK_LT(id, document_frequency_.size());
  return document_frequency_[id];
}

SparseMatrix DocumentVectorizer::Transform(
    const std::vector<std::vector<std::string>>& documents) const {
  TRICLUST_CHECK(fitted_);
  SparseMatrix::Builder builder(documents.size(), vocabulary_.size());
  std::vector<double> row_sq;
  for (size_t d = 0; d < documents.size(); ++d) {
    std::unordered_map<size_t, double> counts;
    for (const std::string& token : documents[d]) {
      const ptrdiff_t id = vocabulary_.IdOf(token);
      if (id < 0) continue;  // OOV or filtered at Fit time.
      counts[static_cast<size_t>(id)] += 1.0;
    }
    double norm_sq = 0.0;
    for (auto& [id, count] : counts) {
      double w = count;
      if (options_.weighting == TermWeighting::kTfIdf) {
        w *= IdfWeight(id);
      }
      counts[id] = w;
      norm_sq += w * w;
    }
    const double inv_norm =
        (options_.l2_normalize && norm_sq > 0.0) ? 1.0 / std::sqrt(norm_sq)
                                                 : 1.0;
    for (const auto& [id, w] : counts) {
      builder.Add(d, id, w * inv_norm);
    }
  }
  return builder.Build();
}

SparseMatrix DocumentVectorizer::FitTransform(
    const std::vector<std::vector<std::string>>& documents) {
  Fit(documents);
  return Transform(documents);
}

}  // namespace triclust
