#include "src/text/vocabulary.h"

#include "src/util/logging.h"

namespace triclust {

size_t Vocabulary::GetOrAdd(std::string_view token) {
  const auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const size_t id = tokens_.size();
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

ptrdiff_t Vocabulary::IdOf(std::string_view token) const {
  const auto it = ids_.find(std::string(token));
  return it == ids_.end() ? -1 : static_cast<ptrdiff_t>(it->second);
}

bool Vocabulary::Contains(std::string_view token) const {
  return ids_.count(std::string(token)) > 0;
}

const std::string& Vocabulary::TokenOf(size_t id) const {
  TRICLUST_CHECK_LT(id, tokens_.size());
  return tokens_[id];
}

}  // namespace triclust
