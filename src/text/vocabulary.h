#ifndef TRICLUST_SRC_TEXT_VOCABULARY_H_
#define TRICLUST_SRC_TEXT_VOCABULARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace triclust {

/// Bidirectional feature ↔ dense-id map (the feature layer F of the
/// tripartite graph). Ids are assigned in insertion order and never reused,
/// so matrices built against a vocabulary remain valid as it grows — the
/// property the online framework relies on when the feature space evolves
/// across snapshots (paper Observation 1).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Id of `token`, inserting it if absent.
  size_t GetOrAdd(std::string_view token);

  /// Id of `token`, or -1 when absent.
  ptrdiff_t IdOf(std::string_view token) const;

  /// True when `token` is present.
  bool Contains(std::string_view token) const;

  /// Token for a valid id.
  const std::string& TokenOf(size_t id) const;

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  /// All tokens in id order.
  const std::vector<std::string>& tokens() const { return tokens_; }

 private:
  std::unordered_map<std::string, size_t> ids_;
  std::vector<std::string> tokens_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_VOCABULARY_H_
