#include "src/text/lexicon.h"

#include "src/text/tokenizer.h"
#include "src/util/logging.h"

namespace triclust {

void SentimentLexicon::Add(std::string_view word, Sentiment polarity) {
  TRICLUST_CHECK(polarity == Sentiment::kPositive ||
                 polarity == Sentiment::kNegative ||
                 polarity == Sentiment::kNeutral);
  polarity_[std::string(word)] = polarity;
}

Sentiment SentimentLexicon::PolarityOf(std::string_view word) const {
  const auto it = polarity_.find(std::string(word));
  return it == polarity_.end() ? Sentiment::kUnlabeled : it->second;
}

bool SentimentLexicon::Contains(std::string_view word) const {
  return polarity_.count(std::string(word)) > 0;
}

std::vector<std::pair<std::string, Sentiment>> SentimentLexicon::Entries()
    const {
  std::vector<std::pair<std::string, Sentiment>> out;
  out.reserve(polarity_.size());
  for (const auto& [word, polarity] : polarity_) {
    out.emplace_back(word, polarity);
  }
  return out;
}

DenseMatrix SentimentLexicon::BuildSf0(const Vocabulary& vocabulary,
                                       int num_classes,
                                       double confidence) const {
  TRICLUST_CHECK_GE(num_classes, 2);
  TRICLUST_CHECK_LE(num_classes, kNumSentimentClasses);
  TRICLUST_CHECK_GT(confidence, 0.0);
  TRICLUST_CHECK_LE(confidence, 1.0);
  const size_t l = vocabulary.size();
  const size_t k = static_cast<size_t>(num_classes);
  const double uniform = 1.0 / static_cast<double>(k);
  const double off_mass =
      (1.0 - confidence) / static_cast<double>(k - 1);

  DenseMatrix sf0(l, k, uniform);
  for (size_t f = 0; f < l; ++f) {
    const std::string& token = vocabulary.TokenOf(f);
    Sentiment polarity = PolarityOf(token);
    if (polarity == Sentiment::kUnlabeled) {
      if (token == kPositiveEmoticonToken) {
        polarity = Sentiment::kPositive;
      } else if (token == kNegativeEmoticonToken) {
        polarity = Sentiment::kNegative;
      } else {
        continue;  // uncovered: keep the uniform row
      }
    }
    const int cls = SentimentIndex(polarity);
    if (cls >= num_classes) continue;  // e.g. neutral word with k = 2
    for (size_t c = 0; c < k; ++c) {
      sf0(f, c) = (static_cast<int>(c) == cls) ? confidence : off_mass;
    }
  }
  return sf0;
}

SentimentLexicon SentimentLexicon::BuiltinEnglish() {
  SentimentLexicon lex;
  static constexpr std::string_view kPositive[] = {
      "good",     "great",    "love",      "loved",   "loves",  "awesome",
      "amazing",  "excellent", "happy",    "best",    "support", "win",
      "wins",     "safe",     "healthy",   "right",   "yes",    "hope",
      "benefit",  "improve",  "improved",  "success", "positive", "strong",
      "protect",  "fair",     "honest",    "smart",   "wonderful", "like",
  };
  static constexpr std::string_view kNegative[] = {
      "bad",     "evil",    "hate",     "hated",   "worst",   "terrible",
      "awful",   "poison",  "toxic",    "danger",  "dangerous", "risk",
      "risky",   "wrong",   "no",       "fail",    "failed",  "failure",
      "lie",     "lies",    "corrupt",  "scam",    "fraud",   "negative",
      "harm",    "harmful", "cancer",   "fear",    "disaster", "stupid",
  };
  for (std::string_view w : kPositive) lex.Add(w, Sentiment::kPositive);
  for (std::string_view w : kNegative) lex.Add(w, Sentiment::kNegative);
  return lex;
}

}  // namespace triclust
