#ifndef TRICLUST_SRC_TEXT_SENTIMENT_H_
#define TRICLUST_SRC_TEXT_SENTIMENT_H_

#include <string_view>

namespace triclust {

/// Sentiment class labels c ∈ {pos, neg, neu} (paper §2). The integer values
/// are the cluster/column indices used throughout the factor matrices, so
/// k = 2 experiments use {kPositive, kNegative} and k = 3 adds kNeutral.
enum class Sentiment : int {
  kPositive = 0,
  kNegative = 1,
  kNeutral = 2,
  kUnlabeled = -1,
};

/// Number of sentiment classes when neutral is modeled.
inline constexpr int kNumSentimentClasses = 3;

/// Stable display name ("pos", "neg", "neu", "unlabeled").
constexpr std::string_view SentimentName(Sentiment s) {
  switch (s) {
    case Sentiment::kPositive:
      return "pos";
    case Sentiment::kNegative:
      return "neg";
    case Sentiment::kNeutral:
      return "neu";
    case Sentiment::kUnlabeled:
      return "unlabeled";
  }
  return "?";
}

/// Class index of a labeled sentiment; callers must not pass kUnlabeled.
constexpr int SentimentIndex(Sentiment s) { return static_cast<int>(s); }

/// Inverse of SentimentIndex for indices in [0, kNumSentimentClasses).
constexpr Sentiment SentimentFromIndex(int index) {
  return static_cast<Sentiment>(index);
}

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_SENTIMENT_H_
