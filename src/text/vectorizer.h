#ifndef TRICLUST_SRC_TEXT_VECTORIZER_H_
#define TRICLUST_SRC_TEXT_VECTORIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/matrix/sparse_matrix.h"
#include "src/text/vocabulary.h"

namespace triclust {

/// Term-weighting scheme for document–feature matrices.
enum class TermWeighting {
  /// Raw term counts.
  kTermFrequency,
  /// tf · idf with smooth idf = ln((1 + N)/(1 + df)) + 1 (the latent
  /// "tf-idf term vector representation" the paper refers to in §5.1).
  kTfIdf,
};

/// Options for DocumentVectorizer.
struct VectorizerOptions {
  TermWeighting weighting = TermWeighting::kTfIdf;
  /// Tokens appearing in fewer than `min_document_frequency` documents are
  /// dropped at Fit time.
  size_t min_document_frequency = 1;
  /// Drop stop-words at Fit time.
  bool remove_stopwords = true;
  /// L2-normalize each document row. On by default: unit rows put
  /// ||Xp − ·||², ||Xu − ·||² and ||Xr − ·||² on comparable scales, the
  /// balance the paper's objective assumes when it calls the three
  /// bipartite terms "equally important" (§3). With raw tf-idf magnitudes
  /// the Xp term dwarfs the coupling and regularization terms and the
  /// framework degenerates to plain document clustering.
  bool l2_normalize = true;
};

/// Builds the tweet–feature matrix Xp from tokenized documents.
///
/// Fit() scans token lists, applies frequency/stop-word filtering and fixes
/// the vocabulary; Transform() maps any token lists (including future
/// snapshots with out-of-vocabulary words, which are skipped) onto that
/// vocabulary as a CSR matrix. FitTransform combines both.
class DocumentVectorizer {
 public:
  explicit DocumentVectorizer(VectorizerOptions options = {});

  /// Learns the vocabulary and document frequencies.
  void Fit(const std::vector<std::vector<std::string>>& documents);

  /// Maps documents onto the learned vocabulary. Requires Fit().
  SparseMatrix Transform(
      const std::vector<std::vector<std::string>>& documents) const;

  /// Fit() followed by Transform() on the same documents.
  SparseMatrix FitTransform(
      const std::vector<std::vector<std::string>>& documents);

  // --- streaming Fit (bounded memory) ---------------------------------------
  // Two-pass Fit for document sets that do not fit in RAM: feed every
  // document once to FitStreamCount (the document-frequency pass), then
  // once more IN THE SAME ORDER to FitStreamAdmit (the vocabulary-admission
  // pass), then call FitStreamFinish. The learned vocabulary, document
  // frequencies, document count — and therefore every later Transform — are
  // identical to Fit() over the same documents; only a token→df hash map
  // (vocabulary-sized, not corpus-sized) is held between the passes.

  /// Starts the document-frequency pass; discards any previous fit.
  void FitStreamBegin();
  /// Folds one document into the document-frequency pass.
  void FitStreamCount(const std::vector<std::string>& document);
  /// Ends the df pass and starts the vocabulary-admission pass.
  void FitStreamAdmitBegin();
  /// Folds one document into the admission pass (same order as counted).
  void FitStreamAdmit(const std::vector<std::string>& document);
  /// Completes the streaming fit. CHECK-fails unless both passes saw the
  /// same number of documents.
  void FitStreamFinish();

  /// Learned vocabulary (valid after Fit()).
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Documents seen at Fit time (for idf).
  size_t num_fit_documents() const { return num_fit_documents_; }

  /// Document frequency of feature `id`.
  size_t DocumentFrequency(size_t id) const;

 private:
  double IdfWeight(size_t feature_id) const;

  VectorizerOptions options_;
  Vocabulary vocabulary_;
  std::vector<size_t> document_frequency_;
  size_t num_fit_documents_ = 0;
  bool fitted_ = false;

  // Streaming-fit state, live only between FitStreamBegin and
  // FitStreamFinish.
  enum class StreamPhase { kNone, kCounting, kAdmitting };
  StreamPhase stream_phase_ = StreamPhase::kNone;
  std::unordered_map<std::string, size_t> stream_df_;
  size_t stream_counted_docs_ = 0;
  size_t stream_admitted_docs_ = 0;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_VECTORIZER_H_
