#ifndef TRICLUST_SRC_TEXT_VECTORIZER_H_
#define TRICLUST_SRC_TEXT_VECTORIZER_H_

#include <string>
#include <vector>

#include "src/matrix/sparse_matrix.h"
#include "src/text/vocabulary.h"

namespace triclust {

/// Term-weighting scheme for document–feature matrices.
enum class TermWeighting {
  /// Raw term counts.
  kTermFrequency,
  /// tf · idf with smooth idf = ln((1 + N)/(1 + df)) + 1 (the latent
  /// "tf-idf term vector representation" the paper refers to in §5.1).
  kTfIdf,
};

/// Options for DocumentVectorizer.
struct VectorizerOptions {
  TermWeighting weighting = TermWeighting::kTfIdf;
  /// Tokens appearing in fewer than `min_document_frequency` documents are
  /// dropped at Fit time.
  size_t min_document_frequency = 1;
  /// Drop stop-words at Fit time.
  bool remove_stopwords = true;
  /// L2-normalize each document row. On by default: unit rows put
  /// ||Xp − ·||², ||Xu − ·||² and ||Xr − ·||² on comparable scales, the
  /// balance the paper's objective assumes when it calls the three
  /// bipartite terms "equally important" (§3). With raw tf-idf magnitudes
  /// the Xp term dwarfs the coupling and regularization terms and the
  /// framework degenerates to plain document clustering.
  bool l2_normalize = true;
};

/// Builds the tweet–feature matrix Xp from tokenized documents.
///
/// Fit() scans token lists, applies frequency/stop-word filtering and fixes
/// the vocabulary; Transform() maps any token lists (including future
/// snapshots with out-of-vocabulary words, which are skipped) onto that
/// vocabulary as a CSR matrix. FitTransform combines both.
class DocumentVectorizer {
 public:
  explicit DocumentVectorizer(VectorizerOptions options = {});

  /// Learns the vocabulary and document frequencies.
  void Fit(const std::vector<std::vector<std::string>>& documents);

  /// Maps documents onto the learned vocabulary. Requires Fit().
  SparseMatrix Transform(
      const std::vector<std::vector<std::string>>& documents) const;

  /// Fit() followed by Transform() on the same documents.
  SparseMatrix FitTransform(
      const std::vector<std::vector<std::string>>& documents);

  /// Learned vocabulary (valid after Fit()).
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Documents seen at Fit time (for idf).
  size_t num_fit_documents() const { return num_fit_documents_; }

  /// Document frequency of feature `id`.
  size_t DocumentFrequency(size_t id) const;

 private:
  double IdfWeight(size_t feature_id) const;

  VectorizerOptions options_;
  Vocabulary vocabulary_;
  std::vector<size_t> document_frequency_;
  size_t num_fit_documents_ = 0;
  bool fitted_ = false;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_VECTORIZER_H_
