#ifndef TRICLUST_SRC_TEXT_STOPWORDS_H_
#define TRICLUST_SRC_TEXT_STOPWORDS_H_

#include <string_view>

namespace triclust {

/// True for common English function words ("the", "and", "of", ...), which
/// carry no sentiment signal and are dropped before building the
/// tweet–feature matrix. The list is small and fixed, matching the usual
/// Twitter-sentiment preprocessing.
bool IsStopWord(std::string_view word);

/// Number of entries in the built-in stop-word list (for tests).
size_t StopWordCount();

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_STOPWORDS_H_
