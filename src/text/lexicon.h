#ifndef TRICLUST_SRC_TEXT_LEXICON_H_
#define TRICLUST_SRC_TEXT_LEXICON_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/text/sentiment.h"
#include "src/text/vocabulary.h"

namespace triclust {

/// Word-polarity lexicon: the prior sentiment of features.
///
/// Plays the role of the automatically built "Yes"/"No" word lists of
/// Smith et al. [28] that the paper uses to initialize the feature sentiment
/// matrix Sf0 (Eq. 5). A lexicon is just a partial map word → {pos, neg};
/// BuildSf0 turns it into the l×k prior against a vocabulary.
class SentimentLexicon {
 public:
  SentimentLexicon() = default;

  /// Registers a word with the given polarity (last write wins).
  void Add(std::string_view word, Sentiment polarity);

  /// Polarity of `word`, or kUnlabeled when unknown.
  Sentiment PolarityOf(std::string_view word) const;

  bool Contains(std::string_view word) const;

  size_t size() const { return polarity_.size(); }

  /// All entries (unordered).
  std::vector<std::pair<std::string, Sentiment>> Entries() const;

  /// Builds the feature-sentiment prior Sf0 ∈ R^{l×k}.
  ///
  /// Covered features put probability mass `confidence` on their class and
  /// spread the remainder uniformly; uncovered features get a uniform row
  /// (no pull toward any class — α·||Sf − Sf0||² then only shapes covered
  /// words). Emoticon pseudo-tokens are covered automatically.
  DenseMatrix BuildSf0(const Vocabulary& vocabulary, int num_classes,
                       double confidence = 0.9) const;

  /// A small built-in general-purpose English polarity lexicon (positive
  /// and negative seed words), used by examples and as the default prior.
  static SentimentLexicon BuiltinEnglish();

 private:
  std::unordered_map<std::string, Sentiment> polarity_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_LEXICON_H_
