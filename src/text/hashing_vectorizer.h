#ifndef TRICLUST_SRC_TEXT_HASHING_VECTORIZER_H_
#define TRICLUST_SRC_TEXT_HASHING_VECTORIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/matrix/sparse_matrix.h"
#include "src/text/lexicon.h"

namespace triclust {

/// Options for the hashing vectorizer.
struct HashingVectorizerOptions {
  /// Fixed dimensionality of the hashed feature space.
  size_t num_buckets = 1 << 14;
  /// Drop stop-words.
  bool remove_stopwords = true;
  /// L2-normalize rows (same scale rationale as DocumentVectorizer).
  bool l2_normalize = true;
  /// Hash seed, so deployments can decorrelate collision patterns.
  uint64_t seed = 0x5eedf00dULL;
};

/// Stateless document vectorizer via feature hashing ("the hashing trick").
///
/// Unlike DocumentVectorizer, there is no Fit() step and hence no need to
/// see the whole corpus before the stream starts: tokens map to one of
/// `num_buckets` columns by hash, so the online framework can consume an
/// unbounded stream with a fixed Sf dimensionality. Collisions merge
/// unrelated words into one feature; with buckets ≫ active vocabulary the
/// effect on clustering quality is marginal (tested), which is how a
/// deployed version of the paper's system would pin its feature space.
class HashingVectorizer {
 public:
  explicit HashingVectorizer(HashingVectorizerOptions options = {});

  const HashingVectorizerOptions& options() const { return options_; }
  size_t num_buckets() const { return options_.num_buckets; }

  /// Column of a single token.
  size_t BucketOf(std::string_view token) const;

  /// Maps tokenized documents to a CSR matrix with num_buckets columns.
  SparseMatrix Transform(
      const std::vector<std::vector<std::string>>& documents) const;

  /// Builds the hashed-space equivalent of SentimentLexicon::BuildSf0: each
  /// lexicon word votes its polarity into its bucket; buckets with
  /// conflicting or no votes stay uniform.
  DenseMatrix BuildHashedSf0(const SentimentLexicon& lexicon,
                             int num_classes, double confidence = 0.9) const;

 private:
  HashingVectorizerOptions options_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_HASHING_VECTORIZER_H_
