#ifndef TRICLUST_SRC_TEXT_TOKENIZER_H_
#define TRICLUST_SRC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace triclust {

/// Options controlling Twitter-aware tokenization.
struct TokenizerOptions {
  /// Lowercase all tokens (hashtags included).
  bool lowercase = true;
  /// Keep "#hashtag" tokens (with the leading '#'); hashtags carry strong
  /// stance signal ("#yeson37", "#noprop37") in the paper's dataset.
  bool keep_hashtags = true;
  /// Keep "@mention" tokens; off by default (mentions identify users, not
  /// sentiment-bearing vocabulary).
  bool keep_mentions = false;
  /// Drop http(s)://... and www.... tokens.
  bool strip_urls = true;
  /// Map emoticons to the pseudo-tokens "_emot_pos_" / "_emot_neg_"
  /// (the emotional signals exploited by the ESSA baseline).
  bool map_emoticons = true;
  /// Drop the "RT" retweet marker.
  bool strip_retweet_marker = true;
  /// Minimum token length (after processing) for plain word tokens.
  size_t min_token_length = 2;
  /// Drop tokens that are entirely digits.
  bool strip_numbers = true;
};

/// Pseudo-tokens produced for emoticons.
inline constexpr std::string_view kPositiveEmoticonToken = "_emot_pos_";
inline constexpr std::string_view kNegativeEmoticonToken = "_emot_neg_";

/// Splits raw tweet text into normalized feature tokens.
///
/// Handles the constructs that make tweets different from clean prose:
/// hashtags, @mentions, URLs, emoticons, the "RT" marker, and repeated
/// punctuation. Pure function of (text, options); deterministic.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  const TokenizerOptions& options() const { return options_; }

  /// Tokenizes one tweet.
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

/// True when `token` is an emoticon with positive valence (":)", ":-D" ...).
bool IsPositiveEmoticon(std::string_view token);

/// True when `token` is an emoticon with negative valence (":(", ":'(" ...).
bool IsNegativeEmoticon(std::string_view token);

}  // namespace triclust

#endif  // TRICLUST_SRC_TEXT_TOKENIZER_H_
