#include "src/baselines/lexicon_vote.h"

#include "src/text/tokenizer.h"
#include "src/util/logging.h"

namespace triclust {

std::vector<Sentiment> LexiconVote(const SparseMatrix& x,
                                   const Vocabulary& vocabulary,
                                   const SentimentLexicon& lexicon,
                                   int num_classes) {
  TRICLUST_CHECK_EQ(x.cols(), vocabulary.size());
  TRICLUST_CHECK_GE(num_classes, 2);

  // Precompute each feature's polarity once (emoticon pseudo-tokens count).
  std::vector<int> polarity(vocabulary.size(), -1);
  for (size_t f = 0; f < vocabulary.size(); ++f) {
    const std::string& token = vocabulary.TokenOf(f);
    Sentiment s = lexicon.PolarityOf(token);
    if (s == Sentiment::kUnlabeled) {
      if (token == kPositiveEmoticonToken) s = Sentiment::kPositive;
      if (token == kNegativeEmoticonToken) s = Sentiment::kNegative;
    }
    if (s != Sentiment::kUnlabeled && SentimentIndex(s) < num_classes) {
      polarity[f] = SentimentIndex(s);
    }
  }

  const bool has_neutral = num_classes > SentimentIndex(Sentiment::kNeutral);
  std::vector<Sentiment> out(x.rows(), Sentiment::kUnlabeled);
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    double pos = 0.0;
    double neg = 0.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const int cls = polarity[col_idx[p]];
      if (cls == SentimentIndex(Sentiment::kPositive)) pos += values[p];
      if (cls == SentimentIndex(Sentiment::kNegative)) neg += values[p];
    }
    if (pos > neg) {
      out[i] = Sentiment::kPositive;
    } else if (neg > pos) {
      out[i] = Sentiment::kNegative;
    } else if (has_neutral) {
      out[i] = Sentiment::kNeutral;  // no signal or tie
    }
  }
  return out;
}

}  // namespace triclust
