#include "src/baselines/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace triclust {

LinearSvm::LinearSvm(SvmOptions options) : options_(options) {
  TRICLUST_CHECK_GE(options_.num_classes, 2);
  TRICLUST_CHECK_GT(options_.lambda, 0.0);
  TRICLUST_CHECK_GE(options_.epochs, 1);
}

void LinearSvm::Train(const SparseMatrix& x,
                      const std::vector<Sentiment>& labels) {
  TRICLUST_CHECK_EQ(x.rows(), labels.size());
  const size_t k = static_cast<size_t>(options_.num_classes);
  const size_t l = x.cols();

  std::vector<size_t> train_rows;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != Sentiment::kUnlabeled &&
        SentimentIndex(labels[i]) < options_.num_classes) {
      train_rows.push_back(i);
    }
  }
  TRICLUST_CHECK(!train_rows.empty());

  // Pegasos with the weight-scale trick: w = scale·v. The per-step L2
  // shrink multiplies `scale`; margin violations update `v` (divided by
  // `scale`), so each step touches only the row's non-zeros.
  weights_ = DenseMatrix(k, l, 0.0);
  bias_.assign(k, 0.0);
  std::vector<double> scale(k, 1.0);

  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();

  Rng rng(options_.seed);
  size_t step = 1;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const std::vector<size_t> perm = rng.Permutation(train_rows.size());
    for (size_t pi : perm) {
      const size_t i = train_rows[pi];
      ++step;  // starts at 2 so the first shrink factor is not 0
      const double eta =
          1.0 / (options_.lambda * static_cast<double>(step));
      const int truth = SentimentIndex(labels[i]);

      for (size_t c = 0; c < k; ++c) {
        const double y = (static_cast<int>(c) == truth) ? 1.0 : -1.0;
        double dot = 0.0;
        for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
          dot += weights_(c, col_idx[p]) * values[p];
        }
        const double margin = y * (scale[c] * dot + bias_[c]);

        scale[c] *= 1.0 - eta * options_.lambda;
        // Renormalize if the scale underflows toward zero.
        if (scale[c] < 1e-9) {
          for (size_t f = 0; f < l; ++f) weights_(c, f) *= scale[c];
          scale[c] = 1.0;
        }
        if (margin < 1.0) {
          const double push = eta * y / scale[c];
          for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
            weights_(c, col_idx[p]) += push * values[p];
          }
          bias_[c] += eta * y * 0.1;  // damped unregularized bias
        }
      }
    }
  }
  // Fold the scales into the weights.
  for (size_t c = 0; c < k; ++c) {
    for (size_t f = 0; f < l; ++f) weights_(c, f) *= scale[c];
  }
  trained_ = true;
}

DenseMatrix LinearSvm::DecisionFunction(const SparseMatrix& x) const {
  TRICLUST_CHECK(trained_);
  TRICLUST_CHECK_EQ(x.cols(), weights_.cols());
  const size_t k = static_cast<size_t>(options_.num_classes);
  DenseMatrix margins(x.rows(), k, 0.0);
  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t c = 0; c < k; ++c) {
      double margin = bias_[c];
      for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        margin += weights_(c, col_idx[p]) * values[p];
      }
      margins(i, c) = margin;
    }
  }
  return margins;
}

std::vector<Sentiment> LinearSvm::Predict(const SparseMatrix& x) const {
  const DenseMatrix margins = DecisionFunction(x);
  std::vector<Sentiment> out(x.rows(), Sentiment::kUnlabeled);
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = SentimentFromIndex(static_cast<int>(margins.ArgMaxRow(i)));
  }
  return out;
}

}  // namespace triclust
