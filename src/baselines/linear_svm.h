#ifndef TRICLUST_SRC_BASELINES_LINEAR_SVM_H_
#define TRICLUST_SRC_BASELINES_LINEAR_SVM_H_

#include <cstdint>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Options of the linear SVM trainer.
struct SvmOptions {
  int num_classes = kNumSentimentClasses;
  /// L2 regularization strength λ of the Pegasos objective.
  double lambda = 1e-4;
  /// Passes over the training data.
  int epochs = 12;
  uint64_t seed = 11;
};

/// One-vs-rest linear SVM trained with Pegasos-style SGD on the hinge loss:
/// the supervised SVM baseline of the paper's Tables 4/5 (Smith et al.
/// [28] use unigram-feature SVMs). Sparse-friendly: each SGD step touches
/// only the non-zeros of one row.
class LinearSvm {
 public:
  explicit LinearSvm(SvmOptions options = {});

  /// Trains per-class hyperplanes on the labeled rows of `x`.
  void Train(const SparseMatrix& x, const std::vector<Sentiment>& labels);

  /// Highest-margin class per row. Requires Train().
  std::vector<Sentiment> Predict(const SparseMatrix& x) const;

  /// Raw per-class margins, n×k. Requires Train().
  DenseMatrix DecisionFunction(const SparseMatrix& x) const;

  bool trained() const { return trained_; }

 private:
  SvmOptions options_;
  bool trained_ = false;
  /// classes × features weight matrix.
  DenseMatrix weights_;
  std::vector<double> bias_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_LINEAR_SVM_H_
