#include "src/baselines/label_propagation.h"

#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace triclust {

namespace {

DenseMatrix SeedMatrix(const std::vector<Sentiment>& seed_labels,
                       int num_classes) {
  DenseMatrix y(seed_labels.size(), static_cast<size_t>(num_classes), 0.0);
  for (size_t i = 0; i < seed_labels.size(); ++i) {
    if (seed_labels[i] == Sentiment::kUnlabeled) continue;
    const int c = SentimentIndex(seed_labels[i]);
    if (c < num_classes) y(i, static_cast<size_t>(c)) = 1.0;
  }
  return y;
}

void ClampSeeds(const std::vector<Sentiment>& seed_labels, double clamp,
                DenseMatrix* y) {
  for (size_t i = 0; i < seed_labels.size(); ++i) {
    if (seed_labels[i] == Sentiment::kUnlabeled) continue;
    const int c = SentimentIndex(seed_labels[i]);
    if (c >= static_cast<int>(y->cols())) continue;
    for (size_t j = 0; j < y->cols(); ++j) {
      const double seed = (static_cast<int>(j) == c) ? 1.0 : 0.0;
      (*y)(i, j) = clamp * seed + (1.0 - clamp) * (*y)(i, j);
    }
  }
}

std::vector<Sentiment> Harden(const DenseMatrix& y) {
  std::vector<Sentiment> out(y.rows(), Sentiment::kUnlabeled);
  for (size_t i = 0; i < y.rows(); ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < y.cols(); ++j) row_sum += y(i, j);
    if (row_sum <= 0.0) continue;  // never reached by any seed
    out[i] = SentimentFromIndex(static_cast<int>(y.ArgMaxRow(i)));
  }
  return out;
}

/// Row-normalizes in place but leaves all-zero rows zero (so "unreached"
/// stays detectable, unlike NormalizeRowsL1 which would make them uniform).
void NormalizeNonZeroRows(DenseMatrix* m) {
  for (size_t i = 0; i < m->rows(); ++i) {
    double* row = m->Row(i);
    double total = 0.0;
    for (size_t j = 0; j < m->cols(); ++j) total += row[j];
    if (total > 0.0) {
      for (size_t j = 0; j < m->cols(); ++j) row[j] /= total;
    }
  }
}

}  // namespace

std::vector<Sentiment> PropagateBipartite(
    const SparseMatrix& x, const std::vector<Sentiment>& seed_labels,
    const LabelPropagationOptions& options) {
  TRICLUST_CHECK_EQ(x.rows(), seed_labels.size());
  TRICLUST_CHECK_GE(options.num_classes, 2);
  ScopedThreadBudget thread_scope(ThreadBudget(options.num_threads));
  // Cache Xᵀ once so the per-iteration feature step is a row-parallel SpMM
  // instead of the always-serial scatter SpTMM; the per-entry summation
  // order is identical, so this is bitwise the historical result.
  const SparseMatrix xt = x.Transposed();
  DenseMatrix y = SeedMatrix(seed_labels, options.num_classes);
  for (int iter = 0; iter < options.iterations; ++iter) {
    DenseMatrix yf = SpMM(xt, y);  // feature scores
    NormalizeNonZeroRows(&yf);
    y = SpMM(x, yf);  // back to items
    NormalizeNonZeroRows(&y);
    ClampSeeds(seed_labels, options.clamp, &y);
  }
  return Harden(y);
}

std::vector<Sentiment> PropagateGraph(
    const UserGraph& graph, const std::vector<Sentiment>& seed_labels,
    const LabelPropagationOptions& options) {
  TRICLUST_CHECK_EQ(graph.num_nodes(), seed_labels.size());
  TRICLUST_CHECK_GE(options.num_classes, 2);
  ScopedThreadBudget thread_scope(ThreadBudget(options.num_threads));
  DenseMatrix y = SeedMatrix(seed_labels, options.num_classes);
  for (int iter = 0; iter < options.iterations; ++iter) {
    DenseMatrix next = SpMM(graph.adjacency(), y);
    NormalizeNonZeroRows(&next);
    // Isolated or unreached nodes keep their previous scores.
    for (size_t i = 0; i < next.rows(); ++i) {
      double total = 0.0;
      for (size_t j = 0; j < next.cols(); ++j) total += next(i, j);
      if (total <= 0.0) {
        for (size_t j = 0; j < next.cols(); ++j) next(i, j) = y(i, j);
      }
    }
    y = std::move(next);
    ClampSeeds(seed_labels, options.clamp, &y);
  }
  return Harden(y);
}

}  // namespace triclust
