#ifndef TRICLUST_SRC_BASELINES_USERREG_H_
#define TRICLUST_SRC_BASELINES_USERREG_H_

#include <vector>

#include "src/data/matrix_builder.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Options of the UserReg baseline.
struct UserRegOptions {
  int num_classes = kNumSentimentClasses;
  /// Smoothing rounds over the user–user graph.
  int smoothing_iterations = 3;
  /// Mixing weight of neighbour opinion per smoothing round. Light by
  /// default: the aggregate of a user's own tweets is the stronger signal;
  /// heavy neighbour averaging washes it out.
  double social_weight = 0.1;
  /// Weight of the author's aggregated stance when re-scoring tweets.
  double user_prior_weight = 0.5;
  uint64_t seed = 17;
  /// Kernel thread budget for the aggregation/smoothing products
  /// (src/util/parallel.h): 0 = hardware concurrency, 1 = the exact serial
  /// path. The hot kernels are row-partitioned SpMMs, so results are
  /// bit-identical at every setting.
  int num_threads = 1;
};

/// Result of one UserReg run: predictions at both levels.
struct UserRegResult {
  std::vector<Sentiment> tweet_predictions;
  std::vector<Sentiment> user_predictions;
};

/// Semi-supervised UserReg baseline (Deng et al. [7]).
///
/// Faithful to the paper's description of the method's structure: tweet
/// sentiments come from a supervised classifier (Naive Bayes here) trained
/// on the seeded labels; user sentiments are the aggregate of the user's
/// tweet posteriors, regularized over the user–user (pseudo-friendship →
/// retweet) graph; the user estimate then feeds back into tweet scores.
/// The paper's Tables 4/5 row "UserReg-10" seeds 10% of the labels.
UserRegResult RunUserReg(const DatasetMatrices& data,
                         const std::vector<Sentiment>& seed_tweet_labels,
                         const UserRegOptions& options = {});

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_USERREG_H_
