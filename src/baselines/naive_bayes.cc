#include "src/baselines/naive_bayes.h"

#include <cmath>

#include "src/util/logging.h"

namespace triclust {

MultinomialNaiveBayes::MultinomialNaiveBayes(int num_classes,
                                             double smoothing)
    : num_classes_(num_classes), smoothing_(smoothing) {
  TRICLUST_CHECK_GE(num_classes_, 2);
  TRICLUST_CHECK_GT(smoothing_, 0.0);
}

void MultinomialNaiveBayes::Train(const SparseMatrix& x,
                                  const std::vector<Sentiment>& labels) {
  TRICLUST_CHECK_EQ(x.rows(), labels.size());
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t l = x.cols();

  std::vector<double> class_docs(k, 0.0);
  DenseMatrix counts(k, l, 0.0);
  std::vector<double> class_tokens(k, 0.0);

  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    if (labels[i] == Sentiment::kUnlabeled) continue;
    const size_t c = static_cast<size_t>(SentimentIndex(labels[i]));
    if (c >= k) continue;
    class_docs[c] += 1.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      counts(c, col_idx[p]) += values[p];
      class_tokens[c] += values[p];
    }
  }

  double total_docs = 0.0;
  for (double d : class_docs) total_docs += d;
  TRICLUST_CHECK_GT(total_docs, 0.0);

  log_prior_.assign(k, 0.0);
  log_likelihood_ = DenseMatrix(k, l, 0.0);
  for (size_t c = 0; c < k; ++c) {
    // Unseen classes get the uniform prior floor rather than -inf so
    // prediction still produces finite scores.
    log_prior_[c] =
        std::log((class_docs[c] + 1.0) / (total_docs + static_cast<double>(k)));
    const double denom =
        class_tokens[c] + smoothing_ * static_cast<double>(l);
    for (size_t f = 0; f < l; ++f) {
      log_likelihood_(c, f) = std::log((counts(c, f) + smoothing_) / denom);
    }
  }
  trained_ = true;
}

DenseMatrix MultinomialNaiveBayes::PredictProba(const SparseMatrix& x) const {
  TRICLUST_CHECK(trained_);
  TRICLUST_CHECK_EQ(x.cols(), log_likelihood_.cols());
  const size_t k = static_cast<size_t>(num_classes_);
  DenseMatrix proba(x.rows(), k, 0.0);

  const auto& row_ptr = x.row_ptr();
  const auto& col_idx = x.col_idx();
  const auto& values = x.values();
  std::vector<double> scores(k);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t c = 0; c < k; ++c) scores[c] = log_prior_[c];
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      for (size_t c = 0; c < k; ++c) {
        scores[c] += values[p] * log_likelihood_(c, col_idx[p]);
      }
    }
    double max_score = scores[0];
    for (size_t c = 1; c < k; ++c) max_score = std::max(max_score, scores[c]);
    double norm = 0.0;
    for (size_t c = 0; c < k; ++c) {
      proba(i, c) = std::exp(scores[c] - max_score);
      norm += proba(i, c);
    }
    for (size_t c = 0; c < k; ++c) proba(i, c) /= norm;
  }
  return proba;
}

std::vector<Sentiment> MultinomialNaiveBayes::Predict(
    const SparseMatrix& x) const {
  const DenseMatrix proba = PredictProba(x);
  std::vector<Sentiment> out(x.rows(), Sentiment::kUnlabeled);
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = SentimentFromIndex(static_cast<int>(proba.ArgMaxRow(i)));
  }
  return out;
}

}  // namespace triclust
