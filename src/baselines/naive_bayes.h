#ifndef TRICLUST_SRC_BASELINES_NAIVE_BAYES_H_
#define TRICLUST_SRC_BASELINES_NAIVE_BAYES_H_

#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Multinomial Naive Bayes over tweet–feature rows: the supervised NB
/// baseline of the paper's Tables 4/5 (Go et al. [11]). Laplace-smoothed
/// log-likelihoods; rows with kUnlabeled labels are ignored at training.
class MultinomialNaiveBayes {
 public:
  /// `smoothing` is the Laplace pseudo-count per (class, feature).
  explicit MultinomialNaiveBayes(int num_classes = kNumSentimentClasses,
                                 double smoothing = 1.0);

  /// Fits class priors and per-class word distributions from the labeled
  /// rows of `x`.
  void Train(const SparseMatrix& x, const std::vector<Sentiment>& labels);

  /// Most likely class of each row. Requires Train().
  std::vector<Sentiment> Predict(const SparseMatrix& x) const;

  /// Per-row posterior (softmaxed log-likelihoods), n×k. Requires Train().
  DenseMatrix PredictProba(const SparseMatrix& x) const;

  bool trained() const { return trained_; }

 private:
  int num_classes_;
  double smoothing_;
  bool trained_ = false;
  std::vector<double> log_prior_;
  /// log P(feature | class), classes × features.
  DenseMatrix log_likelihood_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_NAIVE_BAYES_H_
