#ifndef TRICLUST_SRC_BASELINES_LEXICON_VOTE_H_
#define TRICLUST_SRC_BASELINES_LEXICON_VOTE_H_

#include <vector>

#include "src/matrix/sparse_matrix.h"
#include "src/text/lexicon.h"
#include "src/text/sentiment.h"
#include "src/text/vocabulary.h"

namespace triclust {

/// The classical lexicon-vote classifier (MPQA-style [33]): each document's
/// sentiment is the weighted vote of its lexicon-covered words; documents
/// with no covered word (or a tie) are neutral when `k` includes neutral,
/// otherwise kUnlabeled. The weakest baseline in the paper's lineage — the
/// floor every learning method should beat — and also exactly the signal
/// the tri-clustering framework starts from (Sf0), making the gap between
/// this row and tri-clustering the measure of what co-clustering adds.
std::vector<Sentiment> LexiconVote(const SparseMatrix& x,
                                   const Vocabulary& vocabulary,
                                   const SentimentLexicon& lexicon,
                                   int num_classes = kNumSentimentClasses);

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_LEXICON_VOTE_H_
