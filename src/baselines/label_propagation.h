#ifndef TRICLUST_SRC_BASELINES_LABEL_PROPAGATION_H_
#define TRICLUST_SRC_BASELINES_LABEL_PROPAGATION_H_

#include <vector>

#include "src/graph/user_graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Options shared by the label-propagation baselines (the paper's LP-5 and
/// LP-10 rows: Goldberg & Zhu [12], Speriosu et al. [29] for tweets, Tan et
/// al. [30] for users).
struct LabelPropagationOptions {
  int num_classes = kNumSentimentClasses;
  int iterations = 30;
  /// Retention of the seed distribution at each step (clamped seeds = 1.0).
  double clamp = 1.0;
  /// Kernel thread budget for the propagation products (src/util/
  /// parallel.h): 0 = hardware concurrency, 1 = the exact serial path.
  /// Both propagation variants run row-partitioned SpMM kernels only (the
  /// bipartite form propagates through a transpose cached once up front
  /// instead of the serial scatter SpTMM), so results are bit-identical at
  /// every setting.
  int num_threads = 1;
};

/// Semi-supervised label propagation over the *lexical* bipartite graph:
/// items ↔ features. The item–item affinity X·Xᵀ is never materialized —
/// each round propagates item scores onto features (XᵀY, row-normalized)
/// and back (X·Yf, row-normalized), then re-clamps seeds.
///
/// `seed_labels[i]` is the known label of item i or kUnlabeled. Returns one
/// sentiment per item (items unreachable from any seed stay kUnlabeled).
std::vector<Sentiment> PropagateBipartite(
    const SparseMatrix& x, const std::vector<Sentiment>& seed_labels,
    const LabelPropagationOptions& options = {});

/// Semi-supervised label propagation over an explicit item graph (the
/// user–user retweet graph for user-level LP): each round replaces every
/// non-seed node's distribution with the weighted average of its
/// neighbours'.
std::vector<Sentiment> PropagateGraph(
    const UserGraph& graph, const std::vector<Sentiment>& seed_labels,
    const LabelPropagationOptions& options = {});

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_LABEL_PROPAGATION_H_
