#include "src/baselines/essa.h"

#include "src/core/offline.h"
#include "src/data/matrix_builder.h"
#include "src/util/logging.h"

namespace triclust {

TriClusterResult RunEssa(const SparseMatrix& xp, const DenseMatrix& sf0,
                         const EssaOptions& options) {
  TRICLUST_CHECK_EQ(xp.cols(), sf0.rows());
  // Empty user side: 0 users, so the Xu/Xr/Gu terms vanish identically and
  // the solver reduces to ESSA's lexicon-regularized ONMTF of Xp.
  DatasetMatrices data;
  data.xp = xp;
  {
    SparseMatrix::Builder xu_builder(0, xp.cols());
    data.xu = xu_builder.Build();
    SparseMatrix::Builder xr_builder(0, xp.rows());
    data.xr = xr_builder.Build();
  }
  data.gu = UserGraph(0);
  data.tweet_ids.resize(xp.rows());
  for (size_t i = 0; i < xp.rows(); ++i) data.tweet_ids[i] = i;

  TriClusterConfig config;
  config.num_clusters = options.num_clusters;
  config.alpha = options.emotion_weight;
  config.beta = 0.0;
  config.max_iterations = options.max_iterations;
  config.tolerance = options.tolerance;
  config.seed = options.seed;
  config.init = options.init;
  return OfflineTriClusterer(config).Run(data, sf0);
}

}  // namespace triclust
