#ifndef TRICLUST_SRC_BASELINES_AGGREGATION_H_
#define TRICLUST_SRC_BASELINES_AGGREGATION_H_

#include <vector>

#include "src/data/matrix_builder.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Estimates user-level sentiment by majority vote over the user's tweets'
/// predicted sentiments — the simple aggregation of Smith et al. [28] and
/// Deng et al. [7] that the paper argues is biased by noisy tweet-level
/// signals. Used to produce the user-level rows of supervised baselines
/// (SVM/NB/LP) in Table 5, and in tests demonstrating the bias the
/// tri-clustering coupling removes.
///
/// Votes flow along the Xr incidence (posts and retweets). Users whose
/// tweets are all unpredicted get kUnlabeled; ties break toward the
/// lower class index.
std::vector<Sentiment> AggregateTweetsToUsers(
    const DatasetMatrices& data,
    const std::vector<Sentiment>& tweet_predictions);

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_AGGREGATION_H_
