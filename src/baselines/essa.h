#ifndef TRICLUST_SRC_BASELINES_ESSA_H_
#define TRICLUST_SRC_BASELINES_ESSA_H_

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"
#include "src/text/sentiment.h"

namespace triclust {

/// Options of the ESSA baseline.
struct EssaOptions {
  int num_clusters = kNumSentimentClasses;
  /// Weight of the emotional-signal regularization on features. Calibrated
  /// for L2-normalized document rows (the library default), where the data
  /// terms are O(n); with only the Xp term to fight, the emotional signal
  /// needs this much mass to keep clusters aligned with sentiment.
  double emotion_weight = 10.0;
  int max_iterations = 100;
  double tolerance = 1e-5;
  uint64_t seed = 23;
  InitStrategy init = InitStrategy::kLexiconSeeded;
};

/// ESSA-style unsupervised sentiment clustering (Hu et al. [15]): an
/// orthogonal NMTF of the tweet–feature matrix alone,
///   min ||Xp − Sp·H·Sfᵀ||²F + λ·||Sf − Sf0||²F,
/// where Sf0 carries the emotional signals (lexicon words and emoticon
/// pseudo-tokens). This is exactly the paper's tri-clustering objective with
/// the user side removed, so it shares the update kernels; the comparison
/// against it isolates the value of the user/tweet/graph coupling.
///
/// The published ESSA additionally builds tweet–tweet and feature–feature
/// similarity graphs; the paper itself notes that computing them "is very
/// time consuming", and they encode the same emotional-consistency signal
/// our Sf0 regularization carries, so this reproduction folds both into the
/// feature prior (documented substitution, DESIGN.md §4).
TriClusterResult RunEssa(const SparseMatrix& xp, const DenseMatrix& sf0,
                         const EssaOptions& options = {});

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_ESSA_H_
