#include "src/baselines/bacg.h"

#include <cmath>

#include "src/matrix/dense_matrix.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace triclust {

namespace {

/// L2 norms of each CSR row.
std::vector<double> RowNorms(const SparseMatrix& x) {
  std::vector<double> norms(x.rows(), 0.0);
  const auto& row_ptr = x.row_ptr();
  const auto& values = x.values();
  for (size_t i = 0; i < x.rows(); ++i) {
    double sq = 0.0;
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      sq += values[p] * values[p];
    }
    norms[i] = std::sqrt(sq);
  }
  return norms;
}

struct BacgRun {
  std::vector<int> assignment;
  double objective = -std::numeric_limits<double>::infinity();
};

/// One classification-EM run of the attributed mixture: multinomial
/// components over the content rows plus a homophily vote over the graph.
BacgRun RunOnce(const SparseMatrix& xu, const UserGraph& gu,
                const BacgOptions& options, uint64_t seed) {
  const size_t m = xu.rows();
  const size_t l = xu.cols();
  const size_t k = static_cast<size_t>(options.num_clusters);
  Rng rng(seed);

  const std::vector<double> row_norms = RowNorms(xu);
  const auto& row_ptr = xu.row_ptr();
  const auto& col_idx = xu.col_idx();
  const auto& values = xu.values();

  BacgRun run;
  run.assignment.assign(m, 0);

  // k-means++-style seeding by content cosine distance: spread-out seed
  // users keep the initial components apart (uniform random assignments
  // make all centroids equal to the corpus mean and EM collapses).
  std::vector<size_t> seeds;
  seeds.push_back(rng.NextUint64Below(m));
  auto cosine = [&](size_t a, size_t b) {
    if (row_norms[a] <= 0.0 || row_norms[b] <= 0.0) return 0.0;
    double dot = 0.0;
    size_t pa = row_ptr[a];
    size_t pb = row_ptr[b];
    while (pa < row_ptr[a + 1] && pb < row_ptr[b + 1]) {
      if (col_idx[pa] < col_idx[pb]) {
        ++pa;
      } else if (col_idx[pa] > col_idx[pb]) {
        ++pb;
      } else {
        dot += values[pa] * values[pb];
        ++pa;
        ++pb;
      }
    }
    return dot / (row_norms[a] * row_norms[b]);
  };
  while (seeds.size() < k) {
    std::vector<double> dist(m, 0.0);
    for (size_t u = 0; u < m; ++u) {
      double closest = 2.0;
      for (size_t s : seeds) closest = std::min(closest, 1.0 - cosine(u, s));
      dist[u] = closest * closest;
    }
    seeds.push_back(rng.Categorical(dist));
  }
  for (size_t u = 0; u < m; ++u) {
    size_t best = 0;
    double best_sim = -2.0;
    for (size_t c = 0; c < k; ++c) {
      const double sim = cosine(u, seeds[c]);
      if (sim > best_sim) {
        best_sim = sim;
        best = c;
      }
    }
    run.assignment[u] = static_cast<int>(best);
  }

  constexpr double kSmoothing = 0.05;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // M-step: multinomial parameters log θ_cf and mixing proportions.
    DenseMatrix counts(k, l, 0.0);
    std::vector<double> mass(k, 0.0);
    std::vector<double> sizes(k, 0.0);
    for (size_t u = 0; u < m; ++u) {
      const size_t c = static_cast<size_t>(run.assignment[u]);
      sizes[c] += 1.0;
      for (size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
        counts(c, col_idx[p]) += values[p];
        mass[c] += values[p];
      }
    }
    DenseMatrix log_theta(k, l, 0.0);
    std::vector<double> log_prior(k, 0.0);
    for (size_t c = 0; c < k; ++c) {
      const double denom = mass[c] + kSmoothing * static_cast<double>(l);
      for (size_t f = 0; f < l; ++f) {
        log_theta(c, f) = std::log((counts(c, f) + kSmoothing) / denom);
      }
      log_prior[c] =
          std::log((sizes[c] + 1.0) / (static_cast<double>(m) +
                                       static_cast<double>(k)));
    }

    // E-step (hard): content log-likelihood + scaled homophily vote.
    bool changed = false;
    double objective = 0.0;
    std::vector<int> next(m);
    for (size_t u = 0; u < m; ++u) {
      std::vector<double> score(k, 0.0);
      for (size_t c = 0; c < k; ++c) score[c] = log_prior[c];
      double content_mass = 0.0;
      for (size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
        content_mass += values[p];
        for (size_t c = 0; c < k; ++c) {
          score[c] += values[p] * log_theta(c, col_idx[p]);
        }
      }
      const double degree = gu.Degree(u);
      if (degree > 0.0) {
        // The vote is scaled by the user's content mass so structure and
        // content stay commensurate for active and quiet users alike.
        std::vector<double> vote(k, 0.0);
        for (const auto& nb : gu.Neighbors(u)) {
          vote[static_cast<size_t>(run.assignment[nb.node])] += nb.weight;
        }
        const double scale =
            options.structure_weight * (1.0 + content_mass);
        for (size_t c = 0; c < k; ++c) {
          score[c] += scale * vote[c] / degree;
        }
      }
      size_t best = 0;
      for (size_t c = 1; c < k; ++c) {
        if (score[c] > score[best]) best = c;
      }
      next[u] = static_cast<int>(best);
      objective += score[best];
      changed |= (next[u] != run.assignment[u]);
    }
    run.assignment = std::move(next);
    run.objective = objective;
    if (!changed) break;
  }
  return run;
}

}  // namespace

std::vector<int> RunBacg(const SparseMatrix& xu, const UserGraph& gu,
                         const BacgOptions& options) {
  TRICLUST_CHECK_EQ(xu.rows(), gu.num_nodes());
  TRICLUST_CHECK_GE(options.num_clusters, 2);
  TRICLUST_CHECK_GE(options.restarts, 1);
  BacgRun best;
  for (int r = 0; r < options.restarts; ++r) {
    BacgRun run = RunOnce(xu, gu, options,
                          options.seed + static_cast<uint64_t>(r) * 101);
    if (run.objective > best.objective) best = std::move(run);
  }
  return best.assignment;
}

}  // namespace triclust
