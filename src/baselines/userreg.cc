#include "src/baselines/userreg.h"

#include "src/baselines/naive_bayes.h"
#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace triclust {

UserRegResult RunUserReg(const DatasetMatrices& data,
                         const std::vector<Sentiment>& seed_tweet_labels,
                         const UserRegOptions& options) {
  TRICLUST_CHECK_EQ(data.num_tweets(), seed_tweet_labels.size());
  const size_t k = static_cast<size_t>(options.num_classes);
  ScopedThreadBudget thread_scope(ThreadBudget(options.num_threads));

  // 1. Supervised tweet scorer on the seeds.
  MultinomialNaiveBayes nb(options.num_classes);
  nb.Train(data.xp, seed_tweet_labels);
  const DenseMatrix tweet_proba = nb.PredictProba(data.xp);

  // 2. User aggregate of their tweets' posteriors (via Xr incidence).
  DenseMatrix user_scores = SpMM(data.xr, tweet_proba);
  user_scores.NormalizeRowsL1();

  // 3. Social regularization: mix each user with the neighbour average.
  for (int round = 0; round < options.smoothing_iterations; ++round) {
    DenseMatrix neighbour = SpMM(data.gu.adjacency(), user_scores);
    neighbour.NormalizeRowsL1();
    DenseMatrix mixed(user_scores.rows(), k);
    for (size_t i = 0; i < user_scores.rows(); ++i) {
      const bool isolated = data.gu.Degree(i) <= 0.0;
      const double w = isolated ? 0.0 : options.social_weight;
      for (size_t c = 0; c < k; ++c) {
        mixed(i, c) =
            (1.0 - w) * user_scores(i, c) + w * neighbour(i, c);
      }
    }
    user_scores = std::move(mixed);
  }

  // 4. Feed the user stance back into tweet scores.
  UserRegResult result;
  result.tweet_predictions.assign(data.num_tweets(), Sentiment::kUnlabeled);
  std::vector<size_t> author_row(data.num_tweets());
  {
    // Xr rows are users, columns tweets; walk it once to find each tweet's
    // author row (the posting entry always exists).
    const auto& row_ptr = data.xr.row_ptr();
    const auto& col_idx = data.xr.col_idx();
    std::vector<bool> assigned(data.num_tweets(), false);
    for (size_t u = 0; u < data.xr.rows(); ++u) {
      for (size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
        if (!assigned[col_idx[p]]) {
          author_row[col_idx[p]] = u;
          assigned[col_idx[p]] = true;
        }
      }
    }
  }

  for (size_t i = 0; i < data.num_tweets(); ++i) {
    const double* user_row = user_scores.Row(author_row[i]);
    size_t best = 0;
    double best_score = -1.0;
    for (size_t c = 0; c < k; ++c) {
      const double score = tweet_proba(i, c) +
                           options.user_prior_weight * user_row[c];
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    result.tweet_predictions[i] =
        SentimentFromIndex(static_cast<int>(best));
  }

  result.user_predictions.assign(data.num_users(), Sentiment::kUnlabeled);
  for (size_t u = 0; u < data.num_users(); ++u) {
    result.user_predictions[u] =
        SentimentFromIndex(static_cast<int>(user_scores.ArgMaxRow(u)));
  }
  return result;
}

}  // namespace triclust
