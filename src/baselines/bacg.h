#ifndef TRICLUST_SRC_BASELINES_BACG_H_
#define TRICLUST_SRC_BASELINES_BACG_H_

#include <cstdint>
#include <vector>

#include "src/graph/user_graph.h"
#include "src/matrix/sparse_matrix.h"

namespace triclust {

/// Options of the BACG baseline.
struct BacgOptions {
  int num_clusters = 3;
  int max_iterations = 30;
  /// Weight of the structural (neighbour-vote) score against the content
  /// (multinomial log-likelihood) score. Light by default: heavy voting
  /// causes herding into one giant cluster on dense retweet graphs.
  double structure_weight = 0.2;
  uint64_t seed = 29;
  /// Random restarts; the run with the best internal objective wins.
  int restarts = 3;
};

/// BACG-style attributed-graph clustering of users (Xu, Ke et al. [34]):
/// clusters users by *jointly* using structure (the user–user retweet
/// graph) and content (the user–feature rows), with no labels and no
/// sentiment lexicon — the paper's unsupervised user-level comparison row.
///
/// The published BACG is a Bayesian model over attributed graphs; this
/// reproduction keeps its two information sources and alternating-
/// optimization structure with a simpler estimator: spherical k-means on
/// the content rows whose assignment step mixes in the neighbour cluster
/// vote, iterated to a local optimum over several restarts (documented
/// substitution, DESIGN.md §4).
///
/// Returns one cluster id per user (ids in [0, num_clusters)).
std::vector<int> RunBacg(const SparseMatrix& xu, const UserGraph& gu,
                         const BacgOptions& options = {});

}  // namespace triclust

#endif  // TRICLUST_SRC_BASELINES_BACG_H_
