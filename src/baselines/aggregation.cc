#include "src/baselines/aggregation.h"

#include "src/util/logging.h"

namespace triclust {

std::vector<Sentiment> AggregateTweetsToUsers(
    const DatasetMatrices& data,
    const std::vector<Sentiment>& tweet_predictions) {
  TRICLUST_CHECK_EQ(tweet_predictions.size(), data.num_tweets());
  std::vector<Sentiment> out(data.num_users(), Sentiment::kUnlabeled);
  const auto& row_ptr = data.xr.row_ptr();
  const auto& col_idx = data.xr.col_idx();
  const auto& values = data.xr.values();
  for (size_t u = 0; u < data.num_users(); ++u) {
    double votes[kNumSentimentClasses] = {0.0, 0.0, 0.0};
    bool any = false;
    for (size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
      const Sentiment s = tweet_predictions[col_idx[p]];
      if (s == Sentiment::kUnlabeled) continue;
      votes[SentimentIndex(s)] += values[p];
      any = true;
    }
    if (!any) continue;
    int best = 0;
    for (int c = 1; c < kNumSentimentClasses; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    out[u] = SentimentFromIndex(best);
  }
  return out;
}

}  // namespace triclust
