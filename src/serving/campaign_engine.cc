#include "src/serving/campaign_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/stopwatch.h"

namespace triclust {
namespace serving {

namespace {

bool AllFinite(const DenseMatrix& m) {
  const double* data = m.data();
  const size_t n = m.rows() * m.cols();
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

/// A fit is accepted only when every factor it produced is finite: a NaN
/// or Inf anywhere means a poisoned stream (corrupt restore, degenerate
/// input) and would contaminate the rolled-forward state for every later
/// snapshot.
bool ResultIsFinite(const TriClusterResult& result) {
  return AllFinite(result.sp) && AllFinite(result.su) &&
         AllFinite(result.sf) && AllFinite(result.hp) && AllFinite(result.hu);
}

}  // namespace

const char* CampaignHealthName(CampaignHealth health) {
  switch (health) {
    case CampaignHealth::kHealthy:
      return "healthy";
    case CampaignHealth::kDegraded:
      return "degraded";
    case CampaignHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

CampaignEngine::CampaignEngine(Options options) : options_(options) {
  TRICLUST_CHECK_GE(options_.num_threads, 0);
  TRICLUST_CHECK_GE(options_.per_fit_threads, 0);
}

int CampaignEngine::effective_num_threads() const {
  return ThreadBudget(options_.num_threads).resolved();
}

std::vector<int> CampaignEngine::SplitThreadBudget(int pool_threads,
                                                   size_t ready_fits) {
  TRICLUST_CHECK_GE(pool_threads, 1);
  std::vector<int> budgets(ready_fits, 1);
  if (ready_fits == 0) return budgets;
  const int base = pool_threads / static_cast<int>(ready_fits);
  const int spill = pool_threads % static_cast<int>(ready_fits);
  for (size_t i = 0; i < ready_fits; ++i) {
    budgets[i] = std::max(1, base + (i < static_cast<size_t>(spill) ? 1 : 0));
  }
  return budgets;
}

Result<size_t> CampaignEngine::AddCampaign(std::string name,
                                           OnlineConfig config,
                                           DenseMatrix sf0,
                                           MatrixBuilder builder,
                                           const Corpus* corpus) {
  // A null corpus is a programming error in the caller, not admin input.
  TRICLUST_CHECK(corpus != nullptr);
  // Everything below is untrusted registration input: reject, don't abort.
  if (name.empty()) {
    return Status::InvalidArgument("campaign name must not be empty");
  }
  // Names key the store's line-oriented manifest: no control characters,
  // and no leading space (Restore trims exactly one after the timestep).
  for (const char ch : name) {
    if (static_cast<unsigned char>(ch) < 0x20) {
      return Status::InvalidArgument(
          "campaign name contains a control character: " + name);
    }
  }
  if (name.front() == ' ') {
    return Status::InvalidArgument("campaign name has a leading space: '" +
                                   name + "'");
  }
  if (sf0.rows() != builder.vocabulary().size()) {
    return Status::InvalidArgument(
        "campaign '" + name + "': sf0 has " + std::to_string(sf0.rows()) +
        " rows but the builder vocabulary has " +
        std::to_string(builder.vocabulary().size()) + " features");
  }
  if (FindCampaign(name) != -1) {
    return Status::AlreadyExists("campaign name already registered: " + name);
  }
  campaigns_.push_back(std::make_unique<Campaign>(
      std::move(name), config, std::move(sf0), std::move(builder), corpus));
  return campaigns_.size() - 1;
}

const std::string& CampaignEngine::name(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->name;
}

ptrdiff_t CampaignEngine::FindCampaign(const std::string& name) const {
  for (size_t i = 0; i < campaigns_.size(); ++i) {
    if (campaigns_[i]->name == name) return static_cast<ptrdiff_t>(i);
  }
  return -1;
}

void CampaignEngine::Ingest(size_t campaign,
                            const std::vector<size_t>& tweet_ids,
                            int label_day) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  Campaign& c = *campaigns_[campaign];
  // Feeding a retired campaign is a routing bug in the caller: the tweets
  // would queue forever (retired campaigns never fit again).
  TRICLUST_CHECK(!c.retired);
  c.builder.Append(*c.corpus, tweet_ids);
  c.pending_label_day = label_day;
}

size_t CampaignEngine::num_pending(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->builder.num_pending();
}

int CampaignEngine::timestep(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state.timestep;
}

std::vector<double> CampaignEngine::UserSentiment(
    size_t campaign, size_t corpus_user_id) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state.UserSentiment(corpus_user_id);
}

const Corpus& CampaignEngine::corpus(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return *campaigns_[campaign]->corpus;
}

void CampaignEngine::set_fit_observer(FitObserver observer) {
  fit_observer_ = std::move(observer);
}

const StreamState& CampaignEngine::state(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state;
}

const SnapshotSolver& CampaignEngine::solver(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->solver;
}

void CampaignEngine::set_state(size_t campaign, StreamState state) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  campaigns_[campaign]->state = std::move(state);
}

CampaignHealth CampaignEngine::health(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->health;
}

const Status& CampaignEngine::last_error(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->last_error;
}

void CampaignEngine::QuarantineCampaign(size_t campaign, Status reason) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  Campaign& c = *campaigns_[campaign];
  c.health = CampaignHealth::kQuarantined;
  c.last_error = std::move(reason);
  TRICLUST_LOG(kWarning) << "campaign '" << c.name
                         << "' quarantined: " << c.last_error.ToString();
}

void CampaignEngine::ReviveCampaign(size_t campaign) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  Campaign& c = *campaigns_[campaign];
  c.health = CampaignHealth::kHealthy;
  c.consecutive_failures = 0;
  TRICLUST_LOG(kInfo) << "campaign '" << c.name << "' revived";
}

void CampaignEngine::RetireCampaign(size_t campaign) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  Campaign& c = *campaigns_[campaign];
  if (c.retired) return;
  c.retired = true;
  TRICLUST_LOG(kInfo) << "campaign '" << c.name << "' retired at timestep "
                      << c.state.timestep << " with "
                      << c.builder.num_pending() << " pending tweet(s)";
}

bool CampaignEngine::retired(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->retired;
}

size_t CampaignEngine::num_active_campaigns() const {
  size_t active = 0;
  for (const auto& c : campaigns_) {
    if (!c->retired) ++active;
  }
  return active;
}

EngineHealthReport CampaignEngine::HealthReport() const {
  EngineHealthReport report;
  report.campaigns.reserve(campaigns_.size());
  for (size_t i = 0; i < campaigns_.size(); ++i) {
    const Campaign& c = *campaigns_[i];
    CampaignHealthStatus status;
    status.campaign = i;
    status.name = c.name;
    status.health = c.health;
    status.retired = c.retired;
    status.consecutive_failures = c.consecutive_failures;
    status.last_error = c.last_error;
    status.timestep = c.state.timestep;
    status.pending = c.builder.num_pending();
    if (c.retired) {
      ++report.retired;
      report.campaigns.push_back(std::move(status));
      continue;
    }
    switch (c.health) {
      case CampaignHealth::kHealthy:
        ++report.healthy;
        break;
      case CampaignHealth::kDegraded:
        ++report.degraded;
        break;
      case CampaignHealth::kQuarantined:
        ++report.quarantined;
        break;
    }
    report.campaigns.push_back(std::move(status));
  }
  return report;
}

void CampaignEngine::RecordFitOutcome(Campaign* campaign, Status status) {
  if (status.ok()) {
    campaign->health = CampaignHealth::kHealthy;
    campaign->consecutive_failures = 0;
    return;
  }
  campaign->last_error = std::move(status);
  ++campaign->consecutive_failures;
  if (options_.quarantine_after_failures > 0 &&
      campaign->consecutive_failures >= options_.quarantine_after_failures) {
    campaign->health = CampaignHealth::kQuarantined;
    TRICLUST_LOG(kWarning)
        << "campaign '" << campaign->name << "' quarantined after "
        << campaign->consecutive_failures
        << " consecutive fit failures: " << campaign->last_error.ToString();
  } else {
    campaign->health = CampaignHealth::kDegraded;
    TRICLUST_LOG(kWarning)
        << "campaign '" << campaign->name << "' degraded ("
        << campaign->consecutive_failures << " consecutive failure(s)): "
        << campaign->last_error.ToString();
  }
}

std::vector<CampaignEngine::SnapshotReport> CampaignEngine::Advance(
    const AdvanceOptions& options) {
  std::vector<size_t> targets;
  for (size_t i = 0; i < campaigns_.size(); ++i) {
    // Retired campaigns are gone for good; quarantined campaigns are out
    // of rotation until ReviveCampaign() re-admits them (their queues keep
    // accumulating).
    if (campaigns_[i]->retired) continue;
    if (campaigns_[i]->health == CampaignHealth::kQuarantined) continue;
    if (campaigns_[i]->builder.num_pending() > 0 || options.include_idle) {
      targets.push_back(i);
    }
  }
  // Chunks are claimed in `targets` order, so under deadline pressure the
  // tail of the list is what gets deferred. Rotate the starting point each
  // call so no campaign is *systematically* starved by its id.
  if (!targets.empty()) {
    std::rotate(targets.begin(),
                targets.begin() + static_cast<ptrdiff_t>(
                                      advance_count_ % targets.size()),
                targets.end());
  }
  ++advance_count_;
  std::vector<SnapshotReport> reports(targets.size());

  const Stopwatch advance_clock;
  // Two-level split (see class comment): the campaign tier shards the
  // batch across the pool under the engine budget, and each fit gets its
  // slice of that budget — recomputed per batch from the fits actually
  // ready — as a per-fit kernel budget carried by its workspace. Both
  // tiers' budgets are thread-local; results are bit-identical for any
  // split because the kernels are width-invariant.
  const int pool_threads = effective_num_threads();
  const std::vector<int> fit_budgets =
      options_.per_fit_threads > 0
          ? std::vector<int>(targets.size(), options_.per_fit_threads)
          : SplitThreadBudget(pool_threads, targets.size());
  // Brace-initialized on purpose: with parentheses this whole line is a
  // *function declaration* (most vexing parse) and no budget is installed
  // — the campaign tier then silently runs at the ambient width.
  // -Wvexing-parse guards the regression.
  ScopedThreadBudget campaign_tier{ThreadBudget(pool_threads)};
  ParallelFor(0, targets.size(), /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      SnapshotReport& report = reports[t];
      report.campaign = targets[t];
      if (options.deadline_ms > 0.0 &&
          advance_clock.ElapsedMillis() > options.deadline_ms) {
        continue;  // deferred: the queue keeps accumulating
      }
      Campaign& c = *campaigns_[targets[t]];
      c.workspace.budget = ThreadBudget(fit_budgets[t]);
      const Stopwatch fit_clock;
      report.label_day = c.pending_label_day;
      // Rollback point: a rejected fit must not leave the half-advanced
      // state behind. The copy is cheap next to the solve it guards.
      StreamState pre_fit_state = c.state;
      report.data = c.builder.EmitSnapshot(*c.corpus, c.pending_label_day);
      report.result =
          c.solver.Solve(report.data, &c.state, &report.info, &c.workspace);
      report.solve_ms = fit_clock.ElapsedMillis();
      if (ResultIsFinite(report.result)) {
        report.fitted = true;
        RecordFitOutcome(&c, Status::OK());
      } else {
        // Poisoned snapshot: restore the pre-fit state and drop the
        // snapshot's tweets with it — re-queueing them would re-fail every
        // Advance forever. Only this campaign degrades.
        c.state = std::move(pre_fit_state);
        report.result = TriClusterResult();
        report.status = Status::FailedPrecondition(
            "campaign '" + c.name +
            "': fit produced non-finite factors (snapshot dropped, state "
            "rolled back)");
        RecordFitOutcome(&c, report.status);
      }
    }
  });
  std::sort(reports.begin(), reports.end(),
            [](const SnapshotReport& a, const SnapshotReport& b) {
              return a.campaign < b.campaign;
            });
  if (fit_observer_) {
    for (const SnapshotReport& report : reports) fit_observer_(report);
  }
  return reports;
}

}  // namespace serving
}  // namespace triclust
