#include "src/serving/campaign_engine.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/stopwatch.h"

namespace triclust {
namespace serving {

CampaignEngine::CampaignEngine(Options options) : options_(options) {
  TRICLUST_CHECK_GE(options_.num_threads, 0);
  TRICLUST_CHECK_GE(options_.per_fit_threads, 0);
}

int CampaignEngine::effective_num_threads() const {
  return ThreadBudget(options_.num_threads).resolved();
}

std::vector<int> CampaignEngine::SplitThreadBudget(int pool_threads,
                                                   size_t ready_fits) {
  TRICLUST_CHECK_GE(pool_threads, 1);
  std::vector<int> budgets(ready_fits, 1);
  if (ready_fits == 0) return budgets;
  const int base = pool_threads / static_cast<int>(ready_fits);
  const int spill = pool_threads % static_cast<int>(ready_fits);
  for (size_t i = 0; i < ready_fits; ++i) {
    budgets[i] = std::max(1, base + (i < static_cast<size_t>(spill) ? 1 : 0));
  }
  return budgets;
}

size_t CampaignEngine::AddCampaign(std::string name, OnlineConfig config,
                                   DenseMatrix sf0, MatrixBuilder builder,
                                   const Corpus* corpus) {
  TRICLUST_CHECK(corpus != nullptr);
  TRICLUST_CHECK(!name.empty());
  // Names key the store's line-oriented manifest: no control characters,
  // and no leading space (Restore trims exactly one after the timestep).
  for (const char ch : name) {
    TRICLUST_CHECK(static_cast<unsigned char>(ch) >= 0x20);
  }
  TRICLUST_CHECK(name.front() != ' ');
  TRICLUST_CHECK_EQ(sf0.rows(), builder.vocabulary().size());
  TRICLUST_CHECK_EQ(FindCampaign(name), -1);
  campaigns_.push_back(std::make_unique<Campaign>(
      std::move(name), config, std::move(sf0), std::move(builder), corpus));
  return campaigns_.size() - 1;
}

const std::string& CampaignEngine::name(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->name;
}

ptrdiff_t CampaignEngine::FindCampaign(const std::string& name) const {
  for (size_t i = 0; i < campaigns_.size(); ++i) {
    if (campaigns_[i]->name == name) return static_cast<ptrdiff_t>(i);
  }
  return -1;
}

void CampaignEngine::Ingest(size_t campaign,
                            const std::vector<size_t>& tweet_ids,
                            int label_day) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  Campaign& c = *campaigns_[campaign];
  c.builder.Append(*c.corpus, tweet_ids);
  c.pending_label_day = label_day;
}

size_t CampaignEngine::num_pending(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->builder.num_pending();
}

int CampaignEngine::timestep(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state.timestep;
}

std::vector<double> CampaignEngine::UserSentiment(
    size_t campaign, size_t corpus_user_id) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state.UserSentiment(corpus_user_id);
}

const Corpus& CampaignEngine::corpus(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return *campaigns_[campaign]->corpus;
}

void CampaignEngine::set_fit_observer(FitObserver observer) {
  fit_observer_ = std::move(observer);
}

const StreamState& CampaignEngine::state(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->state;
}

const SnapshotSolver& CampaignEngine::solver(size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  return campaigns_[campaign]->solver;
}

void CampaignEngine::set_state(size_t campaign, StreamState state) {
  TRICLUST_CHECK_LT(campaign, campaigns_.size());
  campaigns_[campaign]->state = std::move(state);
}

std::vector<CampaignEngine::SnapshotReport> CampaignEngine::Advance(
    const AdvanceOptions& options) {
  std::vector<size_t> targets;
  for (size_t i = 0; i < campaigns_.size(); ++i) {
    if (campaigns_[i]->builder.num_pending() > 0 || options.include_idle) {
      targets.push_back(i);
    }
  }
  // Chunks are claimed in `targets` order, so under deadline pressure the
  // tail of the list is what gets deferred. Rotate the starting point each
  // call so no campaign is *systematically* starved by its id.
  if (!targets.empty()) {
    std::rotate(targets.begin(),
                targets.begin() + static_cast<ptrdiff_t>(
                                      advance_count_ % targets.size()),
                targets.end());
  }
  ++advance_count_;
  std::vector<SnapshotReport> reports(targets.size());

  const Stopwatch advance_clock;
  // Two-level split (see class comment): the campaign tier shards the
  // batch across the pool under the engine budget, and each fit gets its
  // slice of that budget — recomputed per batch from the fits actually
  // ready — as a per-fit kernel budget carried by its workspace. Both
  // tiers' budgets are thread-local; results are bit-identical for any
  // split because the kernels are width-invariant.
  const int pool_threads = effective_num_threads();
  const std::vector<int> fit_budgets =
      options_.per_fit_threads > 0
          ? std::vector<int>(targets.size(), options_.per_fit_threads)
          : SplitThreadBudget(pool_threads, targets.size());
  ScopedThreadBudget campaign_tier(ThreadBudget(pool_threads));
  ParallelFor(0, targets.size(), /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      SnapshotReport& report = reports[t];
      report.campaign = targets[t];
      if (options.deadline_ms > 0.0 &&
          advance_clock.ElapsedMillis() > options.deadline_ms) {
        continue;  // deferred: the queue keeps accumulating
      }
      Campaign& c = *campaigns_[targets[t]];
      c.workspace.budget = ThreadBudget(fit_budgets[t]);
      const Stopwatch fit_clock;
      report.label_day = c.pending_label_day;
      report.data = c.builder.EmitSnapshot(*c.corpus, c.pending_label_day);
      report.result =
          c.solver.Solve(report.data, &c.state, &report.info, &c.workspace);
      report.solve_ms = fit_clock.ElapsedMillis();
      report.fitted = true;
    }
  });
  std::sort(reports.begin(), reports.end(),
            [](const SnapshotReport& a, const SnapshotReport& b) {
              return a.campaign < b.campaign;
            });
  if (fit_observer_) {
    for (const SnapshotReport& report : reports) fit_observer_(report);
  }
  return reports;
}

}  // namespace serving
}  // namespace triclust
