#include "src/serving/campaign_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/core/stream_state.h"
#include "src/util/file_util.h"

namespace triclust {
namespace serving {

namespace {

/// Checkpoint filenames carry the store generation so a Save never
/// overwrites the files the committed manifest still points to: a crash at
/// any point leaves the previous generation fully intact, with at worst
/// some orphaned next-generation files (reclaimed by the next Save).
std::string CampaignFileName(size_t index, uint64_t generation) {
  return "campaign_" + std::to_string(index) + ".g" +
         std::to_string(generation) + ".ckpt";
}

struct ManifestEntry {
  std::string filename;
  int timestep = 0;
  std::string name;
};

struct Manifest {
  uint64_t generation = 0;
  std::vector<ManifestEntry> entries;
};

Result<Manifest> ReadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open manifest: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "triclust-campaign-store 1") {
    return Status::ParseError("bad store header: " + line);
  }
  Manifest manifest;
  size_t count = 0;
  if (!std::getline(in, line) ||
      !(std::istringstream(line) >> manifest.generation >> count)) {
    return Status::ParseError("malformed generation/count line: " + line);
  }
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::ParseError("manifest truncated");
    }
    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.filename >> entry.timestep)) {
      return Status::ParseError("malformed manifest entry: " + line);
    }
    std::getline(fields, entry.name);
    if (!entry.name.empty() && entry.name.front() == ' ') {
      entry.name.erase(0, 1);
    }
    if (entry.name.empty()) {
      return Status::ParseError("manifest entry has no name: " + line);
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

}  // namespace

CampaignStore::CampaignStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string CampaignStore::ManifestPath() const {
  return directory_ + "/MANIFEST";
}

bool CampaignStore::HasManifest() const {
  return PathExists(ManifestPath());
}

Status CampaignStore::Save(const CampaignEngine& engine) const {
  TRICLUST_RETURN_IF_ERROR(CreateDirectories(directory_));

  // The previous generation (if any) stays untouched until the manifest
  // rename commits the new one; its files are only reclaimed afterwards.
  // A manifest that exists but cannot be read must abort the save: guessing
  // a generation could collide with files the committed manifest still
  // points to.
  Manifest previous;
  if (HasManifest()) {
    TRICLUST_ASSIGN_OR_RETURN(previous, ReadManifest(ManifestPath()));
  }
  const uint64_t generation = previous.generation + 1;

  // New-generation state files first, manifest rename last (commit point).
  for (size_t i = 0; i < engine.num_campaigns(); ++i) {
    const StreamState& state = engine.state(i);
    TRICLUST_RETURN_IF_ERROR(AtomicWriteFile(
        directory_ + "/" + CampaignFileName(i, generation),
        [&state](std::ostream* os) { return state.Write(os); }));
  }
  TRICLUST_RETURN_IF_ERROR(
      AtomicWriteFile(ManifestPath(), [&engine, generation](std::ostream* os) {
        std::ostream& out = *os;
        out << "triclust-campaign-store 1\n";
        out << generation << " " << engine.num_campaigns() << "\n";
        for (size_t i = 0; i < engine.num_campaigns(); ++i) {
          out << CampaignFileName(i, generation) << " "
              << engine.state(i).timestep << " " << engine.name(i) << "\n";
        }
        if (!out) return Status::IoError("manifest write failed");
        return Status::OK();
      }));

  // Best-effort reclamation: scan for files the committed manifest does
  // not reference — superseded generations, orphans left by crashes
  // between past commits and their cleanup, and stale AtomicWriteFile
  // temporaries (".tmp.<pid>") from crashed writers. Safe because the
  // store has a single writer (see header): nothing else can have an
  // in-flight temp here.
  auto listing = ListDirectory(directory_);
  if (listing.ok()) {
    for (const std::string& name : listing.value()) {
      bool reclaim = false;
      if (name.compare(0, 13, "MANIFEST.tmp.") == 0) {
        reclaim = true;
      } else if (name.compare(0, 9, "campaign_") == 0) {
        if (name.find(".ckpt.tmp.") != std::string::npos) {
          reclaim = true;
        } else if (name.size() >= 5 &&
                   name.compare(name.size() - 5, 5, ".ckpt") == 0) {
          reclaim = true;
          for (size_t i = 0; i < engine.num_campaigns(); ++i) {
            if (name == CampaignFileName(i, generation)) {
              reclaim = false;
              break;
            }
          }
        }
      }
      if (reclaim) std::remove((directory_ + "/" + name).c_str());
    }
  }
  return Status::OK();
}

Status CampaignStore::Restore(CampaignEngine* engine) const {
  TRICLUST_ASSIGN_OR_RETURN(const Manifest manifest,
                            ReadManifest(ManifestPath()));

  // Stage every state first so a mid-list failure cannot leave the engine
  // half-restored (some campaigns at the stored generation, others fresh).
  std::vector<std::pair<size_t, StreamState>> staged;
  staged.reserve(manifest.entries.size());
  for (const ManifestEntry& entry : manifest.entries) {
    const ptrdiff_t campaign = engine->FindCampaign(entry.name);
    if (campaign < 0) {
      return Status::NotFound("stored campaign not registered: " +
                              entry.name);
    }
    const std::string path = directory_ + "/" + entry.filename;
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open for reading: " + path);
    const DenseMatrix& sf0 =
        engine->solver(static_cast<size_t>(campaign)).sf0();
    TRICLUST_ASSIGN_OR_RETURN(
        StreamState state, StreamState::Read(&in, sf0.rows(), sf0.cols()));
    if (state.timestep != entry.timestep) {
      return Status::ParseError("manifest timestep disagrees with state: " +
                                entry.name);
    }
    staged.emplace_back(static_cast<size_t>(campaign), std::move(state));
  }
  for (auto& [campaign, state] : staged) {
    engine->set_state(campaign, std::move(state));
  }
  return Status::OK();
}

}  // namespace serving
}  // namespace triclust
