#include "src/serving/campaign_store.h"

#include <atomic>
#include <sstream>
#include <utility>
#include <vector>

#include "src/core/stream_state.h"
#include "src/util/file_util.h"
#include "src/util/logging.h"

namespace triclust {
namespace serving {

namespace {

// Manifest format 2 (current) requires the integrity trailer of
// docs/FORMATS.md §4 on the manifest and on every checkpoint it
// references — that requirement is what lets a *truncated* checksummed
// file (whose trailer went with the truncation) be distinguished from a
// legacy pre-checksum file. Format 1 stores are read-only legacy:
// trailer-less files load with a warn-once diagnostic.
constexpr char kManifestHeaderV1[] = "triclust-campaign-store 1";
constexpr char kManifestHeaderV2[] = "triclust-campaign-store 2";

/// Checkpoint filenames carry the store generation so a Save never
/// overwrites the files the committed manifest still points to: a crash at
/// any point leaves the previous generation fully intact, with at worst
/// some orphaned next-generation files (reclaimed by the next Save).
std::string CampaignFileName(size_t index, uint64_t generation) {
  return "campaign_" + std::to_string(index) + ".g" +
         std::to_string(generation) + ".ckpt";
}

struct ManifestEntry {
  std::string filename;
  int timestep = 0;
  std::string name;
};

struct Manifest {
  int version = 2;
  uint64_t generation = 0;
  std::vector<ManifestEntry> entries;
};

/// Legacy trailer-less files are expected exactly once per fleet (the
/// first start after an upgrade), so one process-wide warning carries all
/// the signal; per-file repetition would bury real warnings.
void WarnLegacyOnce(const std::string& path) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    TRICLUST_LOG(kWarning)
        << path << ": no integrity trailer (file predates checksums); "
        << "loading without verification. The next Save rewrites the "
        << "store in checksummed format 2. [warn-once]";
  }
}

/// Parses an already checksum-verified manifest payload. `had_trailer`
/// tells whether the bytes carried an integrity trailer; format 2
/// declares one mandatory, which is how truncation that swallowed the
/// trailer is caught here instead of being mistaken for a legacy file.
Result<Manifest> ParseManifest(const std::string& payload,
                               const std::string& path, bool had_trailer) {
  std::istringstream in(payload);
  std::string line;
  Manifest manifest;
  if (!std::getline(in, line)) {
    return Status::ParseError(path + ": empty manifest");
  }
  if (line == kManifestHeaderV2) {
    manifest.version = 2;
  } else if (line == kManifestHeaderV1) {
    manifest.version = 1;
  } else {
    return Status::ParseError(path + ": bad store header: " + line);
  }
  if (manifest.version >= 2 && !had_trailer) {
    return Status::ParseError(
        path + ": format 2 manifest has no integrity trailer (truncated?)");
  }
  if (manifest.version == 1 && !had_trailer) WarnLegacyOnce(path);
  size_t count = 0;
  if (!std::getline(in, line) ||
      !(std::istringstream(line) >> manifest.generation >> count)) {
    return Status::ParseError(path + ": malformed generation/count line: " +
                              line);
  }
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::ParseError(path + ": manifest truncated");
    }
    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.filename >> entry.timestep)) {
      return Status::ParseError(path + ": malformed manifest entry: " + line);
    }
    std::getline(fields, entry.name);
    if (!entry.name.empty() && entry.name.front() == ' ') {
      entry.name.erase(0, 1);
    }
    if (entry.name.empty()) {
      return Status::ParseError(path + ": manifest entry has no name: " +
                                line);
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

}  // namespace

CampaignStore::CampaignStore(std::string directory, StoreOptions options)
    : directory_(std::move(directory)), options_(std::move(options)) {}

std::string CampaignStore::ManifestPath() const {
  return directory_ + "/MANIFEST";
}

FileSystem* CampaignStore::fs() const {
  return options_.fs != nullptr ? options_.fs : GetDefaultFileSystem();
}

bool CampaignStore::HasManifest() const { return fs()->Exists(ManifestPath()); }

Result<std::string> CampaignStore::ReadFileWithRetry(
    const std::string& path) const {
  std::string contents;
  TRICLUST_RETURN_IF_ERROR(RetryTransient(
      options_.retry,
      [this, &path, &contents]() -> Status {
        Result<std::string> read = fs()->ReadFileToString(path);
        if (!read.ok()) return read.status();
        contents = std::move(read).value();
        return Status::OK();
      },
      options_.sleeper));
  return contents;
}

Status CampaignStore::Save(const CampaignEngine& engine) const {
  TRICLUST_RETURN_IF_ERROR(RetryTransient(
      options_.retry, [this] { return fs()->CreateDirectories(directory_); },
      options_.sleeper));

  // The previous generation (if any) stays untouched until the manifest
  // rename commits the new one; its files are only reclaimed afterwards.
  // A manifest that exists but cannot be read must abort the save: guessing
  // a generation could collide with files the committed manifest still
  // points to.
  Manifest previous;
  if (HasManifest()) {
    const std::string manifest_path = ManifestPath();
    TRICLUST_ASSIGN_OR_RETURN(std::string raw,
                              ReadFileWithRetry(manifest_path));
    bool had_trailer = false;
    TRICLUST_ASSIGN_OR_RETURN(
        const std::string payload,
        VerifyChecksummedPayload(std::move(raw), manifest_path, &had_trailer));
    TRICLUST_ASSIGN_OR_RETURN(
        previous, ParseManifest(payload, manifest_path, had_trailer));
  }
  const uint64_t generation = previous.generation + 1;

  // New-generation state files first, manifest rename last (commit point).
  // Each file write is individually retried: a transient hiccup on one
  // checkpoint should not abort the whole fleet save. The writer lambdas
  // are pure (they re-serialize from the in-memory state), so re-running
  // them on retry is safe.
  for (size_t i = 0; i < engine.num_campaigns(); ++i) {
    const StreamState& state = engine.state(i);
    const std::string path =
        directory_ + "/" + CampaignFileName(i, generation);
    TRICLUST_RETURN_IF_ERROR(RetryTransient(
        options_.retry,
        [this, &path, &state] {
          return AtomicWriteFileChecksummed(fs(), path, [&state](
                                                            std::ostream* os) {
            return state.Write(os);
          });
        },
        options_.sleeper));
  }
  TRICLUST_RETURN_IF_ERROR(RetryTransient(
      options_.retry,
      [this, &engine, generation] {
        return AtomicWriteFileChecksummed(
            fs(), ManifestPath(), [&engine, generation](std::ostream* os) {
              std::ostream& out = *os;
              out << kManifestHeaderV2 << "\n";
              out << generation << " " << engine.num_campaigns() << "\n";
              for (size_t i = 0; i < engine.num_campaigns(); ++i) {
                out << CampaignFileName(i, generation) << " "
                    << engine.state(i).timestep << " " << engine.name(i)
                    << "\n";
              }
              if (!out) return Status::IoError("manifest write failed");
              return Status::OK();
            });
      },
      options_.sleeper));

  // Best-effort reclamation: scan for files the committed manifest does
  // not reference — superseded generations, orphans left by crashes
  // between past commits and their cleanup, and stale AtomicWriteFile
  // temporaries (".tmp.<pid>") from crashed writers. Safe because the
  // store has a single writer (see header): nothing else can have an
  // in-flight temp here. Failures are ignored — the commit already
  // happened, and the next Save retries the sweep.
  Result<std::vector<std::string>> listing = fs()->ListDirectory(directory_);
  if (listing.ok()) {
    for (const std::string& name : listing.value()) {
      bool reclaim = false;
      if (name.compare(0, 13, "MANIFEST.tmp.") == 0) {
        reclaim = true;
      } else if (name.compare(0, 9, "campaign_") == 0) {
        if (name.find(".ckpt.tmp.") != std::string::npos) {
          reclaim = true;
        } else if (name.size() >= 5 &&
                   name.compare(name.size() - 5, 5, ".ckpt") == 0) {
          reclaim = true;
          for (size_t i = 0; i < engine.num_campaigns(); ++i) {
            if (name == CampaignFileName(i, generation)) {
              reclaim = false;
              break;
            }
          }
        }
      }
      // Deliberate discard: reclamation is best effort — a stale file that
      // survives this pass is retried by the next Save.
      if (reclaim) (void)fs()->Remove(directory_ + "/" + name);
    }
  }
  return Status::OK();
}

Status CampaignStore::Restore(CampaignEngine* engine) const {
  return RestoreImpl(engine, /*allow_partial=*/false, /*report=*/nullptr);
}

Status CampaignStore::RestorePartial(CampaignEngine* engine,
                                     RestoreReport* report) const {
  return RestoreImpl(engine, /*allow_partial=*/true, report);
}

Status CampaignStore::RestoreImpl(CampaignEngine* engine, bool allow_partial,
                                  RestoreReport* report) const {
  const std::string manifest_path = ManifestPath();
  TRICLUST_ASSIGN_OR_RETURN(std::string raw_manifest,
                            ReadFileWithRetry(manifest_path));
  bool manifest_had_trailer = false;
  TRICLUST_ASSIGN_OR_RETURN(const std::string manifest_payload,
                            VerifyChecksummedPayload(std::move(raw_manifest),
                                                     manifest_path,
                                                     &manifest_had_trailer));
  TRICLUST_ASSIGN_OR_RETURN(
      const Manifest manifest,
      ParseManifest(manifest_payload, manifest_path, manifest_had_trailer));

  RestoreReport local_report;
  local_report.generation = manifest.generation;

  // Stage every outcome first so a mid-list failure cannot leave the
  // engine half-restored (some campaigns at the stored generation, others
  // fresh). Only after the whole manifest has been processed are states
  // installed and — in partial mode — failed campaigns quarantined.
  std::vector<std::pair<size_t, StreamState>> staged;
  std::vector<std::pair<size_t, Status>> quarantines;
  staged.reserve(manifest.entries.size());

  for (const ManifestEntry& entry : manifest.entries) {
    const ptrdiff_t campaign = engine->FindCampaign(entry.name);
    if (campaign < 0) {
      // Not a per-campaign data problem but a registration mismatch:
      // proceeding would silently drop the stored history, so even
      // partial mode refuses.
      return Status::NotFound("stored campaign not registered: " +
                              entry.name);
    }
    const size_t index = static_cast<size_t>(campaign);
    const std::string path = directory_ + "/" + entry.filename;

    Status entry_status;
    StreamState state;
    do {  // single-pass scope; `break` = record entry_status and move on
      if (!fs()->Exists(path)) {
        entry_status = Status::NotFound(
            path + ": referenced by manifest (generation " +
            std::to_string(manifest.generation) + ") but absent");
        break;
      }
      Result<std::string> raw = ReadFileWithRetry(path);
      if (!raw.ok()) {
        entry_status = raw.status();
        break;
      }
      bool had_trailer = false;
      Result<std::string> payload = VerifyChecksummedPayload(
          std::move(raw).value(), path, &had_trailer);
      if (!payload.ok()) {
        entry_status = payload.status();
        break;
      }
      if (manifest.version >= 2 && !had_trailer) {
        entry_status = Status::ParseError(
            path +
            ": format 2 checkpoint has no integrity trailer (truncated?)");
        break;
      }
      if (!had_trailer) WarnLegacyOnce(path);
      const DenseMatrix& sf0 = engine->solver(index).sf0();
      std::istringstream in(payload.value());
      Result<StreamState> read =
          StreamState::Read(&in, sf0.rows(), sf0.cols());
      if (!read.ok()) {
        entry_status = read.status();
        break;
      }
      state = std::move(read).value();
      if (state.timestep != entry.timestep) {
        entry_status = Status::ParseError(
            path + ": manifest timestep disagrees with state: " + entry.name);
        break;
      }
    } while (false);

    if (entry_status.ok()) {
      staged.emplace_back(index, std::move(state));
    } else if (allow_partial) {
      quarantines.emplace_back(index, entry_status);
    } else {
      return entry_status;
    }
    local_report.campaigns.push_back(
        CampaignRestoreStatus{entry.name, entry.filename, entry_status});
  }

  // Commit point: everything below mutates the engine and cannot fail.
  for (auto& [index, state] : staged) {
    engine->set_state(index, std::move(state));
  }
  for (const auto& [index, status] : quarantines) {
    engine->QuarantineCampaign(index, status);
  }
  if (report != nullptr) *report = std::move(local_report);
  return Status::OK();
}

}  // namespace serving
}  // namespace triclust
