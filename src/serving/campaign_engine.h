#ifndef TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_
#define TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/core/snapshot_solver.h"
#include "src/core/stream_state.h"
#include "src/core/updates.h"
#include "src/data/corpus.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"

namespace triclust {
namespace serving {

/// Serves N independent online tri-clustering campaigns from one process.
///
/// Each campaign owns the full per-stream trio — an incremental
/// MatrixBuilder (pending-snapshot ingestion), a StreamState, and a
/// persistent UpdateWorkspace — plus a stateless SnapshotSolver over its
/// config and lexicon prior. Ingest() queues tweets in O(new tweets);
/// Advance() emits every pending snapshot and shards the per-snapshot fits
/// across the process thread pool (the fits are independent given each
/// campaign's window aggregates, so they parallelize without coordination).
///
/// Two-level parallelism: Advance() splits its thread pool hierarchically.
/// The campaign tier shards the batch's ready fits across the pool; the
/// kernel tier hands every sharded fit a per-fit ThreadBudget — its slice
/// of `num_threads / ready_fits` with the remainder spilled one thread at
/// a time onto the first fits — so each fit also runs its kernels
/// row-parallel inside its slice. A 2-campaign fleet on 16 cores therefore
/// uses all 16 (8 per fit) instead of idling 14, and a 1-campaign batch
/// gets the whole machine. Budgets are recomputed for every Advance()
/// batch from the fits actually ready in it.
///
/// Determinism: the kernels are bit-identical at every width (fixed-grain
/// reductions, disjoint-row partitions — see parallel.h), so each
/// campaign's results are bit-identical to a standalone
/// OnlineTriClusterer with num_threads = 1 processing the same snapshots —
/// regardless of how many campaigns advanced together, the engine's thread
/// budget, how it was split across fits, or which pool thread ran a fit.
///
/// Deadlines: Advance() accepts a soft deadline. A campaign whose fit has
/// not *started* by the deadline is skipped — its pending tweets stay
/// queued and simply accumulate into a larger snapshot for the next
/// Advance(), mirroring how the paper's per-day snapshots batch whatever
/// arrived in the interval. The fit order rotates across Advance() calls
/// so sustained deadline pressure spreads deferrals over the fleet rather
/// than starving the highest campaign ids; beyond that, which campaigns
/// get deferred depends on scheduling — the per-campaign results never do.
///
/// Thread safety: the engine itself is confined to one caller thread
/// (Ingest/Advance are not re-entrant); internal concurrency is the
/// engine's job. All thread budgets are installed THREAD-LOCALLY (see
/// parallel.h), so unrelated solver fits on other threads of the same
/// process run safely concurrently with Advance(), each under its own
/// budget.
struct EngineOptions {
  /// Total thread budget of one Advance() batch — the pool split across
  /// that batch's ready fits: 0 = hardware concurrency, 1 = fit campaigns
  /// sequentially with serial kernels.
  int num_threads = 0;
  /// Per-fit kernel budget override. 0 (default) = split `num_threads`
  /// evenly across the batch's ready fits with remainder spill (see the
  /// class comment). n ≥ 1 forces every fit's kernel budget to n — n = 1
  /// reproduces the historical cross-campaign-only sharding exactly, and
  /// larger values may deliberately oversubscribe the pool (budgets
  /// summing past `num_threads` degrade gracefully and never change
  /// results).
  int per_fit_threads = 0;
};

struct AdvanceOptions {
  /// Soft deadline in milliseconds from the start of Advance(); fits not
  /// started by then are deferred with their queue intact. ≤ 0 = none.
  double deadline_ms = 0.0;
  /// Also advance campaigns with an empty queue (their snapshot is empty
  /// and carries the feature state forward) — keeps every campaign's
  /// timestep aligned with wall-clock days even through quiet periods.
  bool include_idle = false;
};

class CampaignEngine {
 public:
  using Options = EngineOptions;

  explicit CampaignEngine(Options options = Options());
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Registers a campaign and returns its id (dense, in registration
  /// order). `builder` must already be Fit and `sf0` built over its
  /// vocabulary; `corpus` is not owned and must outlive the engine.
  /// Campaign names must be unique (they key persistence — see
  /// CampaignStore).
  size_t AddCampaign(std::string name, OnlineConfig config, DenseMatrix sf0,
                     MatrixBuilder builder, const Corpus* corpus);

  /// Number of registered campaigns. Thread safety (like every accessor
  /// below): safe from the confined caller thread; not from others while
  /// Advance() runs.
  size_t num_campaigns() const { return campaigns_.size(); }

  /// The resolved total thread budget of an Advance() batch: Options::
  /// num_threads with 0 resolved through hardware concurrency, always ≥ 1.
  int effective_num_threads() const;

  /// How one Advance() batch splits `pool_threads` across `ready_fits`
  /// fits: every fit gets at least max(1, pool_threads / ready_fits)
  /// threads and the remainder spills one extra thread onto the first
  /// `pool_threads % ready_fits` fits, so the slices sum to exactly
  /// max(pool_threads, ready_fits). Pure function, exposed for tests;
  /// empty for ready_fits == 0.
  static std::vector<int> SplitThreadBudget(int pool_threads,
                                            size_t ready_fits);

  /// The unique name `campaign` was registered under.
  const std::string& name(size_t campaign) const;

  /// Id of the campaign with `name`, or -1 when unknown.
  ptrdiff_t FindCampaign(const std::string& name) const;

  /// The corpus the campaign was registered with (evaluation harnesses map
  /// snapshot row ids back into it — see src/eval/timeline_eval.h).
  const Corpus& corpus(size_t campaign) const;

  /// Queues tweets for the campaign's next snapshot, vectorizing each once
  /// (O(new tweets)). `label_day` is the temporal ground-truth day used for
  /// the snapshot's user labels (-1 = static labels); the last value queued
  /// before an Advance wins.
  void Ingest(size_t campaign, const std::vector<size_t>& tweet_ids,
              int label_day = -1);

  /// Tweets queued for the campaign since its last fitted snapshot.
  size_t num_pending(size_t campaign) const;

  /// Snapshots processed so far by the campaign.
  int timestep(size_t campaign) const;

  /// Latest known sentiment row of a corpus user within a campaign
  /// (empty when the user has not appeared in a fitted snapshot yet).
  std::vector<double> UserSentiment(size_t campaign,
                                    size_t corpus_user_id) const;

  /// The campaign's evolving stream state (CampaignStore serializes it).
  /// The reference is invalidated by set_state and mutated by Advance().
  const StreamState& state(size_t campaign) const;

  /// The campaign's immutable solver: its config and lexicon prior
  /// (CampaignStore validates checkpoints against solver().sf0()).
  const SnapshotSolver& solver(size_t campaign) const;

  /// Replaces a campaign's stream state (CampaignStore restore path). The
  /// state must be dimensionally consistent with the campaign's sf0 —
  /// StreamState::Read validates this.
  void set_state(size_t campaign, StreamState state);

  /// Outcome of one campaign's snapshot within an Advance() call.
  struct SnapshotReport {
    size_t campaign = 0;
    /// False when the deadline deferred this fit (queue left intact).
    bool fitted = false;
    /// The emitted snapshot (row-id maps and labels for the caller).
    DatasetMatrices data;
    TriClusterResult result;
    SnapshotSolver::SolveInfo info;
    /// Wall-clock cost of emit + fit, for load reporting.
    double solve_ms = 0.0;
    /// Temporal ground-truth day `data.user_labels` was built against
    /// (the label_day of the last Ingest before this fit; -1 = static
    /// labels). Meaningful only when fitted.
    int label_day = -1;
  };

  /// Observer invoked synchronously for every report of every Advance()
  /// (fitted and deferred, in campaign-id order) — the hook evaluation
  /// harnesses use to score each completed fit against ground truth via
  /// the report's row-id maps. Runs on the Advance() caller thread after
  /// all fits finished, so it never perturbs fit results or their
  /// sharding; it must not re-enter the engine.
  using FitObserver = std::function<void(const SnapshotReport&)>;

  /// Installs the fit observer (pass {} to remove). At most one; callers
  /// needing fan-out can multiplex in their observer (ReplayDriver's
  /// observer list does this for replay consumers).
  void set_fit_observer(FitObserver observer);

  /// Advances every campaign with pending tweets (and idle ones when
  /// requested) by exactly one snapshot, sharding fits across the pool.
  /// Reports are ordered by campaign id.
  std::vector<SnapshotReport> Advance(
      const AdvanceOptions& options = AdvanceOptions());

 private:
  /// Everything one campaign owns: ingestion, solver inputs, stream state,
  /// and scratch. unique_ptr keeps addresses stable across registration.
  struct Campaign {
    Campaign(std::string name, OnlineConfig config, DenseMatrix sf0,
             MatrixBuilder builder, const Corpus* corpus)
        : name(std::move(name)),
          solver(config, std::move(sf0)),
          builder(std::move(builder)),
          corpus(corpus) {}

    std::string name;
    SnapshotSolver solver;
    MatrixBuilder builder;
    const Corpus* corpus;
    StreamState state;
    update::UpdateWorkspace workspace;
    int pending_label_day = -1;
  };

  Options options_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  FitObserver fit_observer_;
  /// Advance() calls so far; rotates the fit order for deadline fairness.
  uint64_t advance_count_ = 0;
};

}  // namespace serving
}  // namespace triclust

#endif  // TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_
