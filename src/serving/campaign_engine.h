#ifndef TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_
#define TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/core/snapshot_solver.h"
#include "src/core/stream_state.h"
#include "src/core/updates.h"
#include "src/data/corpus.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace triclust {
namespace serving {

/// Serves N independent online tri-clustering campaigns from one process.
///
/// Each campaign owns the full per-stream trio — an incremental
/// MatrixBuilder (pending-snapshot ingestion), a StreamState, and a
/// persistent UpdateWorkspace — plus a stateless SnapshotSolver over its
/// config and lexicon prior. Ingest() queues tweets in O(new tweets);
/// Advance() emits every pending snapshot and shards the per-snapshot fits
/// across the process thread pool (the fits are independent given each
/// campaign's window aggregates, so they parallelize without coordination).
///
/// Two-level parallelism: Advance() splits its thread pool hierarchically.
/// The campaign tier shards the batch's ready fits across the pool; the
/// kernel tier hands every sharded fit a per-fit ThreadBudget — its slice
/// of `num_threads / ready_fits` with the remainder spilled one thread at
/// a time onto the first fits — so each fit also runs its kernels
/// row-parallel inside its slice. A 2-campaign fleet on 16 cores therefore
/// uses all 16 (8 per fit) instead of idling 14, and a 1-campaign batch
/// gets the whole machine. Budgets are recomputed for every Advance()
/// batch from the fits actually ready in it.
///
/// Determinism: the kernels are bit-identical at every width (fixed-grain
/// reductions, disjoint-row partitions — see parallel.h), so each
/// campaign's results are bit-identical to a standalone
/// OnlineTriClusterer with num_threads = 1 processing the same snapshots —
/// regardless of how many campaigns advanced together, the engine's thread
/// budget, how it was split across fits, or which pool thread ran a fit.
///
/// Deadlines: Advance() accepts a soft deadline. A campaign whose fit has
/// not *started* by the deadline is skipped — its pending tweets stay
/// queued and simply accumulate into a larger snapshot for the next
/// Advance(), mirroring how the paper's per-day snapshots batch whatever
/// arrived in the interval. The fit order rotates across Advance() calls
/// so sustained deadline pressure spreads deferrals over the fleet rather
/// than starving the highest campaign ids; beyond that, which campaigns
/// get deferred depends on scheduling — the per-campaign results never do.
///
/// Thread safety: the engine itself is confined to one caller thread
/// (Ingest/Advance are not re-entrant); internal concurrency is the
/// engine's job. All thread budgets are installed THREAD-LOCALLY (see
/// parallel.h), so unrelated solver fits on other threads of the same
/// process run safely concurrently with Advance(), each under its own
/// budget.
struct EngineOptions {
  /// Total thread budget of one Advance() batch — the pool split across
  /// that batch's ready fits: 0 = hardware concurrency, 1 = fit campaigns
  /// sequentially with serial kernels.
  int num_threads = 0;
  /// Per-fit kernel budget override. 0 (default) = split `num_threads`
  /// evenly across the batch's ready fits with remainder spill (see the
  /// class comment). n ≥ 1 forces every fit's kernel budget to n — n = 1
  /// reproduces the historical cross-campaign-only sharding exactly, and
  /// larger values may deliberately oversubscribe the pool (budgets
  /// summing past `num_threads` degrade gracefully and never change
  /// results).
  int per_fit_threads = 0;
  /// Consecutive fit failures after which a campaign is quarantined
  /// (skipped by Advance() until ReviveCampaign()). ≤ 0 disables automatic
  /// quarantine — failed campaigns stay degraded and keep being retried.
  int quarantine_after_failures = 3;
};

/// Per-campaign serving health (the graceful-degradation lifecycle):
/// kHealthy → (fit failure) → kDegraded → (quarantine_after_failures
/// consecutive failures) → kQuarantined; any successful fit returns the
/// campaign to kHealthy, and ReviveCampaign() re-admits a quarantined one.
enum class CampaignHealth { kHealthy = 0, kDegraded = 1, kQuarantined = 2 };

/// Stable lowercase name of a health state ("healthy", "degraded",
/// "quarantined") for dashboards and logs.
const char* CampaignHealthName(CampaignHealth health);

/// One campaign's row in the fleet health report.
struct CampaignHealthStatus {
  size_t campaign = 0;
  std::string name;
  CampaignHealth health = CampaignHealth::kHealthy;
  /// Permanently out of rotation (see RetireCampaign).
  bool retired = false;
  /// Failures since the last successful fit.
  int consecutive_failures = 0;
  /// The most recent failure (OK when the campaign never failed); kept
  /// across recovery so operators can see what last went wrong.
  Status last_error;
  int timestep = 0;
  size_t pending = 0;
};

/// Fleet-wide health snapshot — what a network front-end's /health
/// endpoint serves.
struct EngineHealthReport {
  size_t healthy = 0;
  size_t degraded = 0;
  size_t quarantined = 0;
  /// Retired campaigns (see RetireCampaign) are listed but not counted
  /// toward the live tallies above.
  size_t retired = 0;
  /// One entry per campaign, in campaign-id order.
  std::vector<CampaignHealthStatus> campaigns;

  bool AllHealthy() const { return degraded == 0 && quarantined == 0; }
};

struct AdvanceOptions {
  /// Soft deadline in milliseconds from the start of Advance(); fits not
  /// started by then are deferred with their queue intact. ≤ 0 = none.
  double deadline_ms = 0.0;
  /// Also advance campaigns with an empty queue (their snapshot is empty
  /// and carries the feature state forward) — keeps every campaign's
  /// timestep aligned with wall-clock days even through quiet periods.
  bool include_idle = false;
};

/// TRICLUST_EXTERNALLY_SYNCHRONIZED: the engine deliberately owns no
/// mutex. Its safety contract is *confinement* — all public members are
/// called from one caller thread (see "Thread safety" above), and during
/// Advance() each sharded fit has exclusive ownership of its one
/// Campaign. Confinement is a discipline the thread-safety analysis
/// cannot model, so the marker (a no-op macro) plus the TSan CI job carry
/// this contract where GUARDED_BY carries the locked ones.
class TRICLUST_EXTERNALLY_SYNCHRONIZED CampaignEngine {
 public:
  using Options = EngineOptions;

  explicit CampaignEngine(Options options = Options());
  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Registers a campaign and returns its id (dense, in registration
  /// order). `builder` must already be Fit and `sf0` built over its
  /// vocabulary; `corpus` is not owned and must outlive the engine.
  /// Campaign names must be unique (they key persistence — see
  /// CampaignStore). Registration is admin input, so bad requests are
  /// errors, not crashes: InvalidArgument for an empty name, a name with
  /// control characters or a leading space (either would corrupt the
  /// store's line-oriented manifest), or an `sf0` whose row count does not
  /// match the builder's vocabulary; AlreadyExists for a duplicate name.
  Result<size_t> AddCampaign(std::string name, OnlineConfig config,
                             DenseMatrix sf0, MatrixBuilder builder,
                             const Corpus* corpus);

  /// Number of registered campaigns. Thread safety (like every accessor
  /// below): safe from the confined caller thread; not from others while
  /// Advance() runs.
  size_t num_campaigns() const { return campaigns_.size(); }

  /// The resolved total thread budget of an Advance() batch: Options::
  /// num_threads with 0 resolved through hardware concurrency, always ≥ 1.
  int effective_num_threads() const;

  /// How one Advance() batch splits `pool_threads` across `ready_fits`
  /// fits: every fit gets at least max(1, pool_threads / ready_fits)
  /// threads and the remainder spills one extra thread onto the first
  /// `pool_threads % ready_fits` fits, so the slices sum to exactly
  /// max(pool_threads, ready_fits). Pure function, exposed for tests;
  /// empty for ready_fits == 0.
  static std::vector<int> SplitThreadBudget(int pool_threads,
                                            size_t ready_fits);

  /// The unique name `campaign` was registered under.
  const std::string& name(size_t campaign) const;

  /// Id of the campaign with `name`, or -1 when unknown.
  ptrdiff_t FindCampaign(const std::string& name) const;

  /// The corpus the campaign was registered with (evaluation harnesses map
  /// snapshot row ids back into it — see src/eval/timeline_eval.h).
  const Corpus& corpus(size_t campaign) const;

  /// Queues tweets for the campaign's next snapshot, vectorizing each once
  /// (O(new tweets)). `label_day` is the temporal ground-truth day used for
  /// the snapshot's user labels (-1 = static labels); the last value queued
  /// before an Advance wins.
  void Ingest(size_t campaign, const std::vector<size_t>& tweet_ids,
              int label_day = -1);

  /// Tweets queued for the campaign since its last fitted snapshot.
  size_t num_pending(size_t campaign) const;

  /// Snapshots processed so far by the campaign.
  int timestep(size_t campaign) const;

  /// Latest known sentiment row of a corpus user within a campaign
  /// (empty when the user has not appeared in a fitted snapshot yet).
  std::vector<double> UserSentiment(size_t campaign,
                                    size_t corpus_user_id) const;

  /// The campaign's evolving stream state (CampaignStore serializes it).
  /// The reference is invalidated by set_state and mutated by Advance().
  const StreamState& state(size_t campaign) const;

  /// The campaign's immutable solver: its config and lexicon prior
  /// (CampaignStore validates checkpoints against solver().sf0()).
  const SnapshotSolver& solver(size_t campaign) const;

  /// Replaces a campaign's stream state (CampaignStore restore path). The
  /// state must be dimensionally consistent with the campaign's sf0 —
  /// StreamState::Read validates this.
  void set_state(size_t campaign, StreamState state);

  // --- fleet health / graceful degradation ----------------------------------

  /// The campaign's current health state (see CampaignHealth).
  CampaignHealth health(size_t campaign) const;

  /// The campaign's most recent failure; OK when it never failed.
  const Status& last_error(size_t campaign) const;

  /// Forces the campaign into kQuarantined with `reason` as its last
  /// error: Advance() skips it (its ingest queue keeps accumulating) until
  /// ReviveCampaign(). Used by CampaignStore's partial recovery for
  /// campaigns whose checkpoints failed verification, and available to
  /// admin layers.
  void QuarantineCampaign(size_t campaign, Status reason);

  /// Re-admits a campaign to Advance() scheduling: health back to
  /// kHealthy, consecutive-failure count cleared. last_error is kept for
  /// the record until the next failure overwrites it. If the underlying
  /// cause persists, the next fit re-degrades the campaign. Retired
  /// campaigns stay retired (retirement is permanent).
  void ReviveCampaign(size_t campaign);

  /// Permanently removes a campaign from Advance() rotation (campaign
  /// churn: an election decided, a product launch wound down). Its id
  /// stays dense and its name stays registered — ids index evaluator
  /// timelines and the store manifest — but it never fits again, accepts
  /// no further Ingest (a CHECK guards the contract), and its final
  /// stream state remains readable for queries and persistence. Unlike
  /// quarantine there is no revive.
  void RetireCampaign(size_t campaign);

  /// Whether the campaign was retired.
  bool retired(size_t campaign) const;

  /// Campaigns still in rotation (registered minus retired).
  size_t num_active_campaigns() const;

  /// Fleet-wide health snapshot, one entry per campaign in id order. Safe
  /// from the confined caller thread (like every accessor).
  EngineHealthReport HealthReport() const;

  /// Outcome of one campaign's snapshot within an Advance() call.
  struct SnapshotReport {
    size_t campaign = 0;
    /// False when the deadline deferred this fit (queue left intact) or
    /// the fit failed (see `status`).
    bool fitted = false;
    /// OK for a fitted or deferred snapshot; the failure when this fit was
    /// attempted and rejected (non-finite factors — a poisoned stream).
    /// On failure the campaign's pre-fit state is restored and the
    /// snapshot's tweets are dropped with it (re-fitting the same poison
    /// would fail forever), and the campaign is degraded / eventually
    /// quarantined — see CampaignHealth.
    Status status;
    /// The emitted snapshot (row-id maps and labels for the caller).
    DatasetMatrices data;
    TriClusterResult result;
    SnapshotSolver::SolveInfo info;
    /// Wall-clock cost of emit + fit, for load reporting.
    double solve_ms = 0.0;
    /// Temporal ground-truth day `data.user_labels` was built against
    /// (the label_day of the last Ingest before this fit; -1 = static
    /// labels). Meaningful only when fitted.
    int label_day = -1;
  };

  /// Observer invoked synchronously for every report of every Advance()
  /// (fitted and deferred, in campaign-id order) — the hook evaluation
  /// harnesses use to score each completed fit against ground truth via
  /// the report's row-id maps. Runs on the Advance() caller thread after
  /// all fits finished, so it never perturbs fit results or their
  /// sharding; it must not re-enter the engine.
  using FitObserver = std::function<void(const SnapshotReport&)>;

  /// Installs the fit observer (pass {} to remove). At most one; callers
  /// needing fan-out can multiplex in their observer (ReplayDriver's
  /// observer list does this for replay consumers).
  void set_fit_observer(FitObserver observer);

  /// Advances every campaign with pending tweets (and idle ones when
  /// requested) by exactly one snapshot, sharding fits across the pool.
  /// Reports are ordered by campaign id. Quarantined campaigns are skipped
  /// entirely (no report; their queues keep accumulating). A fit whose
  /// result is non-finite is rejected: that campaign's state is rolled
  /// back, its report carries the error, and only it degrades — the rest
  /// of the fleet advances normally (per-campaign blast radius).
  std::vector<SnapshotReport> Advance(
      const AdvanceOptions& options = AdvanceOptions());

 private:
  /// Everything one campaign owns: ingestion, solver inputs, stream state,
  /// and scratch. unique_ptr keeps addresses stable across registration.
  struct Campaign {
    Campaign(std::string campaign_name, OnlineConfig config, DenseMatrix sf0,
             MatrixBuilder matrix_builder, const Corpus* labeled_corpus)
        : name(std::move(campaign_name)),
          solver(config, std::move(sf0)),
          builder(std::move(matrix_builder)),
          corpus(labeled_corpus) {}

    std::string name;
    SnapshotSolver solver;
    MatrixBuilder builder;
    const Corpus* corpus;
    StreamState state;
    update::UpdateWorkspace workspace;
    int pending_label_day = -1;
    /// Serving health (see CampaignHealth). Written only by the one worker
    /// fitting this campaign during Advance() or by the confined caller
    /// thread — same discipline as `state`.
    CampaignHealth health = CampaignHealth::kHealthy;
    int consecutive_failures = 0;
    Status last_error;
    /// Permanently out of rotation (campaign churn); never cleared.
    bool retired = false;
  };

  /// Updates one campaign's health after a fit attempt. Runs on the worker
  /// that owns the campaign for this batch (exclusive access, like the
  /// state update itself).
  void RecordFitOutcome(Campaign* campaign, Status status);

  Options options_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  FitObserver fit_observer_;
  /// Advance() calls so far; rotates the fit order for deadline fairness.
  uint64_t advance_count_ = 0;
};

}  // namespace serving
}  // namespace triclust

#endif  // TRICLUST_SRC_SERVING_CAMPAIGN_ENGINE_H_
