#include "src/serving/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace triclust {
namespace serving {

double ReplayStats::TweetsPerSecond() const {
  return wall_ms <= 0.0 ? 0.0 : total_tweets / (wall_ms / 1e3);
}

double ReplayStats::MeanAdvanceMs() const {
  if (days.empty()) return 0.0;
  double total = 0.0;
  for (const ReplayDayStats& d : days) total += d.advance_ms;
  return total / days.size();
}

double ReplayStats::MaxAdvanceMs() const {
  double max = 0.0;
  for (const ReplayDayStats& d : days) max = std::max(max, d.advance_ms);
  return max;
}

ReplayDriver::ReplayDriver(CampaignEngine* engine) : engine_(engine) {
  TRICLUST_CHECK(engine != nullptr);
}

void ReplayDriver::AddStream(size_t campaign, std::vector<Snapshot> days) {
  TRICLUST_CHECK_LT(campaign, engine_->num_campaigns());
  for (const Stream& s : streams_) {
    TRICLUST_CHECK(s.campaign != campaign);
  }
  Stream stream;
  stream.campaign = campaign;
  stream.days = std::move(days);
  streams_.push_back(std::move(stream));
}

void ReplayDriver::AddStream(size_t campaign, const Corpus& corpus) {
  AddStream(campaign, SplitByDay(corpus));
}

void ReplayDriver::AddStream(size_t campaign, int num_days,
                             SnapshotProvider provider) {
  TRICLUST_CHECK_LT(campaign, engine_->num_campaigns());
  TRICLUST_CHECK_GE(num_days, 0);
  TRICLUST_CHECK(provider != nullptr);
  for (const Stream& s : streams_) {
    TRICLUST_CHECK(s.campaign != campaign);
  }
  Stream stream;
  stream.campaign = campaign;
  stream.provider = std::move(provider);
  stream.provider_days = num_days;
  streams_.push_back(std::move(stream));
}

void ReplayDriver::set_snapshot_callback(SnapshotCallback callback) {
  callback_ = std::move(callback);
}

void ReplayDriver::AddObserver(SnapshotCallback observer) {
  TRICLUST_CHECK(observer != nullptr);
  observers_.push_back(std::move(observer));
}

void ReplayDriver::set_day_hook(DayHook hook) { day_hook_ = std::move(hook); }

int ReplayDriver::num_days() const {
  int days = 0;
  for (const Stream& s : streams_) days = std::max(days, s.NumDays());
  return days;
}

ReplayStats ReplayDriver::Replay(const ReplayOptions& options) {
  TRICLUST_CHECK_GE(options.day_interval_ms, 0.0);
  // speedup is documented as ignored when pacing is off (day_interval_ms
  // == 0), so it is only validated — and only used — when pacing is on.
  if (options.day_interval_ms > 0.0) {
    TRICLUST_CHECK_GT(options.speedup, 0.0);
  }

  int days = num_days();
  if (options.max_days > 0) days = std::min(days, options.max_days);
  const double effective_interval_ms =
      options.day_interval_ms > 0.0
          ? options.day_interval_ms / options.speedup
          : 0.0;

  ReplayStats stats;
  stats.campaigns.resize(engine_->num_campaigns());
  for (size_t i = 0; i < stats.campaigns.size(); ++i) {
    stats.campaigns[i].campaign = i;
  }

  const auto fold_reports =
      [&](int day, const std::vector<CampaignEngine::SnapshotReport>& reports,
          ReplayDayStats* day_stats) {
        for (const auto& report : reports) {
          // The day hook may register campaigns mid-run; grow the
          // per-campaign rows to match.
          while (report.campaign >= stats.campaigns.size()) {
            CampaignReplayStats row;
            row.campaign = stats.campaigns.size();
            stats.campaigns.push_back(row);
          }
          CampaignReplayStats& c = stats.campaigns[report.campaign];
          if (report.fitted && report.data.num_tweets() > 0) {
            ++day_stats->fits;
            ++c.snapshots;
            c.tweets += report.data.num_tweets();
            c.solve_ms_total += report.solve_ms;
            c.solve_ms_max = std::max(c.solve_ms_max, report.solve_ms);
          } else if (report.fitted) {
            // A zero-event day (degenerate stream, or include_idle keeping
            // an unfed campaign's timestep aligned) still solves a
            // zero-row snapshot — that is the alignment mechanism, not a
            // fit: counting it inflated `fits` and per-campaign
            // `snapshots` by one per campaign per dead day.
          } else if (engine_->num_pending(report.campaign) > 0) {
            // One deferral event per (day, campaign) whose *pending* fit
            // the deadline skipped; its queue is intact, so num_pending
            // still shows what was deferred. An idle campaign (empty
            // queue, included via include_idle) that misses the deadline
            // had no fit to defer and is not an event — counting it used
            // to inflate every deferred total under deadline pressure.
            ++day_stats->deferred;
            ++c.deferred;
          }
          if (callback_) callback_(day, report);
          for (const SnapshotCallback& observer : observers_) {
            observer(day, report);
          }
        }
        stats.total_fits += day_stats->fits;
        stats.total_deferred += day_stats->deferred;
      };

  AdvanceOptions advance;
  advance.deadline_ms = options.deadline_ms;
  advance.include_idle = options.include_idle;

  const Stopwatch run_clock;
  for (int day = 0; day < days; ++day) {
    ReplayDayStats day_stats;
    day_stats.day = day;

    // Pacing: day d is released at d·interval/speedup after the run start.
    // A slow Advance() eats into the next wait rather than shifting every
    // later day (the historical stream does not slow down for the server).
    if (effective_interval_ms > 0.0) {
      const double release_ms = day * effective_interval_ms;
      const double now_ms = run_clock.ElapsedMillis();
      if (now_ms < release_ms) {
        day_stats.wait_ms = release_ms - now_ms;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(day_stats.wait_ms));
      }
    }

    // Campaign churn: the hook may retire campaigns or register + bind new
    // ones before the day's traffic is released.
    if (day_hook_) day_hook_(day);

    Stopwatch phase_clock;
    for (const Stream& s : streams_) {
      if (day >= s.NumDays()) continue;
      if (engine_->retired(s.campaign)) continue;
      Snapshot pulled;
      if (s.provider) pulled = s.provider(day);
      const Snapshot& snap = s.provider ? pulled : s.days[day];
      if (snap.tweet_ids.empty()) continue;
      engine_->Ingest(s.campaign, snap.tweet_ids, snap.last_day);
      day_stats.tweets += snap.tweet_ids.size();
    }
    day_stats.ingest_ms = phase_clock.ElapsedMillis();
    stats.total_tweets += day_stats.tweets;

    phase_clock.Restart();
    const auto reports = engine_->Advance(advance);
    day_stats.advance_ms = phase_clock.ElapsedMillis();

    fold_reports(day, reports, &day_stats);
    stats.days.push_back(day_stats);
  }

  // Drain: deadline pressure may leave queues pending past the last day;
  // one deadline-free Advance() fits them so the run ends caught up.
  if (options.drain) {
    bool pending = false;
    for (const Stream& s : streams_) {
      // A retired campaign's leftover queue can never fit; draining would
      // spin a no-op Advance.
      if (engine_->retired(s.campaign)) continue;
      pending = pending || engine_->num_pending(s.campaign) > 0;
    }
    if (pending) {
      ReplayDayStats day_stats;
      day_stats.day = days;
      const Stopwatch phase_clock;
      AdvanceOptions drain_advance;
      drain_advance.include_idle = false;
      const auto reports = engine_->Advance(drain_advance);
      day_stats.advance_ms = phase_clock.ElapsedMillis();
      fold_reports(days, reports, &day_stats);
      stats.days.push_back(day_stats);
    }
  }

  stats.wall_ms = run_clock.ElapsedMillis();
  return stats;
}

std::vector<std::vector<Snapshot>> PartitionIntoStreams(const Corpus& corpus,
                                                        size_t num_streams) {
  TRICLUST_CHECK_GE(num_streams, 1u);
  const int days = corpus.num_days();
  std::vector<std::vector<Snapshot>> streams(
      num_streams, std::vector<Snapshot>(static_cast<size_t>(days)));
  for (auto& stream : streams) {
    for (int day = 0; day < days; ++day) {
      stream[static_cast<size_t>(day)].first_day = day;
      stream[static_cast<size_t>(day)].last_day = day;
    }
  }
  for (const Tweet& t : corpus.tweets()) {
    streams[t.user % num_streams][static_cast<size_t>(t.day)]
        .tweet_ids.push_back(t.id);
  }
  return streams;
}

}  // namespace serving
}  // namespace triclust
