#ifndef TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_
#define TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_

#include <string>

#include "src/serving/campaign_engine.h"
#include "src/util/status.h"

namespace triclust {
namespace serving {

/// Durable storage for a CampaignEngine's stream states.
///
/// Layout: one directory holding a `MANIFEST` plus one checkpoint file per
/// campaign (the `triclust-online-state 1` text format of StreamState, the
/// same one OnlineTriClusterer::SaveState writes). Checkpoint filenames
/// carry a store *generation*, so a Save writes an entirely new file set
/// and never touches the files the committed manifest points to; the
/// manifest replacement (write-temp-then-fsync-then-rename) is the single
/// commit point. A crash at any moment therefore leaves the directory
/// describing a complete, mutually-consistent generation — the previous
/// one until the final rename, the new one after (plus, at worst, orphaned
/// files of an uncommitted generation, reclaimed by the next Save).
///
/// Campaigns are keyed by name. Configs, lexicon priors, corpora, and
/// *pending ingestion queues* are not persisted (the state contract
/// matches OnlineTriClusterer::SaveState): register the campaigns first,
/// then Restore() into them, and either Advance() before Save() or
/// re-Ingest un-advanced tweets after a restore — tweets queued but not
/// yet fitted at Save time are not part of any snapshot.
///
/// A store directory must have a single writer at a time (Save also
/// reclaims unreferenced checkpoint/temp files, which would race a
/// concurrent writer); concurrent Restore() readers are fine.
class CampaignStore {
 public:
  /// `directory` is created on the first Save(). The store object itself
  /// holds only this path — all state lives on disk, so CampaignStore
  /// values are cheap and freely copyable.
  explicit CampaignStore(std::string directory);

  /// Persists every campaign state of `engine`. Atomic per the class
  /// comment; a failure before the manifest rename leaves the previous
  /// generation fully intact. Thread safety: requires exclusive write
  /// ownership of the directory (see class comment) and a quiescent
  /// engine (no concurrent Advance() mutating the states being read).
  Status Save(const CampaignEngine& engine) const;

  /// Restores every stored campaign into the engine campaign of the same
  /// name, validating dimensions against that campaign's sf0. Engine
  /// campaigns absent from the store keep their current state; a stored
  /// campaign with no registered counterpart is an error (its history
  /// would otherwise be silently dropped). All-or-nothing: on any error
  /// the engine is left untouched. Thread safety: concurrent Restore()
  /// readers of one directory are safe; the engine must be confined to
  /// the calling thread.
  Status Restore(CampaignEngine* engine) const;

  /// True when the directory holds a committed manifest. Thread safety:
  /// read-only probe, safe concurrently with readers (and with a writer,
  /// whose manifest rename is atomic).
  bool HasManifest() const;

  /// The directory this store reads and writes.
  const std::string& directory() const { return directory_; }

 private:
  std::string ManifestPath() const;

  std::string directory_;
};

}  // namespace serving
}  // namespace triclust

#endif  // TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_
