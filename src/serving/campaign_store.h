#ifndef TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_
#define TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serving/campaign_engine.h"
#include "src/util/fs.h"
#include "src/util/retry.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace triclust {
namespace serving {

/// Knobs for a CampaignStore's I/O behavior. The defaults are production
/// behavior; tests interpose a FaultInjectionFileSystem and a recording
/// sleeper.
struct StoreOptions {
  /// Filesystem all reads and writes go through. nullptr = the process
  /// default (PosixFileSystem). Borrowed; must outlive the store.
  FileSystem* fs = nullptr;
  /// Transient-I/O retry for each individual file write/read inside
  /// Save/Restore — a flaky-disk hiccup should not fail a whole fleet
  /// save. Only kIoError is retried (see RetryTransient); corruption and
  /// parse errors are deterministic and surface immediately.
  RetryPolicy retry;
  /// Backoff sleeper, injectable for tests. nullptr = really sleep.
  Sleeper sleeper;
};

/// Per-campaign outcome of a partial-recovery Restore.
struct CampaignRestoreStatus {
  std::string name;
  std::string filename;
  /// OK when the campaign's state was restored; otherwise why it was
  /// skipped (checksum mismatch, truncation, missing file, ...).
  Status status;
};

/// What a partial-recovery Restore did, campaign by campaign.
struct RestoreReport {
  /// Generation of the manifest that was restored from.
  uint64_t generation = 0;
  /// One entry per manifest campaign, in manifest order.
  std::vector<CampaignRestoreStatus> campaigns;

  size_t num_restored() const {
    size_t n = 0;
    for (const auto& c : campaigns) n += c.status.ok() ? 1 : 0;
    return n;
  }
  size_t num_failed() const { return campaigns.size() - num_restored(); }
};

/// Durable storage for a CampaignEngine's stream states.
///
/// Layout: one directory holding a `MANIFEST` plus one checkpoint file per
/// campaign (the `triclust-online-state 1` text format of StreamState, the
/// same one OnlineTriClusterer::SaveState writes). Checkpoint filenames
/// carry a store *generation*, so a Save writes an entirely new file set
/// and never touches the files the committed manifest points to; the
/// manifest replacement (write-temp-then-fsync-then-rename) is the single
/// commit point. A crash at any moment therefore leaves the directory
/// describing a complete, mutually-consistent generation — the previous
/// one until the final rename, the new one after (plus, at worst, orphaned
/// files of an uncommitted generation, reclaimed by the next Save). This
/// contract is executed, not just stated: the crash-matrix test
/// (tests/crash_matrix_test.cc) simulates a power loss after every single
/// filesystem operation of a Save and asserts the recovered fleet is
/// bit-identical to one complete generation.
///
/// Integrity: every checkpoint and the manifest itself carry a CRC-32 +
/// length trailer (docs/FORMATS.md §4); Restore verifies before parsing,
/// so a flipped byte or a truncated file is reported as
/// `<path>: checksum mismatch ...` / `<path>: truncated payload ...`
/// instead of being parsed into a subtly wrong fleet. Manifest format
/// version 2 declares the trailers mandatory; version-1 stores (written
/// before checksums existed) still load, with a warn-once diagnostic.
///
/// Campaigns are keyed by name. Configs, lexicon priors, corpora, and
/// *pending ingestion queues* are not persisted (the state contract
/// matches OnlineTriClusterer::SaveState): register the campaigns first,
/// then Restore() into them, and either Advance() before Save() or
/// re-Ingest un-advanced tweets after a restore — tweets queued but not
/// yet fitted at Save time are not part of any snapshot.
///
/// A store directory must have a single writer at a time (Save also
/// reclaims unreferenced checkpoint/temp files, which would race a
/// concurrent writer); concurrent Restore() readers are fine.
///
/// The store object holds no mutable state (directory path + options
/// only), so it needs no internal lock; the synchronized resource is the
/// *directory*, and the writer-exclusion above is the caller's job —
/// hence TRICLUST_EXTERNALLY_SYNCHRONIZED rather than a Mutex.
class TRICLUST_EXTERNALLY_SYNCHRONIZED CampaignStore {
 public:
  /// `directory` is created on the first Save(). The store object itself
  /// holds only the path and options — all state lives on disk, so
  /// CampaignStore values are cheap and freely copyable.
  explicit CampaignStore(std::string directory, StoreOptions options = {});

  /// Persists every campaign state of `engine`. Atomic per the class
  /// comment; a failure before the manifest rename leaves the previous
  /// generation fully intact. Transient I/O errors on individual files are
  /// retried per StoreOptions::retry. Thread safety: requires exclusive
  /// write ownership of the directory (see class comment) and a quiescent
  /// engine (no concurrent Advance() mutating the states being read).
  Status Save(const CampaignEngine& engine) const;

  /// Restores every stored campaign into the engine campaign of the same
  /// name, validating checksums and dimensions against that campaign's
  /// sf0. Engine campaigns absent from the store keep their current state;
  /// a stored campaign with no registered counterpart is an error (its
  /// history would otherwise be silently dropped). All-or-nothing: on any
  /// error the engine is left untouched. Thread safety: concurrent
  /// Restore() readers of one directory are safe; the engine must be
  /// confined to the calling thread.
  Status Restore(CampaignEngine* engine) const;

  /// Partial-recovery Restore: campaigns whose checkpoints are corrupt,
  /// truncated, or missing are skipped and *quarantined* in the engine
  /// (with the verification failure as their last error) instead of
  /// failing the whole restore; every healthy campaign's state is
  /// restored and the fleet keeps serving. `report` (optional) receives
  /// the per-campaign outcome. Fails outright only when the manifest
  /// itself is unreadable or a stored campaign is not registered — those
  /// are not per-campaign conditions. The engine is modified only on OK.
  Status RestorePartial(CampaignEngine* engine, RestoreReport* report) const;

  /// True when the directory holds a committed manifest. Thread safety:
  /// read-only probe, safe concurrently with readers (and with a writer,
  /// whose manifest rename is atomic).
  bool HasManifest() const;

  /// The directory this store reads and writes.
  const std::string& directory() const { return directory_; }

 private:
  std::string ManifestPath() const;
  FileSystem* fs() const;
  /// Reads + verifies a whole file with transient-error retry.
  Result<std::string> ReadFileWithRetry(const std::string& path) const;
  /// Shared implementation of Restore/RestorePartial.
  Status RestoreImpl(CampaignEngine* engine, bool allow_partial,
                     RestoreReport* report) const;

  std::string directory_;
  StoreOptions options_;
};

}  // namespace serving
}  // namespace triclust

#endif  // TRICLUST_SRC_SERVING_CAMPAIGN_STORE_H_
