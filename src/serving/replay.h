#ifndef TRICLUST_SRC_SERVING_REPLAY_H_
#define TRICLUST_SRC_SERVING_REPLAY_H_

#include <functional>
#include <limits>
#include <vector>

#include "src/data/corpus.h"
#include "src/data/snapshots.h"
#include "src/serving/campaign_engine.h"

namespace triclust {
namespace serving {

/// Pacing and stress knobs of one replay run.
struct ReplayOptions {
  /// Wall-clock interval between consecutive day releases at speedup 1, in
  /// milliseconds. 0 (the default) replays as fast as possible — each day is
  /// released the moment the previous Advance() returns.
  double day_interval_ms = 0.0;
  /// Replay acceleration: day d is released at d·day_interval_ms/speedup
  /// after the run starts. Must be > 0 when pacing is enabled
  /// (day_interval_ms > 0); ignored — and not validated — when
  /// day_interval_ms is 0.
  double speedup = 1.0;
  /// Per-Advance soft deadline forwarded to the engine (deadline-stressed
  /// mode): fits not started in time are deferred and their tweets fold
  /// into the next day's snapshot. ≤ 0 disables.
  double deadline_ms = 0.0;
  /// Advance campaigns with an empty queue too, so every campaign's
  /// timestep tracks the replay day even through quiet days. Matches
  /// AdvanceOptions::include_idle.
  bool include_idle = true;
  /// Replay only the first `max_days` days (0 = every day in the streams).
  int max_days = 0;
  /// After the last day, run one deadline-free Advance() if any deferred
  /// queue is still pending, so the replay ends with every ingested tweet
  /// fitted. Recorded as an extra day entry with day == <number of days>.
  bool drain = true;
};

/// NaN sentinel for accuracy fields no evaluator has filled (TableWriter
/// prints it as "-").
inline constexpr double kUnscoredMetric =
    std::numeric_limits<double>::quiet_NaN();

/// What happened on one replay day (one Ingest round + one Advance).
///
/// Deferral accounting: `deferred` counts *deferral events* — campaigns
/// whose pending fit was skipped by the deadline on this day. The same
/// queued snapshot deferred on several consecutive days contributes one
/// event per day (so Σ deferred over days can exceed the number of fits
/// it eventually batches into), and a campaign with an empty queue that
/// misses the deadline is NOT an event — there was no fit to defer. The
/// drain pass runs without a deadline, so the drain day entry only ever
/// records fits. `fits` counts snapshots that carried tweets: the
/// zero-row alignment solve a campaign runs on a zero-event day (empty
/// snapshot, or include_idle with nothing queued) is neither a fit nor a
/// deferral. tests/replay_test.cc pins these semantics.
struct ReplayDayStats {
  int day = 0;
  /// Tweets ingested across all streams this day.
  size_t tweets = 0;
  /// Snapshot fits completed / pending fits deferred by the deadline.
  size_t fits = 0;
  size_t deferred = 0;
  double ingest_ms = 0.0;
  double advance_ms = 0.0;
  /// Pacing wait before this day's release (0 when replaying flat out).
  double wait_ms = 0.0;

  /// Accuracy of this day's fitted snapshots, micro-averaged over their
  /// scored items across campaigns. Filled by
  /// TimelineEvaluator::Annotate (src/eval/timeline_eval.h) when an
  /// evaluator observed the run; NaN until then, and NaN when the day
  /// scored no items.
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_accuracy = kUnscoredMetric;
  double user_accuracy = kUnscoredMetric;
  double tweet_nmi = kUnscoredMetric;
  double user_nmi = kUnscoredMetric;
};

/// Per-campaign totals over one replay run.
struct CampaignReplayStats {
  size_t campaign = 0;
  /// Snapshots fitted / pending fits deferred by the deadline. `deferred`
  /// counts deferral events (see ReplayDayStats), so snapshots + deferred
  /// can exceed the replayed days under sustained deadline pressure.
  size_t snapshots = 0;
  size_t deferred = 0;
  /// Tweets that went through fitted snapshots.
  size_t tweets = 0;
  double solve_ms_total = 0.0;
  double solve_ms_max = 0.0;

  /// Run-level accuracy micro-averaged over every scored item of the
  /// campaign's fitted snapshots; filled by TimelineEvaluator::Annotate
  /// like the per-day fields above.
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_accuracy = kUnscoredMetric;
  double user_accuracy = kUnscoredMetric;
  double tweet_nmi = kUnscoredMetric;
  double user_nmi = kUnscoredMetric;

  double MeanSolveMs() const {
    return snapshots == 0 ? 0.0 : solve_ms_total / snapshots;
  }
};

/// Aggregate outcome of ReplayDriver::Replay().
struct ReplayStats {
  std::vector<ReplayDayStats> days;
  /// Indexed by engine campaign id (including campaigns without a stream).
  std::vector<CampaignReplayStats> campaigns;
  double wall_ms = 0.0;
  size_t total_tweets = 0;
  size_t total_fits = 0;
  size_t total_deferred = 0;

  /// Ingested tweets per wall-clock second (0 when nothing ran).
  double TweetsPerSecond() const;
  /// Mean / max Advance() latency over the replayed days.
  double MeanAdvanceMs() const;
  double MaxAdvanceMs() const;
};

/// Streams historical corpora through a CampaignEngine in day order at a
/// configurable speed-up — the bridge between an on-disk corpus (ReadTsv)
/// and the serving path the engine exposes to live traffic.
///
/// Each bound stream is a day-ordered Snapshot list feeding one engine
/// campaign (register the campaign first; the driver never creates them).
/// Replay() walks the union of days: it releases day d at its paced
/// wall-clock time (immediately when unpaced), Ingests every stream's
/// tweets for that day, then drives one engine Advance() whose reports are
/// folded into ReplayStats and forwarded to the snapshot callback.
///
/// Determinism: pacing, speed-up, and the wall clock affect only *when*
/// work happens. Without a deadline, the sequence of snapshots each
/// campaign fits — and therefore every factor matrix — is bit-identical to
/// a direct per-day MatrixBuilder::Build + SnapshotSolver::Solve loop over
/// the same day splits (tests/replay_test.cc pins this). With a deadline,
/// deferred days batch into later snapshots exactly as live deadline
/// pressure would batch them.
///
/// Thread safety: confined to one caller thread, like the engine it
/// drives; internal concurrency is the engine's Advance() sharding.
class ReplayDriver {
 public:
  /// Observer invoked after each Advance() for every report (fitted and
  /// deferred), in campaign-id order. `day` is the replay day, or the
  /// day count for the final drain pass.
  using SnapshotCallback =
      std::function<void(int day, const CampaignEngine::SnapshotReport&)>;

  /// Pull source of a provider-bound stream: returns the Snapshot released
  /// on `day`. Called once per replay day, in day order — the contract the
  /// bounded-memory streaming replay relies on (TsvStreamReader yields
  /// each day-chunk exactly once, so a provider cannot be re-asked for a
  /// past day).
  using SnapshotProvider = std::function<Snapshot(int day)>;

  /// Admin hook invoked at the start of each replay day, after the pacing
  /// wait and before that day's Ingest — where campaign-churn schedules
  /// retire campaigns (`CampaignEngine::RetireCampaign`) or register and
  /// bind new ones (`AddCampaign` + `AddStream`) mid-replay. Streams bound
  /// to retired campaigns stop being fed from that day on. A stream bound
  /// mid-run is fed from the current day forward; it does not extend the
  /// day horizon computed when Replay() started.
  using DayHook = std::function<void(int day)>;

  /// `engine` is borrowed and must outlive the driver.
  explicit ReplayDriver(CampaignEngine* engine);

  /// Binds a day-ordered stream (entry d = the tweets released on day d)
  /// to registered campaign `campaign`. One stream per campaign.
  void AddStream(size_t campaign, std::vector<Snapshot> days);

  /// Convenience: binds the whole corpus split one-snapshot-per-day. The
  /// corpus must be the one the campaign was registered with.
  void AddStream(size_t campaign, const Corpus& corpus);

  /// Binds a pull-based stream of `num_days` days: instead of
  /// materializing every day's Snapshot up front, the driver calls
  /// `provider(day)` when — and only when — that day is released. This is
  /// how a streamed corpus (ReadTsvStream / TsvStreamReader) replays with
  /// only one day-chunk resident: the day hook pulls the next chunk into
  /// the corpus, providers slice it per campaign, and the previous day's
  /// text is released behind it.
  void AddStream(size_t campaign, int num_days, SnapshotProvider provider);

  /// Installs the per-snapshot observer (pass {} to remove). Replaces any
  /// previous set_snapshot_callback; observers added with AddObserver are
  /// unaffected.
  void set_snapshot_callback(SnapshotCallback callback);

  /// Appends an additional observer, invoked after the snapshot callback
  /// in registration order — lets an evaluation harness
  /// (TimelineEvaluator::Attach) and ad-hoc capture callbacks watch the
  /// same run. Observers cannot be removed individually.
  void AddObserver(SnapshotCallback observer);

  /// Installs the per-day admin hook (pass {} to remove). At most one.
  void set_day_hook(DayHook hook);

  /// Number of days Replay() will walk (the longest bound stream).
  int num_days() const;

  /// Replays every bound stream through the engine. Can be called again to
  /// replay further data; the engine keeps its evolved states.
  ReplayStats Replay(const ReplayOptions& options = ReplayOptions());

 private:
  struct Stream {
    size_t campaign = 0;
    std::vector<Snapshot> days;
    // Pull-based alternative to `days` (exactly one of the two is active;
    // provider_days is the bound stream length when provider is set).
    SnapshotProvider provider;
    int provider_days = 0;

    int NumDays() const {
      return provider ? provider_days : static_cast<int>(days.size());
    }
  };

  CampaignEngine* engine_;
  std::vector<Stream> streams_;
  SnapshotCallback callback_;
  std::vector<SnapshotCallback> observers_;
  DayHook day_hook_;
};

/// Partitions one corpus into `num_streams` author-disjoint topic streams:
/// tweet t goes to stream (t.user mod num_streams), so each user's
/// activity — and the retweet homophily around it — stays within one
/// stream. Every stream gets the same number of day entries (the corpus's
/// num_days), keeping campaign timesteps aligned. Deterministic.
///
/// This is how a single real collection exercises multi-campaign serving:
/// feed stream s to campaign s via ReplayDriver::AddStream.
std::vector<std::vector<Snapshot>> PartitionIntoStreams(const Corpus& corpus,
                                                        size_t num_streams);

}  // namespace serving
}  // namespace triclust

#endif  // TRICLUST_SRC_SERVING_REPLAY_H_
