#ifndef TRICLUST_SRC_GRAPH_USER_GRAPH_H_
#define TRICLUST_SRC_GRAPH_USER_GRAPH_H_

#include <cstddef>
#include <vector>

#include "src/matrix/sparse_matrix.h"

namespace triclust {

/// Undirected, weighted user–user graph Gu.
///
/// In the paper each edge records a retweeting relation between two users;
/// the graph regularization tr(SuᵀLuSu) (Eq. 6) penalizes neighbours with
/// different sentiment rows. The graph is stored as a symmetric CSR
/// adjacency plus its degree vector, from which Lu = Du − Gu is implicit.
class UserGraph {
 public:
  /// Empty graph over `num_nodes` isolated nodes.
  explicit UserGraph(size_t num_nodes = 0);

  /// Builds from undirected weighted edges {u, v, w}. Parallel edges
  /// accumulate; self-loops are dropped (they cancel in the Laplacian).
  struct Edge {
    size_t u;
    size_t v;
    double weight;
  };
  static UserGraph FromEdges(size_t num_nodes, const std::vector<Edge>& edges);

  size_t num_nodes() const { return adjacency_.rows(); }
  size_t num_edges() const { return adjacency_.nnz() / 2; }

  /// Symmetric adjacency matrix Gu.
  const SparseMatrix& adjacency() const { return adjacency_; }

  /// Weighted degree vector (row sums of Gu), the diagonal of Du.
  const std::vector<double>& degrees() const { return degrees_; }

  /// Weighted degree of node `u`.
  double Degree(size_t u) const;

  /// Neighbors of `u` with weights, via CSR row iteration.
  struct Neighbor {
    size_t node;
    double weight;
  };
  std::vector<Neighbor> Neighbors(size_t u) const;

  /// Connected components; out[i] is the component id of node i, ids are
  /// dense in [0, num_components).
  std::vector<int> ConnectedComponents() const;

  /// Induced subgraph over `node_ids` (in order); node i of the result is
  /// node_ids[i] of this graph. Used to slice Gu(t) for online snapshots.
  UserGraph InducedSubgraph(const std::vector<size_t>& node_ids) const;

 private:
  explicit UserGraph(SparseMatrix adjacency);

  SparseMatrix adjacency_;
  std::vector<double> degrees_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_GRAPH_USER_GRAPH_H_
