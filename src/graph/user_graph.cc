#include "src/graph/user_graph.h"

#include <deque>
#include <unordered_map>

#include "src/util/logging.h"

namespace triclust {

UserGraph::UserGraph(size_t num_nodes) {
  SparseMatrix::Builder builder(num_nodes, num_nodes);
  adjacency_ = builder.Build();
  degrees_.assign(num_nodes, 0.0);
}

UserGraph::UserGraph(SparseMatrix adjacency)
    : adjacency_(std::move(adjacency)) {
  degrees_.resize(adjacency_.rows());
  for (size_t i = 0; i < adjacency_.rows(); ++i) {
    degrees_[i] = adjacency_.RowSum(i);
  }
}

UserGraph UserGraph::FromEdges(size_t num_nodes,
                               const std::vector<Edge>& edges) {
  SparseMatrix::Builder builder(num_nodes, num_nodes);
  for (const Edge& e : edges) {
    TRICLUST_CHECK_LT(e.u, num_nodes);
    TRICLUST_CHECK_LT(e.v, num_nodes);
    TRICLUST_CHECK_GE(e.weight, 0.0);
    if (e.u == e.v) continue;
    builder.Add(e.u, e.v, e.weight);
    builder.Add(e.v, e.u, e.weight);
  }
  return UserGraph(builder.Build());
}

double UserGraph::Degree(size_t u) const {
  TRICLUST_CHECK_LT(u, degrees_.size());
  return degrees_[u];
}

std::vector<UserGraph::Neighbor> UserGraph::Neighbors(size_t u) const {
  TRICLUST_CHECK_LT(u, num_nodes());
  std::vector<Neighbor> out;
  const auto& row_ptr = adjacency_.row_ptr();
  const auto& col_idx = adjacency_.col_idx();
  const auto& values = adjacency_.values();
  out.reserve(row_ptr[u + 1] - row_ptr[u]);
  for (size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
    out.push_back({col_idx[p], values[p]});
  }
  return out;
}

std::vector<int> UserGraph::ConnectedComponents() const {
  const size_t n = num_nodes();
  std::vector<int> component(n, -1);
  int next_id = 0;
  std::deque<size_t> queue;
  for (size_t start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    component[start] = next_id;
    queue.push_back(start);
    while (!queue.empty()) {
      const size_t u = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : Neighbors(u)) {
        if (component[nb.node] == -1) {
          component[nb.node] = next_id;
          queue.push_back(nb.node);
        }
      }
    }
    ++next_id;
  }
  return component;
}

UserGraph UserGraph::InducedSubgraph(
    const std::vector<size_t>& node_ids) const {
  std::unordered_map<size_t, size_t> remap;
  remap.reserve(node_ids.size());
  for (size_t i = 0; i < node_ids.size(); ++i) {
    TRICLUST_CHECK_LT(node_ids[i], num_nodes());
    remap[node_ids[i]] = i;
  }
  SparseMatrix::Builder builder(node_ids.size(), node_ids.size());
  for (size_t i = 0; i < node_ids.size(); ++i) {
    for (const Neighbor& nb : Neighbors(node_ids[i])) {
      const auto it = remap.find(nb.node);
      if (it != remap.end()) {
        builder.Add(i, it->second, nb.weight);
      }
    }
  }
  return UserGraph(builder.Build());
}

}  // namespace triclust
