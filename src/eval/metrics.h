#ifndef TRICLUST_SRC_EVAL_METRICS_H_
#define TRICLUST_SRC_EVAL_METRICS_H_

#include <vector>

#include "src/text/sentiment.h"

namespace triclust {

/// Evaluation metrics of the paper's §5. All metrics silently skip items
/// whose ground truth is kUnlabeled (the paper evaluates on the labeled
/// subset only), and cluster ids < 0 are treated as "unassigned" and skipped
/// as well.

/// Clustering accuracy with majority-vote cluster→class assignment:
///   A(C, G) = (1/n) Σ_{o∈C} max_{g∈G} |o ∩ g|.
/// `clusters` are arbitrary cluster ids; `truth` the ground-truth classes.
double ClusteringAccuracy(const std::vector<int>& clusters,
                          const std::vector<Sentiment>& truth);

/// Normalized mutual information:
///   NMI(C, G) = 2·I(C; G) / (H(C) + H(G)),
/// with the convention NMI = 1 when both partitions are single-cluster
/// (zero entropy) and 0 when exactly one of them is.
double NormalizedMutualInformation(const std::vector<int>& clusters,
                                   const std::vector<Sentiment>& truth);

/// Plain classification accuracy for supervised baselines whose outputs are
/// already sentiment classes.
double ClassificationAccuracy(const std::vector<Sentiment>& predicted,
                              const std::vector<Sentiment>& truth);

/// The majority-vote mapping cluster-id → class used by ClusteringAccuracy;
/// clusters never observed map to class 0. `num_clusters` bounds cluster ids.
std::vector<Sentiment> MajorityVoteMapping(
    const std::vector<int>& clusters, const std::vector<Sentiment>& truth,
    int num_clusters);

/// Applies a cluster→class mapping to turn cluster ids into sentiments
/// (unassigned ids become kUnlabeled).
std::vector<Sentiment> ApplyMapping(const std::vector<int>& clusters,
                                    const std::vector<Sentiment>& mapping);

/// Clustering accuracy under the *best one-to-one* cluster→class mapping.
/// Stricter than majority-vote accuracy, which may map two clusters onto
/// one class: PermutationAccuracy ≤ ClusteringAccuracy always holds.
/// Solved exactly by a subset DP over the C = 3 sentiment classes —
/// O(k·2^C) for k distinct cluster ids, safe for any cluster count.
double PermutationAccuracy(const std::vector<int>& clusters,
                           const std::vector<Sentiment>& truth);

/// Adjusted Rand Index in [-1, 1]: pair-counting agreement corrected for
/// chance; 1 = identical partitions, ~0 = independent.
double AdjustedRandIndex(const std::vector<int>& clusters,
                         const std::vector<Sentiment>& truth);

/// Purity: fraction of items in their cluster's dominant class. Equals
/// ClusteringAccuracy by definition but kept as a named alias because the
/// clustering literature reports both terms.
double Purity(const std::vector<int>& clusters,
              const std::vector<Sentiment>& truth);

/// Row-normalized confusion counts over the labeled subset.
struct ConfusionMatrix {
  /// counts[truth][predicted], classes indexed by SentimentIndex.
  std::vector<std::vector<size_t>> counts;
  size_t total = 0;

  /// Macro-averaged F1 over classes with any support.
  double MacroF1() const;
};
ConfusionMatrix BuildConfusion(const std::vector<Sentiment>& predicted,
                               const std::vector<Sentiment>& truth,
                               int num_classes);

}  // namespace triclust

#endif  // TRICLUST_SRC_EVAL_METRICS_H_
