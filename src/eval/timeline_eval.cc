#include "src/eval/timeline_eval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/eval/metrics.h"
#include "src/util/file_util.h"
#include "src/util/logging.h"

namespace triclust {

namespace {

/// Scored-weighted accumulator behind every aggregate metric: NaN inputs
/// (snapshots that scored nothing) carry no weight.
struct WeightedMean {
  double sum = 0.0;
  size_t weight = 0;

  void Add(double value, size_t items) {
    if (items == 0 || !std::isfinite(value)) return;
    sum += value * static_cast<double>(items);
    weight += items;
  }
  double Mean() const {
    return weight == 0 ? serving::kUnscoredMetric
                       : sum / static_cast<double>(weight);
  }
};

/// All the per-metric accumulators of one aggregate.
struct Accumulator {
  WeightedMean tweet_accuracy, tweet_perm, tweet_nmi;
  WeightedMean user_accuracy, user_perm, user_nmi;
  size_t snapshots = 0;
  size_t snapshots_scored = 0;

  void Fold(const SnapshotScore& s) {
    ++snapshots;
    if (s.tweets_scored > 0 || s.users_scored > 0) ++snapshots_scored;
    tweet_accuracy.Add(s.tweet_accuracy, s.tweets_scored);
    tweet_perm.Add(s.tweet_permutation_accuracy, s.tweets_scored);
    tweet_nmi.Add(s.tweet_nmi, s.tweets_scored);
    user_accuracy.Add(s.user_accuracy, s.users_scored);
    user_perm.Add(s.user_permutation_accuracy, s.users_scored);
    user_nmi.Add(s.user_nmi, s.users_scored);
  }

  TimelineAggregate Finish() const {
    TimelineAggregate out;
    out.snapshots = snapshots;
    out.snapshots_scored = snapshots_scored;
    out.tweets_scored = tweet_accuracy.weight;
    out.users_scored = user_accuracy.weight;
    out.tweet_accuracy = tweet_accuracy.Mean();
    out.tweet_permutation_accuracy = tweet_perm.Mean();
    out.tweet_nmi = tweet_nmi.Mean();
    out.user_accuracy = user_accuracy.Mean();
    out.user_permutation_accuracy = user_perm.Mean();
    out.user_nmi = user_nmi.Mean();
    return out;
  }
};

size_t CountScored(const std::vector<int>& clusters,
                   const std::vector<Sentiment>& truth) {
  size_t scored = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] != Sentiment::kUnlabeled && clusters[i] >= 0) ++scored;
  }
  return scored;
}

/// Lossless CSV double: empty for NaN (nothing scored), shortest
/// round-trippable decimal otherwise.
std::string CsvNum(double value) {
  if (!std::isfinite(value)) return "";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// RFC-4180 quoting for the free-form campaign-name column.
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (const char ch : value) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

SnapshotScore ScoreSnapshot(const Corpus& corpus,
                            const DatasetMatrices& data,
                            const TriClusterResult& result, int day,
                            size_t campaign, int label_day) {
  SnapshotScore score;
  score.day = day;
  score.campaign = campaign;
  score.label_day = label_day;
  score.tweets = data.num_tweets();
  score.users = data.num_users();

  const std::vector<int> tweet_clusters = result.TweetClusters();
  const std::vector<int> user_clusters = result.UserClusters();
  TRICLUST_CHECK_EQ(tweet_clusters.size(), data.tweet_ids.size());
  TRICLUST_CHECK_EQ(user_clusters.size(), data.user_ids.size());

  // Map rows back into the corpus: static labels for tweets, temporal
  // per-day labels (D rows, static fallback) for users — the same values
  // MatrixBuilder baked into data.tweet_labels/user_labels.
  std::vector<Sentiment> tweet_truth;
  tweet_truth.reserve(data.tweet_ids.size());
  for (const size_t tweet_id : data.tweet_ids) {
    tweet_truth.push_back(corpus.tweet(tweet_id).label);
  }
  std::vector<Sentiment> user_truth;
  user_truth.reserve(data.user_ids.size());
  for (const size_t user_id : data.user_ids) {
    user_truth.push_back(label_day >= 0
                             ? corpus.UserSentimentAt(user_id, label_day)
                             : corpus.user(user_id).label);
  }

  score.tweets_scored = CountScored(tweet_clusters, tweet_truth);
  if (score.tweets_scored > 0) {
    score.tweet_accuracy = ClusteringAccuracy(tweet_clusters, tweet_truth);
    score.tweet_permutation_accuracy =
        PermutationAccuracy(tweet_clusters, tweet_truth);
    score.tweet_nmi =
        NormalizedMutualInformation(tweet_clusters, tweet_truth);
  }
  score.users_scored = CountScored(user_clusters, user_truth);
  if (score.users_scored > 0) {
    score.user_accuracy = ClusteringAccuracy(user_clusters, user_truth);
    score.user_permutation_accuracy =
        PermutationAccuracy(user_clusters, user_truth);
    score.user_nmi = NormalizedMutualInformation(user_clusters, user_truth);
  }
  return score;
}

TimelineEvaluator::TimelineEvaluator(const serving::CampaignEngine* engine)
    : engine_(engine) {
  TRICLUST_CHECK(engine != nullptr);
  timelines_.resize(engine->num_campaigns());
  for (size_t i = 0; i < timelines_.size(); ++i) {
    timelines_[i].campaign = i;
    timelines_[i].name = engine->name(i);
  }
}

void TimelineEvaluator::Observe(
    int day, const serving::CampaignEngine::SnapshotReport& report) {
  TRICLUST_CHECK_LT(report.campaign, engine_->num_campaigns());
  // Campaign churn can register campaigns after construction; grow the
  // timeline table to match the engine (ids are dense).
  while (timelines_.size() < engine_->num_campaigns()) {
    CampaignTimeline timeline;
    timeline.campaign = timelines_.size();
    timeline.name = engine_->name(timeline.campaign);
    timelines_.push_back(std::move(timeline));
  }
  if (!report.fitted) return;
  timelines_[report.campaign].scores.push_back(
      ScoreSnapshot(engine_->corpus(report.campaign), report.data,
                    report.result, day, report.campaign, report.label_day));
}

void TimelineEvaluator::Attach(serving::ReplayDriver* driver) {
  TRICLUST_CHECK(driver != nullptr);
  driver->AddObserver(
      [this](int day, const serving::CampaignEngine::SnapshotReport& r) {
        Observe(day, r);
      });
}

TimelineAggregate TimelineEvaluator::RunAggregate() const {
  Accumulator accumulator;
  for (const CampaignTimeline& timeline : timelines_) {
    for (const SnapshotScore& score : timeline.scores) {
      accumulator.Fold(score);
    }
  }
  return accumulator.Finish();
}

TimelineAggregate TimelineEvaluator::CampaignAggregate(
    size_t campaign) const {
  TRICLUST_CHECK_LT(campaign, timelines_.size());
  Accumulator accumulator;
  for (const SnapshotScore& score : timelines_[campaign].scores) {
    accumulator.Fold(score);
  }
  return accumulator.Finish();
}

void TimelineEvaluator::Annotate(serving::ReplayStats* stats) const {
  TRICLUST_CHECK(stats != nullptr);
  for (serving::ReplayDayStats& day : stats->days) {
    Accumulator accumulator;
    for (const CampaignTimeline& timeline : timelines_) {
      for (const SnapshotScore& score : timeline.scores) {
        if (score.day == day.day) accumulator.Fold(score);
      }
    }
    const TimelineAggregate aggregate = accumulator.Finish();
    day.tweets_scored = aggregate.tweets_scored;
    day.users_scored = aggregate.users_scored;
    day.tweet_accuracy = aggregate.tweet_accuracy;
    day.user_accuracy = aggregate.user_accuracy;
    day.tweet_nmi = aggregate.tweet_nmi;
    day.user_nmi = aggregate.user_nmi;
  }
  for (serving::CampaignReplayStats& campaign : stats->campaigns) {
    if (campaign.campaign >= timelines_.size()) continue;
    const TimelineAggregate aggregate =
        CampaignAggregate(campaign.campaign);
    campaign.tweets_scored = aggregate.tweets_scored;
    campaign.users_scored = aggregate.users_scored;
    campaign.tweet_accuracy = aggregate.tweet_accuracy;
    campaign.user_accuracy = aggregate.user_accuracy;
    campaign.tweet_nmi = aggregate.tweet_nmi;
    campaign.user_nmi = aggregate.user_nmi;
  }
}

void TimelineEvaluator::WriteCsv(std::ostream& os) const {
  os << "day,campaign,name,label_day,tweets,tweets_scored,"
        "tweet_accuracy,tweet_permutation_accuracy,tweet_nmi,"
        "users,users_scored,user_accuracy,user_permutation_accuracy,"
        "user_nmi\n";
  std::vector<const SnapshotScore*> ordered;
  for (const CampaignTimeline& timeline : timelines_) {
    for (const SnapshotScore& score : timeline.scores) {
      ordered.push_back(&score);
    }
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SnapshotScore* a, const SnapshotScore* b) {
                     return a->day != b->day ? a->day < b->day
                                             : a->campaign < b->campaign;
                   });
  for (const SnapshotScore* s : ordered) {
    os << s->day << ',' << s->campaign << ','
       << CsvField(timelines_[s->campaign].name) << ',' << s->label_day
       << ',' << s->tweets << ',' << s->tweets_scored << ','
       << CsvNum(s->tweet_accuracy) << ','
       << CsvNum(s->tweet_permutation_accuracy) << ','
       << CsvNum(s->tweet_nmi) << ',' << s->users << ',' << s->users_scored
       << ',' << CsvNum(s->user_accuracy) << ','
       << CsvNum(s->user_permutation_accuracy) << ','
       << CsvNum(s->user_nmi) << '\n';
  }
}

Status TimelineEvaluator::WriteCsvFile(const std::string& path) const {
  return AtomicWriteFile(path, [this](std::ostream* os) {
    WriteCsv(*os);
    return os->good() ? Status::OK()
                      : Status::IoError("timeline csv write failed");
  });
}

}  // namespace triclust
