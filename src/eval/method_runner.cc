#include "src/eval/method_runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/baselines/aggregation.h"
#include "src/baselines/label_propagation.h"
#include "src/baselines/lexicon_vote.h"
#include "src/baselines/userreg.h"
#include "src/data/snapshots.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "src/util/file_util.h"
#include "src/util/logging.h"

namespace triclust {

namespace {

/// Sentiment predictions viewed as a hard clustering (class index = cluster
/// id, kUnlabeled = unassigned), so classifier baselines get the same NMI
/// column as the clustering methods.
std::vector<int> AsClusters(const std::vector<Sentiment>& predictions) {
  std::vector<int> clusters;
  clusters.reserve(predictions.size());
  for (const Sentiment s : predictions) {
    clusters.push_back(s == Sentiment::kUnlabeled ? -1 : SentimentIndex(s));
  }
  return clusters;
}

size_t CountLabeled(const std::vector<Sentiment>& truth) {
  size_t labeled = 0;
  for (const Sentiment s : truth) {
    if (s != Sentiment::kUnlabeled) ++labeled;
  }
  return labeled;
}

/// Scores one day's predictions at one level into the day row.
void ScoreLevel(const std::vector<Sentiment>& predictions,
                const std::vector<Sentiment>& truth, size_t* scored,
                double* accuracy, double* nmi) {
  *scored = CountLabeled(truth);
  if (*scored == 0) return;
  *accuracy = ClassificationAccuracy(predictions, truth);
  *nmi = NormalizedMutualInformation(AsClusters(predictions), truth);
}

/// Folds a day row into the timeline's run micro-aggregates.
struct MicroAccumulator {
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_correct = 0.0;
  double user_correct = 0.0;

  void Fold(const MethodDayScore& day) {
    if (day.tweets_scored > 0 && std::isfinite(day.tweet_accuracy)) {
      tweets_scored += day.tweets_scored;
      tweet_correct += day.tweet_accuracy * day.tweets_scored;
    }
    if (day.users_scored > 0 && std::isfinite(day.user_accuracy)) {
      users_scored += day.users_scored;
      user_correct += day.user_accuracy * day.users_scored;
    }
  }

  void Finish(MethodTimeline* timeline) const {
    timeline->tweets_scored = tweets_scored;
    timeline->users_scored = users_scored;
    if (tweets_scored > 0) {
      timeline->tweet_accuracy = tweet_correct / tweets_scored;
    }
    if (users_scored > 0) {
      timeline->user_accuracy = user_correct / users_scored;
    }
  }
};

/// The tri-cluster method: the scenario's fleet replayed through a
/// CampaignEngine with churn, scored by TimelineEvaluator.
MethodTimeline RunTriclust(const Scenario& scenario, const Corpus& corpus,
                           const SentimentLexicon& prior,
                           const MethodRunnerOptions& options,
                           ScenarioRun* run) {
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DenseMatrix sf0 = prior.BuildSf0(builder.vocabulary(), 3);
  OnlineConfig config;
  config.base.max_iterations = options.max_iterations;
  config.base.track_loss = false;

  serving::EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  serving::CampaignEngine engine(engine_options);
  serving::ReplayDriver driver(&engine);

  const std::vector<std::vector<Snapshot>> streams =
      serving::PartitionIntoStreams(corpus, scenario.NumStreams());
  for (size_t c = 0; c < scenario.num_campaigns; ++c) {
    Result<size_t> id = engine.AddCampaign(
        scenario.name + "-" + std::to_string(c), config, sf0, builder,
        &corpus);
    TRICLUST_CHECK(id.ok());
    driver.AddStream(id.value(), streams[c]);
  }

  // Churn: the schedule is day-ordered; the hook applies every event due
  // on or before the released day. Launched campaigns take the next
  // author-disjoint stream slice and are fed from their launch day on.
  size_t next_event = 0;
  size_t next_stream = scenario.num_campaigns;
  driver.set_day_hook([&](int day) {
    while (next_event < scenario.churn.size() &&
           scenario.churn[next_event].day <= day) {
      const ChurnEvent& event = scenario.churn[next_event++];
      if (event.action == ChurnEvent::Action::kRetire) {
        engine.RetireCampaign(event.campaign);
        continue;
      }
      Result<size_t> id =
          engine.AddCampaign(event.name, config, sf0, builder, &corpus);
      TRICLUST_CHECK(id.ok());
      TRICLUST_CHECK_LT(next_stream, streams.size());
      driver.AddStream(id.value(), streams[next_stream++]);
    }
  });

  TimelineEvaluator evaluator(&engine);
  evaluator.Attach(&driver);
  run->replay_horizon_days = driver.num_days();
  run->replay = driver.Replay();
  evaluator.Annotate(&run->replay);
  run->final_health = engine.HealthReport();
  run->triclust_aggregate = evaluator.RunAggregate();

  MethodTimeline timeline;
  timeline.method = "triclust";
  for (const serving::ReplayDayStats& day : run->replay.days) {
    MethodDayScore score;
    score.day = day.day;
    score.tweets_scored = day.tweets_scored;
    score.users_scored = day.users_scored;
    score.tweet_accuracy = day.tweet_accuracy;
    score.tweet_nmi = day.tweet_nmi;
    score.user_accuracy = day.user_accuracy;
    score.user_nmi = day.user_nmi;
    timeline.days.push_back(score);
  }
  timeline.tweets_scored = run->triclust_aggregate.tweets_scored;
  timeline.users_scored = run->triclust_aggregate.users_scored;
  timeline.tweet_accuracy = run->triclust_aggregate.tweet_accuracy;
  timeline.user_accuracy = run->triclust_aggregate.user_accuracy;
  return timeline;
}

/// One baseline over the pooled per-day snapshots. `predict` maps one
/// day's DatasetMatrices (plus its day index, for per-day seed derivation)
/// to tweet-level predictions; user-level predictions are the retweet-
/// incidence majority vote unless the method provides its own.
template <typename PredictFn>
MethodTimeline RunPooledBaseline(const std::string& method,
                                 const Corpus& corpus,
                                 const MatrixBuilder& builder,
                                 const PredictFn& predict) {
  MethodTimeline timeline;
  timeline.method = method;
  MicroAccumulator micro;
  for (const Snapshot& snap : SplitByDay(corpus)) {
    MethodDayScore score;
    score.day = snap.last_day;
    if (!snap.tweet_ids.empty()) {
      const DatasetMatrices data =
          builder.Build(corpus, snap.tweet_ids, snap.last_day);
      std::vector<Sentiment> tweet_pred;
      std::vector<Sentiment> user_pred;
      predict(data, snap.last_day, &tweet_pred, &user_pred);
      if (user_pred.empty()) {
        user_pred = AggregateTweetsToUsers(data, tweet_pred);
      }
      ScoreLevel(tweet_pred, data.tweet_labels, &score.tweets_scored,
                 &score.tweet_accuracy, &score.tweet_nmi);
      ScoreLevel(user_pred, data.user_labels, &score.users_scored,
                 &score.user_accuracy, &score.user_nmi);
    }
    micro.Fold(score);
    timeline.days.push_back(score);
  }
  micro.Finish(&timeline);
  return timeline;
}

}  // namespace

const MethodTimeline* ScenarioRun::FindMethod(
    const std::string& method) const {
  for (const MethodTimeline& timeline : methods) {
    if (timeline.method == method) return &timeline;
  }
  return nullptr;
}

Result<ScenarioRun> RunScenario(const Scenario& scenario,
                                const MethodRunnerOptions& options) {
  for (const std::string& method : options.methods) {
    if (method != "triclust" && method != "lexvote" && method != "lp10" &&
        method != "userreg10") {
      return Status::InvalidArgument(
          "unknown method '" + method +
          "' (known: triclust, lexvote, lp10, userreg10)");
    }
  }

  const SyntheticDataset dataset = GenerateSynthetic(scenario.config);
  const SentimentLexicon prior =
      CorruptLexicon(dataset.true_lexicon, scenario.lexicon_coverage,
                     scenario.lexicon_error_rate, scenario.lexicon_seed);

  ScenarioRun run;
  run.scenario = scenario.name;

  // Baselines share one builder fit on the whole corpus — the same feature
  // space the engine campaigns use.
  MatrixBuilder baseline_builder;
  bool baseline_fitted = false;
  const auto fitted_builder = [&]() -> const MatrixBuilder& {
    if (!baseline_fitted) {
      baseline_builder.Fit(dataset.corpus);
      baseline_fitted = true;
    }
    return baseline_builder;
  };

  for (const std::string& method : options.methods) {
    if (method == "triclust") {
      run.methods.push_back(
          RunTriclust(scenario, dataset.corpus, prior, options, &run));
    } else if (method == "lexvote") {
      const MatrixBuilder& builder = fitted_builder();
      run.methods.push_back(RunPooledBaseline(
          method, dataset.corpus, builder,
          [&](const DatasetMatrices& data, int /*day*/,
              std::vector<Sentiment>* tweet_pred,
              std::vector<Sentiment>* /*user_pred*/) {
            *tweet_pred = LexiconVote(data.xp, builder.vocabulary(), prior);
          }));
    } else if (method == "lp10") {
      run.methods.push_back(RunPooledBaseline(
          method, dataset.corpus, fitted_builder(),
          [&](const DatasetMatrices& data, int day,
              std::vector<Sentiment>* tweet_pred,
              std::vector<Sentiment>* /*user_pred*/) {
            const auto seeds = SampleSeedLabels(
                data.tweet_labels, options.seed_fraction,
                1000 + static_cast<uint64_t>(day));
            *tweet_pred = PropagateBipartite(data.xp, seeds);
          }));
    } else {  // userreg10
      run.methods.push_back(RunPooledBaseline(
          method, dataset.corpus, fitted_builder(),
          [&](const DatasetMatrices& data, int day,
              std::vector<Sentiment>* tweet_pred,
              std::vector<Sentiment>* user_pred) {
            const auto seeds = SampleSeedLabels(
                data.tweet_labels, options.seed_fraction,
                2000 + static_cast<uint64_t>(day));
            UserRegResult result = RunUserReg(data, seeds);
            *tweet_pred = std::move(result.tweet_predictions);
            *user_pred = std::move(result.user_predictions);
          }));
    }
  }
  return run;
}

ExpectationReport CheckExpectations(const Scenario& scenario,
                                    const ScenarioRun& run) {
  const ScenarioExpectation& expect = scenario.expect;
  ExpectationReport report;
  const auto fail = [&](const std::string& what) {
    report.failures.push_back(what);
  };

  const TimelineAggregate& aggregate = run.triclust_aggregate;
  if (expect.min_tweet_accuracy > 0.0 &&
      !(aggregate.tweet_accuracy >= expect.min_tweet_accuracy)) {
    std::ostringstream oss;
    oss << "tri-cluster tweet accuracy " << aggregate.tweet_accuracy
        << " below floor " << expect.min_tweet_accuracy;
    fail(oss.str());
  }
  if (expect.min_user_accuracy > 0.0 &&
      !(aggregate.user_accuracy >= expect.min_user_accuracy)) {
    std::ostringstream oss;
    oss << "tri-cluster user accuracy " << aggregate.user_accuracy
        << " below floor " << expect.min_user_accuracy;
    fail(oss.str());
  }

  const serving::EngineHealthReport& health = run.final_health;
  if (health.quarantined > expect.max_quarantined) {
    fail("final fleet has " + std::to_string(health.quarantined) +
         " quarantined campaigns (limit " +
         std::to_string(expect.max_quarantined) + ")");
  }
  if (health.healthy < expect.min_healthy) {
    fail("final fleet has " + std::to_string(health.healthy) +
         " healthy campaigns (floor " + std::to_string(expect.min_healthy) +
         ")");
  }
  if (health.retired != expect.expected_retired) {
    fail("final fleet has " + std::to_string(health.retired) +
         " retired campaigns (expected " +
         std::to_string(expect.expected_retired) + ")");
  }

  if (expect.expected_days > 0 &&
      run.replay_horizon_days != expect.expected_days) {
    fail("replay walked " + std::to_string(run.replay_horizon_days) +
         " days (expected " + std::to_string(expect.expected_days) + ")");
  }
  if (run.replay.total_tweets < expect.min_tweets) {
    fail("replay carried " + std::to_string(run.replay.total_tweets) +
         " tweets (floor " + std::to_string(expect.min_tweets) + ")");
  }
  return report;
}

namespace {

void WriteMetric(std::ostream& os, double value) {
  os << ',';
  if (std::isfinite(value)) os << value;
}

void WriteRow(std::ostream& os, const std::string& scenario,
              const std::string& method, int day, size_t tweets_scored,
              double tweet_accuracy, double tweet_nmi, size_t users_scored,
              double user_accuracy, double user_nmi) {
  os << scenario << ',' << method << ',' << day << ',' << tweets_scored;
  WriteMetric(os, tweet_accuracy);
  WriteMetric(os, tweet_nmi);
  os << ',' << users_scored;
  WriteMetric(os, user_accuracy);
  WriteMetric(os, user_nmi);
  os << '\n';
}

}  // namespace

void WriteMethodComparisonCsv(const ScenarioRun& run, std::ostream& os) {
  os << "scenario,method,day,tweets_scored,tweet_accuracy,tweet_nmi,"
        "users_scored,user_accuracy,user_nmi\n";
  for (const MethodTimeline& timeline : run.methods) {
    for (const MethodDayScore& day : timeline.days) {
      WriteRow(os, run.scenario, timeline.method, day.day, day.tweets_scored,
               day.tweet_accuracy, day.tweet_nmi, day.users_scored,
               day.user_accuracy, day.user_nmi);
    }
    // Day -1: the run micro-aggregate (NMI is per-day only).
    WriteRow(os, run.scenario, timeline.method, -1, timeline.tweets_scored,
             timeline.tweet_accuracy, serving::kUnscoredMetric,
             timeline.users_scored, timeline.user_accuracy,
             serving::kUnscoredMetric);
  }
}

Status WriteMethodComparisonCsvFile(const ScenarioRun& run,
                                    const std::string& path) {
  return AtomicWriteFile(path, [&run](std::ostream* os) {
    WriteMethodComparisonCsv(run, *os);
    if (!*os) return Status::IoError("method comparison CSV write failed");
    return Status::OK();
  });
}

}  // namespace triclust
