#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/logging.h"

namespace triclust {

namespace {

/// Collects the (cluster, class) pairs that are evaluable.
struct LabeledPairs {
  std::vector<int> clusters;
  std::vector<int> classes;
};

LabeledPairs Filter(const std::vector<int>& clusters,
                    const std::vector<Sentiment>& truth) {
  TRICLUST_CHECK_EQ(clusters.size(), truth.size());
  LabeledPairs out;
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (truth[i] == Sentiment::kUnlabeled || clusters[i] < 0) continue;
    out.clusters.push_back(clusters[i]);
    out.classes.push_back(SentimentIndex(truth[i]));
  }
  return out;
}

}  // namespace

double ClusteringAccuracy(const std::vector<int>& clusters,
                          const std::vector<Sentiment>& truth) {
  const LabeledPairs pairs = Filter(clusters, truth);
  if (pairs.clusters.empty()) return 0.0;

  // contingency[cluster][class] counts.
  std::map<int, std::map<int, size_t>> contingency;
  for (size_t i = 0; i < pairs.clusters.size(); ++i) {
    ++contingency[pairs.clusters[i]][pairs.classes[i]];
  }
  size_t correct = 0;
  for (const auto& [cluster, by_class] : contingency) {
    size_t best = 0;
    for (const auto& [cls, count] : by_class) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) /
         static_cast<double>(pairs.clusters.size());
}

double NormalizedMutualInformation(const std::vector<int>& clusters,
                                   const std::vector<Sentiment>& truth) {
  const LabeledPairs pairs = Filter(clusters, truth);
  const double n = static_cast<double>(pairs.clusters.size());
  if (pairs.clusters.empty()) return 0.0;

  std::map<int, size_t> cluster_sizes;
  std::map<int, size_t> class_sizes;
  std::map<std::pair<int, int>, size_t> joint;
  for (size_t i = 0; i < pairs.clusters.size(); ++i) {
    ++cluster_sizes[pairs.clusters[i]];
    ++class_sizes[pairs.classes[i]];
    ++joint[{pairs.clusters[i], pairs.classes[i]}];
  }

  auto entropy = [&](const std::map<int, size_t>& sizes) {
    double h = 0.0;
    for (const auto& [id, count] : sizes) {
      const double p = static_cast<double>(count) / n;
      if (p > 0.0) h -= p * std::log(p);
    }
    return h;
  };
  const double hc = entropy(cluster_sizes);
  const double hg = entropy(class_sizes);

  double mi = 0.0;
  for (const auto& [pair, count] : joint) {
    const double pij = static_cast<double>(count) / n;
    const double pi =
        static_cast<double>(cluster_sizes[pair.first]) / n;
    const double pj = static_cast<double>(class_sizes[pair.second]) / n;
    if (pij > 0.0) mi += pij * std::log(pij / (pi * pj));
  }

  if (hc <= 0.0 && hg <= 0.0) return 1.0;
  if (hc <= 0.0 || hg <= 0.0) return 0.0;
  return std::clamp(2.0 * mi / (hc + hg), 0.0, 1.0);
}

double ClassificationAccuracy(const std::vector<Sentiment>& predicted,
                              const std::vector<Sentiment>& truth) {
  TRICLUST_CHECK_EQ(predicted.size(), truth.size());
  size_t correct = 0;
  size_t total = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == Sentiment::kUnlabeled ||
        predicted[i] == Sentiment::kUnlabeled) {
      continue;
    }
    ++total;
    if (predicted[i] == truth[i]) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

std::vector<Sentiment> MajorityVoteMapping(
    const std::vector<int>& clusters, const std::vector<Sentiment>& truth,
    int num_clusters) {
  TRICLUST_CHECK_GT(num_clusters, 0);
  std::vector<std::vector<size_t>> contingency(
      static_cast<size_t>(num_clusters),
      std::vector<size_t>(kNumSentimentClasses, 0));
  const LabeledPairs pairs = Filter(clusters, truth);
  for (size_t i = 0; i < pairs.clusters.size(); ++i) {
    TRICLUST_CHECK_LT(pairs.clusters[i], num_clusters);
    ++contingency[static_cast<size_t>(pairs.clusters[i])]
                 [static_cast<size_t>(pairs.classes[i])];
  }
  std::vector<Sentiment> mapping(static_cast<size_t>(num_clusters),
                                 Sentiment::kPositive);
  for (int c = 0; c < num_clusters; ++c) {
    const auto& row = contingency[static_cast<size_t>(c)];
    int best = 0;
    for (int g = 1; g < kNumSentimentClasses; ++g) {
      if (row[static_cast<size_t>(g)] > row[static_cast<size_t>(best)]) {
        best = g;
      }
    }
    mapping[static_cast<size_t>(c)] = SentimentFromIndex(best);
  }
  return mapping;
}

std::vector<Sentiment> ApplyMapping(const std::vector<int>& clusters,
                                    const std::vector<Sentiment>& mapping) {
  std::vector<Sentiment> out(clusters.size(), Sentiment::kUnlabeled);
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i] >= 0 &&
        static_cast<size_t>(clusters[i]) < mapping.size()) {
      out[i] = mapping[static_cast<size_t>(clusters[i])];
    }
  }
  return out;
}

double PermutationAccuracy(const std::vector<int>& clusters,
                           const std::vector<Sentiment>& truth) {
  const LabeledPairs pairs = Filter(clusters, truth);
  if (pairs.clusters.empty()) return 0.0;

  // Dense-remap cluster ids.
  std::map<int, int> remap;
  for (int c : pairs.clusters) remap.emplace(c, 0);
  int next = 0;
  for (auto& [id, dense] : remap) dense = next++;
  const size_t num_clusters = remap.size();

  std::vector<std::vector<size_t>> contingency(
      num_clusters, std::vector<size_t>(kNumSentimentClasses, 0));
  for (size_t i = 0; i < pairs.clusters.size(); ++i) {
    ++contingency[static_cast<size_t>(remap[pairs.clusters[i]])]
                 [static_cast<size_t>(pairs.classes[i])];
  }

  // Best one-to-one assignment: each class claims at most one cluster (and
  // each cluster at most one class); clusters left without a class score 0
  // for their items. Because the class side is tiny and fixed
  // (kNumSentimentClasses = 3), the optimal matching falls out of a subset
  // DP over class masks: dp[mask] = best score using the clusters seen so
  // far with the assigned classes drawn from `mask`. Each cluster is
  // folded in once (descending mask order keeps it injective), so the
  // whole solve is O(num_clusters · 2^C · C) — linear in the cluster
  // count. The previous cluster-side enumeration was exponential in it
  // (and capped at 8 clusters with a CHECK), which made per-day timeline
  // scoring crash or hang on real corpora with larger k.
  constexpr int kNumMasks = 1 << kNumSentimentClasses;
  std::vector<size_t> dp(kNumMasks, 0);
  for (size_t c = 0; c < num_clusters; ++c) {
    for (int mask = kNumMasks - 1; mask > 0; --mask) {
      for (int g = 0; g < kNumSentimentClasses; ++g) {
        if ((mask & (1 << g)) == 0) continue;
        dp[static_cast<size_t>(mask)] = std::max(
            dp[static_cast<size_t>(mask)],
            dp[static_cast<size_t>(mask ^ (1 << g))] +
                contingency[c][static_cast<size_t>(g)]);
      }
    }
  }
  return static_cast<double>(dp[kNumMasks - 1]) /
         static_cast<double>(pairs.clusters.size());
}

double AdjustedRandIndex(const std::vector<int>& clusters,
                         const std::vector<Sentiment>& truth) {
  const LabeledPairs pairs = Filter(clusters, truth);
  const size_t n = pairs.clusters.size();
  if (n < 2) return 0.0;

  std::map<int, size_t> cluster_sizes;
  std::map<int, size_t> class_sizes;
  std::map<std::pair<int, int>, size_t> joint;
  for (size_t i = 0; i < n; ++i) {
    ++cluster_sizes[pairs.clusters[i]];
    ++class_sizes[pairs.classes[i]];
    ++joint[{pairs.clusters[i], pairs.classes[i]}];
  }
  auto choose2 = [](size_t x) {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
  };
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) sum_joint += choose2(count);
  double sum_clusters = 0.0;
  for (const auto& [id, count] : cluster_sizes) {
    sum_clusters += choose2(count);
  }
  double sum_classes = 0.0;
  for (const auto& [id, count] : class_sizes) sum_classes += choose2(count);
  const double total_pairs = choose2(n);
  const double expected = sum_clusters * sum_classes / total_pairs;
  const double maximum = 0.5 * (sum_clusters + sum_classes);
  if (maximum == expected) return 0.0;
  return (sum_joint - expected) / (maximum - expected);
}

double Purity(const std::vector<int>& clusters,
              const std::vector<Sentiment>& truth) {
  return ClusteringAccuracy(clusters, truth);
}

double ConfusionMatrix::MacroF1() const {
  const size_t k = counts.size();
  double f1_sum = 0.0;
  size_t classes_with_support = 0;
  for (size_t c = 0; c < k; ++c) {
    size_t tp = counts[c][c];
    size_t fn = 0;
    size_t fp = 0;
    for (size_t j = 0; j < k; ++j) {
      if (j != c) {
        fn += counts[c][j];
        fp += counts[j][c];
      }
    }
    const size_t support = tp + fn;
    if (support == 0) continue;
    ++classes_with_support;
    const double precision =
        (tp + fp) == 0 ? 0.0
                       : static_cast<double>(tp) /
                             static_cast<double>(tp + fp);
    const double recall =
        static_cast<double>(tp) / static_cast<double>(support);
    if (precision + recall > 0.0) {
      f1_sum += 2.0 * precision * recall / (precision + recall);
    }
  }
  return classes_with_support == 0
             ? 0.0
             : f1_sum / static_cast<double>(classes_with_support);
}

ConfusionMatrix BuildConfusion(const std::vector<Sentiment>& predicted,
                               const std::vector<Sentiment>& truth,
                               int num_classes) {
  TRICLUST_CHECK_EQ(predicted.size(), truth.size());
  TRICLUST_CHECK_GT(num_classes, 0);
  ConfusionMatrix cm;
  cm.counts.assign(static_cast<size_t>(num_classes),
                   std::vector<size_t>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == Sentiment::kUnlabeled ||
        predicted[i] == Sentiment::kUnlabeled) {
      continue;
    }
    const int g = SentimentIndex(truth[i]);
    const int p = SentimentIndex(predicted[i]);
    if (g >= num_classes || p >= num_classes) continue;
    ++cm.counts[static_cast<size_t>(g)][static_cast<size_t>(p)];
    ++cm.total;
  }
  return cm;
}

}  // namespace triclust
