#include "src/eval/protocol.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace triclust {

std::vector<int> KFoldAssignment(size_t n, int folds, uint64_t seed) {
  TRICLUST_CHECK_GE(folds, 2);
  Rng rng(seed);
  const std::vector<size_t> perm = rng.Permutation(n);
  std::vector<int> fold_of(n);
  for (size_t i = 0; i < n; ++i) {
    fold_of[perm[i]] = static_cast<int>(i % static_cast<size_t>(folds));
  }
  return fold_of;
}

std::vector<Sentiment> SampleSeedLabels(const std::vector<Sentiment>& truth,
                                        double fraction, uint64_t seed) {
  TRICLUST_CHECK_GE(fraction, 0.0);
  TRICLUST_CHECK_LE(fraction, 1.0);
  Rng rng(seed);
  std::vector<Sentiment> seeds(truth.size(), Sentiment::kUnlabeled);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] != Sentiment::kUnlabeled && rng.Bernoulli(fraction)) {
      seeds[i] = truth[i];
    }
  }
  return seeds;
}

}  // namespace triclust
