#ifndef TRICLUST_SRC_EVAL_METHOD_RUNNER_H_
#define TRICLUST_SRC_EVAL_METHOD_RUNNER_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/data/scenario.h"
#include "src/eval/timeline_eval.h"
#include "src/serving/campaign_engine.h"
#include "src/serving/replay.h"
#include "src/util/status.h"

namespace triclust {

/// Multi-method scenario runner: replays one adversarial scenario
/// (src/data/scenario.h) through the serving stack for the online
/// tri-cluster solver AND the baseline methods, producing the
/// method-comparison timelines the paper's figures plot — per-day
/// accuracy of every method over the same hostile stream.
///
/// The tri-cluster method runs exactly like production: author-disjoint
/// streams through a CampaignEngine via ReplayDriver (churn events
/// applied by the day hook), scored by TimelineEvaluator. Baselines run
/// per day on the pooled day snapshot (all campaigns' traffic together,
/// which only favors them — they see more signal than any single
/// campaign): lexvote is the zero-shot lexicon vote, lp10 propagates a
/// 10% label seed over the lexical bipartite graph, userreg10 is the
/// user-regularized classifier with the same seed. Seeds are fixed per
/// day, so every run of a scenario is bit-identical.

/// One method's scores on one replay day. Metric fields are NaN when the
/// day scored no items (empty or fully-unlabeled day).
struct MethodDayScore {
  int day = 0;
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_accuracy = serving::kUnscoredMetric;
  double tweet_nmi = serving::kUnscoredMetric;
  double user_accuracy = serving::kUnscoredMetric;
  double user_nmi = serving::kUnscoredMetric;
};

/// One method's full timeline plus run micro-aggregates (fraction of all
/// scored items that were correct, as a percentage).
struct MethodTimeline {
  std::string method;
  std::vector<MethodDayScore> days;
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_accuracy = serving::kUnscoredMetric;
  double user_accuracy = serving::kUnscoredMetric;
};

/// Everything one scenario run produced: the per-method timelines, the
/// tri-cluster replay's annotated stats, and the fleet's final health.
struct ScenarioRun {
  std::string scenario;
  std::vector<MethodTimeline> methods;
  serving::ReplayStats replay;
  /// The day horizon the tri-cluster replay walked (ReplayDriver::num_days
  /// at launch; 0 when triclust was not run).
  int replay_horizon_days = 0;
  serving::EngineHealthReport final_health;
  /// Run aggregate of the tri-cluster method (TimelineEvaluator).
  TimelineAggregate triclust_aggregate;

  /// The timeline of `method`, or nullptr when it was not run.
  const MethodTimeline* FindMethod(const std::string& method) const;
};

/// Knobs of one scenario run.
struct MethodRunnerOptions {
  /// Methods to run, from {"triclust", "lexvote", "lp10", "userreg10"}.
  /// "triclust" must be present for expectation checks to be meaningful.
  std::vector<std::string> methods = {"triclust", "lexvote", "lp10",
                                      "userreg10"};
  /// Solver iterations per snapshot (kept modest: scenarios are about
  /// robustness shape, not squeezing the last accuracy point). The
  /// scenario expectation floors are calibrated at this default.
  int max_iterations = 30;
  /// Engine thread budget (results are bit-identical at every width).
  int num_threads = 1;
  /// Seed-label fraction of the semi-supervised baselines.
  double seed_fraction = 0.10;
};

/// Runs `scenario` end to end. InvalidArgument on an unknown method name.
Result<ScenarioRun> RunScenario(const Scenario& scenario,
                                const MethodRunnerOptions& options = {});

/// Outcome of checking a run against its scenario's expectation record.
struct ExpectationReport {
  /// Human-readable description of every expectation that failed.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

/// Checks the run against `scenario.expect` (accuracy floors on the
/// tri-cluster aggregate, fleet-health limits, day/traffic shape).
ExpectationReport CheckExpectations(const Scenario& scenario,
                                    const ScenarioRun& run);

/// Writes the plot-ready method-comparison CSV: header
/// "scenario,method,day,tweets_scored,tweet_accuracy,tweet_nmi,
/// users_scored,user_accuracy,user_nmi", one row per (method, day); NaN
/// metrics are empty fields. Day -1 rows carry each method's run
/// aggregate.
void WriteMethodComparisonCsv(const ScenarioRun& run, std::ostream& os);

/// Atomic-file variant of WriteMethodComparisonCsv.
Status WriteMethodComparisonCsvFile(const ScenarioRun& run,
                                    const std::string& path);

}  // namespace triclust

#endif  // TRICLUST_SRC_EVAL_METHOD_RUNNER_H_
