#ifndef TRICLUST_SRC_EVAL_PROTOCOL_H_
#define TRICLUST_SRC_EVAL_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "src/text/sentiment.h"

namespace triclust {

/// Experiment protocol helpers shared by the method-comparison benches
/// (Tables 4/5): supervised methods are scored by k-fold cross-validation
/// over the labeled subset; semi-supervised methods receive a random
/// labeled fraction (LP-5 → 5%, LP-10/UserReg-10 → 10%) and are scored on
/// the rest; unsupervised methods see no labels.

/// Assigns each of `n` items a fold id in [0, folds), uniformly shuffled.
std::vector<int> KFoldAssignment(size_t n, int folds, uint64_t seed);

/// Keeps each *labeled* item's label with probability `fraction`; all other
/// items become kUnlabeled. Returns the seed-label vector handed to
/// semi-supervised methods.
std::vector<Sentiment> SampleSeedLabels(const std::vector<Sentiment>& truth,
                                        double fraction, uint64_t seed);

/// Scores a train/predict closure with k-fold cross-validation: for each
/// fold, labels of that fold are hidden at training time and the fold's
/// predictions are scored. Returns overall accuracy in [0, 1].
///
/// The closure receives the masked labels and must return predictions for
/// every item.
template <typename TrainPredictFn>
double CrossValidatedAccuracy(const std::vector<Sentiment>& truth, int folds,
                              uint64_t seed, const TrainPredictFn& fn) {
  const std::vector<int> fold_of = KFoldAssignment(truth.size(), folds, seed);
  size_t correct = 0;
  size_t total = 0;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<Sentiment> masked = truth;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (fold_of[i] == fold) masked[i] = Sentiment::kUnlabeled;
    }
    const std::vector<Sentiment> predicted = fn(masked);
    for (size_t i = 0; i < truth.size(); ++i) {
      if (fold_of[i] != fold || truth[i] == Sentiment::kUnlabeled) continue;
      ++total;
      if (predicted[i] == truth[i]) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace triclust

#endif  // TRICLUST_SRC_EVAL_PROTOCOL_H_
