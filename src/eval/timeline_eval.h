#ifndef TRICLUST_SRC_EVAL_TIMELINE_EVAL_H_
#define TRICLUST_SRC_EVAL_TIMELINE_EVAL_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/data/corpus.h"
#include "src/data/matrix_builder.h"
#include "src/serving/campaign_engine.h"
#include "src/serving/replay.h"
#include "src/util/status.h"

namespace triclust {

/// Replay-driven evaluation harness: scores every fitted snapshot that a
/// CampaignEngine produces during a replay against the corpus ground
/// truth, yielding the per-day accuracy timelines the paper's headline
/// figures plot (tweet-level and user-level accuracy over time) plus
/// run-level aggregates.
///
/// Scoring maps each snapshot row back into the corpus through the
/// report's row-id maps: tweet row i is corpus tweet data.tweet_ids[i]
/// and is scored against its static label; user row j is corpus user
/// data.user_ids[j] and is scored against the *temporal* per-day label at
/// the snapshot's label_day (the D rows of the corpus TSV, falling back
/// to the static U label — see docs/FORMATS.md §1.1), exactly the labels
/// MatrixBuilder::Build bakes into the snapshot.
///
/// Unlike the metrics in metrics.h (which this header builds on), the
/// harness sits *above* the serving layer: it observes
/// CampaignEngine::SnapshotReports, so it works for any consumer of the
/// fit-observer hook — the replay driver is just the canonical one.

/// Scores of one fitted snapshot (one campaign, one replay day). Metric
/// fields are NaN when the snapshot scored no items of that kind (e.g. an
/// idle campaign's empty snapshot, or a fully unlabeled day).
struct SnapshotScore {
  /// Replay day the snapshot was fitted on (the drain pass reports the
  /// day count, like ReplayDayStats).
  int day = 0;
  size_t campaign = 0;
  /// Temporal user-label day the snapshot was built against (-1 = static).
  int label_day = -1;

  /// Rows in the snapshot / rows that were scored (labeled AND assigned
  /// to a cluster; metrics.h skips the rest).
  size_t tweets = 0;
  size_t tweets_scored = 0;
  size_t users = 0;
  size_t users_scored = 0;

  /// Tweet-level metrics: hard Sp assignments vs static tweet labels.
  double tweet_accuracy = serving::kUnscoredMetric;
  double tweet_permutation_accuracy = serving::kUnscoredMetric;
  double tweet_nmi = serving::kUnscoredMetric;

  /// User-level metrics: hard Su assignments vs temporal user labels.
  double user_accuracy = serving::kUnscoredMetric;
  double user_permutation_accuracy = serving::kUnscoredMetric;
  double user_nmi = serving::kUnscoredMetric;
};

/// Scores one fitted snapshot against `corpus` ground truth via the
/// snapshot's row-id maps (see file comment for the label semantics).
/// This is the single scoring kernel: the replayed timeline and a direct
/// per-day solve score through the same call, so equal factors give
/// bit-identical scores. `day`/`campaign`/`label_day` are recorded
/// verbatim.
SnapshotScore ScoreSnapshot(const Corpus& corpus,
                            const DatasetMatrices& data,
                            const TriClusterResult& result, int day,
                            size_t campaign, int label_day);

/// Aggregate over a set of scored snapshots. Accuracies are
/// micro-averages: each per-snapshot accuracy weighted by its scored item
/// count, i.e. the fraction of all scored items that were correct. NMI is
/// not decomposable over items, so its aggregate is the same
/// scored-weighted mean, reported for trend lines only.
struct TimelineAggregate {
  /// Fitted snapshots folded in / of those, snapshots that scored items.
  size_t snapshots = 0;
  size_t snapshots_scored = 0;
  size_t tweets_scored = 0;
  size_t users_scored = 0;
  double tweet_accuracy = serving::kUnscoredMetric;
  double tweet_permutation_accuracy = serving::kUnscoredMetric;
  double tweet_nmi = serving::kUnscoredMetric;
  double user_accuracy = serving::kUnscoredMetric;
  double user_permutation_accuracy = serving::kUnscoredMetric;
  double user_nmi = serving::kUnscoredMetric;
};

/// Per-campaign accuracy timeline: every fitted snapshot of the campaign
/// observed during the run, in fit order.
struct CampaignTimeline {
  size_t campaign = 0;
  std::string name;
  std::vector<SnapshotScore> scores;
};

/// Observes a replay (or any sequence of SnapshotReports) and accumulates
/// per-day, per-campaign accuracy timelines.
///
/// Usage during replay:
///   TimelineEvaluator evaluator(&engine);
///   evaluator.Attach(&driver);              // additive observer
///   ReplayStats stats = driver.Replay();
///   evaluator.Annotate(&stats);             // fill the metric fields
///   evaluator.WriteCsvFile("timeline.csv");
///
/// The evaluator is purely observational: it runs on the replay caller
/// thread after each Advance() completed, so attaching it cannot perturb
/// the fitted factors (the replay-vs-direct bit-identity invariant of
/// tests/replay_test.cc holds with an evaluator attached).
///
/// Thread safety: confined to one caller thread, like the engine and
/// driver it observes. The engine must outlive the evaluator.
class TimelineEvaluator {
 public:
  /// `engine` is borrowed: campaign names and corpora are read from it.
  explicit TimelineEvaluator(const serving::CampaignEngine* engine);

  /// Folds one report in (deferred reports are ignored). The replay
  /// observer installed by Attach() forwards here; tests and custom
  /// drivers may call it directly.
  void Observe(int day, const serving::CampaignEngine::SnapshotReport& report);

  /// Registers this evaluator as an additional observer on `driver`
  /// (ReplayDriver::AddObserver — existing callbacks keep working). The
  /// evaluator must outlive the driver's replays.
  void Attach(serving::ReplayDriver* driver);

  /// One timeline per engine campaign (campaigns that never fitted have
  /// empty `scores`).
  const std::vector<CampaignTimeline>& timelines() const {
    return timelines_;
  }

  /// Aggregate over every observed snapshot / one campaign's snapshots.
  TimelineAggregate RunAggregate() const;
  TimelineAggregate CampaignAggregate(size_t campaign) const;

  /// Copies the accuracy timeline into the replay stats: per-day fields
  /// of ReplayDayStats (micro-averaged across that day's campaigns) and
  /// the run-level fields of each CampaignReplayStats. Days or campaigns
  /// the evaluator never scored keep their NaN sentinels.
  void Annotate(serving::ReplayStats* stats) const;

  /// Writes the timeline as CSV for plotting against the paper's figures:
  /// one row per fitted snapshot, ordered by (day, campaign). NaN metrics
  /// (nothing scored) are written as empty fields.
  void WriteCsv(std::ostream& os) const;

  /// Atomic-file variant of WriteCsv.
  Status WriteCsvFile(const std::string& path) const;

 private:
  const serving::CampaignEngine* engine_;
  std::vector<CampaignTimeline> timelines_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_EVAL_TIMELINE_EVAL_H_
