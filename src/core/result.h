#ifndef TRICLUST_SRC_CORE_RESULT_H_
#define TRICLUST_SRC_CORE_RESULT_H_

#include <vector>

#include "src/matrix/dense_matrix.h"

namespace triclust {

/// Per-component value of the tri-clustering objective at one iteration
/// (regularization weights already applied), used for the convergence study
/// of paper Fig. 8.
struct LossComponents {
  /// ||Xp − Sp·Hp·Sfᵀ||²F (Eq. 2).
  double xp_loss = 0.0;
  /// ||Xu − Su·Hu·Sfᵀ||²F (Eq. 3).
  double xu_loss = 0.0;
  /// ||Xr − Su·Spᵀ||²F (Eq. 4).
  double xr_loss = 0.0;
  /// α·||Sf − target||²F (Eq. 5 offline; temporal feature reg online).
  double lexicon_loss = 0.0;
  /// β·tr(SuᵀLuSu) (Eq. 6).
  double graph_loss = 0.0;
  /// γ·||Su − Suw||²F over evolving users (online only).
  double temporal_user_loss = 0.0;
  /// δ·(||Sp − seed||² + ||Su − seed||²) over seeded rows (guided mode).
  double guided_loss = 0.0;

  double Total() const {
    return xp_loss + xu_loss + xr_loss + lexicon_loss + graph_loss +
           temporal_user_loss + guided_loss;
  }
};

/// Output of one tri-clustering solve (offline, or one online snapshot).
struct TriClusterResult {
  /// Tweet-cluster matrix Sp (n×k); row i is the soft sentiment of tweet i.
  DenseMatrix sp;
  /// User-cluster matrix Su (m×k).
  DenseMatrix su;
  /// Feature-cluster matrix Sf (l×k).
  DenseMatrix sf;
  /// Association matrices (k×k).
  DenseMatrix hp;
  DenseMatrix hu;

  /// Loss at each recorded iteration (empty when track_loss is false).
  std::vector<LossComponents> loss_history;
  int iterations = 0;
  bool converged = false;

  /// Hard cluster assignment of each tweet (argmax of Sp rows).
  std::vector<int> TweetClusters() const { return sp.RowArgMax(); }
  /// Hard cluster assignment of each user.
  std::vector<int> UserClusters() const { return su.RowArgMax(); }
  /// Hard cluster assignment of each feature.
  std::vector<int> FeatureClusters() const { return sf.RowArgMax(); }
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_RESULT_H_
