#ifndef TRICLUST_SRC_CORE_INIT_H_
#define TRICLUST_SRC_CORE_INIT_H_

#include "src/core/config.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"

namespace triclust {

/// One complete set of factor matrices.
struct FactorSet {
  DenseMatrix sp;  // n×k
  DenseMatrix su;  // m×k
  DenseMatrix sf;  // l×k
  DenseMatrix hp;  // k×k
  DenseMatrix hu;  // k×k
};

/// Initializes the factors per `config.init` (Algorithm 1 line 1):
/// kRandom draws uniform positives, kLexiconSeeded seeds Sf near Sf0 and
/// propagates the prior through Xp/Xu into Sp/Su. All entries are strictly
/// positive so multiplicative updates can move every coordinate.
FactorSet InitializeFactors(const DatasetMatrices& data,
                            const DenseMatrix& sf0,
                            const TriClusterConfig& config);

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_INIT_H_
