#include "src/core/objective.h"

#include "src/matrix/ops.h"
#include "src/util/logging.h"

namespace triclust {

LossComponents ComputeObjective(
    const SparseMatrix& xp, const SparseMatrix& xu, const SparseMatrix& xr,
    const UserGraph& gu, const DenseMatrix& sp, const DenseMatrix& su,
    const DenseMatrix& sf, const DenseMatrix& hp, const DenseMatrix& hu,
    double alpha, const DenseMatrix& sf_target, double beta,
    const std::vector<double>* temporal_weights,
    const DenseMatrix* temporal_target) {
  LossComponents loss;
  loss.xp_loss = TriFactorizationLossSquared(xp, sp, hp, sf);
  loss.xu_loss = TriFactorizationLossSquared(xu, su, hu, sf);
  loss.xr_loss = FactorizationLossSquared(xr, su, sp);
  loss.lexicon_loss = alpha * FrobeniusDistanceSquared(sf, sf_target);
  loss.graph_loss =
      beta * GraphLaplacianQuadraticForm(gu.adjacency(), gu.degrees(), su);
  if (temporal_weights != nullptr) {
    TRICLUST_CHECK(temporal_target != nullptr);
    TRICLUST_CHECK_EQ(temporal_weights->size(), su.rows());
    double total = 0.0;
    for (size_t i = 0; i < su.rows(); ++i) {
      const double w = (*temporal_weights)[i];
      if (w == 0.0) continue;
      const double* a = su.Row(i);
      const double* b = temporal_target->Row(i);
      double row = 0.0;
      for (size_t c = 0; c < su.cols(); ++c) {
        const double diff = a[c] - b[c];
        row += diff * diff;
      }
      total += w * row;
    }
    loss.temporal_user_loss = total;
  }
  return loss;
}

}  // namespace triclust
