#include "src/core/online.h"

#include <sstream>
#include <utility>

#include "src/util/file_util.h"
#include "src/util/fs.h"
#include "src/util/parallel.h"

namespace triclust {

OnlineTriClusterer::OnlineTriClusterer(OnlineConfig config, DenseMatrix sf0)
    : solver_(config, std::move(sf0)) {}

std::vector<double> OnlineTriClusterer::UserSentiment(
    size_t corpus_user_id) const {
  return state_.UserSentiment(corpus_user_id);
}

Status OnlineTriClusterer::SaveState(const std::string& path) const {
  return AtomicWriteFileChecksummed(
      GetDefaultFileSystem(), path,
      [this](std::ostream* os) { return state_.Write(os); });
}

Status OnlineTriClusterer::RestoreState(const std::string& path) {
  TRICLUST_ASSIGN_OR_RETURN(std::string contents,
                            GetDefaultFileSystem()->ReadFileToString(path));
  // Checkpoints written before the integrity trailer existed load
  // unchanged — VerifyChecksummedPayload passes trailer-less contents
  // through (docs/FORMATS.md §4).
  TRICLUST_ASSIGN_OR_RETURN(
      const std::string payload,
      VerifyChecksummedPayload(std::move(contents), path,
                               /*had_trailer=*/nullptr));
  std::istringstream in(payload);
  TRICLUST_ASSIGN_OR_RETURN(
      StreamState state,
      StreamState::Read(&in, solver_.sf0().rows(), solver_.sf0().cols()));
  state_ = std::move(state);
  return Status::OK();
}

TriClusterResult OnlineTriClusterer::ProcessSnapshot(
    const DatasetMatrices& data) {
  // The workspace carries the per-fit thread budget (Solve installs it,
  // thread-local — concurrent clusterers on other threads are unaffected)
  // and is reused across snapshots (Solve resets its transpose cache at
  // every fit boundary), so steady-state streaming allocates no scratch.
  workspace_.budget = ThreadBudget(solver_.config().base.num_threads);
  return solver_.Solve(data, &state_, &last_info_, &workspace_);
}

}  // namespace triclust
