#include "src/core/online.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "src/core/init.h"
#include "src/core/objective.h"
#include "src/core/updates.h"
#include "src/matrix/io.h"
#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace triclust {

OnlineTriClusterer::OnlineTriClusterer(OnlineConfig config, DenseMatrix sf0)
    : config_(config), sf0_(std::move(sf0)) {
  TRICLUST_CHECK_GE(config_.base.num_clusters, 2);
  TRICLUST_CHECK_EQ(sf0_.cols(),
                    static_cast<size_t>(config_.base.num_clusters));
  TRICLUST_CHECK_GT(config_.tau, 0.0);
  TRICLUST_CHECK_LE(config_.tau, 1.0);
  TRICLUST_CHECK_GE(config_.window, 1);
  TRICLUST_CHECK_GE(config_.alpha, 0.0);
  TRICLUST_CHECK_GE(config_.gamma, 0.0);
}

DenseMatrix OnlineTriClusterer::ComputeSfw() const {
  if (sf_history_.empty()) return sf0_;
  DenseMatrix sfw(sf0_.rows(), sf0_.cols(), 0.0);
  double weight = config_.tau;
  double weight_sum = 0.0;
  for (const DenseMatrix& sf : sf_history_) {
    sfw.Axpy(weight, sf);
    weight_sum += weight;
    weight *= config_.tau;
  }
  if (weight_sum > 0.0) sfw.ScaleInPlace(1.0 / weight_sum);
  // A converged Sf's magnitude is an arbitrary byproduct of the
  // factorization scale; as a regularization target only the row *shapes*
  // matter. Renormalizing each feature row to a distribution keeps the
  // target on the same scale class as the prior Sf0 (row-stochastic), so
  // the α pull stays meaningful across snapshots of any volume.
  sfw.NormalizeRowsL1();
  // Persistent lexicon anchor (see OnlineConfig::lexicon_blend).
  const double blend = config_.lexicon_blend;
  if (blend > 0.0) {
    sfw.ScaleInPlace(1.0 - blend);
    sfw.Axpy(blend, sf0_);
  }
  return sfw;
}

std::vector<double> OnlineTriClusterer::UserSentiment(
    size_t corpus_user_id) const {
  const auto it = user_history_.find(corpus_user_id);
  if (it == user_history_.end() || it->second.empty()) return {};
  return it->second.front();
}

Status OnlineTriClusterer::SaveState(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "triclust-online-state 1\n";
  out << timestep_ << " " << sf_history_.size() << " "
      << user_history_.size() << "\n";
  for (const DenseMatrix& sf : sf_history_) {
    WriteDenseMatrix(sf, &out);
  }
  // User histories, sorted by id for deterministic files.
  std::vector<size_t> user_ids;
  user_ids.reserve(user_history_.size());
  for (const auto& [user, history] : user_history_) {
    user_ids.push_back(user);
  }
  std::sort(user_ids.begin(), user_ids.end());
  for (size_t user : user_ids) {
    const auto& history = user_history_.at(user);
    out << user << " " << history.size() << "\n";
    for (const auto& row : history) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << " ";
        out << StrFormat("%.17g", row[c]);
      }
      out << "\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status OnlineTriClusterer::RestoreState(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "triclust-online-state 1") {
    return Status::ParseError("bad state header: " + line);
  }
  size_t timestep = 0;
  size_t num_sf = 0;
  size_t num_users = 0;
  if (!std::getline(in, line)) return Status::ParseError("missing counts");
  {
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 3 || !ParseSizeT(fields[0], &timestep) ||
        !ParseSizeT(fields[1], &num_sf) ||
        !ParseSizeT(fields[2], &num_users)) {
      return Status::ParseError("malformed counts: " + line);
    }
  }
  std::deque<DenseMatrix> sf_history;
  for (size_t i = 0; i < num_sf; ++i) {
    TRICLUST_ASSIGN_OR_RETURN(DenseMatrix sf, ReadDenseMatrix(&in));
    if (sf.rows() != sf0_.rows() || sf.cols() != sf0_.cols()) {
      return Status::FailedPrecondition(
          "checkpoint feature space does not match this clusterer");
    }
    sf_history.push_back(std::move(sf));
  }
  std::unordered_map<size_t, std::deque<std::vector<double>>> user_history;
  const size_t k = sf0_.cols();
  for (size_t u = 0; u < num_users; ++u) {
    if (!std::getline(in, line)) {
      return Status::ParseError("state truncated in user section");
    }
    const auto header = SplitWhitespace(line);
    size_t user = 0;
    size_t rows = 0;
    if (header.size() != 2 || !ParseSizeT(header[0], &user) ||
        !ParseSizeT(header[1], &rows)) {
      return Status::ParseError("malformed user header: " + line);
    }
    std::deque<std::vector<double>> history;
    for (size_t r = 0; r < rows; ++r) {
      if (!std::getline(in, line)) {
        return Status::ParseError("state truncated in user rows");
      }
      const auto fields = SplitWhitespace(line);
      if (fields.size() != k) {
        return Status::ParseError("user row has wrong arity: " + line);
      }
      std::vector<double> row(k);
      for (size_t c = 0; c < k; ++c) {
        if (!ParseDouble(fields[c], &row[c])) {
          return Status::ParseError("bad user value: " + fields[c]);
        }
      }
      history.push_back(std::move(row));
    }
    user_history.emplace(user, std::move(history));
  }

  timestep_ = static_cast<int>(timestep);
  sf_history_ = std::move(sf_history);
  user_history_ = std::move(user_history);
  return Status::OK();
}

TriClusterResult OnlineTriClusterer::ProcessSnapshot(
    const DatasetMatrices& data) {
  const size_t n = data.num_tweets();
  const size_t m = data.num_users();
  const size_t k = static_cast<size_t>(config_.base.num_clusters);
  TRICLUST_CHECK_EQ(data.xp.cols(), sf0_.rows());
  const double eps = config_.base.epsilon;

  // One thread budget + one update workspace per snapshot fit, mirroring
  // the offline solver (the snapshot's matrices outlive the workspace's
  // cached transposes).
  ScopedNumThreads thread_scope(config_.base.num_threads);
  update::UpdateWorkspace workspace;

  const DenseMatrix sfw = ComputeSfw();
  last_sfw_ = sfw;

  // --- partition users (paper: new / evolving / disappeared) --------------
  UserPartition partition;
  for (size_t j = 0; j < m; ++j) {
    if (user_history_.count(data.user_ids[j]) > 0) {
      partition.evolving_rows.push_back(j);
    } else {
      partition.new_rows.push_back(j);
    }
  }
  {
    size_t active_with_history = partition.evolving_rows.size();
    partition.num_disappeared = user_history_.size() - active_with_history;
  }
  last_partition_ = partition;

  TriClusterResult result;
  if (n == 0) {
    // Nothing arrived in this window: carry the feature state forward.
    result.sf = sfw;
    ++timestep_;
    sf_history_.push_front(sfw);
    while (static_cast<int>(sf_history_.size()) > config_.window - 1) {
      sf_history_.pop_back();
    }
    return result;
  }

  // --- temporal user targets ----------------------------------------------
  // Suw(t): decayed aggregate of each evolving user's history (normalized
  // like Sfw); zero rows (and zero weight) for new users.
  DenseMatrix suw(m, k, 0.0);
  std::vector<double> temporal_weights(m, 0.0);
  for (size_t j : partition.evolving_rows) {
    const auto& history = user_history_.at(data.user_ids[j]);
    double weight = config_.tau;
    double weight_sum = 0.0;
    for (const auto& row : history) {
      TRICLUST_CHECK_EQ(row.size(), k);
      for (size_t c = 0; c < k; ++c) suw(j, c) += weight * row[c];
      weight_sum += weight;
      weight *= config_.tau;
    }
    // Row-normalize to a distribution (same rationale as Sfw).
    double row_sum = 0.0;
    for (size_t c = 0; c < k; ++c) row_sum += suw(j, c);
    if (row_sum > 0.0) {
      for (size_t c = 0; c < k; ++c) suw(j, c) /= row_sum;
    } else {
      for (size_t c = 0; c < k; ++c) suw(j, c) = 1.0 / static_cast<double>(k);
    }
    (void)weight_sum;
    temporal_weights[j] = config_.gamma;
  }

  // --- initialization (Algorithm 2 lines 1–2) -----------------------------
  Rng rng(config_.base.seed + static_cast<uint64_t>(timestep_) * 7919);
  FactorSet f;
  f.sf = sfw;  // line 1: Sf(t) = Sfw(t)
  {            // strictly positive entries so every coordinate can move
    double* p = f.sf.data();
    for (size_t i = 0; i < f.sf.size(); ++i) {
      p[i] = std::max(p[i], 1e-4) + rng.Uniform(0.0, 0.01);
    }
  }

  f.sp = SpMM(data.xp, sfw);
  f.sp.NormalizeRowsL1();
  for (size_t i = 0; i < f.sp.size(); ++i) {
    f.sp.data()[i] += rng.Uniform(0.01, 0.05);
  }

  f.su = SpMM(data.xu, sfw);
  f.su.NormalizeRowsL1();
  for (size_t i = 0; i < f.su.size(); ++i) {
    f.su.data()[i] += rng.Uniform(0.01, 0.05);
  }
  // line 1: evolving users resume from their aggregate.
  if (config_.seed_users_from_history) {
    for (size_t j : partition.evolving_rows) {
      for (size_t c = 0; c < k; ++c) {
        f.su(j, c) = std::max(suw(j, c), 1e-4) + rng.Uniform(0.0, 0.01);
      }
    }
  }

  f.hp = DenseMatrix::Identity(k);
  f.hu = DenseMatrix::Identity(k);
  for (size_t i = 0; i < f.hp.size(); ++i) {
    f.hp.data()[i] += rng.Uniform(0.01, 0.05);
    f.hu.data()[i] += rng.Uniform(0.01, 0.05);
  }

  // --- multiplicative loop (Algorithm 2 lines 3–8) ------------------------
  auto record_loss = [&]() -> double {
    const LossComponents loss = ComputeObjective(
        data.xp, data.xu, data.xr, data.gu, f.sp, f.su, f.sf, f.hp, f.hu,
        config_.alpha, sfw, config_.base.beta, &temporal_weights, &suw);
    if (config_.base.track_loss) result.loss_history.push_back(loss);
    return loss.Total();
  };

  double previous_total = record_loss();
  FactorSet last_finite = f;
  for (int iter = 0; iter < config_.base.max_iterations; ++iter) {
    // Same sweep order as the offline Algorithm 1 (Sp/Hp before Su/Hu
    // before Sf): updating Sf against the still-uninformative Sp/Su of the
    // first iterations would corrupt the carried-over feature state.
    update::UpdateSp(data.xp, data.xr, f.sf, f.hp, f.su, &f.sp, eps,
                     config_.base.sparsity, nullptr, nullptr, &workspace);
    update::UpdateHp(data.xp, f.sp, f.sf, &f.hp, eps, &workspace);
    update::UpdateSu(data.xu, data.xr, data.gu, f.sf, f.hu, f.sp,
                     config_.base.beta, &temporal_weights, &suw, &f.su, eps,
                     config_.base.sparsity, &workspace);
    update::UpdateHu(data.xu, f.su, f.sf, &f.hu, eps, &workspace);
    update::UpdateSf(data.xp, data.xu, f.sp, f.su, f.hp, f.hu, config_.alpha,
                     sfw, &f.sf, eps, config_.base.sparsity, &workspace);

    result.iterations = iter + 1;
    const double total = record_loss();
    if (!std::isfinite(total)) {
      // See OfflineTriClusterer: restore the last finite iterate rather
      // than poisoning the stream state with inf/nan factors.
      TRICLUST_LOG(kWarning)
          << "online tri-clustering diverged at snapshot " << timestep_
          << " iteration " << iter << "; restoring last finite factors";
      f = std::move(last_finite);
      if (config_.base.track_loss) result.loss_history.pop_back();
      break;
    }
    last_finite = f;
    const double denom = std::max(previous_total, 1e-30);
    if (std::fabs(previous_total - total) / denom <
        config_.base.tolerance) {
      result.converged = true;
      previous_total = total;
      break;
    }
    previous_total = total;
  }

  // --- roll state forward ---------------------------------------------------
  sf_history_.push_front(f.sf);
  while (static_cast<int>(sf_history_.size()) >
         std::max(config_.window - 1, 1)) {
    sf_history_.pop_back();
  }
  for (size_t j = 0; j < m; ++j) {
    auto& history = user_history_[data.user_ids[j]];
    std::vector<double> row(f.su.Row(j), f.su.Row(j) + k);
    history.push_front(std::move(row));
    while (static_cast<int>(history.size()) >
           std::max(config_.window - 1, 1)) {
      history.pop_back();
    }
  }
  ++timestep_;

  result.sp = std::move(f.sp);
  result.su = std::move(f.su);
  result.sf = std::move(f.sf);
  result.hp = std::move(f.hp);
  result.hu = std::move(f.hu);
  return result;
}

}  // namespace triclust
