#include "src/core/online.h"

#include <fstream>
#include <utility>

#include "src/util/file_util.h"
#include "src/util/parallel.h"

namespace triclust {

OnlineTriClusterer::OnlineTriClusterer(OnlineConfig config, DenseMatrix sf0)
    : solver_(config, std::move(sf0)) {}

std::vector<double> OnlineTriClusterer::UserSentiment(
    size_t corpus_user_id) const {
  return state_.UserSentiment(corpus_user_id);
}

Status OnlineTriClusterer::SaveState(const std::string& path) const {
  return AtomicWriteFile(
      path, [this](std::ostream* os) { return state_.Write(os); });
}

Status OnlineTriClusterer::RestoreState(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  TRICLUST_ASSIGN_OR_RETURN(
      StreamState state,
      StreamState::Read(&in, solver_.sf0().rows(), solver_.sf0().cols()));
  state_ = std::move(state);
  return Status::OK();
}

TriClusterResult OnlineTriClusterer::ProcessSnapshot(
    const DatasetMatrices& data) {
  // The workspace carries the per-fit thread budget (Solve installs it,
  // thread-local — concurrent clusterers on other threads are unaffected)
  // and is reused across snapshots (Solve resets its transpose cache at
  // every fit boundary), so steady-state streaming allocates no scratch.
  workspace_.budget = ThreadBudget(solver_.config().base.num_threads);
  return solver_.Solve(data, &state_, &last_info_, &workspace_);
}

}  // namespace triclust
