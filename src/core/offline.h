#ifndef TRICLUST_SRC_CORE_OFFLINE_H_
#define TRICLUST_SRC_CORE_OFFLINE_H_

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"

namespace triclust {

/// The offline tri-clustering solver (paper §3, Algorithm 1).
///
/// Minimizes
///   ||Xp − Sp·Hp·Sfᵀ||²F + ||Xu − Su·Hu·Sfᵀ||²F + ||Xr − Su·Spᵀ||²F
///   + α·||Sf − Sf0||²F + β·tr(SuᵀLuSu)
/// over non-negative factors with the analytical multiplicative updates of
/// Eq. (7)/(9)/(11)/(12)/(13), iterating until the relative objective change
/// drops below `tolerance` or `max_iterations` is reached. The objective is
/// non-increasing under each update (paper §3.2), which the tests verify.
///
/// Typical use:
///   MatrixBuilder builder; builder.Fit(corpus);
///   DatasetMatrices data = builder.BuildAll(corpus);
///   DenseMatrix sf0 = lexicon.BuildSf0(builder.vocabulary(), k);
///   TriClusterResult result = OfflineTriClusterer(config).Run(data, sf0);
///   std::vector<int> tweet_clusters = result.TweetClusters();
/// Optional seed labels for guided (semi-supervised) tri-clustering — the
/// "guided regularization" of the paper's §7 and the §1 remark that
/// "performance can be improved by including high quality labeled data".
/// Seeded rows of Sp/Su are pulled toward their one-hot class row with
/// weight δ; kUnlabeled entries are free. Either vector may be empty.
struct Supervision {
  /// Per-tweet seeds, size n or empty.
  std::vector<Sentiment> tweet_seeds;
  /// Per-user seeds, size m or empty.
  std::vector<Sentiment> user_seeds;
  /// Pull weight δ.
  double weight = 1.0;
};

class OfflineTriClusterer {
 public:
  explicit OfflineTriClusterer(TriClusterConfig config = {});

  const TriClusterConfig& config() const { return config_; }

  /// Solves over the given matrices; `sf0` is the l×k lexicon prior.
  /// `supervision` optionally turns the solver semi-supervised.
  TriClusterResult Run(const DatasetMatrices& data, const DenseMatrix& sf0,
                       const Supervision* supervision = nullptr) const;

 private:
  TriClusterConfig config_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_OFFLINE_H_
