#include "src/core/updates.h"

#include "src/matrix/ops.h"
#include "src/util/logging.h"

namespace triclust {
namespace update {

void UpdateSf(const SparseMatrix& xp, const SparseMatrix& xu,
              const DenseMatrix& sp, const DenseMatrix& su,
              const DenseMatrix& hp, const DenseMatrix& hu, double alpha,
              const DenseMatrix& sf_target, DenseMatrix* sf, double eps,
              double sparsity) {
  TRICLUST_CHECK(sf != nullptr);
  const size_t l = sf->rows();
  const size_t k = sf->cols();
  TRICLUST_CHECK_EQ(xp.cols(), l);
  TRICLUST_CHECK_EQ(xu.cols(), l);
  TRICLUST_CHECK_EQ(sf_target.rows(), l);
  TRICLUST_CHECK_EQ(sf_target.cols(), k);

  // l×k data-driven pull terms.
  const DenseMatrix xut_su_hu = MatMul(SpTMM(xu, su), hu);  // Xuᵀ·Su·Hu
  const DenseMatrix xpt_sp_hp = MatMul(SpTMM(xp, sp), hp);  // Xpᵀ·Sp·Hp

  // k×k quadratic terms.
  const DenseMatrix sutsu = MatMulAtB(su, su);
  const DenseMatrix sptsp = MatMulAtB(sp, sp);
  const DenseMatrix hut_sutsu_hu = MatMulAtB(hu, MatMul(sutsu, hu));
  const DenseMatrix hpt_sptsp_hp = MatMulAtB(hp, MatMul(sptsp, hp));

  // Δ_Sf = SfᵀXuᵀSuHu − HuᵀSuᵀSuHu + SfᵀXpᵀSpHp − HpᵀSpᵀSpHp
  //        − α·Sfᵀ(Sf − Sf_target).
  DenseMatrix delta = MatMulAtB(*sf, xut_su_hu);
  delta.SubInPlace(hut_sutsu_hu);
  delta.AddInPlace(MatMulAtB(*sf, xpt_sp_hp));
  delta.SubInPlace(hpt_sptsp_hp);
  DenseMatrix lexicon_pull = MatMulAtB(*sf, *sf);
  lexicon_pull.SubInPlace(MatMulAtB(*sf, sf_target));
  delta.Axpy(-alpha, lexicon_pull);

  DenseMatrix delta_pos;
  DenseMatrix delta_neg;
  SplitPositiveNegative(delta, &delta_pos, &delta_neg);

  DenseMatrix numer = xut_su_hu;
  numer.AddInPlace(xpt_sp_hp);
  numer.Axpy(alpha, sf_target);
  numer.AddInPlace(MatMul(*sf, delta_neg));

  DenseMatrix denom = MatMul(*sf, hut_sutsu_hu);
  denom.AddInPlace(MatMul(*sf, hpt_sptsp_hp));
  denom.Axpy(alpha, *sf);
  denom.AddInPlace(MatMul(*sf, delta_pos));
  if (sparsity > 0.0) {
    for (size_t i = 0; i < denom.size(); ++i) denom.data()[i] += sparsity;
  }

  MultiplicativeUpdateInPlace(sf, numer, denom, eps);
}

void UpdateSp(const SparseMatrix& xp, const SparseMatrix& xr,
              const DenseMatrix& sf, const DenseMatrix& hp,
              const DenseMatrix& su, DenseMatrix* sp, double eps,
              double sparsity, const std::vector<double>* prior_weights,
              const DenseMatrix* prior_target) {
  TRICLUST_CHECK(sp != nullptr);
  const size_t n = sp->rows();
  TRICLUST_CHECK_EQ(xp.rows(), n);
  TRICLUST_CHECK_EQ(xr.cols(), n);
  TRICLUST_CHECK_EQ(prior_weights == nullptr, prior_target == nullptr);
  if (prior_weights != nullptr) {
    TRICLUST_CHECK_EQ(prior_weights->size(), n);
    TRICLUST_CHECK_EQ(prior_target->rows(), n);
    TRICLUST_CHECK_EQ(prior_target->cols(), sp->cols());
  }

  const DenseMatrix xp_sf_hpt = MatMulABt(SpMM(xp, sf), hp);  // Xp·Sf·Hpᵀ
  const DenseMatrix xrt_su = SpTMM(xr, su);                   // Xrᵀ·Su

  const DenseMatrix sftsf = MatMulAtB(sf, sf);
  const DenseMatrix hp_sftsf_hpt = MatMul(hp, MatMulABt(sftsf, hp));
  const DenseMatrix sutsu = MatMulAtB(su, su);

  // Δ_Sp = SpᵀXpSfHpᵀ − HpSfᵀSfHpᵀ + SpᵀXrᵀSu − SuᵀSu.
  DenseMatrix delta = MatMulAtB(*sp, xp_sf_hpt);
  delta.SubInPlace(hp_sftsf_hpt);
  delta.AddInPlace(MatMulAtB(*sp, xrt_su));
  delta.SubInPlace(sutsu);
  if (prior_weights != nullptr) {
    DenseMatrix weighted_diff = DiagScaleRows(*prior_weights, *sp);
    weighted_diff.SubInPlace(DiagScaleRows(*prior_weights, *prior_target));
    delta.SubInPlace(MatMulAtB(*sp, weighted_diff));
  }

  DenseMatrix delta_pos;
  DenseMatrix delta_neg;
  SplitPositiveNegative(delta, &delta_pos, &delta_neg);

  DenseMatrix numer = xp_sf_hpt;
  numer.AddInPlace(xrt_su);
  numer.AddInPlace(MatMul(*sp, delta_neg));
  if (prior_weights != nullptr) {
    numer.AddInPlace(DiagScaleRows(*prior_weights, *prior_target));
  }

  DenseMatrix denom = MatMul(*sp, hp_sftsf_hpt);
  denom.AddInPlace(MatMul(*sp, sutsu));
  denom.AddInPlace(MatMul(*sp, delta_pos));
  if (prior_weights != nullptr) {
    denom.AddInPlace(DiagScaleRows(*prior_weights, *sp));
  }
  if (sparsity > 0.0) {
    for (size_t i = 0; i < denom.size(); ++i) denom.data()[i] += sparsity;
  }

  MultiplicativeUpdateInPlace(sp, numer, denom, eps);
}

void UpdateSu(const SparseMatrix& xu, const SparseMatrix& xr,
              const UserGraph& gu, const DenseMatrix& sf,
              const DenseMatrix& hu, const DenseMatrix& sp, double beta,
              const std::vector<double>* temporal_weights,
              const DenseMatrix* temporal_target, DenseMatrix* su,
              double eps, double sparsity) {
  TRICLUST_CHECK(su != nullptr);
  const size_t m = su->rows();
  TRICLUST_CHECK_EQ(xu.rows(), m);
  TRICLUST_CHECK_EQ(xr.rows(), m);
  TRICLUST_CHECK_EQ(gu.num_nodes(), m);
  TRICLUST_CHECK_EQ(temporal_weights == nullptr, temporal_target == nullptr);
  if (temporal_weights != nullptr) {
    TRICLUST_CHECK_EQ(temporal_weights->size(), m);
    TRICLUST_CHECK_EQ(temporal_target->rows(), m);
    TRICLUST_CHECK_EQ(temporal_target->cols(), su->cols());
  }

  const DenseMatrix xu_sf_hut = MatMulABt(SpMM(xu, sf), hu);  // Xu·Sf·Huᵀ
  const DenseMatrix xr_sp = SpMM(xr, sp);                     // Xr·Sp
  const DenseMatrix gu_su = SpMM(gu.adjacency(), *su);        // Gu·Su
  const DenseMatrix du_su = DiagScaleRows(gu.degrees(), *su);  // Du·Su

  const DenseMatrix sftsf = MatMulAtB(sf, sf);
  const DenseMatrix hu_sftsf_hut = MatMul(hu, MatMulABt(sftsf, hu));
  const DenseMatrix sptsp = MatMulAtB(sp, sp);

  // Δ_Su = SuᵀXuSfHuᵀ + SuᵀXrSp − HuSfᵀSfHuᵀ − SpᵀSp − β·SuᵀLuSu
  //        [− γ·Suᵀ(Su − Suw) over evolving rows online].
  DenseMatrix delta = MatMulAtB(*su, xu_sf_hut);
  delta.AddInPlace(MatMulAtB(*su, xr_sp));
  delta.SubInPlace(hu_sftsf_hut);
  delta.SubInPlace(sptsp);
  DenseMatrix sut_lu_su = MatMulAtB(*su, du_su);
  sut_lu_su.SubInPlace(MatMulAtB(*su, gu_su));
  delta.Axpy(-beta, sut_lu_su);
  if (temporal_weights != nullptr) {
    DenseMatrix weighted_diff = DiagScaleRows(*temporal_weights, *su);
    weighted_diff.SubInPlace(
        DiagScaleRows(*temporal_weights, *temporal_target));
    delta.SubInPlace(MatMulAtB(*su, weighted_diff));
  }

  DenseMatrix delta_pos;
  DenseMatrix delta_neg;
  SplitPositiveNegative(delta, &delta_pos, &delta_neg);

  DenseMatrix numer = xu_sf_hut;
  numer.AddInPlace(xr_sp);
  numer.Axpy(beta, gu_su);
  numer.AddInPlace(MatMul(*su, delta_neg));
  if (temporal_weights != nullptr) {
    numer.AddInPlace(DiagScaleRows(*temporal_weights, *temporal_target));
  }

  DenseMatrix denom = MatMul(*su, hu_sftsf_hut);
  denom.AddInPlace(MatMul(*su, sptsp));
  denom.Axpy(beta, du_su);
  denom.AddInPlace(MatMul(*su, delta_pos));
  if (temporal_weights != nullptr) {
    denom.AddInPlace(DiagScaleRows(*temporal_weights, *su));
  }
  if (sparsity > 0.0) {
    for (size_t i = 0; i < denom.size(); ++i) denom.data()[i] += sparsity;
  }

  MultiplicativeUpdateInPlace(su, numer, denom, eps);
}

void UpdateHp(const SparseMatrix& xp, const DenseMatrix& sp,
              const DenseMatrix& sf, DenseMatrix* hp, double eps) {
  TRICLUST_CHECK(hp != nullptr);
  const DenseMatrix numer = MatMulAtB(sp, SpMM(xp, sf));  // SpᵀXpSf
  const DenseMatrix denom = MatMul(
      MatMulAtB(sp, sp), MatMul(*hp, MatMulAtB(sf, sf)));  // SpᵀSp·Hp·SfᵀSf
  MultiplicativeUpdateInPlace(hp, numer, denom, eps);
}

void UpdateHu(const SparseMatrix& xu, const DenseMatrix& su,
              const DenseMatrix& sf, DenseMatrix* hu, double eps) {
  TRICLUST_CHECK(hu != nullptr);
  const DenseMatrix numer = MatMulAtB(su, SpMM(xu, sf));  // SuᵀXuSf
  const DenseMatrix denom = MatMul(
      MatMulAtB(su, su), MatMul(*hu, MatMulAtB(sf, sf)));  // SuᵀSu·Hu·SfᵀSf
  MultiplicativeUpdateInPlace(hu, numer, denom, eps);
}

}  // namespace update
}  // namespace triclust
