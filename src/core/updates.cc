#include "src/core/updates.h"

#include "src/matrix/ops.h"
#include "src/util/logging.h"

namespace triclust {
namespace update {

// Every rule below performs the exact operation sequence of the original
// allocate-per-call implementation, with each temporary replaced by a
// workspace buffer (and the SpTMM scatter products replaced by SpMM over
// the cached transpose, which accumulates every output entry in the same
// order) — so results are bit-identical to the historical code path.

namespace {

using Slot = UpdateWorkspace::TransposeSlot;

/// Adds the L1 sparsity sub-gradient constant to the denominator.
void AddSparsity(DenseMatrix* denom, double sparsity) {
  if (sparsity <= 0.0) return;
  double* p = denom->data();
  for (size_t i = 0; i < denom->size(); ++i) p[i] += sparsity;
}

/// Xᵀ·D into `out`. With a caller-owned workspace (`cache` non-null), the
/// parallel SpMM over the transpose cached in `slot` (built once per fit);
/// without one, the one-pass serial scatter — building a throwaway
/// transpose per call would double the sparse traffic of the legacy path.
/// Both accumulate each output entry in the same order, so the results are
/// bit-identical.
void TransposedSpMM(UpdateWorkspace* cache, Slot slot, const SparseMatrix& x,
                    const DenseMatrix& d, DenseMatrix* out) {
  if (cache != nullptr) {
    SpMMInto(cache->Transposed(slot, x), d, out);
  } else {
    SpTMMInto(x, d, out);
  }
}

}  // namespace

const SparseMatrix& UpdateWorkspace::Transposed(TransposeSlot slot,
                                                const SparseMatrix& x) {
  CachedTranspose& entry = transpose_cache_[static_cast<int>(slot)];
  if (entry.source != &x) {
    entry.transposed = x.Transposed();
    entry.source = &x;
  }
  return entry.transposed;
}

void UpdateWorkspace::ResetTransposeCache() {
  for (CachedTranspose& entry : transpose_cache_) {
    entry.source = nullptr;
  }
}

void UpdateSf(const SparseMatrix& xp, const SparseMatrix& xu,
              const DenseMatrix& sp, const DenseMatrix& su,
              const DenseMatrix& hp, const DenseMatrix& hu, double alpha,
              const DenseMatrix& sf_target, DenseMatrix* sf, double eps,
              double sparsity, UpdateWorkspace* workspace) {
  TRICLUST_CHECK(sf != nullptr);
  UpdateWorkspace local;
  UpdateWorkspace& ws = workspace != nullptr ? *workspace : local;
  // With a workspace, every Xᵀ·D must ride the cached transpose; reaching
  // the serial SpTMM scatter under this scope is a loud failure.
  internal::ScopedForbidSpTMMScatter forbid_scatter(workspace != nullptr);
  const size_t l = sf->rows();
  const size_t k = sf->cols();
  TRICLUST_CHECK_EQ(xp.cols(), l);
  TRICLUST_CHECK_EQ(xu.cols(), l);
  TRICLUST_CHECK_EQ(sf_target.rows(), l);
  TRICLUST_CHECK_EQ(sf_target.cols(), k);

  // l×k data-driven pull terms.
  TransposedSpMM(workspace, Slot::kXu, xu, su, &ws.rows_a);
  MatMulInto(ws.rows_a, hu, &ws.rows_b);  // Xuᵀ·Su·Hu
  TransposedSpMM(workspace, Slot::kXp, xp, sp, &ws.rows_a);
  MatMulInto(ws.rows_a, hp, &ws.rows_c);  // Xpᵀ·Sp·Hp

  // k×k quadratic terms.
  MatMulAtBInto(su, su, &ws.kk_a);     // SuᵀSu
  MatMulAtBInto(sp, sp, &ws.kk_b);     // SpᵀSp
  MatMulInto(ws.kk_a, hu, &ws.kk_c);
  MatMulAtBInto(hu, ws.kk_c, &ws.kk_d);  // HuᵀSuᵀSuHu
  MatMulInto(ws.kk_b, hp, &ws.kk_c);
  MatMulAtBInto(hp, ws.kk_c, &ws.kk_e);  // HpᵀSpᵀSpHp

  // Δ_Sf = SfᵀXuᵀSuHu − HuᵀSuᵀSuHu + SfᵀXpᵀSpHp − HpᵀSpᵀSpHp
  //        − α·Sfᵀ(Sf − Sf_target).
  MatMulAtBInto(*sf, ws.rows_b, &ws.delta);
  ws.delta.SubInPlace(ws.kk_d);
  MatMulAtBInto(*sf, ws.rows_c, &ws.kk_c);
  ws.delta.AddInPlace(ws.kk_c);
  ws.delta.SubInPlace(ws.kk_e);
  MatMulAtBInto(*sf, *sf, &ws.kk_f);
  MatMulAtBInto(*sf, sf_target, &ws.kk_c);
  ws.kk_f.SubInPlace(ws.kk_c);
  ws.delta.Axpy(-alpha, ws.kk_f);

  SplitPositiveNegative(ws.delta, &ws.delta_pos, &ws.delta_neg);

  ws.numer = ws.rows_b;
  ws.numer.AddInPlace(ws.rows_c);
  ws.numer.Axpy(alpha, sf_target);
  MatMulInto(*sf, ws.delta_neg, &ws.rows_a);
  ws.numer.AddInPlace(ws.rows_a);

  MatMulInto(*sf, ws.kk_d, &ws.denom);
  MatMulInto(*sf, ws.kk_e, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  ws.denom.Axpy(alpha, *sf);
  MatMulInto(*sf, ws.delta_pos, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  AddSparsity(&ws.denom, sparsity);

  MultiplicativeUpdateInPlace(sf, ws.numer, ws.denom, eps);
}

void UpdateSp(const SparseMatrix& xp, const SparseMatrix& xr,
              const DenseMatrix& sf, const DenseMatrix& hp,
              const DenseMatrix& su, DenseMatrix* sp, double eps,
              double sparsity, const std::vector<double>* prior_weights,
              const DenseMatrix* prior_target, UpdateWorkspace* workspace) {
  TRICLUST_CHECK(sp != nullptr);
  UpdateWorkspace local;
  UpdateWorkspace& ws = workspace != nullptr ? *workspace : local;
  // With a workspace, every Xᵀ·D must ride the cached transpose; reaching
  // the serial SpTMM scatter under this scope is a loud failure.
  internal::ScopedForbidSpTMMScatter forbid_scatter(workspace != nullptr);
  const size_t n = sp->rows();
  TRICLUST_CHECK_EQ(xp.rows(), n);
  TRICLUST_CHECK_EQ(xr.cols(), n);
  TRICLUST_CHECK_EQ(prior_weights == nullptr, prior_target == nullptr);
  if (prior_weights != nullptr) {
    TRICLUST_CHECK_EQ(prior_weights->size(), n);
    TRICLUST_CHECK_EQ(prior_target->rows(), n);
    TRICLUST_CHECK_EQ(prior_target->cols(), sp->cols());
  }

  SpMMInto(xp, sf, &ws.rows_a);
  MatMulABtInto(ws.rows_a, hp, &ws.rows_b);  // Xp·Sf·Hpᵀ
  TransposedSpMM(workspace, Slot::kXr, xr, su, &ws.rows_c);  // Xrᵀ·Su

  MatMulAtBInto(sf, sf, &ws.kk_a);  // SfᵀSf
  MatMulABtInto(ws.kk_a, hp, &ws.kk_b);
  MatMulInto(hp, ws.kk_b, &ws.kk_c);  // Hp·SfᵀSf·Hpᵀ
  MatMulAtBInto(su, su, &ws.kk_d);    // SuᵀSu

  // Δ_Sp = SpᵀXpSfHpᵀ − HpSfᵀSfHpᵀ + SpᵀXrᵀSu − SuᵀSu.
  MatMulAtBInto(*sp, ws.rows_b, &ws.delta);
  ws.delta.SubInPlace(ws.kk_c);
  MatMulAtBInto(*sp, ws.rows_c, &ws.kk_b);
  ws.delta.AddInPlace(ws.kk_b);
  ws.delta.SubInPlace(ws.kk_d);
  if (prior_weights != nullptr) {
    DiagScaleRowsInto(*prior_weights, *sp, &ws.rows_e);
    DiagScaleRowsInto(*prior_weights, *prior_target, &ws.rows_a);
    ws.rows_e.SubInPlace(ws.rows_a);
    MatMulAtBInto(*sp, ws.rows_e, &ws.kk_b);
    ws.delta.SubInPlace(ws.kk_b);
  }

  SplitPositiveNegative(ws.delta, &ws.delta_pos, &ws.delta_neg);

  ws.numer = ws.rows_b;
  ws.numer.AddInPlace(ws.rows_c);
  MatMulInto(*sp, ws.delta_neg, &ws.rows_a);
  ws.numer.AddInPlace(ws.rows_a);
  if (prior_weights != nullptr) {
    DiagScaleRowsInto(*prior_weights, *prior_target, &ws.rows_a);
    ws.numer.AddInPlace(ws.rows_a);
  }

  MatMulInto(*sp, ws.kk_c, &ws.denom);
  MatMulInto(*sp, ws.kk_d, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  MatMulInto(*sp, ws.delta_pos, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  if (prior_weights != nullptr) {
    DiagScaleRowsInto(*prior_weights, *sp, &ws.rows_a);
    ws.denom.AddInPlace(ws.rows_a);
  }
  AddSparsity(&ws.denom, sparsity);

  MultiplicativeUpdateInPlace(sp, ws.numer, ws.denom, eps);
}

void UpdateSu(const SparseMatrix& xu, const SparseMatrix& xr,
              const UserGraph& gu, const DenseMatrix& sf,
              const DenseMatrix& hu, const DenseMatrix& sp, double beta,
              const std::vector<double>* temporal_weights,
              const DenseMatrix* temporal_target, DenseMatrix* su,
              double eps, double sparsity, UpdateWorkspace* workspace) {
  TRICLUST_CHECK(su != nullptr);
  UpdateWorkspace local;
  UpdateWorkspace& ws = workspace != nullptr ? *workspace : local;
  // With a workspace, every Xᵀ·D must ride the cached transpose; reaching
  // the serial SpTMM scatter under this scope is a loud failure.
  internal::ScopedForbidSpTMMScatter forbid_scatter(workspace != nullptr);
  const size_t m = su->rows();
  TRICLUST_CHECK_EQ(xu.rows(), m);
  TRICLUST_CHECK_EQ(xr.rows(), m);
  TRICLUST_CHECK_EQ(gu.num_nodes(), m);
  TRICLUST_CHECK_EQ(temporal_weights == nullptr, temporal_target == nullptr);
  if (temporal_weights != nullptr) {
    TRICLUST_CHECK_EQ(temporal_weights->size(), m);
    TRICLUST_CHECK_EQ(temporal_target->rows(), m);
    TRICLUST_CHECK_EQ(temporal_target->cols(), su->cols());
  }

  SpMMInto(xu, sf, &ws.rows_a);
  MatMulABtInto(ws.rows_a, hu, &ws.rows_b);  // Xu·Sf·Huᵀ
  SpMMInto(xr, sp, &ws.rows_c);              // Xr·Sp
  SpMMInto(gu.adjacency(), *su, &ws.rows_d);  // Gu·Su
  DiagScaleRowsInto(gu.degrees(), *su, &ws.rows_e);  // Du·Su

  MatMulAtBInto(sf, sf, &ws.kk_a);  // SfᵀSf
  MatMulABtInto(ws.kk_a, hu, &ws.kk_b);
  MatMulInto(hu, ws.kk_b, &ws.kk_c);  // Hu·SfᵀSf·Huᵀ
  MatMulAtBInto(sp, sp, &ws.kk_d);    // SpᵀSp

  // Δ_Su = SuᵀXuSfHuᵀ + SuᵀXrSp − HuSfᵀSfHuᵀ − SpᵀSp − β·SuᵀLuSu
  //        [− γ·Suᵀ(Su − Suw) over evolving rows online].
  MatMulAtBInto(*su, ws.rows_b, &ws.delta);
  MatMulAtBInto(*su, ws.rows_c, &ws.kk_b);
  ws.delta.AddInPlace(ws.kk_b);
  ws.delta.SubInPlace(ws.kk_c);
  ws.delta.SubInPlace(ws.kk_d);
  MatMulAtBInto(*su, ws.rows_e, &ws.kk_e);  // SuᵀDuSu
  MatMulAtBInto(*su, ws.rows_d, &ws.kk_b);  // SuᵀGuSu
  ws.kk_e.SubInPlace(ws.kk_b);
  ws.delta.Axpy(-beta, ws.kk_e);
  if (temporal_weights != nullptr) {
    DiagScaleRowsInto(*temporal_weights, *su, &ws.rows_f);
    DiagScaleRowsInto(*temporal_weights, *temporal_target, &ws.rows_a);
    ws.rows_f.SubInPlace(ws.rows_a);
    MatMulAtBInto(*su, ws.rows_f, &ws.kk_b);
    ws.delta.SubInPlace(ws.kk_b);
  }

  SplitPositiveNegative(ws.delta, &ws.delta_pos, &ws.delta_neg);

  ws.numer = ws.rows_b;
  ws.numer.AddInPlace(ws.rows_c);
  ws.numer.Axpy(beta, ws.rows_d);
  MatMulInto(*su, ws.delta_neg, &ws.rows_a);
  ws.numer.AddInPlace(ws.rows_a);
  if (temporal_weights != nullptr) {
    DiagScaleRowsInto(*temporal_weights, *temporal_target, &ws.rows_a);
    ws.numer.AddInPlace(ws.rows_a);
  }

  MatMulInto(*su, ws.kk_c, &ws.denom);
  MatMulInto(*su, ws.kk_d, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  ws.denom.Axpy(beta, ws.rows_e);
  MatMulInto(*su, ws.delta_pos, &ws.rows_a);
  ws.denom.AddInPlace(ws.rows_a);
  if (temporal_weights != nullptr) {
    DiagScaleRowsInto(*temporal_weights, *su, &ws.rows_a);
    ws.denom.AddInPlace(ws.rows_a);
  }
  AddSparsity(&ws.denom, sparsity);

  MultiplicativeUpdateInPlace(su, ws.numer, ws.denom, eps);
}

void UpdateHp(const SparseMatrix& xp, const DenseMatrix& sp,
              const DenseMatrix& sf, DenseMatrix* hp, double eps,
              UpdateWorkspace* workspace) {
  TRICLUST_CHECK(hp != nullptr);
  UpdateWorkspace local;
  UpdateWorkspace& ws = workspace != nullptr ? *workspace : local;
  // With a workspace, every Xᵀ·D must ride the cached transpose; reaching
  // the serial SpTMM scatter under this scope is a loud failure.
  internal::ScopedForbidSpTMMScatter forbid_scatter(workspace != nullptr);
  SpMMInto(xp, sf, &ws.rows_a);
  MatMulAtBInto(sp, ws.rows_a, &ws.numer);  // SpᵀXpSf
  MatMulAtBInto(sp, sp, &ws.kk_a);
  MatMulAtBInto(sf, sf, &ws.kk_b);
  MatMulInto(*hp, ws.kk_b, &ws.kk_c);
  MatMulInto(ws.kk_a, ws.kk_c, &ws.denom);  // SpᵀSp·Hp·SfᵀSf
  MultiplicativeUpdateInPlace(hp, ws.numer, ws.denom, eps);
}

void UpdateHu(const SparseMatrix& xu, const DenseMatrix& su,
              const DenseMatrix& sf, DenseMatrix* hu, double eps,
              UpdateWorkspace* workspace) {
  TRICLUST_CHECK(hu != nullptr);
  UpdateWorkspace local;
  UpdateWorkspace& ws = workspace != nullptr ? *workspace : local;
  // With a workspace, every Xᵀ·D must ride the cached transpose; reaching
  // the serial SpTMM scatter under this scope is a loud failure.
  internal::ScopedForbidSpTMMScatter forbid_scatter(workspace != nullptr);
  SpMMInto(xu, sf, &ws.rows_a);
  MatMulAtBInto(su, ws.rows_a, &ws.numer);  // SuᵀXuSf
  MatMulAtBInto(su, su, &ws.kk_a);
  MatMulAtBInto(sf, sf, &ws.kk_b);
  MatMulInto(*hu, ws.kk_b, &ws.kk_c);
  MatMulInto(ws.kk_a, ws.kk_c, &ws.denom);  // SuᵀSu·Hu·SfᵀSf
  MultiplicativeUpdateInPlace(hu, ws.numer, ws.denom, eps);
}

}  // namespace update
}  // namespace triclust
