#include "src/core/timeline.h"

#include "src/core/offline.h"
#include "src/core/online.h"
#include "src/eval/metrics.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace triclust {

const char* TimelineModeName(TimelineMode mode) {
  switch (mode) {
    case TimelineMode::kOnline:
      return "online";
    case TimelineMode::kMiniBatch:
      return "mini-batch";
    case TimelineMode::kFullBatch:
      return "full-batch";
  }
  return "?";
}

namespace {

void Score(const DatasetMatrices& data, const TriClusterResult& result,
           TimelineStepMetrics* step) {
  if (data.num_tweets() == 0) return;
  const std::vector<int> tweet_clusters = result.TweetClusters();
  const std::vector<int> user_clusters = result.UserClusters();
  step->tweet_accuracy =
      100.0 * ClusteringAccuracy(tweet_clusters, data.tweet_labels);
  step->tweet_nmi = 100.0 * NormalizedMutualInformation(tweet_clusters,
                                                        data.tweet_labels);
  step->user_accuracy =
      100.0 * ClusteringAccuracy(user_clusters, data.user_labels);
  step->user_nmi =
      100.0 * NormalizedMutualInformation(user_clusters, data.user_labels);
}

}  // namespace

std::vector<TimelineStepMetrics> RunTimeline(
    const Corpus& corpus, const MatrixBuilder& builder,
    const std::vector<Snapshot>& snapshots, const SentimentLexicon& lexicon,
    TimelineMode mode, const OnlineConfig& config) {
  const DenseMatrix sf0 =
      lexicon.BuildSf0(builder.vocabulary(), config.base.num_clusters);

  std::vector<TimelineStepMetrics> steps;
  steps.reserve(snapshots.size());

  OnlineTriClusterer online(config, sf0);
  OfflineTriClusterer offline(config.base);

  std::vector<size_t> prefix_tweets;  // full-batch accumulator

  for (size_t s = 0; s < snapshots.size(); ++s) {
    const Snapshot& snap = snapshots[s];
    TimelineStepMetrics step;
    step.snapshot_index = static_cast<int>(s);
    step.day = snap.last_day;
    step.num_tweets = snap.size();

    const DatasetMatrices data =
        builder.Build(corpus, snap.tweet_ids, snap.last_day);
    step.num_users = data.num_users();

    Stopwatch watch;
    switch (mode) {
      case TimelineMode::kOnline: {
        const TriClusterResult result = online.ProcessSnapshot(data);
        step.seconds = watch.ElapsedSeconds();
        step.iterations = result.iterations;
        Score(data, result, &step);
        break;
      }
      case TimelineMode::kMiniBatch: {
        if (data.num_tweets() > 0) {
          const TriClusterResult result = offline.Run(data, sf0);
          step.seconds = watch.ElapsedSeconds();
          step.iterations = result.iterations;
          Score(data, result, &step);
        }
        break;
      }
      case TimelineMode::kFullBatch: {
        prefix_tweets.insert(prefix_tweets.end(), snap.tweet_ids.begin(),
                             snap.tweet_ids.end());
        if (!prefix_tweets.empty()) {
          // Re-solve over all data seen so far, then score only the rows of
          // the current snapshot (the last snap.size() tweets of the prefix
          // and the users active today).
          const DatasetMatrices all =
              builder.Build(corpus, prefix_tweets, snap.last_day);
          const TriClusterResult result = offline.Run(all, sf0);
          step.seconds = watch.ElapsedSeconds();
          step.iterations = result.iterations;
          if (snap.size() > 0) {
            const std::vector<int> all_tweet_clusters =
                result.TweetClusters();
            const std::vector<int> all_user_clusters = result.UserClusters();
            std::vector<int> tweet_clusters(
                all_tweet_clusters.end() -
                    static_cast<ptrdiff_t>(snap.size()),
                all_tweet_clusters.end());
            std::vector<Sentiment> tweet_labels(
                all.tweet_labels.end() - static_cast<ptrdiff_t>(snap.size()),
                all.tweet_labels.end());
            step.tweet_accuracy =
                100.0 * ClusteringAccuracy(tweet_clusters, tweet_labels);
            step.tweet_nmi = 100.0 * NormalizedMutualInformation(
                                         tweet_clusters, tweet_labels);

            // All users seen so far, scored against the temporal truth at
            // today's date — full-batch re-estimates everyone each day.
            std::vector<int> user_clusters;
            std::vector<Sentiment> user_labels;
            for (size_t j = 0; j < all.user_ids.size(); ++j) {
              user_clusters.push_back(all_user_clusters[j]);
              user_labels.push_back(all.user_labels[j]);
            }
            step.user_accuracy =
                100.0 * ClusteringAccuracy(user_clusters, user_labels);
            step.user_nmi = 100.0 * NormalizedMutualInformation(
                                        user_clusters, user_labels);
          }
        }
        break;
      }
    }
    steps.push_back(step);
  }
  return steps;
}

namespace {

double Average(const std::vector<TimelineStepMetrics>& steps,
               double TimelineStepMetrics::*field) {
  double total = 0.0;
  size_t count = 0;
  for (const auto& step : steps) {
    if (step.num_tweets == 0) continue;
    total += step.*field;
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace

double AverageTweetAccuracy(const std::vector<TimelineStepMetrics>& steps) {
  return Average(steps, &TimelineStepMetrics::tweet_accuracy);
}
double AverageUserAccuracy(const std::vector<TimelineStepMetrics>& steps) {
  return Average(steps, &TimelineStepMetrics::user_accuracy);
}
double AverageTweetNmi(const std::vector<TimelineStepMetrics>& steps) {
  return Average(steps, &TimelineStepMetrics::tweet_nmi);
}
double AverageUserNmi(const std::vector<TimelineStepMetrics>& steps) {
  return Average(steps, &TimelineStepMetrics::user_nmi);
}
double TotalSeconds(const std::vector<TimelineStepMetrics>& steps) {
  double total = 0.0;
  for (const auto& step : steps) total += step.seconds;
  return total;
}

}  // namespace triclust
