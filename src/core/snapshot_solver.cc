#include "src/core/snapshot_solver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/init.h"
#include "src/core/objective.h"
#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace triclust {

SnapshotSolver::SnapshotSolver(OnlineConfig config, DenseMatrix sf0)
    : config_(config), sf0_(std::move(sf0)) {
  TRICLUST_CHECK_GE(config_.base.num_clusters, 2);
  TRICLUST_CHECK_EQ(sf0_.cols(),
                    static_cast<size_t>(config_.base.num_clusters));
  TRICLUST_CHECK_GT(config_.tau, 0.0);
  TRICLUST_CHECK_LE(config_.tau, 1.0);
  TRICLUST_CHECK_GE(config_.window, 1);
  TRICLUST_CHECK_GE(config_.alpha, 0.0);
  TRICLUST_CHECK_GE(config_.gamma, 0.0);
}

DenseMatrix SnapshotSolver::ComputeSfw(const StreamState& state) const {
  if (state.sf_history.empty()) return sf0_;
  DenseMatrix sfw(sf0_.rows(), sf0_.cols(), 0.0);
  double weight = config_.tau;
  double weight_sum = 0.0;
  for (const DenseMatrix& sf : state.sf_history) {
    sfw.Axpy(weight, sf);
    weight_sum += weight;
    weight *= config_.tau;
  }
  if (weight_sum > 0.0) sfw.ScaleInPlace(1.0 / weight_sum);
  // A converged Sf's magnitude is an arbitrary byproduct of the
  // factorization scale; as a regularization target only the row *shapes*
  // matter. Renormalizing each feature row to a distribution keeps the
  // target on the same scale class as the prior Sf0 (row-stochastic), so
  // the α pull stays meaningful across snapshots of any volume.
  sfw.NormalizeRowsL1();
  // Persistent lexicon anchor (see OnlineConfig::lexicon_blend).
  const double blend = config_.lexicon_blend;
  if (blend > 0.0) {
    sfw.ScaleInPlace(1.0 - blend);
    sfw.Axpy(blend, sf0_);
  }
  return sfw;
}

TriClusterResult SnapshotSolver::Solve(const DatasetMatrices& data,
                                       StreamState* state, SolveInfo* info,
                                       update::UpdateWorkspace* workspace) const {
  const size_t n = data.num_tweets();
  const size_t m = data.num_users();
  const size_t k = static_cast<size_t>(config_.base.num_clusters);
  TRICLUST_CHECK_EQ(data.xp.cols(), sf0_.rows());
  const double eps = config_.base.epsilon;

  // One update workspace per snapshot fit unless the caller owns one. A
  // caller-owned workspace may still hold transposes keyed to a *previous*
  // snapshot's (freed) matrix addresses, which a new allocation can
  // coincidentally reuse — drop them here so the by-address cache can only
  // ever hit within this fit. The cache is per-fit anyway (the data
  // matrices change every snapshot); only the scratch buffers usefully
  // survive across fits.
  update::UpdateWorkspace local_workspace;
  if (workspace == nullptr) {
    workspace = &local_workspace;
  } else {
    workspace->ResetTransposeCache();
  }

  // The workspace carries the fit's thread budget (see updates.h): install
  // it on this thread for the whole solve so every kernel below honors it.
  // Ambient budgets (the default) make this a no-op and the fit inherits
  // the caller's width. Thread-local, so concurrent Solve() calls with
  // different budgets never interfere.
  ScopedThreadBudget fit_budget(workspace->budget);
  // Same scoping for the kernel-body selection (kernel_dispatch.h): pool
  // workers execute whatever this thread selects, so installing it here
  // covers every kernel of the fit.
  ScopedKernelMode fit_kernels(config_.base.kernel_mode);

  const DenseMatrix sfw = ComputeSfw(*state);

  // --- partition users (paper: new / evolving / disappeared) --------------
  UserPartition partition;
  for (size_t j = 0; j < m; ++j) {
    if (state->user_history.count(data.user_ids[j]) > 0) {
      partition.evolving_rows.push_back(j);
    } else {
      partition.new_rows.push_back(j);
    }
  }
  {
    size_t active_with_history = partition.evolving_rows.size();
    partition.num_disappeared =
        state->user_history.size() - active_with_history;
  }

  TriClusterResult result;
  if (n == 0) {
    // Nothing arrived in this window: carry the feature state forward.
    // Trim with the same max(window-1, 1) bound as the main path — the
    // historical empty-snapshot path trimmed to window-1, which for
    // window == 1 emptied the history and reset the stream to the lexicon
    // prior after one quiet day.
    result.sf = sfw;
    ++state->timestep;
    state->sf_history.push_front(sfw);
    while (static_cast<int>(state->sf_history.size()) >
           std::max(config_.window - 1, 1)) {
      state->sf_history.pop_back();
    }
    if (info != nullptr) {
      info->sfw = sfw;
      info->partition = std::move(partition);
    }
    return result;
  }

  // --- temporal user targets ----------------------------------------------
  // Suw(t): decayed aggregate of each evolving user's history (normalized
  // like Sfw); zero rows (and zero weight) for new users.
  DenseMatrix suw(m, k, 0.0);
  std::vector<double> temporal_weights(m, 0.0);
  for (size_t j : partition.evolving_rows) {
    const auto& history = state->user_history.at(data.user_ids[j]);
    double weight = config_.tau;
    for (const auto& row : history) {
      TRICLUST_CHECK_EQ(row.size(), k);
      for (size_t c = 0; c < k; ++c) suw(j, c) += weight * row[c];
      weight *= config_.tau;
    }
    // Row-normalize to a distribution (same rationale as Sfw).
    double row_sum = 0.0;
    for (size_t c = 0; c < k; ++c) row_sum += suw(j, c);
    if (row_sum > 0.0) {
      for (size_t c = 0; c < k; ++c) suw(j, c) /= row_sum;
    } else {
      for (size_t c = 0; c < k; ++c) suw(j, c) = 1.0 / static_cast<double>(k);
    }
    temporal_weights[j] = config_.gamma;
  }

  // --- initialization (Algorithm 2 lines 1–2) -----------------------------
  Rng rng(config_.base.seed + static_cast<uint64_t>(state->timestep) * 7919);
  FactorSet f;
  f.sf = sfw;  // line 1: Sf(t) = Sfw(t)
  {            // strictly positive entries so every coordinate can move
    double* p = f.sf.data();
    for (size_t i = 0; i < f.sf.size(); ++i) {
      p[i] = std::max(p[i], 1e-4) + rng.Uniform(0.0, 0.01);
    }
  }

  f.sp = SpMM(data.xp, sfw);
  f.sp.NormalizeRowsL1();
  for (size_t i = 0; i < f.sp.size(); ++i) {
    f.sp.data()[i] += rng.Uniform(0.01, 0.05);
  }

  f.su = SpMM(data.xu, sfw);
  f.su.NormalizeRowsL1();
  for (size_t i = 0; i < f.su.size(); ++i) {
    f.su.data()[i] += rng.Uniform(0.01, 0.05);
  }
  // line 1: evolving users resume from their aggregate.
  if (config_.seed_users_from_history) {
    for (size_t j : partition.evolving_rows) {
      for (size_t c = 0; c < k; ++c) {
        f.su(j, c) = std::max(suw(j, c), 1e-4) + rng.Uniform(0.0, 0.01);
      }
    }
  }

  f.hp = DenseMatrix::Identity(k);
  f.hu = DenseMatrix::Identity(k);
  for (size_t i = 0; i < f.hp.size(); ++i) {
    f.hp.data()[i] += rng.Uniform(0.01, 0.05);
    f.hu.data()[i] += rng.Uniform(0.01, 0.05);
  }

  // --- multiplicative loop (Algorithm 2 lines 3–8) ------------------------
  auto record_loss = [&]() -> double {
    const LossComponents loss = ComputeObjective(
        data.xp, data.xu, data.xr, data.gu, f.sp, f.su, f.sf, f.hp, f.hu,
        config_.alpha, sfw, config_.base.beta, &temporal_weights, &suw);
    if (config_.base.track_loss) result.loss_history.push_back(loss);
    return loss.Total();
  };

  double previous_total = record_loss();
  FactorSet last_finite = f;
  for (int iter = 0; iter < config_.base.max_iterations; ++iter) {
    // Same sweep order as the offline Algorithm 1 (Sp/Hp before Su/Hu
    // before Sf): updating Sf against the still-uninformative Sp/Su of the
    // first iterations would corrupt the carried-over feature state.
    update::UpdateSp(data.xp, data.xr, f.sf, f.hp, f.su, &f.sp, eps,
                     config_.base.sparsity, nullptr, nullptr, workspace);
    update::UpdateHp(data.xp, f.sp, f.sf, &f.hp, eps, workspace);
    update::UpdateSu(data.xu, data.xr, data.gu, f.sf, f.hu, f.sp,
                     config_.base.beta, &temporal_weights, &suw, &f.su, eps,
                     config_.base.sparsity, workspace);
    update::UpdateHu(data.xu, f.su, f.sf, &f.hu, eps, workspace);
    update::UpdateSf(data.xp, data.xu, f.sp, f.su, f.hp, f.hu, config_.alpha,
                     sfw, &f.sf, eps, config_.base.sparsity, workspace);

    result.iterations = iter + 1;
    const double total = record_loss();
    if (!std::isfinite(total)) {
      // See OfflineTriClusterer: restore the last finite iterate rather
      // than poisoning the stream state with inf/nan factors.
      TRICLUST_LOG(kWarning)
          << "online tri-clustering diverged at snapshot " << state->timestep
          << " iteration " << iter << "; restoring last finite factors";
      f = std::move(last_finite);
      if (config_.base.track_loss) result.loss_history.pop_back();
      break;
    }
    last_finite = f;
    const double denom = std::max(previous_total, 1e-30);
    if (std::fabs(previous_total - total) / denom <
        config_.base.tolerance) {
      result.converged = true;
      previous_total = total;
      break;
    }
    previous_total = total;
  }

  // --- roll state forward ---------------------------------------------------
  state->sf_history.push_front(f.sf);
  while (static_cast<int>(state->sf_history.size()) >
         std::max(config_.window - 1, 1)) {
    state->sf_history.pop_back();
  }
  for (size_t j = 0; j < m; ++j) {
    auto& history = state->user_history[data.user_ids[j]];
    std::vector<double> row(f.su.Row(j), f.su.Row(j) + k);
    history.push_front(std::move(row));
    while (static_cast<int>(history.size()) >
           std::max(config_.window - 1, 1)) {
      history.pop_back();
    }
  }
  ++state->timestep;

  if (info != nullptr) {
    info->sfw = sfw;
    info->partition = std::move(partition);
  }

  result.sp = std::move(f.sp);
  result.su = std::move(f.su);
  result.sf = std::move(f.sf);
  result.hp = std::move(f.hp);
  result.hu = std::move(f.hu);
  return result;
}

}  // namespace triclust
