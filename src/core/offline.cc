#include "src/core/offline.h"

#include <cmath>

#include "src/core/init.h"
#include "src/core/objective.h"
#include "src/core/updates.h"
#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace triclust {

OfflineTriClusterer::OfflineTriClusterer(TriClusterConfig config)
    : config_(config) {
  TRICLUST_CHECK_GE(config_.num_clusters, 2);
  TRICLUST_CHECK_GE(config_.alpha, 0.0);
  TRICLUST_CHECK_GE(config_.beta, 0.0);
  TRICLUST_CHECK_GE(config_.max_iterations, 1);
  TRICLUST_CHECK_GE(config_.num_threads, 0);
}

namespace {

/// Expands seed labels into the per-row pull (weights, one-hot target) used
/// by the guided update rules; rows without a usable seed get weight 0.
void BuildSeedPull(const std::vector<Sentiment>& seeds, size_t rows,
                   size_t k, double weight, std::vector<double>* out_weights,
                   DenseMatrix* out_target) {
  TRICLUST_CHECK(seeds.empty() || seeds.size() == rows);
  out_weights->assign(rows, 0.0);
  *out_target = DenseMatrix(rows, k, 0.0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == Sentiment::kUnlabeled) continue;
    const int cls = SentimentIndex(seeds[i]);
    if (cls >= static_cast<int>(k)) continue;
    (*out_weights)[i] = weight;
    (*out_target)(i, static_cast<size_t>(cls)) = 1.0;
  }
}

/// δ-weighted squared distance of the seeded rows to their targets.
double SeedLoss(const std::vector<double>& weights,
                const DenseMatrix& target, const DenseMatrix& factor) {
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0) continue;
    const double* a = factor.Row(i);
    const double* b = target.Row(i);
    double row = 0.0;
    for (size_t c = 0; c < factor.cols(); ++c) {
      const double diff = a[c] - b[c];
      row += diff * diff;
    }
    total += weights[i] * row;
  }
  return total;
}

}  // namespace

TriClusterResult OfflineTriClusterer::Run(const DatasetMatrices& data,
                                          const DenseMatrix& sf0,
                                          const Supervision* supervision) const {
  TRICLUST_CHECK_EQ(data.xp.rows(), data.xr.cols());
  TRICLUST_CHECK_EQ(data.xu.rows(), data.xr.rows());
  TRICLUST_CHECK_EQ(data.xp.cols(), data.xu.cols());
  TRICLUST_CHECK_EQ(sf0.rows(), data.xp.cols());
  TRICLUST_CHECK_EQ(sf0.cols(), static_cast<size_t>(config_.num_clusters));

  // Every kernel under this fit honors the configured per-fit thread
  // budget (installed thread-local, so concurrent fits with different
  // budgets coexist), and one workspace amortizes the data-matrix
  // transposes plus all update scratch across iterations.
  ScopedThreadBudget thread_scope(ThreadBudget(config_.num_threads));
  ScopedKernelMode kernel_scope(config_.kernel_mode);
  update::UpdateWorkspace workspace;

  FactorSet f = InitializeFactors(data, sf0, config_);
  const double eps = config_.epsilon;

  // Guided mode: expand seed labels into per-row pulls for Sp and Su.
  std::vector<double> tweet_seed_weights;
  DenseMatrix tweet_seed_target;
  std::vector<double> user_seed_weights;
  DenseMatrix user_seed_target;
  bool guide_tweets = false;
  bool guide_users = false;
  if (supervision != nullptr) {
    TRICLUST_CHECK_GE(supervision->weight, 0.0);
    const size_t k = static_cast<size_t>(config_.num_clusters);
    if (!supervision->tweet_seeds.empty()) {
      BuildSeedPull(supervision->tweet_seeds, data.num_tweets(), k,
                    supervision->weight, &tweet_seed_weights,
                    &tweet_seed_target);
      guide_tweets = true;
    }
    if (!supervision->user_seeds.empty()) {
      BuildSeedPull(supervision->user_seeds, data.num_users(), k,
                    supervision->weight, &user_seed_weights,
                    &user_seed_target);
      guide_users = true;
    }
  }

  TriClusterResult result;
  double previous_total = std::numeric_limits<double>::infinity();

  auto record_loss = [&]() -> double {
    LossComponents loss = ComputeObjective(
        data.xp, data.xu, data.xr, data.gu, f.sp, f.su, f.sf, f.hp, f.hu,
        config_.alpha, sf0, config_.beta);
    if (guide_tweets) {
      loss.guided_loss += SeedLoss(tweet_seed_weights, tweet_seed_target,
                                   f.sp);
    }
    if (guide_users) {
      loss.guided_loss += SeedLoss(user_seed_weights, user_seed_target,
                                   f.su);
    }
    if (config_.track_loss) result.loss_history.push_back(loss);
    return loss.Total();
  };

  previous_total = record_loss();

  FactorSet last_finite = f;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Algorithm 1 order: Sp, Hp, then Su/Hu, then Sf.
    update::UpdateSp(data.xp, data.xr, f.sf, f.hp, f.su, &f.sp, eps,
                     config_.sparsity,
                     guide_tweets ? &tweet_seed_weights : nullptr,
                     guide_tweets ? &tweet_seed_target : nullptr,
                     &workspace);
    update::UpdateHp(data.xp, f.sp, f.sf, &f.hp, eps, &workspace);
    update::UpdateSu(data.xu, data.xr, data.gu, f.sf, f.hu, f.sp,
                     config_.beta,
                     guide_users ? &user_seed_weights : nullptr,
                     guide_users ? &user_seed_target : nullptr, &f.su, eps,
                     config_.sparsity, &workspace);
    update::UpdateHu(data.xu, f.su, f.sf, &f.hu, eps, &workspace);
    update::UpdateSf(data.xp, data.xu, f.sp, f.su, f.hp, f.hu, config_.alpha,
                     sf0, &f.sf, eps, config_.sparsity, &workspace);

    result.iterations = iter + 1;
    const double total = record_loss();
    if (!std::isfinite(total)) {
      // Multiplicative blow-up (possible when factor scales run away, e.g.
      // extreme configurations): restore the last finite iterate and stop.
      TRICLUST_LOG(kWarning)
          << "offline tri-clustering diverged at iteration " << iter
          << "; restoring last finite factors";
      f = std::move(last_finite);
      if (config_.track_loss) result.loss_history.pop_back();
      break;
    }
    last_finite = f;
    const double denom = std::max(previous_total, 1e-30);
    if (std::fabs(previous_total - total) / denom < config_.tolerance) {
      result.converged = true;
      previous_total = total;
      break;
    }
    previous_total = total;
  }

  result.sp = std::move(f.sp);
  result.su = std::move(f.su);
  result.sf = std::move(f.sf);
  result.hp = std::move(f.hp);
  result.hu = std::move(f.hu);
  return result;
}

}  // namespace triclust
