#ifndef TRICLUST_SRC_CORE_STREAM_STATE_H_
#define TRICLUST_SRC_CORE_STREAM_STATE_H_

#include <deque>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"

namespace triclust {

/// The complete evolving state of one online tri-clustering stream
/// (paper §4): everything Algorithm 2 carries from snapshot t−1 to t.
///
/// This is a plain value type — copyable, movable, serializable — with no
/// behavior of its own. The per-snapshot solve lives in SnapshotSolver,
/// which maps (StreamState, DatasetMatrices) → (TriClusterResult,
/// StreamState'); keeping the state inert is what lets a serving layer hold
/// N campaign states side by side, checkpoint them independently, and fit
/// them on whichever thread is free.
///
/// Thread safety: that of any plain value — concurrent readers are safe,
/// and a writer (Solve() advancing it, set_state replacing it) needs
/// exclusive access. No internal synchronization.
struct StreamState {
  /// Number of snapshots processed so far.
  int timestep = 0;
  /// sf_history[0] is Sf(t−1); trimmed to window−1 entries by the solver.
  std::deque<DenseMatrix> sf_history;
  /// Per corpus-user history of Su rows, most recent first, trimmed to
  /// window−1 entries by the solver.
  std::unordered_map<size_t, std::deque<std::vector<double>>> user_history;

  /// Latest known sentiment row of a corpus user, or empty when unseen.
  /// Thread safety: const read; safe concurrently with other readers.
  std::vector<double> UserSentiment(size_t corpus_user_id) const;

  /// Serializes to the `triclust-online-state 1` text format (the same
  /// format OnlineTriClusterer::SaveState has always written, so existing
  /// checkpoints stay readable; spec in docs/FORMATS.md §2). User
  /// histories are written in sorted id order, so identical states yield
  /// identical bytes. Returns an IoError when the stream fails. Thread
  /// safety: const read of the state; `os` must not be shared.
  Status Write(std::ostream* os) const;

  /// Parses a state written by Write(). `num_features`/`num_clusters` are
  /// the dimensions of the owning solver's Sf0; every Sf matrix and user
  /// row in the checkpoint is validated against them (FailedPrecondition
  /// on a feature-space mismatch). Thread safety: stateless aside from
  /// `is`, which must not be shared.
  static Result<StreamState> Read(std::istream* is, size_t num_features,
                                  size_t num_clusters);
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_STREAM_STATE_H_
