#ifndef TRICLUST_SRC_CORE_STREAM_STATE_H_
#define TRICLUST_SRC_CORE_STREAM_STATE_H_

#include <deque>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"

namespace triclust {

/// The complete evolving state of one online tri-clustering stream
/// (paper §4): everything Algorithm 2 carries from snapshot t−1 to t.
///
/// This is a plain value type — copyable, movable, serializable — with no
/// behavior of its own. The per-snapshot solve lives in SnapshotSolver,
/// which maps (StreamState, DatasetMatrices) → (TriClusterResult,
/// StreamState'); keeping the state inert is what lets a serving layer hold
/// N campaign states side by side, checkpoint them independently, and fit
/// them on whichever thread is free.
struct StreamState {
  /// Number of snapshots processed so far.
  int timestep = 0;
  /// sf_history[0] is Sf(t−1); trimmed to window−1 entries by the solver.
  std::deque<DenseMatrix> sf_history;
  /// Per corpus-user history of Su rows, most recent first, trimmed to
  /// window−1 entries by the solver.
  std::unordered_map<size_t, std::deque<std::vector<double>>> user_history;

  /// Latest known sentiment row of a corpus user, or empty when unseen.
  std::vector<double> UserSentiment(size_t corpus_user_id) const;

  /// Serializes to the `triclust-online-state 1` text format (the same
  /// format OnlineTriClusterer::SaveState has always written, so existing
  /// checkpoints stay readable). User histories are written in sorted id
  /// order for deterministic files. Returns an IoError when the stream
  /// fails.
  Status Write(std::ostream* os) const;

  /// Parses a state written by Write(). `num_features`/`num_clusters` are
  /// the dimensions of the owning solver's Sf0; every Sf matrix and user
  /// row in the checkpoint is validated against them.
  static Result<StreamState> Read(std::istream* is, size_t num_features,
                                  size_t num_clusters);
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_STREAM_STATE_H_
