#ifndef TRICLUST_SRC_CORE_OBJECTIVE_H_
#define TRICLUST_SRC_CORE_OBJECTIVE_H_

#include <vector>

#include "src/core/result.h"
#include "src/graph/user_graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"

namespace triclust {

/// Evaluates every component of the tri-clustering objective (paper Eq. 1
/// offline, Eq. 19 online) at the current factors. The temporal user term is
/// included only when `temporal_weights`/`temporal_target` are provided
/// (per-row γ already folded into the weights).
LossComponents ComputeObjective(
    const SparseMatrix& xp, const SparseMatrix& xu, const SparseMatrix& xr,
    const UserGraph& gu, const DenseMatrix& sp, const DenseMatrix& su,
    const DenseMatrix& sf, const DenseMatrix& hp, const DenseMatrix& hu,
    double alpha, const DenseMatrix& sf_target, double beta,
    const std::vector<double>* temporal_weights = nullptr,
    const DenseMatrix* temporal_target = nullptr);

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_OBJECTIVE_H_
