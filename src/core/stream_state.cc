#include "src/core/stream_state.h"

#include <algorithm>
#include <string>

#include "src/matrix/io.h"
#include "src/util/string_util.h"

namespace triclust {

std::vector<double> StreamState::UserSentiment(size_t corpus_user_id) const {
  const auto it = user_history.find(corpus_user_id);
  if (it == user_history.end() || it->second.empty()) return {};
  return it->second.front();
}

Status StreamState::Write(std::ostream* os) const {
  std::ostream& out = *os;
  out << "triclust-online-state 1\n";
  out << timestep << " " << sf_history.size() << " " << user_history.size()
      << "\n";
  for (const DenseMatrix& sf : sf_history) {
    WriteDenseMatrix(sf, &out);
  }
  // User histories, sorted by id for deterministic files.
  std::vector<size_t> user_ids;
  user_ids.reserve(user_history.size());
  for (const auto& [user, history] : user_history) {
    user_ids.push_back(user);
  }
  std::sort(user_ids.begin(), user_ids.end());
  for (size_t user : user_ids) {
    const auto& history = user_history.at(user);
    out << user << " " << history.size() << "\n";
    for (const auto& row : history) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << " ";
        out << StrFormat("%.17g", row[c]);
      }
      out << "\n";
    }
  }
  if (!out) return Status::IoError("stream state write failed");
  return Status::OK();
}

Result<StreamState> StreamState::Read(std::istream* is, size_t num_features,
                                      size_t num_clusters) {
  std::istream& in = *is;
  std::string line;
  if (!std::getline(in, line) || line != "triclust-online-state 1") {
    return Status::ParseError("bad state header: " + line);
  }
  size_t timestep = 0;
  size_t num_sf = 0;
  size_t num_users = 0;
  if (!std::getline(in, line)) return Status::ParseError("missing counts");
  {
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 3 || !ParseSizeT(fields[0], &timestep) ||
        !ParseSizeT(fields[1], &num_sf) ||
        !ParseSizeT(fields[2], &num_users)) {
      return Status::ParseError("malformed counts: " + line);
    }
  }
  StreamState state;
  for (size_t i = 0; i < num_sf; ++i) {
    TRICLUST_ASSIGN_OR_RETURN(DenseMatrix sf, ReadDenseMatrix(&in));
    if (sf.rows() != num_features || sf.cols() != num_clusters) {
      return Status::FailedPrecondition(
          "checkpoint feature space does not match this clusterer");
    }
    state.sf_history.push_back(std::move(sf));
  }
  const size_t k = num_clusters;
  for (size_t u = 0; u < num_users; ++u) {
    if (!std::getline(in, line)) {
      return Status::ParseError("state truncated in user section");
    }
    const auto header = SplitWhitespace(line);
    size_t user = 0;
    size_t rows = 0;
    if (header.size() != 2 || !ParseSizeT(header[0], &user) ||
        !ParseSizeT(header[1], &rows)) {
      return Status::ParseError("malformed user header: " + line);
    }
    std::deque<std::vector<double>> history;
    for (size_t r = 0; r < rows; ++r) {
      if (!std::getline(in, line)) {
        return Status::ParseError("state truncated in user rows");
      }
      const auto fields = SplitWhitespace(line);
      if (fields.size() != k) {
        return Status::ParseError("user row has wrong arity: " + line);
      }
      std::vector<double> row(k);
      for (size_t c = 0; c < k; ++c) {
        if (!ParseDouble(fields[c], &row[c])) {
          return Status::ParseError("bad user value: " + fields[c]);
        }
      }
      history.push_back(std::move(row));
    }
    state.user_history.emplace(user, std::move(history));
  }
  state.timestep = static_cast<int>(timestep);
  return state;
}

}  // namespace triclust
