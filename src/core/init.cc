#include "src/core/init.h"

#include "src/matrix/ops.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace triclust {

namespace {

/// Adds uniform noise in [lo, hi) to every entry.
void Jitter(DenseMatrix* m, Rng* rng, double lo, double hi) {
  double* p = m->data();
  for (size_t i = 0; i < m->size(); ++i) p[i] += rng->Uniform(lo, hi);
}

}  // namespace

FactorSet InitializeFactors(const DatasetMatrices& data,
                            const DenseMatrix& sf0,
                            const TriClusterConfig& config) {
  const size_t n = data.num_tweets();
  const size_t m = data.num_users();
  const size_t l = data.num_features();
  const size_t k = static_cast<size_t>(config.num_clusters);
  TRICLUST_CHECK_EQ(sf0.rows(), l);
  TRICLUST_CHECK_EQ(sf0.cols(), k);
  Rng rng(config.seed);

  FactorSet f;
  switch (config.init) {
    case InitStrategy::kRandom: {
      f.sp = DenseMatrix::Random(n, k, &rng, 0.1, 1.0);
      f.su = DenseMatrix::Random(m, k, &rng, 0.1, 1.0);
      f.sf = DenseMatrix::Random(l, k, &rng, 0.1, 1.0);
      f.hp = DenseMatrix::Random(k, k, &rng, 0.1, 1.0);
      f.hu = DenseMatrix::Random(k, k, &rng, 0.1, 1.0);
      break;
    }
    case InitStrategy::kLexiconSeeded: {
      f.sf = sf0;
      Jitter(&f.sf, &rng, 0.0, 0.02);

      // Score tweets/users against the prior and normalize, so each row
      // starts as a soft lexicon-vote distribution.
      f.sp = SpMM(data.xp, sf0);
      f.sp.NormalizeRowsL1();
      Jitter(&f.sp, &rng, 0.01, 0.05);

      f.su = SpMM(data.xu, sf0);
      f.su.NormalizeRowsL1();
      Jitter(&f.su, &rng, 0.01, 0.05);

      // Associations start near identity: cluster c of tweets/users aligns
      // with cluster c of features.
      f.hp = DenseMatrix::Identity(k);
      Jitter(&f.hp, &rng, 0.01, 0.05);
      f.hu = DenseMatrix::Identity(k);
      Jitter(&f.hu, &rng, 0.01, 0.05);
      break;
    }
  }
  TRICLUST_CHECK(IsNonNegative(f.sp));
  TRICLUST_CHECK(IsNonNegative(f.su));
  TRICLUST_CHECK(IsNonNegative(f.sf));
  return f;
}

}  // namespace triclust
