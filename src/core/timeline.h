#ifndef TRICLUST_SRC_CORE_TIMELINE_H_
#define TRICLUST_SRC_CORE_TIMELINE_H_

#include <vector>

#include "src/core/config.h"
#include "src/data/corpus.h"
#include "src/data/matrix_builder.h"
#include "src/data/snapshots.h"
#include "src/text/lexicon.h"

namespace triclust {

/// How temporal data is processed (paper §4 intro and §5.2):
enum class TimelineMode {
  /// Algorithm 2: factorize new data with temporal regularization.
  kOnline,
  /// Offline algorithm on each snapshot independently (fast, low quality).
  kMiniBatch,
  /// Offline algorithm on all data seen so far at every timestamp
  /// (high quality, expensive).
  kFullBatch,
};

const char* TimelineModeName(TimelineMode mode);

/// Per-snapshot measurements of one timeline run (the series plotted in
/// paper Fig. 11/12: runtime, tweet-level and user-level accuracy).
struct TimelineStepMetrics {
  int snapshot_index = 0;
  int day = 0;
  size_t num_tweets = 0;
  size_t num_users = 0;
  double seconds = 0.0;
  double tweet_accuracy = 0.0;
  double tweet_nmi = 0.0;
  double user_accuracy = 0.0;
  double user_nmi = 0.0;
  int iterations = 0;
};

/// Runs one processing mode over the snapshot sequence and scores every
/// snapshot against ground truth (user labels are the temporal truth at the
/// snapshot's last day). `builder` must already be Fit() on the corpus.
std::vector<TimelineStepMetrics> RunTimeline(
    const Corpus& corpus, const MatrixBuilder& builder,
    const std::vector<Snapshot>& snapshots, const SentimentLexicon& lexicon,
    TimelineMode mode, const OnlineConfig& config);

/// Averages a metric across steps, weighting each snapshot equally and
/// skipping empty snapshots.
double AverageTweetAccuracy(const std::vector<TimelineStepMetrics>& steps);
double AverageUserAccuracy(const std::vector<TimelineStepMetrics>& steps);
double AverageTweetNmi(const std::vector<TimelineStepMetrics>& steps);
double AverageUserNmi(const std::vector<TimelineStepMetrics>& steps);
double TotalSeconds(const std::vector<TimelineStepMetrics>& steps);

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_TIMELINE_H_
