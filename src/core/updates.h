#ifndef TRICLUST_SRC_CORE_UPDATES_H_
#define TRICLUST_SRC_CORE_UPDATES_H_

#include <vector>

#include "src/graph/user_graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"

namespace triclust {
namespace update {

/// The multiplicative update rules of the tri-clustering framework
/// (paper Eq. 7, 9, 11, 12, 13 offline; Eq. 20–24, 26 online). Each rule
/// performs one in-place step M ← M ∘ sqrt(numerator/denominator) with the
/// Lagrangian Δ-term split into positive and negative parts, exactly as
/// derived in the paper; `eps` guards the denominators.
///
/// The online variants are the same formulas with time-dependent targets:
/// Sf's lexicon target becomes the decayed window aggregate Sfw(t) and Su
/// gains a per-row temporal term γ·(Su − Suw), so one parameterized kernel
/// serves both frameworks.
///
/// All three S-rules accept an optional L1 `sparsity` weight (paper §7's
/// sparsity regularization): the sub-gradient of λs·||S||₁ over S ≥ 0 is the
/// constant λs, which lands in the denominator of the multiplicative step
/// and shrinks small entries toward zero.

/// Eq. (7)/(23): feature-cluster update. `sf_target` is Sf0 offline and
/// Sfw(t) online; `alpha` weighs the term.
void UpdateSf(const SparseMatrix& xp, const SparseMatrix& xu,
              const DenseMatrix& sp, const DenseMatrix& su,
              const DenseMatrix& hp, const DenseMatrix& hu, double alpha,
              const DenseMatrix& sf_target, DenseMatrix* sf, double eps,
              double sparsity = 0.0);

/// Eq. (9)/(22): tweet-cluster update. `prior_weights`/`prior_target`
/// optionally add a per-row quadratic pull δᵢ·||Spᵢ − targetᵢ||² — the
/// guided (semi-supervised) regularization of paper §7, used to inject
/// seed tweet labels; both must be passed together.
void UpdateSp(const SparseMatrix& xp, const SparseMatrix& xr,
              const DenseMatrix& sf, const DenseMatrix& hp,
              const DenseMatrix& su, DenseMatrix* sp, double eps,
              double sparsity = 0.0,
              const std::vector<double>* prior_weights = nullptr,
              const DenseMatrix* prior_target = nullptr);

/// Eq. (11) offline (temporal_weights == nullptr) and Eq. (24)/(26) online:
/// user-cluster update with graph regularization β and optional per-row
/// temporal regularization. `temporal_weights` holds the per-row γ (0 for
/// new users, γ for evolving users) and `temporal_target` the decayed
/// aggregate Suw(t); both must be passed together.
void UpdateSu(const SparseMatrix& xu, const SparseMatrix& xr,
              const UserGraph& gu, const DenseMatrix& sf,
              const DenseMatrix& hu, const DenseMatrix& sp, double beta,
              const std::vector<double>* temporal_weights,
              const DenseMatrix* temporal_target, DenseMatrix* su,
              double eps, double sparsity = 0.0);

/// Eq. (12)/(21): tweet-association update.
void UpdateHp(const SparseMatrix& xp, const DenseMatrix& sp,
              const DenseMatrix& sf, DenseMatrix* hp, double eps);

/// Eq. (13)/(20): user-association update.
void UpdateHu(const SparseMatrix& xu, const DenseMatrix& su,
              const DenseMatrix& sf, DenseMatrix* hu, double eps);

}  // namespace update
}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_UPDATES_H_
