#ifndef TRICLUST_SRC_CORE_UPDATES_H_
#define TRICLUST_SRC_CORE_UPDATES_H_

#include <vector>

#include "src/graph/user_graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/sparse_matrix.h"
#include "src/util/parallel.h"

namespace triclust {
namespace update {

/// The multiplicative update rules of the tri-clustering framework
/// (paper Eq. 7, 9, 11, 12, 13 offline; Eq. 20–24, 26 online). Each rule
/// performs one in-place step M ← M ∘ sqrt(numerator/denominator) with the
/// Lagrangian Δ-term split into positive and negative parts, exactly as
/// derived in the paper; `eps` guards the denominators.
///
/// The online variants are the same formulas with time-dependent targets:
/// Sf's lexicon target becomes the decayed window aggregate Sfw(t) and Su
/// gains a per-row temporal term γ·(Su − Suw), so one parameterized kernel
/// serves both frameworks.
///
/// All three S-rules accept an optional L1 `sparsity` weight (paper §7's
/// sparsity regularization): the sub-gradient of λs·||S||₁ over S ≥ 0 is the
/// constant λs, which lands in the denominator of the multiplicative step
/// and shrinks small entries toward zero.

/// Reusable state for the update rules: cached CSR transposes of the data
/// matrices plus pre-sized scratch matrices for every intermediate of the
/// multiplicative algebra. Each rule naively materializes ~10 temporaries;
/// one workspace owned for the duration of a fit (what OfflineTriClusterer
/// and OnlineTriClusterer do) makes every iteration after the first
/// allocation-free and replaces the serial scatter-transpose products
/// (SpTMM) with the row-parallel SpMM over a transpose built once.
///
/// A workspace may be shared by all five rules of a fit (they run
/// sequentially and the scratch is overwritten per call) but must not be
/// used from two threads at once, and the sparse matrices handed to the
/// rules must stay alive and unmodified while it caches their transposes.
/// Passing no workspace (nullptr) makes a rule allocate locally — the
/// historical behavior; results are bit-identical either way.
class UpdateWorkspace {
 public:
  /// Identifies which data matrix a cached transpose belongs to.
  enum class TransposeSlot { kXp = 0, kXu = 1, kXr = 2 };

  /// The CSR transpose of `x`, built on first use and rebuilt only when a
  /// different matrix (by address) is bound to the slot.
  const SparseMatrix& Transposed(TransposeSlot slot, const SparseMatrix& x);

  /// The fit's thread budget. A workspace is per-fit scratch, which makes
  /// it the natural carrier for the per-fit width: solver entry points
  /// (SnapshotSolver::Solve, the offline/online clusterers) install this
  /// budget on the fitting thread for the duration of the fit, so every
  /// kernel under the fit honors it without any process-global state.
  /// Ambient (the default) inherits the caller's width — installed scope,
  /// nesting rule, or global default, in that order (see parallel.h).
  /// CampaignEngine::Advance rewrites this per batch when it splits the
  /// pool across ready fits. Results are bit-identical at every setting.
  ThreadBudget budget;

  /// Forgets the cached transposes (scratch matrices are kept). Needed
  /// when re-using a long-lived workspace against *new* data matrices that
  /// may coincidentally alias a prior fit's freed addresses — the
  /// by-address cache check cannot distinguish that case on its own.
  /// SnapshotSolver::Solve calls this on every caller-owned workspace;
  /// direct users of the update rules must do likewise at fit boundaries.
  void ResetTransposeCache();

  /// Scratch matrices, used freely by the update rules. rows_* hold
  /// (n|m|l)×k intermediates, kk_* hold k×k ones.
  DenseMatrix rows_a, rows_b, rows_c, rows_d, rows_e, rows_f;
  DenseMatrix kk_a, kk_b, kk_c, kk_d, kk_e, kk_f;
  DenseMatrix delta, delta_pos, delta_neg;
  DenseMatrix numer, denom;

 private:
  struct CachedTranspose {
    const SparseMatrix* source = nullptr;
    SparseMatrix transposed;
  };
  CachedTranspose transpose_cache_[3];
};

/// Eq. (7)/(23): feature-cluster update. `sf_target` is Sf0 offline and
/// Sfw(t) online; `alpha` weighs the term.
void UpdateSf(const SparseMatrix& xp, const SparseMatrix& xu,
              const DenseMatrix& sp, const DenseMatrix& su,
              const DenseMatrix& hp, const DenseMatrix& hu, double alpha,
              const DenseMatrix& sf_target, DenseMatrix* sf, double eps,
              double sparsity = 0.0, UpdateWorkspace* workspace = nullptr);

/// Eq. (9)/(22): tweet-cluster update. `prior_weights`/`prior_target`
/// optionally add a per-row quadratic pull δᵢ·||Spᵢ − targetᵢ||² — the
/// guided (semi-supervised) regularization of paper §7, used to inject
/// seed tweet labels; both must be passed together.
void UpdateSp(const SparseMatrix& xp, const SparseMatrix& xr,
              const DenseMatrix& sf, const DenseMatrix& hp,
              const DenseMatrix& su, DenseMatrix* sp, double eps,
              double sparsity = 0.0,
              const std::vector<double>* prior_weights = nullptr,
              const DenseMatrix* prior_target = nullptr,
              UpdateWorkspace* workspace = nullptr);

/// Eq. (11) offline (temporal_weights == nullptr) and Eq. (24)/(26) online:
/// user-cluster update with graph regularization β and optional per-row
/// temporal regularization. `temporal_weights` holds the per-row γ (0 for
/// new users, γ for evolving users) and `temporal_target` the decayed
/// aggregate Suw(t); both must be passed together.
void UpdateSu(const SparseMatrix& xu, const SparseMatrix& xr,
              const UserGraph& gu, const DenseMatrix& sf,
              const DenseMatrix& hu, const DenseMatrix& sp, double beta,
              const std::vector<double>* temporal_weights,
              const DenseMatrix* temporal_target, DenseMatrix* su,
              double eps, double sparsity = 0.0,
              UpdateWorkspace* workspace = nullptr);

/// Eq. (12)/(21): tweet-association update.
void UpdateHp(const SparseMatrix& xp, const DenseMatrix& sp,
              const DenseMatrix& sf, DenseMatrix* hp, double eps,
              UpdateWorkspace* workspace = nullptr);

/// Eq. (13)/(20): user-association update.
void UpdateHu(const SparseMatrix& xu, const DenseMatrix& su,
              const DenseMatrix& sf, DenseMatrix* hu, double eps,
              UpdateWorkspace* workspace = nullptr);

}  // namespace update
}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_UPDATES_H_
