#ifndef TRICLUST_SRC_CORE_ONLINE_H_
#define TRICLUST_SRC_CORE_ONLINE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"

namespace triclust {

/// The online tri-clustering solver (paper §4, Algorithm 2).
///
/// Consumes temporal snapshots in order. For snapshot t it factorizes only
/// the new data matrices Xp(t)/Xu(t)/Xr(t) while regularizing toward the
/// exponentially-decayed window aggregates
///   Sfw(t) = Σ_{i=1..w−1} τ^i·Sf(t−i)   (features evolve smoothly, Obs. 1)
///   Suw(t) = Σ_{i=1..w−1} τ^i·Su(t−i)   (users rarely flip, Obs. 2)
/// with weights α and γ. Users are partitioned into new (no history —
/// Eq. 24), evolving (history — Eq. 26, extra γ pull), and disappeared
/// (absent at t; their history is retained so they re-enter as evolving).
///
/// The window aggregates are normalized by Σ τ^i so they stay on the scale
/// of one factor matrix (a numerical-stability refinement over the paper's
/// raw sum; τ still sets the relative decay of older snapshots).
class OnlineTriClusterer {
 public:
  /// `sf0` is the l×k lexicon prior, used as the feature target for the
  /// first snapshot (no history yet) and to initialize new users.
  OnlineTriClusterer(OnlineConfig config, DenseMatrix sf0);

  /// Row partition of the current snapshot's users.
  struct UserPartition {
    std::vector<size_t> new_rows;
    std::vector<size_t> evolving_rows;
    /// Users with history that are absent from this snapshot.
    size_t num_disappeared = 0;
  };

  /// Processes the next snapshot (matrices built against the same
  /// vocabulary as sf0). Returns the factors for this snapshot; rows of
  /// su/sp align with data.user_ids/data.tweet_ids.
  TriClusterResult ProcessSnapshot(const DatasetMatrices& data);

  const OnlineConfig& config() const { return config_; }

  /// Number of snapshots processed so far.
  int timestep() const { return timestep_; }

  /// Feature target Sfw(t) used by the most recent ProcessSnapshot call.
  const DenseMatrix& last_sfw() const { return last_sfw_; }

  /// User partition of the most recent ProcessSnapshot call.
  const UserPartition& last_partition() const { return last_partition_; }

  /// Latest known sentiment row of a corpus user, or empty when unseen.
  std::vector<double> UserSentiment(size_t corpus_user_id) const;

  /// Checkpoints the stream state (timestep, Sf history, user histories) so
  /// a deployment can restart mid-stream. The config and sf0 are not
  /// persisted — construct the clusterer with the same ones, then Restore.
  Status SaveState(const std::string& path) const;

  /// Restores a checkpoint written by SaveState. The clusterer must have
  /// been constructed with the same k and feature dimensionality.
  Status RestoreState(const std::string& path);

 private:
  DenseMatrix ComputeSfw() const;

  OnlineConfig config_;
  DenseMatrix sf0_;
  /// sf_history_[0] is Sf(t−1); trimmed to window−1 entries.
  std::deque<DenseMatrix> sf_history_;
  /// Per corpus-user history of Su rows, most recent first, trimmed to
  /// window−1 entries.
  std::unordered_map<size_t, std::deque<std::vector<double>>> user_history_;
  int timestep_ = 0;
  DenseMatrix last_sfw_;
  UserPartition last_partition_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_ONLINE_H_
