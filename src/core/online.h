#ifndef TRICLUST_SRC_CORE_ONLINE_H_
#define TRICLUST_SRC_CORE_ONLINE_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/core/snapshot_solver.h"
#include "src/core/stream_state.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"
#include "src/util/status.h"

namespace triclust {

/// The online tri-clustering solver (paper §4, Algorithm 2) for a single
/// stream: a thin stateful wrapper over the stateless SnapshotSolver and
/// the value-type StreamState it advances. Kept as the convenient
/// single-campaign API (and for compatibility with the original interface);
/// multi-campaign serving composes the same two pieces directly — see
/// src/serving/campaign_engine.h.
///
/// Behavior is identical to the historical monolithic implementation —
/// ProcessSnapshot installs the config's kernel thread budget, delegates to
/// SnapshotSolver::Solve, and records the solve's Sfw/partition for
/// inspection — with one deliberate exception: for window == 1 an empty
/// snapshot now retains the latest Sf history entry instead of erasing it
/// (the legacy path reset the stream to the lexicon prior after one quiet
/// day; see the n == 0 path in snapshot_solver.cc).
class OnlineTriClusterer {
 public:
  /// `sf0` is the l×k lexicon prior, used as the feature target for the
  /// first snapshot (no history yet) and to initialize new users.
  OnlineTriClusterer(OnlineConfig config, DenseMatrix sf0);

  /// Row partition of the current snapshot's users (see snapshot_solver.h).
  using UserPartition = triclust::UserPartition;

  /// Processes the next snapshot (matrices built against the same
  /// vocabulary as sf0). Returns the factors for this snapshot; rows of
  /// su/sp align with data.user_ids/data.tweet_ids.
  TriClusterResult ProcessSnapshot(const DatasetMatrices& data);

  const OnlineConfig& config() const { return solver_.config(); }

  /// Number of snapshots processed so far.
  int timestep() const { return state_.timestep; }

  /// Feature target Sfw(t) used by the most recent ProcessSnapshot call.
  const DenseMatrix& last_sfw() const { return last_info_.sfw; }

  /// User partition of the most recent ProcessSnapshot call.
  const UserPartition& last_partition() const { return last_info_.partition; }

  /// Latest known sentiment row of a corpus user, or empty when unseen.
  std::vector<double> UserSentiment(size_t corpus_user_id) const;

  /// The full stream state (timestep, Sf history, user histories).
  const StreamState& state() const { return state_; }

  /// Replaces the stream state (e.g. one restored by a CampaignStore).
  void set_state(StreamState state) { state_ = std::move(state); }

  /// Checkpoints the stream state so a deployment can restart mid-stream.
  /// The write is atomic (temp file + rename): a crash mid-checkpoint
  /// leaves any previous checkpoint at `path` intact. The config and sf0
  /// are not persisted — construct the clusterer with the same ones, then
  /// Restore.
  Status SaveState(const std::string& path) const;

  /// Restores a checkpoint written by SaveState. The clusterer must have
  /// been constructed with the same k and feature dimensionality.
  Status RestoreState(const std::string& path);

 private:
  SnapshotSolver solver_;
  StreamState state_;
  SnapshotSolver::SolveInfo last_info_;
  update::UpdateWorkspace workspace_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_ONLINE_H_
