#ifndef TRICLUST_SRC_CORE_SNAPSHOT_SOLVER_H_
#define TRICLUST_SRC_CORE_SNAPSHOT_SOLVER_H_

#include <vector>

#include "src/core/config.h"
#include "src/core/result.h"
#include "src/core/stream_state.h"
#include "src/core/updates.h"
#include "src/data/matrix_builder.h"
#include "src/matrix/dense_matrix.h"

namespace triclust {

/// Row partition of one snapshot's users into the paper's categories.
struct UserPartition {
  std::vector<size_t> new_rows;
  std::vector<size_t> evolving_rows;
  /// Users with history that are absent from this snapshot.
  size_t num_disappeared = 0;
};

/// The online per-snapshot solve (paper §4, Algorithm 2) as a *stateless*
/// function object: Solve() maps (StreamState, DatasetMatrices) →
/// (TriClusterResult, StreamState'). The solver itself holds only immutable
/// inputs — the config and the lexicon prior Sf0 — so one instance can be
/// shared by any number of streams, and independent streams can be fitted
/// concurrently as long as each owns its StreamState (and workspace).
///
/// For snapshot t it factorizes only the new data matrices Xp(t)/Xu(t)/Xr(t)
/// while regularizing toward the exponentially-decayed window aggregates
///   Sfw(t) = Σ_{i=1..w−1} τ^i·Sf(t−i)   (features evolve smoothly, Obs. 1)
///   Suw(t) = Σ_{i=1..w−1} τ^i·Su(t−i)   (users rarely flip, Obs. 2)
/// with weights α and γ. Users are partitioned into new (no history —
/// Eq. 24), evolving (history — Eq. 26, extra γ pull), and disappeared
/// (absent at t; their history is retained so they re-enter as evolving).
///
/// The window aggregates are normalized by Σ τ^i so they stay on the scale
/// of one factor matrix (a numerical-stability refinement over the paper's
/// raw sum; τ still sets the relative decay of older snapshots).
///
/// Threading: Solve() installs the per-fit ThreadBudget carried by the
/// caller's workspace (src/core/updates.h) on the fitting thread for the
/// duration of the solve; an ambient budget (or no workspace) inherits the
/// caller's width. OnlineTriClusterer sets its workspace budget from
/// config.base.num_threads, while CampaignEngine::Advance splits its pool
/// across the batch's ready fits and hands each campaign's workspace its
/// slice — kernels are bit-identical at every width, so results never
/// depend on the split (see parallel.h).
class SnapshotSolver {
 public:
  /// `sf0` is the l×k lexicon prior, used as the feature target for the
  /// first snapshot (no history yet) and to initialize new users. The
  /// solver is immutable after construction.
  SnapshotSolver(OnlineConfig config, DenseMatrix sf0);

  /// Byproducts of one Solve() call that are not part of the factor result
  /// but that dashboards and tests want to observe.
  struct SolveInfo {
    /// Feature target Sfw(t) used by this solve.
    DenseMatrix sfw;
    /// Partition of the snapshot's users.
    UserPartition partition;
  };

  /// Processes the next snapshot (matrices built against the same
  /// vocabulary as sf0), advancing `state` in place. Returns the factors
  /// for this snapshot; rows of su/sp align with data.user_ids/
  /// data.tweet_ids. Deterministic: the factor initialization is seeded
  /// from config.base.seed and state->timestep only.
  ///
  /// `info` (optional) receives the Sfw target and user partition.
  /// `workspace` (optional) provides caller-owned scratch so steady-state
  /// serving allocates nothing per snapshot; pass nullptr to allocate a
  /// local one (results are bit-identical either way).
  ///
  /// Thread safety: const and re-entrant — concurrent Solve() calls on
  /// one solver are safe as long as each call owns its `state`, `info`,
  /// and `workspace` exclusively. Each call runs under its workspace's
  /// ThreadBudget (thread-local; see the class comment), so concurrent
  /// callers with different budgets need no coordination.
  TriClusterResult Solve(const DatasetMatrices& data, StreamState* state,
                         SolveInfo* info = nullptr,
                         update::UpdateWorkspace* workspace = nullptr) const;

  /// The decayed, row-normalized feature aggregate Sfw for `state` (Sf0
  /// when the state has no history yet). Thread safety: const; safe
  /// concurrently with other reads of `state`.
  DenseMatrix ComputeSfw(const StreamState& state) const;

  /// The immutable config this solver applies to every snapshot.
  /// Thread safety: safe from any thread.
  const OnlineConfig& config() const { return config_; }

  /// The immutable l×k lexicon prior. Thread safety: safe from any
  /// thread; the reference lives as long as the solver.
  const DenseMatrix& sf0() const { return sf0_; }

 private:
  OnlineConfig config_;
  DenseMatrix sf0_;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_SNAPSHOT_SOLVER_H_
