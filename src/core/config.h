#ifndef TRICLUST_SRC_CORE_CONFIG_H_
#define TRICLUST_SRC_CORE_CONFIG_H_

#include <cstdint>

#include "src/matrix/kernel_dispatch.h"

namespace triclust {

/// How the factor matrices are initialized before the multiplicative loop.
enum class InitStrategy {
  /// Uniform random positives (the classical NMF initialization).
  kRandom,
  /// Seed Sf from the lexicon prior Sf0 and propagate it through Xp/Xu to
  /// Sp/Su, which places the multiplicative algorithm in a basin where
  /// clusters already align with sentiment classes.
  kLexiconSeeded,
};

/// Parameters of the offline tri-clustering objective (paper Eq. 1) and of
/// the multiplicative solver (Algorithm 1).
struct TriClusterConfig {
  /// Number of sentiment clusters k (2 = pos/neg, 3 adds neutral).
  int num_clusters = 3;
  /// Weight α of the lexicon term ||Sf − Sf0||²F. The paper's balanced
  /// offline choice is 0.05 (§5.1).
  double alpha = 0.05;
  /// Weight β of the user-graph term tr(SuᵀLuSu). Paper: 0.8.
  double beta = 0.8;
  /// Maximum multiplicative iterations r (paper: converges in 10–100).
  int max_iterations = 100;
  /// Relative objective-change threshold for early convergence.
  double tolerance = 1e-5;
  /// Denominator guard of the multiplicative rules.
  double epsilon = 1e-12;
  /// L1 sparsity weight λs on the cluster matrices Sp/Su/Sf (one of the
  /// optional regularizations the paper's §7 proposes for the unified
  /// framework):  + λs·(||Sp||₁ + ||Su||₁ + ||Sf||₁). Enters each
  /// multiplicative rule as a constant in the denominator; 0 disables.
  double sparsity = 0.0;
  /// Per-fit thread budget for the solver's kernels
  /// (src/util/parallel.h): 0 = hardware concurrency, 1 = strict serial,
  /// n = at most n threads. Row-partitioned kernels and the fixed-grain
  /// loss reductions are bit-identical at EVERY setting, so this knob
  /// never changes results. The clusterers install it as a thread-local
  /// ThreadBudget for the fit's duration — concurrent fits in one process
  /// may each use a different value (CampaignEngine relies on this to
  /// split its pool across campaigns).
  int num_threads = 1;
  /// Kernel body selection for this fit (src/matrix/kernel_dispatch.h).
  /// kAuto keeps the bit-identical tiers (fixed-k unrolls + bit-exact
  /// AVX2), so defaults reproduce the historical scalar bits exactly;
  /// kScalar pins the generic reference loops; kFast opts into FMA /
  /// lane-split reductions that match only within rounding tolerance.
  /// The clusterers install it as a thread-local ScopedKernelMode next to
  /// the thread budget, so concurrent fits may differ. TRICLUST_FORCE_SCALAR
  /// in the environment overrides every fit to kScalar.
  KernelMode kernel_mode = KernelMode::kAuto;
  /// Seed of the factor initialization.
  uint64_t seed = 7;
  InitStrategy init = InitStrategy::kLexiconSeeded;
  /// Record the per-component loss at each iteration (Fig. 8); costs one
  /// extra objective evaluation per iteration.
  bool track_loss = true;
};

/// Additional parameters of the online framework (paper Eq. 19,
/// Algorithm 2). The offline α/β live in `base`; the online α re-weights
/// the temporal feature regularization ||Sf(t) − Sfw(t)||²F.
struct OnlineConfig {
  TriClusterConfig base;
  /// Temporal feature-regularization weight α(t). Paper's best: 0.9.
  double alpha = 0.9;
  /// Temporal user-regularization weight γ. Paper's best: 0.2.
  double gamma = 0.2;
  /// Time-decay factor τ ∈ (0, 1] of the window aggregates. Paper: 0.9.
  double tau = 0.9;
  /// Window size w: snapshots [t−w, t) contribute to Sfw/Suw. Paper: 2.
  int window = 2;
  /// Fraction of the lexicon prior Sf0 blended into the feature target:
  ///   target(t) = (1 − λ)·Sfw(t) + λ·Sf0.
  /// The paper anchors Sf(t) to history alone; with small per-snapshot
  /// volumes the unanchored chain accumulates drift (a random walk in the
  /// feature–sentiment association), so a persistent trace of the lexicon —
  /// the same signal the offline objective keeps via α·||Sf − Sf0||² —
  /// stabilizes long streams. Set to 0 for the paper's exact formulation.
  double lexicon_blend = 0.25;
  /// Initialize evolving users' Su rows from their decayed history Suw
  /// (Algorithm 2 line 1). When false, every user is initialized from the
  /// current snapshot's lexicon propagation and history only acts through
  /// the γ pull — an ablation knob for the warm-start's contribution.
  bool seed_users_from_history = true;
};

}  // namespace triclust

#endif  // TRICLUST_SRC_CORE_CONFIG_H_
