// Tests for the filesystem seam (src/util/fs.h), the CRC-32 integrity
// trailer (src/util/crc32.h, file_util.h §checksummed payloads), the
// retry policy (src/util/retry.h), and — the part the fault-injection
// framework exists for — AtomicWriteFile's crash-safety contract under
// injected failures: fail the Nth operation, tear a write, or lose power,
// and the destination file must still hold one complete version.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/crc32.h"
#include "src/util/file_util.h"
#include "src/util/fs.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace triclust {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Writes `contents` to `path` through `fs` with the full durable
/// protocol (append, sync, close).
Status WriteWholeFile(FileSystem* fs, const std::string& path,
                      const std::string& contents) {
  TRICLUST_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            fs->NewWritableFile(path));
  TRICLUST_RETURN_IF_ERROR(file->Append(contents));
  TRICLUST_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

// --- CRC-32 ------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string a = "triclust-online-state 1\n";
  const std::string b = "3 2 0.5\n";
  const uint32_t one_shot = Crc32(a + b);
  EXPECT_EQ(Crc32(b, Crc32(a)), one_shot);
  EXPECT_NE(Crc32(a, Crc32(b)), one_shot);  // order matters
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string payload = "generation 7, campaign prop37, timestep 12\n";
  const uint32_t clean = Crc32(payload);
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    payload[byte] ^= 0x01;
    EXPECT_NE(Crc32(payload), clean) << "flip at byte " << byte;
    payload[byte] ^= 0x01;
  }
}

// --- integrity trailer -------------------------------------------------------

TEST(ChecksumTrailerTest, RoundTripsAndReportsTrailer) {
  const std::string payload = "line one\nline two\n";
  const std::string framed = AppendChecksumTrailer(payload);
  ASSERT_NE(framed, payload);
  bool had_trailer = false;
  const Result<std::string> verified =
      VerifyChecksummedPayload(framed, "f", &had_trailer);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified.value(), payload);
  EXPECT_TRUE(had_trailer);
}

TEST(ChecksumTrailerTest, NoFlippedByteEverVerifiesCleanly) {
  // The strongest guarantee a legacy-compatible trailer can give: a flip
  // either fails verification outright, or destroys the trailer framing —
  // demoting the file to "legacy trailer-less" (had_trailer=false), which
  // format-2 consumers (the campaign store) refuse. What can never happen
  // is a corrupted payload verifying as trailer-backed.
  const std::string payload = "payload under test\n";
  const std::string framed = AppendChecksumTrailer(payload);
  size_t demoted = 0;
  for (size_t byte = 0; byte < framed.size(); ++byte) {
    std::string corrupt = framed;
    corrupt[byte] ^= 0x01;
    bool had_trailer = false;
    const Result<std::string> verified =
        VerifyChecksummedPayload(corrupt, "f", &had_trailer);
    if (verified.ok()) {
      EXPECT_FALSE(had_trailer) << "flip at byte " << byte
                                << " verified as trailer-backed";
      ++demoted;
    }
    // Flips inside the payload proper must always be caught.
    if (byte < payload.size() - 1) {
      EXPECT_FALSE(verified.ok()) << "flip at byte " << byte;
    }
  }
  EXPECT_GT(demoted, 0u);  // the legacy-demotion cases exist by design
}

TEST(ChecksumTrailerTest, TruncationNamesDeclaredAndActualLength) {
  const std::string payload = "line one\nline two\n";
  std::string framed = AppendChecksumTrailer(payload);
  // Drop whole payload lines but keep the (intact) trailer line — the
  // shape left by a truncate-then-append corruption.
  const std::string trailer = framed.substr(payload.size());
  const std::string truncated = payload.substr(0, 9) + trailer;
  const Result<std::string> verified =
      VerifyChecksummedPayload(truncated, "ckpt", nullptr);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kParseError);
  EXPECT_NE(verified.status().message().find("ckpt: truncated payload"),
            std::string::npos)
      << verified.status().message();
  EXPECT_NE(verified.status().message().find("declares 18 bytes, 9 present"),
            std::string::npos)
      << verified.status().message();
}

TEST(ChecksumTrailerTest, MismatchDiagnosticNamesThePath) {
  std::string framed = AppendChecksumTrailer("stable payload\n");
  framed[0] ^= 0x01;
  const Result<std::string> verified =
      VerifyChecksummedPayload(framed, "dir/MANIFEST", nullptr);
  ASSERT_FALSE(verified.ok());
  EXPECT_NE(verified.status().message().find("dir/MANIFEST: checksum "
                                             "mismatch"),
            std::string::npos)
      << verified.status().message();
}

TEST(ChecksumTrailerTest, LegacyTrailerlessContentsPassThrough) {
  const std::string legacy = "triclust-online-state 1\n3 2 0.5\n";
  bool had_trailer = true;
  const Result<std::string> verified =
      VerifyChecksummedPayload(legacy, "f", &had_trailer);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified.value(), legacy);
  EXPECT_FALSE(had_trailer);
}

// --- PosixFileSystem ---------------------------------------------------------

TEST(PosixFileSystemTest, WriteReadRenameRemoveRoundTrip) {
  FileSystem* fs = GetDefaultFileSystem();
  const std::string path = TempPath("posix_fs_roundtrip");
  const std::string renamed = TempPath("posix_fs_roundtrip_renamed");
  (void)fs->Remove(path);  // cleanup; may not exist
  (void)fs->Remove(renamed);  // cleanup; may not exist

  ASSERT_TRUE(WriteWholeFile(fs, path, "hello\nworld\n").ok());
  ASSERT_TRUE(fs->Exists(path));
  Result<std::string> read = fs->ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello\nworld\n");

  ASSERT_TRUE(fs->Rename(path, renamed).ok());
  EXPECT_FALSE(fs->Exists(path));
  ASSERT_TRUE(fs->Exists(renamed));
  ASSERT_TRUE(fs->Remove(renamed).ok());
  EXPECT_FALSE(fs->Exists(renamed));
  EXPECT_FALSE(fs->ReadFileToString(renamed).ok());
}

TEST(PosixFileSystemTest, CreateDirectoriesAndList) {
  FileSystem* fs = GetDefaultFileSystem();
  const std::string root = TempPath("posix_fs_tree");
  const std::string nested = root + "/a/b";
  ASSERT_TRUE(fs->CreateDirectories(nested).ok());
  ASSERT_TRUE(fs->CreateDirectories(nested).ok());  // idempotent
  ASSERT_TRUE(WriteWholeFile(fs, nested + "/one", "1").ok());
  ASSERT_TRUE(WriteWholeFile(fs, nested + "/two", "2").ok());
  Result<std::vector<std::string>> listing = fs->ListDirectory(nested);
  ASSERT_TRUE(listing.ok());
  std::vector<std::string> names = listing.value();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
}

// --- FaultInjectionFileSystem ------------------------------------------------

TEST(FaultInjectionTest, CountsMutatingOpsAndFailsFromN) {
  FaultInjectionFileSystem fs(GetDefaultFileSystem());
  const std::string path = TempPath("fault_count");
  ASSERT_TRUE(WriteWholeFile(&fs, path, "x").ok());
  // NewWritableFile + Append + Sync + Close.
  EXPECT_EQ(fs.mutating_ops(), 4);
  EXPECT_TRUE(fs.Exists(path));          // read-only probes are uncounted
  EXPECT_EQ(fs.mutating_ops(), 4);
  EXPECT_EQ(fs.injected_failures(), 0);

  fs.ResetFaults();
  fs.FailAt(2);  // NewWritableFile and Append pass; Sync and later fail
  {
    Result<std::unique_ptr<WritableFile>> file = fs.NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE(file.value()->Append("y").ok());
    EXPECT_FALSE(file.value()->Sync().ok());
    EXPECT_FALSE(file.value()->Close().ok());
  }
  EXPECT_FALSE(fs.Rename(path, path + "2").ok());
  EXPECT_EQ(fs.injected_failures(), 3);
  fs.ResetFaults();
  EXPECT_EQ(fs.mutating_ops(), 0);
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(FaultInjectionTest, TransientFailuresClearAfterCount) {
  FaultInjectionFileSystem fs(GetDefaultFileSystem());
  const std::string path = TempPath("fault_transient");
  fs.SetTransientFailures(2);
  EXPECT_FALSE(fs.NewWritableFile(path).ok());
  EXPECT_FALSE(fs.NewWritableFile(path).ok());
  ASSERT_TRUE(WriteWholeFile(&fs, path, "recovered").ok());
  EXPECT_EQ(fs.injected_failures(), 2);
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(FaultInjectionTest, TornWriteLeavesPrefixOnly) {
  FaultInjectionFileSystem fs(GetDefaultFileSystem());
  const std::string path = TempPath("fault_torn");
  fs.SetTornWrites(true);
  {
    Result<std::unique_ptr<WritableFile>> file = fs.NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    EXPECT_FALSE(file.value()->Append("0123456789").ok());
  }
  fs.SetTornWrites(false);
  Result<std::string> read = fs.ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "01234");  // half the payload reached the disk
  ASSERT_TRUE(fs.Remove(path).ok());
}

TEST(FaultInjectionTest, CrashDropsUnsyncedDataKeepsSynced) {
  FaultInjectionFileSystem fs(GetDefaultFileSystem());
  const std::string synced = TempPath("crash_synced");
  const std::string unsynced_tail = TempPath("crash_tail");
  const std::string never_synced = TempPath("crash_never");

  ASSERT_TRUE(WriteWholeFile(&fs, synced, "durable").ok());
  {
    // Synced prefix, un-synced suffix: the crash truncates to the prefix.
    Result<std::unique_ptr<WritableFile>> file =
        fs.NewWritableFile(unsynced_tail);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("prefix-").ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    ASSERT_TRUE(file.value()->Append("lost-tail").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  {
    Result<std::unique_ptr<WritableFile>> file =
        fs.NewWritableFile(never_synced);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("all lost").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }

  ASSERT_TRUE(fs.DropUnsyncedData().ok());
  EXPECT_EQ(fs.ReadFileToString(synced).ValueOr("?"), "durable");
  EXPECT_EQ(fs.ReadFileToString(unsynced_tail).ValueOr("?"), "prefix-");
  EXPECT_FALSE(fs.Exists(never_synced));

  (void)fs.Remove(synced);  // cleanup; may not exist
  (void)fs.Remove(unsynced_tail);  // cleanup; may not exist
}

TEST(FaultInjectionTest, CrashAtFailsOpAndAppliesPowerLossModel) {
  FaultInjectionFileSystem fs(GetDefaultFileSystem());
  const std::string path = TempPath("crash_at");
  fs.CrashAt(3);  // NewWritableFile, Append, Sync pass; Close crashes
  {
    Result<std::unique_ptr<WritableFile>> file = fs.NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("synced before the crash").ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    EXPECT_FALSE(file.value()->Close().ok());
  }
  // Every op after the crash keeps failing until faults are cleared.
  EXPECT_FALSE(fs.Remove(path).ok());
  fs.ResetFaults();
  EXPECT_EQ(fs.ReadFileToString(path).ValueOr("?"),
            "synced before the crash");
  ASSERT_TRUE(fs.Remove(path).ok());
}

// --- RetryPolicy -------------------------------------------------------------

TEST(RetryTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 6.0;
  policy.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(RetryBackoffDelayMs(policy, 1), 1.0);
  EXPECT_DOUBLE_EQ(RetryBackoffDelayMs(policy, 2), 2.0);
  EXPECT_DOUBLE_EQ(RetryBackoffDelayMs(policy, 3), 4.0);
  EXPECT_DOUBLE_EQ(RetryBackoffDelayMs(policy, 4), 6.0);  // capped
  EXPECT_DOUBLE_EQ(RetryBackoffDelayMs(policy, 9), 6.0);
}

TEST(RetryTest, RetriesTransientUntilSuccessAndRecordsSleeps) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::vector<double> slept;
  const Sleeper recorder = [&slept](double ms) { slept.push_back(ms); };

  int calls = 0;
  int attempts = 0;
  const Status status = RetryTransient(
      policy,
      [&calls]() {
        return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      recorder, &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  ASSERT_EQ(slept.size(), 2u);  // no sleep before the first attempt
  EXPECT_DOUBLE_EQ(slept[0], RetryBackoffDelayMs(policy, 1));
  EXPECT_DOUBLE_EQ(slept[1], RetryBackoffDelayMs(policy, 2));
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  std::vector<double> slept;
  int attempts = 0;
  const Status status = RetryTransient(
      policy, [] { return Status::IoError("still down"); },
      [&slept](double ms) { slept.push_back(ms); }, &attempts);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryTest, NonTransientErrorsAreNotRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  int attempts = 0;
  const Status status = RetryTransient(
      policy,
      [&calls]() {
        ++calls;
        return Status::ParseError("checksum mismatch — deterministic");
      },
      [](double) { FAIL() << "must not sleep for a non-transient error"; },
      &attempts);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
}

// --- AtomicWriteFile under faults (satellite of the fault framework) ---------

Status WriteGreeting(FileSystem* fs, const std::string& path,
                     const std::string& text) {
  return AtomicWriteFile(fs, path,
                         [&text](std::ostream* os) -> Status {
                           *os << text;
                           return Status::OK();
                         });
}

TEST(AtomicWriteFaultTest, FailAtEveryOpNeverLeavesAPartialDestination) {
  PosixFileSystem posix;
  const std::string path = TempPath("atomic_fail_matrix");
  const std::string old_contents = "old complete contents\n";
  const std::string new_contents = "new complete contents, longer\n";
  (void)posix.Remove(path);  // cleanup; may not exist
  ASSERT_TRUE(WriteGreeting(&posix, path, old_contents).ok());

  FaultInjectionFileSystem fs(&posix);
  bool succeeded = false;
  for (int fail_op = 0; !succeeded; ++fail_op) {
    ASSERT_LT(fail_op, 32) << "fault never exhausted — op count runaway?";
    fs.ResetFaults();
    fs.FailAt(fail_op);
    const Status status = WriteGreeting(&fs, path, new_contents);
    fs.ResetFaults();
    const Result<std::string> read = fs.ReadFileToString(path);
    ASSERT_TRUE(read.ok()) << "destination vanished at op " << fail_op;
    if (status.ok()) {
      // The injected failure hit at or after the rename: the new contents
      // are committed even though later ops (directory sync) may have
      // failed — or the op index ran past the sequence entirely.
      succeeded = read.value() == new_contents;
      EXPECT_TRUE(succeeded) << "OK status but stale contents at op "
                             << fail_op;
    } else {
      EXPECT_TRUE(read.value() == old_contents ||
                  read.value() == new_contents)
          << "torn destination at op " << fail_op << ": " << read.value();
    }
  }
  ASSERT_TRUE(posix.Remove(path).ok());
}

TEST(AtomicWriteFaultTest, TornWriteLeavesDestinationUntouchedAndNoTemp) {
  PosixFileSystem posix;
  const std::string dir = TempPath("atomic_torn_dir");
  const std::string path = dir + "/dest";
  ASSERT_TRUE(posix.CreateDirectories(dir).ok());
  ASSERT_TRUE(WriteGreeting(&posix, path, "pristine\n").ok());

  FaultInjectionFileSystem fs(&posix);
  fs.SetTornWrites(true);
  EXPECT_FALSE(WriteGreeting(&fs, path, "this append is torn\n").ok());
  fs.SetTornWrites(false);

  EXPECT_EQ(fs.ReadFileToString(path).ValueOr("?"), "pristine\n");
  // The half-written temp was cleaned up on the failure path.
  Result<std::vector<std::string>> listing = fs.ListDirectory(dir);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value(), std::vector<std::string>{"dest"});
  (void)posix.Remove(path);  // cleanup; may not exist
}

TEST(AtomicWriteFaultTest, TransientFailuresSucceedUnderRetryPolicy) {
  PosixFileSystem posix;
  const std::string path = TempPath("atomic_transient");
  (void)posix.Remove(path);  // cleanup; may not exist
  FaultInjectionFileSystem fs(&posix);
  fs.SetTransientFailures(2);  // first two whole-write attempts die early

  RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<double> slept;
  int attempts = 0;
  const Status status = RetryTransient(
      policy,
      [&fs, &path] { return WriteGreeting(&fs, path, "eventually\n"); },
      [&slept](double ms) { slept.push_back(ms); }, &attempts);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Two attempts burned one transient fault each (on NewWritableFile);
  // the third ran the full sequence clean.
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(slept.size(), 2u);
  EXPECT_EQ(fs.ReadFileToString(path).ValueOr("?"), "eventually\n");
  ASSERT_TRUE(posix.Remove(path).ok());
}

}  // namespace
}  // namespace triclust
