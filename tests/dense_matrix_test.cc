#include "src/matrix/dense_matrix.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace triclust {
namespace {

TEST(DenseMatrixTest, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(DenseMatrixTest, FillConstructor) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m.At(i, j), 1.5);
  }
}

TEST(DenseMatrixTest, InitializerList) {
  DenseMatrix m({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(DenseMatrixTest, IdentityDiagonal) {
  const DenseMatrix id = DenseMatrix::Identity(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(id.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, RandomBounds) {
  Rng rng(1);
  const DenseMatrix m = DenseMatrix::Random(10, 10, &rng, 0.5, 2.0);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], 0.5);
    EXPECT_LT(m.data()[i], 2.0);
  }
}

TEST(DenseMatrixTest, ElementwiseOps) {
  DenseMatrix a({{1, 2}, {3, 4}});
  const DenseMatrix b({{10, 20}, {30, 40}});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 44.0);
  a.SubInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 4.0);
  a.ScaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 2.0);
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 4.0 + 10.0);
}

TEST(DenseMatrixTest, ClampMin) {
  DenseMatrix m({{-1, 0.5}, {2, -3}});
  m.ClampMin(0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(DenseMatrixTest, TransposedTwiceIsIdentityOp) {
  Rng rng(2);
  const DenseMatrix m = DenseMatrix::Random(5, 3, &rng, 0.0, 1.0);
  const DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.Transposed(), m);
  EXPECT_DOUBLE_EQ(t.At(2, 4), m.At(4, 2));
}

TEST(DenseMatrixTest, SelectRows) {
  DenseMatrix m({{1, 2}, {3, 4}, {5, 6}});
  const DenseMatrix sub = m.SelectRows({2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub.At(1, 1), 2.0);
}

TEST(DenseMatrixTest, SumAndMaxAbs) {
  DenseMatrix m({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(m.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(DenseMatrixTest, ArgMaxRowTiesBreakLow) {
  DenseMatrix m({{1, 5, 5}, {7, 2, 3}});
  EXPECT_EQ(m.ArgMaxRow(0), 1u);
  EXPECT_EQ(m.ArgMaxRow(1), 0u);
  EXPECT_EQ(m.RowArgMax(), (std::vector<int>{1, 0}));
}

TEST(DenseMatrixTest, NormalizeRowsL1) {
  DenseMatrix m({{1, 3}, {0, 0}});
  m.NormalizeRowsL1();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.75);
  // Zero rows become uniform.
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.5);
}

TEST(DenseMatrixTest, FillOverwrites) {
  DenseMatrix m(2, 2, 1.0);
  m.Fill(9.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 36.0);
}

}  // namespace
}  // namespace triclust
