#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include "src/eval/protocol.h"
#include "src/util/rng.h"

namespace triclust {
namespace {

const Sentiment P = Sentiment::kPositive;
const Sentiment N = Sentiment::kNegative;
const Sentiment U = Sentiment::kNeutral;
const Sentiment X = Sentiment::kUnlabeled;

TEST(ClusteringAccuracyTest, PerfectPartitionScoresOne) {
  const std::vector<int> clusters = {0, 0, 1, 1, 2};
  const std::vector<Sentiment> truth = {P, P, N, N, U};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(clusters, truth), 1.0);
}

TEST(ClusteringAccuracyTest, InvariantToClusterRelabeling) {
  const std::vector<Sentiment> truth = {P, P, N, N, U};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy({2, 2, 0, 0, 1}, truth), 1.0);
  EXPECT_DOUBLE_EQ(ClusteringAccuracy({5, 5, 9, 9, 7}, truth), 1.0);
}

TEST(ClusteringAccuracyTest, MajorityVotePartialCredit) {
  // Cluster 0 = {P, P, N} → majority P (2 correct); cluster 1 = {N} → 1.
  const std::vector<int> clusters = {0, 0, 0, 1};
  const std::vector<Sentiment> truth = {P, P, N, N};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(clusters, truth), 0.75);
}

TEST(ClusteringAccuracyTest, SkipsUnlabeledAndUnassigned) {
  const std::vector<int> clusters = {0, -1, 0, 1};
  const std::vector<Sentiment> truth = {P, P, X, N};
  // Evaluable pairs: (0,P), (1,N) → both majority-correct.
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(clusters, truth), 1.0);
}

TEST(ClusteringAccuracyTest, EmptyInputScoresZero) {
  EXPECT_DOUBLE_EQ(ClusteringAccuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ClusteringAccuracy({-1}, {X}), 0.0);
}

TEST(NmiTest, PerfectPartitionScoresOne) {
  const std::vector<int> clusters = {0, 0, 1, 1};
  const std::vector<Sentiment> truth = {P, P, N, N};
  EXPECT_NEAR(NormalizedMutualInformation(clusters, truth), 1.0, 1e-12);
}

TEST(NmiTest, PermutationInvariance) {
  const std::vector<Sentiment> truth = {P, P, N, N, U, U};
  const double a = NormalizedMutualInformation({0, 0, 1, 1, 2, 2}, truth);
  const double b = NormalizedMutualInformation({2, 2, 0, 0, 1, 1}, truth);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(NmiTest, IndependentPartitionNearZero) {
  // Each cluster contains one of each class.
  const std::vector<int> clusters = {0, 1, 0, 1};
  const std::vector<Sentiment> truth = {P, P, N, N};
  EXPECT_NEAR(NormalizedMutualInformation(clusters, truth), 0.0, 1e-9);
}

TEST(NmiTest, SingleClusterConventions) {
  // Both single-cluster → 1; one single-cluster → 0.
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({0, 0}, {P, P}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({0, 0}, {P, N}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({0, 1}, {P, P}), 0.0);
}

TEST(NmiTest, BoundedInUnitInterval) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> clusters(30);
    std::vector<Sentiment> truth(30);
    for (size_t i = 0; i < clusters.size(); ++i) {
      clusters[i] = static_cast<int>(rng.NextUint64Below(4));
      truth[i] = SentimentFromIndex(
          static_cast<int>(rng.NextUint64Below(3)));
    }
    const double nmi = NormalizedMutualInformation(clusters, truth);
    EXPECT_GE(nmi, 0.0);
    EXPECT_LE(nmi, 1.0);
  }
}

TEST(ClassificationAccuracyTest, CountsExactMatches) {
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({P, N, P}, {P, N, N}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({P, X}, {P, P}), 1.0);
  EXPECT_DOUBLE_EQ(ClassificationAccuracy({P}, {X}), 0.0);
}

TEST(MajorityVoteMappingTest, MapsClustersToDominantClass) {
  const std::vector<int> clusters = {0, 0, 0, 1, 1};
  const std::vector<Sentiment> truth = {P, P, N, N, N};
  const auto mapping = MajorityVoteMapping(clusters, truth, 2);
  EXPECT_EQ(mapping[0], P);
  EXPECT_EQ(mapping[1], N);
}

TEST(MajorityVoteMappingTest, UnseenClusterDefaultsToClassZero) {
  const auto mapping = MajorityVoteMapping({0}, {N}, 3);
  EXPECT_EQ(mapping[0], N);
  EXPECT_EQ(mapping[1], P);
  EXPECT_EQ(mapping[2], P);
}

TEST(ApplyMappingTest, TranslatesAndHandlesUnassigned) {
  const std::vector<Sentiment> mapping = {N, P};
  EXPECT_EQ(ApplyMapping({1, 0, -1}, mapping),
            (std::vector<Sentiment>{P, N, X}));
}

TEST(ConfusionMatrixTest, CountsAndMacroF1) {
  const std::vector<Sentiment> truth = {P, P, N, N};
  const std::vector<Sentiment> pred = {P, N, N, N};
  const ConfusionMatrix cm = BuildConfusion(pred, truth, 2);
  EXPECT_EQ(cm.total, 4u);
  EXPECT_EQ(cm.counts[0][0], 1u);  // P→P
  EXPECT_EQ(cm.counts[0][1], 1u);  // P→N
  EXPECT_EQ(cm.counts[1][1], 2u);  // N→N
  // P: precision 1, recall .5, F1 2/3. N: precision 2/3, recall 1, F1 4/5.
  EXPECT_NEAR(cm.MacroF1(), 0.5 * (2.0 / 3.0 + 0.8), 1e-12);
}

TEST(ConfusionMatrixTest, PerfectPredictionF1IsOne) {
  const std::vector<Sentiment> truth = {P, N, U};
  const ConfusionMatrix cm = BuildConfusion(truth, truth, 3);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

// --- protocol ---------------------------------------------------------------

TEST(KFoldTest, BalancedAssignment) {
  const std::vector<int> folds = KFoldAssignment(100, 5, 42);
  std::vector<int> counts(5, 0);
  for (int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    ++counts[f];
  }
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(KFoldTest, DeterministicInSeed) {
  EXPECT_EQ(KFoldAssignment(50, 3, 7), KFoldAssignment(50, 3, 7));
}

TEST(SampleSeedLabelsTest, FractionRespected) {
  std::vector<Sentiment> truth(1000, P);
  const auto seeds = SampleSeedLabels(truth, 0.1, 13);
  size_t kept = 0;
  for (const Sentiment s : seeds) {
    if (s != X) ++kept;
  }
  EXPECT_GT(kept, 60u);
  EXPECT_LT(kept, 140u);
}

TEST(SampleSeedLabelsTest, UnlabeledNeverSeeded) {
  std::vector<Sentiment> truth = {X, X, P};
  const auto seeds = SampleSeedLabels(truth, 1.0, 13);
  EXPECT_EQ(seeds[0], X);
  EXPECT_EQ(seeds[1], X);
  EXPECT_EQ(seeds[2], P);
}

TEST(CrossValidatedAccuracyTest, PerfectOracleScoresOne) {
  std::vector<Sentiment> truth(60);
  Rng rng(3);
  for (auto& s : truth) {
    s = SentimentFromIndex(static_cast<int>(rng.NextUint64Below(3)));
  }
  const double acc = CrossValidatedAccuracy(
      truth, 5, 1, [&](const std::vector<Sentiment>&) { return truth; });
  EXPECT_DOUBLE_EQ(acc, 1.0);
}

TEST(PermutationAccuracyTest, HandlesMoreThanEightClusters) {
  // Regression: the pre-DP implementation enumerated cluster→class
  // assignments recursively and CHECK-failed beyond 8 distinct cluster
  // ids, so per-day timeline scoring could crash on real corpora. Twelve
  // clusters, hand-computed optimum:
  //   c0 = {P,P,P}, c1 = {N,N}, c2 = {U,U,U,U}, c3..c11 = {P} each.
  // Best one-to-one map P→c0 (3) + N→c1 (2) + U→c2 (4) = 9 of 18.
  std::vector<int> clusters = {0, 0, 0, 1, 1, 2, 2, 2, 2};
  std::vector<Sentiment> truth = {P, P, P, N, N, U, U, U, U};
  for (int c = 3; c < 12; ++c) {
    clusters.push_back(c);
    truth.push_back(P);
  }
  EXPECT_DOUBLE_EQ(PermutationAccuracy(clusters, truth), 9.0 / 18.0);
}

TEST(PermutationAccuracyTest, LargeClusterCountStaysFast) {
  // 5000 singleton clusters, round-robin classes. The optimum picks one
  // cluster per class: 3 / 5000. Exponential-in-clusters enumeration
  // would never finish here; the subset DP is linear in the cluster
  // count.
  const int k = 5000;
  std::vector<int> clusters(k);
  std::vector<Sentiment> truth(k);
  for (int i = 0; i < k; ++i) {
    clusters[i] = i;
    truth[i] = SentimentFromIndex(i % kNumSentimentClasses);
  }
  EXPECT_DOUBLE_EQ(PermutationAccuracy(clusters, truth),
                   3.0 / static_cast<double>(k));
}

TEST(PermutationAccuracyTest, ManyClustersStillBoundedByMajorityVote) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> clusters(200);
    std::vector<Sentiment> truth(200);
    for (size_t i = 0; i < clusters.size(); ++i) {
      clusters[i] = static_cast<int>(rng.NextUint64Below(20));
      truth[i] =
          SentimentFromIndex(static_cast<int>(rng.NextUint64Below(3)));
    }
    EXPECT_LE(PermutationAccuracy(clusters, truth),
              ClusteringAccuracy(clusters, truth) + 1e-12);
  }
}

TEST(CrossValidatedAccuracyTest, HidesFoldLabelsFromTrainer) {
  std::vector<Sentiment> truth(40, P);
  const double acc = CrossValidatedAccuracy(
      truth, 4, 1, [&](const std::vector<Sentiment>& masked) {
        size_t hidden = 0;
        for (const Sentiment s : masked) {
          if (s == X) ++hidden;
        }
        EXPECT_EQ(hidden, 10u);  // one fold hidden per call
        return masked;           // predicts kUnlabeled on the eval fold
      });
  EXPECT_DOUBLE_EQ(acc, 0.0);  // never matches on the hidden fold
}

}  // namespace
}  // namespace triclust
