#include "src/data/matrix_builder.h"

#include <gtest/gtest.h>

#include "src/data/snapshots.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

Corpus MiniCorpus() {
  Corpus c;
  const size_t alice = c.AddUser("alice", Sentiment::kPositive);
  const size_t bob = c.AddUser("bob", Sentiment::kNegative);
  const size_t carol = c.AddUser("carol", Sentiment::kPositive);
  c.AddTweet(alice, 0, "love gmo labeling", Sentiment::kPositive);   // 0
  c.AddTweet(bob, 0, "hate gmo labeling", Sentiment::kNegative);     // 1
  c.AddTweet(alice, 1, "labeling safe food", Sentiment::kPositive);  // 2
  // carol retweets alice's tweet 0 on day 1:
  c.AddTweet(carol, 1, "love gmo labeling", Sentiment::kPositive, 0);  // 3
  return c;
}

TEST(MatrixBuilderTest, DimensionsConsistent) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d = builder.BuildAll(c);
  EXPECT_EQ(d.num_tweets(), 4u);
  EXPECT_EQ(d.num_users(), 3u);
  EXPECT_EQ(d.xp.rows(), 4u);
  EXPECT_EQ(d.xu.rows(), 3u);
  EXPECT_EQ(d.xu.cols(), d.xp.cols());
  EXPECT_EQ(d.xr.rows(), 3u);
  EXPECT_EQ(d.xr.cols(), 4u);
  EXPECT_EQ(d.gu.num_nodes(), 3u);
  EXPECT_EQ(d.tweet_labels.size(), 4u);
  EXPECT_EQ(d.user_labels.size(), 3u);
}

TEST(MatrixBuilderTest, XuIsSumOfUserTweetRows) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d = builder.BuildAll(c);
  // alice (user row 0) authored tweet rows 0 and 2.
  for (size_t f = 0; f < d.xu.cols(); ++f) {
    EXPECT_NEAR(d.xu.At(0, f), d.xp.At(0, f) + d.xp.At(2, f), 1e-12);
  }
}

TEST(MatrixBuilderTest, XrHasPostingAndRetweetIncidence) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d = builder.BuildAll(c);
  // Row order follows first appearance: alice=0, bob=1, carol=2.
  EXPECT_DOUBLE_EQ(d.xr.At(0, 0), 1.0);  // alice posts tweet 0
  EXPECT_DOUBLE_EQ(d.xr.At(1, 1), 1.0);  // bob posts tweet 1
  EXPECT_DOUBLE_EQ(d.xr.At(2, 3), 1.0);  // carol posts the retweet
  EXPECT_DOUBLE_EQ(d.xr.At(2, 0), 1.0);  // …and is linked to the original
  EXPECT_DOUBLE_EQ(d.xr.At(1, 0), 0.0);
}

TEST(MatrixBuilderTest, GuLinksRetweeterToOriginalAuthor) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d = builder.BuildAll(c);
  EXPECT_EQ(d.gu.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(d.gu.adjacency().At(2, 0), 1.0);  // carol—alice
  EXPECT_DOUBLE_EQ(d.gu.adjacency().At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(d.gu.adjacency().At(1, 0), 0.0);
}

TEST(MatrixBuilderTest, LabelsAlignWithRows) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d = builder.BuildAll(c);
  EXPECT_EQ(d.tweet_labels[1], Sentiment::kNegative);
  EXPECT_EQ(d.user_labels[0], Sentiment::kPositive);  // alice
  EXPECT_EQ(d.user_labels[1], Sentiment::kNegative);  // bob
}

TEST(MatrixBuilderTest, SnapshotSubsetKeepsVocabulary) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices full = builder.BuildAll(c);
  const DatasetMatrices day1 = builder.Build(c, c.TweetIdsInDayRange(1, 1));
  EXPECT_EQ(day1.num_tweets(), 2u);
  EXPECT_EQ(day1.num_users(), 2u);  // alice and carol
  EXPECT_EQ(day1.xp.cols(), full.xp.cols());  // shared feature space
}

TEST(MatrixBuilderTest, SnapshotRetweetOfOutOfWindowOriginal) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  // Day-1 window contains the retweet (id 3) but not its original (id 0):
  const DatasetMatrices d = builder.Build(c, c.TweetIdsInDayRange(1, 1));
  // Posting incidence only; no crash, no edge to a missing tweet row.
  size_t carol_row = 2;  // appearance order within day 1: alice(2)=0, carol=1
  carol_row = 1;
  EXPECT_DOUBLE_EQ(d.xr.At(carol_row, 1), 1.0);
  // Gu edge still exists because both users are active on day 1.
  EXPECT_EQ(d.gu.num_edges(), 1u);
}

TEST(MatrixBuilderTest, TemporalUserLabels) {
  Corpus c = MiniCorpus();
  c.SetUserSentimentAt(0, 1, Sentiment::kNegative);  // alice flips on day 1
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices d0 =
      builder.Build(c, c.TweetIdsInDayRange(0, 0), /*user_label_day=*/0);
  const DatasetMatrices d1 =
      builder.Build(c, c.TweetIdsInDayRange(1, 1), /*user_label_day=*/1);
  EXPECT_EQ(d0.user_labels[0], Sentiment::kPositive);
  EXPECT_EQ(d1.user_labels[0], Sentiment::kNegative);
}

TEST(MatrixBuilderTest, WorksOnSyntheticCampaign) {
  const auto p = testing_util::MakeSmallProblem();
  EXPECT_GT(p.data.xp.nnz(), 1000u);
  EXPECT_GT(p.data.num_features(), 100u);
  EXPECT_GT(p.data.gu.num_edges(), 10u);
  // Every tweet row must connect to exactly its author (+ possibly an
  // original): column sums of Xr ≥ 1.
  const std::vector<double> colsum = p.data.xr.ColumnSums();
  for (double v : colsum) EXPECT_GE(v, 1.0);
}

// --- incremental ingestion ----------------------------------------------------

void ExpectSameSparse(const SparseMatrix& a, const SparseMatrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
}

void ExpectSameDataset(const DatasetMatrices& got,
                       const DatasetMatrices& expected) {
  ExpectSameSparse(got.xp, expected.xp);
  ExpectSameSparse(got.xu, expected.xu);
  ExpectSameSparse(got.xr, expected.xr);
  ExpectSameSparse(got.gu.adjacency(), expected.gu.adjacency());
  EXPECT_EQ(got.tweet_ids, expected.tweet_ids);
  EXPECT_EQ(got.user_ids, expected.user_ids);
  EXPECT_EQ(got.tweet_labels, expected.tweet_labels);
  EXPECT_EQ(got.user_labels, expected.user_labels);
}

TEST(MatrixBuilderTest, EmitSnapshotMatchesBuildBitwise) {
  const auto d = testing_util::SmallCampaign();
  MatrixBuilder builder;
  builder.Fit(d.corpus);
  for (const Snapshot& day : SplitByDay(d.corpus)) {
    const DatasetMatrices expected =
        builder.Build(d.corpus, day.tweet_ids, day.last_day);
    builder.Append(d.corpus, day.tweet_ids);
    EXPECT_EQ(builder.num_pending(), day.tweet_ids.size());
    const DatasetMatrices got =
        builder.EmitSnapshot(d.corpus, day.last_day);
    EXPECT_EQ(builder.num_pending(), 0u);
    ExpectSameDataset(got, expected);
  }
}

TEST(MatrixBuilderTest, AppendAccumulatesAcrossBatches) {
  // Several small Ingest-style batches must emit the same snapshot as one
  // Build over the concatenated ids.
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  builder.Append(c, {0, 1});
  builder.Append(c, 2);
  builder.Append(c, {3});
  EXPECT_EQ(builder.num_pending(), 4u);
  const DatasetMatrices got = builder.EmitSnapshot(c);
  const DatasetMatrices expected = builder.Build(c, {0, 1, 2, 3});
  ExpectSameDataset(got, expected);
}

TEST(MatrixBuilderTest, AppendTokenizesTweetsArrivedAfterFit) {
  Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const size_t vocab = builder.vocabulary().size();
  // A tweet that arrives after Fit: in-vocabulary tokens land in the fixed
  // feature space, unseen ones drop out.
  const size_t dave = c.AddUser("dave");
  const size_t late = c.AddTweet(dave, 2, "love labeling brandnewword");
  builder.Append(c, late);
  const DatasetMatrices got = builder.EmitSnapshot(c, -1);
  EXPECT_EQ(got.num_tweets(), 1u);
  EXPECT_EQ(got.xp.cols(), vocab);
  EXPECT_GT(got.xp.RowNnz(0), 0u);   // known tokens mapped
  EXPECT_LE(got.xp.RowNnz(0), 2u);   // "brandnewword" dropped
  EXPECT_EQ(got.user_ids, (std::vector<size_t>{dave}));
}

TEST(MatrixBuilderTest, EmitEmptyPendingYieldsEmptySnapshot) {
  const Corpus c = MiniCorpus();
  MatrixBuilder builder;
  builder.Fit(c);
  const DatasetMatrices got = builder.EmitSnapshot(c);
  EXPECT_EQ(got.num_tweets(), 0u);
  EXPECT_EQ(got.num_users(), 0u);
  EXPECT_EQ(got.xp.cols(), builder.vocabulary().size());
}

// --- snapshots ---------------------------------------------------------------

TEST(SnapshotsTest, SplitByDayCoversEveryTweetOnce) {
  const Corpus c = MiniCorpus();
  const std::vector<Snapshot> snaps = SplitByDay(c);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].tweet_ids, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(snaps[1].tweet_ids, (std::vector<size_t>{2, 3}));
  EXPECT_EQ(snaps[0].first_day, 0);
  EXPECT_EQ(snaps[1].last_day, 1);
}

TEST(SnapshotsTest, SplitByWindowGroupsDays) {
  const auto d = testing_util::SmallCampaign();
  const std::vector<Snapshot> snaps = SplitByWindow(d.corpus, 3);
  ASSERT_EQ(snaps.size(), 4u);  // 10 days → 4 windows (3+3+3+1)
  size_t total = 0;
  for (const auto& s : snaps) total += s.size();
  EXPECT_EQ(total, d.corpus.num_tweets());
  EXPECT_EQ(snaps[3].first_day, 9);
  EXPECT_EQ(snaps[3].last_day, 9);
}

TEST(SnapshotsTest, EmptyDaysYieldEmptySnapshots) {
  Corpus c;
  const size_t u = c.AddUser("u");
  c.AddTweet(u, 0, "first");
  c.AddTweet(u, 3, "last");
  const std::vector<Snapshot> snaps = SplitByDay(c);
  ASSERT_EQ(snaps.size(), 4u);
  EXPECT_EQ(snaps[1].size(), 0u);
  EXPECT_EQ(snaps[2].size(), 0u);
}

}  // namespace
}  // namespace triclust
