// Crash and corruption recovery tests for the CampaignStore (the
// executable form of its durability contract):
//
//  - Crash matrix: simulate a power loss after the i-th filesystem
//    operation of a Save, for every i, and assert the directory always
//    restores to one *complete* fleet generation — the previous one or the
//    new one, bit-identically, never a mix.
//  - Flipped bytes: corrupt any byte of a checkpoint or the MANIFEST and
//    Restore must refuse with a checksum/trailer diagnostic.
//  - Partial recovery: RestorePartial quarantines only the campaign whose
//    checkpoint is bad; the rest of the fleet restores and keeps serving.
//  - Missing checkpoint: the diagnostic names the file, the manifest, and
//    the generation.
//  - Legacy: a hand-written format-1 (pre-checksum) store still loads.

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/stream_state.h"
#include "src/data/snapshots.h"
#include "src/serving/campaign_engine.h"
#include "src/serving/campaign_store.h"
#include "src/util/fs.h"
#include "src/util/retry.h"
#include "src/util/status.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

OnlineConfig FastConfig() {
  OnlineConfig config;
  config.base.max_iterations = 15;
  config.base.track_loss = false;
  return config;
}

struct Fixture {
  SmallProblem problem;
  std::vector<Snapshot> days;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f{MakeSmallProblem(seed), {}};
  f.days = SplitByDay(f.problem.dataset.corpus);
  return f;
}

/// A per-test directory under TempDir(), wiped of any previous contents
/// (TempDir persists across runs).
std::string FreshDir(const std::string& name) {
  FileSystem* fs = GetDefaultFileSystem();
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    const Result<std::vector<std::string>> listing = fs->ListDirectory(dir);
    if (listing.ok()) {
      for (const std::string& entry : listing.value()) {
        // Deliberate discard: best-effort scratch-dir cleanup; a leftover
        // file only wastes temp space.
        (void)fs->Remove(dir + "/" + entry);
      }
    }
  }
  return dir;
}

std::string StateBytes(const StreamState& state) {
  std::ostringstream os;
  EXPECT_TRUE(state.Write(&os).ok());
  return os.str();
}

/// The fleet harness shared by the tests: campaigns over independent
/// synthetic streams, with helpers to register engines, drive days, and
/// snapshot every campaign's serialized state.
class FleetHarness {
 public:
  explicit FleetHarness(size_t num_campaigns) {
    for (size_t i = 0; i < num_campaigns; ++i) {
      fixtures_.push_back(MakeFixture(5 + i));
    }
  }

  size_t size() const { return fixtures_.size(); }

  void Register(serving::CampaignEngine* engine) const {
    for (size_t i = 0; i < fixtures_.size(); ++i) {
      const Result<size_t> id = engine->AddCampaign(
          "campaign-" + std::to_string(i), FastConfig(),
          fixtures_[i].problem.sf0, fixtures_[i].problem.builder,
          &fixtures_[i].problem.dataset.corpus);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
  }

  void IngestDay(serving::CampaignEngine* engine, size_t day) const {
    for (size_t i = 0; i < fixtures_.size(); ++i) {
      if (day < fixtures_[i].days.size()) {
        engine->Ingest(i, fixtures_[i].days[day].tweet_ids,
                       fixtures_[i].days[day].last_day);
      }
    }
  }

  std::vector<std::string> FleetBytes(
      const serving::CampaignEngine& engine) const {
    std::vector<std::string> bytes;
    for (size_t i = 0; i < fixtures_.size(); ++i) {
      bytes.push_back(StateBytes(engine.state(i)));
    }
    return bytes;
  }

 private:
  std::vector<Fixture> fixtures_;
};

// --- the crash matrix --------------------------------------------------------

TEST(CrashMatrixTest, EveryCrashPointRestoresOneCompleteGeneration) {
  FleetHarness fleet(2);

  // Fleet A: two advanced days. Fleet B: one more. The crash interrupts
  // the Save that replaces generation A with generation B.
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  std::vector<StreamState> states_a;
  std::vector<StreamState> states_b;
  for (size_t day = 0; day < 2; ++day) {
    fleet.IngestDay(&engine, day);
    engine.Advance();
  }
  for (size_t i = 0; i < fleet.size(); ++i) states_a.push_back(engine.state(i));
  const std::vector<std::string> bytes_a = fleet.FleetBytes(engine);
  fleet.IngestDay(&engine, 2);
  engine.Advance();
  for (size_t i = 0; i < fleet.size(); ++i) states_b.push_back(engine.state(i));
  const std::vector<std::string> bytes_b = fleet.FleetBytes(engine);
  ASSERT_NE(bytes_a, bytes_b);

  const std::string dir = FreshDir("crash_matrix_store");
  serving::CampaignEngine recovered;
  fleet.Register(&recovered);

  bool save_ran_clean = false;
  for (int crash_op = 0; !save_ran_clean; ++crash_op) {
    ASSERT_LT(crash_op, 64) << "crash op never exhausted the Save sequence";
    FreshDir("crash_matrix_store");

    // Commit generation 1 = fleet A through a clean filesystem.
    serving::CampaignStore clean_store(dir);
    for (size_t i = 0; i < fleet.size(); ++i) {
      engine.set_state(i, StreamState(states_a[i]));
    }
    ASSERT_TRUE(clean_store.Save(engine).ok());

    // Attempt generation 2 = fleet B, losing power after `crash_op`
    // filesystem operations. Retries are disabled so the op numbering is
    // the deterministic single-pass Save sequence.
    FaultInjectionFileSystem fault_fs(GetDefaultFileSystem());
    serving::StoreOptions faulty;
    faulty.fs = &fault_fs;
    faulty.retry.max_attempts = 1;
    const serving::CampaignStore faulty_store(dir, faulty);
    fault_fs.CrashAt(crash_op);
    for (size_t i = 0; i < fleet.size(); ++i) {
      engine.set_state(i, StreamState(states_b[i]));
    }
    const Status save_status = faulty_store.Save(engine);
    save_ran_clean = fault_fs.injected_failures() == 0;
    if (save_ran_clean) {
      ASSERT_TRUE(save_status.ok()) << save_status.ToString();
    }

    // Power back on: recover with a clean filesystem. The directory must
    // describe exactly one complete generation.
    for (size_t i = 0; i < fleet.size(); ++i) {
      recovered.set_state(i, StreamState());
    }
    const Status restore_status = clean_store.Restore(&recovered);
    ASSERT_TRUE(restore_status.ok())
        << "crash after op " << crash_op << ": " << restore_status.ToString();
    const std::vector<std::string> recovered_bytes =
        fleet.FleetBytes(recovered);
    const bool is_a = recovered_bytes == bytes_a;
    const bool is_b = recovered_bytes == bytes_b;
    EXPECT_TRUE(is_a || is_b)
        << "crash after op " << crash_op
        << " recovered a mixed or torn generation";
    if (save_ran_clean) {
      EXPECT_TRUE(is_b) << "completed save must commit the new generation";
    }
  }
}

// --- flipped bytes -----------------------------------------------------------

/// Overwrites `path` with `contents`, bypassing AtomicWriteFile (this is
/// the corruption, not a checkpoint write).
void ClobberFile(const std::string& path, const std::string& contents) {
  FileSystem* fs = GetDefaultFileSystem();
  Result<std::unique_ptr<WritableFile>> file = fs->NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append(contents).ok());
  ASSERT_TRUE(file.value()->Close().ok());
}

TEST(CorruptionTest, AnyFlippedManifestByteFailsRestore) {
  FleetHarness fleet(1);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();

  const std::string dir = FreshDir("flip_manifest_store");
  const serving::CampaignStore store(dir);
  ASSERT_TRUE(store.Save(engine).ok());
  const std::string manifest_path = dir + "/MANIFEST";
  const Result<std::string> pristine =
      GetDefaultFileSystem()->ReadFileToString(manifest_path);
  ASSERT_TRUE(pristine.ok());

  serving::CampaignEngine target;
  fleet.Register(&target);
  for (size_t byte = 0; byte < pristine.value().size(); ++byte) {
    std::string corrupt = pristine.value();
    corrupt[byte] ^= 0x01;
    ClobberFile(manifest_path, corrupt);
    EXPECT_FALSE(store.Restore(&target).ok()) << "flip at byte " << byte;
  }
  ClobberFile(manifest_path, pristine.value());
  EXPECT_TRUE(store.Restore(&target).ok());
}

TEST(CorruptionTest, FlippedCheckpointBytesFailRestoreWithDiagnostic) {
  FleetHarness fleet(1);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();

  const std::string dir = FreshDir("flip_ckpt_store");
  const serving::CampaignStore store(dir);
  ASSERT_TRUE(store.Save(engine).ok());
  const std::string ckpt_path = dir + "/campaign_0.g1.ckpt";
  const Result<std::string> pristine =
      GetDefaultFileSystem()->ReadFileToString(ckpt_path);
  ASSERT_TRUE(pristine.ok());

  serving::CampaignEngine target;
  fleet.Register(&target);
  // Every offset is equivalent for CRC-32 (see Crc32Test single-bit
  // coverage); stride through the checkpoint to keep the test fast while
  // still hitting header, payload, and trailer regions.
  const size_t stride = std::max<size_t>(1, pristine.value().size() / 97);
  for (size_t byte = 0; byte < pristine.value().size(); byte += stride) {
    std::string corrupt = pristine.value();
    corrupt[byte] ^= 0x01;
    ClobberFile(ckpt_path, corrupt);
    const Status status = store.Restore(&target);
    EXPECT_FALSE(status.ok()) << "flip at byte " << byte;
    EXPECT_NE(status.message().find(ckpt_path), std::string::npos)
        << "diagnostic must name the file: " << status.ToString();
  }
  // Truncation (losing the trailer entirely) is also refused: a format-2
  // store never has trailer-less checkpoints.
  ClobberFile(ckpt_path, pristine.value().substr(0, 10));
  EXPECT_FALSE(store.Restore(&target).ok());
}

// --- partial recovery and quarantine -----------------------------------------

TEST(PartialRecoveryTest, CorruptCampaignIsQuarantinedFleetKeepsServing) {
  FleetHarness fleet(3);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  for (size_t day = 0; day < 2; ++day) {
    fleet.IngestDay(&engine, day);
    engine.Advance();
  }

  const std::string dir = FreshDir("partial_recovery_store");
  const serving::CampaignStore store(dir);
  ASSERT_TRUE(store.Save(engine).ok());

  // Flip one payload byte of campaign 1's checkpoint.
  const std::string victim_path = dir + "/campaign_1.g1.ckpt";
  Result<std::string> contents =
      GetDefaultFileSystem()->ReadFileToString(victim_path);
  ASSERT_TRUE(contents.ok());
  std::string corrupt = contents.value();
  corrupt[corrupt.size() / 2] ^= 0x01;
  ClobberFile(victim_path, corrupt);

  // Strict Restore refuses and leaves the engine untouched...
  serving::CampaignEngine strict;
  fleet.Register(&strict);
  ASSERT_FALSE(store.Restore(&strict).ok());
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(strict.timestep(i), 0);
    EXPECT_EQ(strict.health(i), serving::CampaignHealth::kHealthy);
  }

  // ...partial recovery restores the healthy majority and quarantines
  // exactly the corrupt campaign.
  serving::CampaignEngine partial;
  fleet.Register(&partial);
  serving::RestoreReport report;
  const Status status = store.RestorePartial(&partial, &report);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(report.generation, 1u);
  ASSERT_EQ(report.campaigns.size(), 3u);
  EXPECT_EQ(report.num_restored(), 2u);
  EXPECT_EQ(report.num_failed(), 1u);
  EXPECT_TRUE(report.campaigns[0].status.ok());
  EXPECT_FALSE(report.campaigns[1].status.ok());
  EXPECT_TRUE(report.campaigns[2].status.ok());
  EXPECT_NE(report.campaigns[1].status.message().find("checksum mismatch"),
            std::string::npos)
      << report.campaigns[1].status.ToString();

  EXPECT_EQ(partial.health(0), serving::CampaignHealth::kHealthy);
  EXPECT_EQ(partial.health(1), serving::CampaignHealth::kQuarantined);
  EXPECT_EQ(partial.health(2), serving::CampaignHealth::kHealthy);
  EXPECT_EQ(partial.timestep(0), 2);
  EXPECT_EQ(partial.timestep(1), 0);  // skipped, still fresh
  EXPECT_EQ(partial.timestep(2), 2);
  EXPECT_EQ(partial.last_error(1).code(), StatusCode::kParseError);

  // The fleet continues: the next day advances the healthy campaigns and
  // skips the quarantined one (its queue keeps accumulating).
  fleet.IngestDay(&partial, 2);
  const auto reports = partial.Advance();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_NE(r.campaign, 1u);
    EXPECT_TRUE(r.fitted);
  }
  EXPECT_GT(partial.num_pending(1), 0u);
  const serving::EngineHealthReport health = partial.HealthReport();
  EXPECT_EQ(health.healthy, 2u);
  EXPECT_EQ(health.quarantined, 1u);
  EXPECT_FALSE(health.AllHealthy());
}

TEST(PartialRecoveryTest, MissingCheckpointDiagnosticNamesGeneration) {
  FleetHarness fleet(2);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();

  const std::string dir = FreshDir("missing_ckpt_store");
  const serving::CampaignStore store(dir);
  ASSERT_TRUE(store.Save(engine).ok());
  const std::string missing_path = dir + "/campaign_1.g1.ckpt";
  ASSERT_TRUE(GetDefaultFileSystem()->Remove(missing_path).ok());

  serving::CampaignEngine strict;
  fleet.Register(&strict);
  const Status status = store.Restore(&strict);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(),
            missing_path + ": referenced by manifest (generation 1) but "
                           "absent");

  serving::CampaignEngine partial;
  fleet.Register(&partial);
  serving::RestoreReport report;
  ASSERT_TRUE(store.RestorePartial(&partial, &report).ok());
  EXPECT_EQ(report.num_failed(), 1u);
  EXPECT_EQ(partial.health(1), serving::CampaignHealth::kQuarantined);
  EXPECT_EQ(partial.last_error(1).code(), StatusCode::kNotFound);
}

TEST(PartialRecoveryTest, UnregisteredStoredCampaignFailsEvenPartially) {
  FleetHarness fleet(1);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();

  const std::string dir = FreshDir("unregistered_store");
  const serving::CampaignStore store(dir);
  ASSERT_TRUE(store.Save(engine).ok());

  serving::CampaignEngine empty;  // no campaigns registered
  serving::RestoreReport report;
  const Status status = store.RestorePartial(&empty, &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("not registered"), std::string::npos);
}

// --- transient I/O and retry -------------------------------------------------

TEST(StoreRetryTest, SaveSurvivesTransientFailuresViaRetryPolicy) {
  FleetHarness fleet(1);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();

  const std::string dir = FreshDir("retry_store");
  FaultInjectionFileSystem fault_fs(GetDefaultFileSystem());
  std::vector<double> slept;
  serving::StoreOptions options;
  options.fs = &fault_fs;
  options.retry.max_attempts = 3;
  options.sleeper = [&slept](double ms) { slept.push_back(ms); };
  const serving::CampaignStore store(dir, options);

  fault_fs.SetTransientFailures(2);
  const Status status = store.Save(engine);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fault_fs.injected_failures(), 2);
  EXPECT_GE(slept.size(), 1u);  // the injected sleeper absorbed the waits

  serving::CampaignEngine restored;
  fleet.Register(&restored);
  ASSERT_TRUE(store.Restore(&restored).ok());
  EXPECT_EQ(restored.timestep(0), 1);
}

// --- legacy format-1 stores --------------------------------------------------

TEST(LegacyStoreTest, TrailerlessFormat1StoreStillLoads) {
  FleetHarness fleet(1);
  serving::CampaignEngine engine;
  fleet.Register(&engine);
  fleet.IngestDay(&engine, 0);
  engine.Advance();
  const std::string state_bytes = StateBytes(engine.state(0));

  // Hand-write a pre-checksum store: format-1 header, no trailers.
  const std::string dir = FreshDir("legacy_store");
  ASSERT_TRUE(GetDefaultFileSystem()->CreateDirectories(dir).ok());
  ClobberFile(dir + "/campaign_0.g1.ckpt", state_bytes);
  ClobberFile(dir + "/MANIFEST",
              "triclust-campaign-store 1\n1 1\ncampaign_0.g1.ckpt " +
                  std::to_string(engine.state(0).timestep) + " campaign-0\n");

  serving::CampaignEngine restored;
  fleet.Register(&restored);
  const serving::CampaignStore store(dir);
  const Status status = store.Restore(&restored);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(StateBytes(restored.state(0)), state_bytes);

  // The next Save upgrades the store to checksummed format 2.
  ASSERT_TRUE(store.Save(restored).ok());
  const Result<std::string> manifest =
      GetDefaultFileSystem()->ReadFileToString(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().compare(0, 25, "triclust-campaign-store 2"), 0)
      << manifest.value().substr(0, 25);
  EXPECT_NE(manifest.value().find("triclust-crc32 "), std::string::npos);
}

}  // namespace
}  // namespace triclust
