#include "src/core/timeline.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace triclust {
namespace {

struct TimelineFixture {
  testing_util::SmallProblem problem;
  std::vector<Snapshot> snapshots;
  SentimentLexicon lexicon;
};

TimelineFixture MakeFixture() {
  TimelineFixture f{testing_util::MakeSmallProblem(), {}, {}};
  f.snapshots = SplitByDay(f.problem.dataset.corpus);
  f.lexicon = CorruptLexicon(f.problem.dataset.true_lexicon, 0.7, 0.02, 5);
  return f;
}

OnlineConfig FastConfig() {
  OnlineConfig config;
  config.base.max_iterations = 25;
  config.base.track_loss = false;
  return config;
}

TEST(TimelineTest, ModeNamesStable) {
  EXPECT_STREQ(TimelineModeName(TimelineMode::kOnline), "online");
  EXPECT_STREQ(TimelineModeName(TimelineMode::kMiniBatch), "mini-batch");
  EXPECT_STREQ(TimelineModeName(TimelineMode::kFullBatch), "full-batch");
}

TEST(TimelineTest, OnlineProducesOneStepPerSnapshot) {
  const auto f = MakeFixture();
  const auto steps =
      RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                  f.lexicon, TimelineMode::kOnline, FastConfig());
  ASSERT_EQ(steps.size(), f.snapshots.size());
  for (size_t s = 0; s < steps.size(); ++s) {
    EXPECT_EQ(steps[s].snapshot_index, static_cast<int>(s));
    EXPECT_EQ(steps[s].num_tweets, f.snapshots[s].size());
    EXPECT_GE(steps[s].seconds, 0.0);
    if (steps[s].num_tweets > 0) {
      EXPECT_GT(steps[s].tweet_accuracy, 0.0);
      EXPECT_LE(steps[s].tweet_accuracy, 100.0);
      EXPECT_GE(steps[s].user_accuracy, 0.0);
      EXPECT_LE(steps[s].user_accuracy, 100.0);
    }
  }
}

TEST(TimelineTest, AllModesScoreAboveChance) {
  const auto f = MakeFixture();
  for (const TimelineMode mode :
       {TimelineMode::kOnline, TimelineMode::kMiniBatch,
        TimelineMode::kFullBatch}) {
    const auto steps =
        RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                    f.lexicon, mode, FastConfig());
    EXPECT_GT(AverageTweetAccuracy(steps), 50.0)
        << TimelineModeName(mode);
    EXPECT_GT(AverageUserAccuracy(steps), 50.0)
        << TimelineModeName(mode);
  }
}

TEST(TimelineTest, OnlineNotWorseThanMiniBatch) {
  // The headline claim of §5.2: temporal regularization buys accuracy over
  // independent per-snapshot solves. Allow a small tolerance: individual
  // snapshots vary.
  const auto f = MakeFixture();
  const auto online =
      RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                  f.lexicon, TimelineMode::kOnline, FastConfig());
  const auto mini =
      RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                  f.lexicon, TimelineMode::kMiniBatch, FastConfig());
  EXPECT_GE(AverageUserAccuracy(online) + 3.0, AverageUserAccuracy(mini));
  EXPECT_GE(AverageTweetAccuracy(online) + 3.0, AverageTweetAccuracy(mini));
}

TEST(TimelineTest, FullBatchCostsMoreTimeThanOnline) {
  const auto f = MakeFixture();
  const auto online =
      RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                  f.lexicon, TimelineMode::kOnline, FastConfig());
  const auto full =
      RunTimeline(f.problem.dataset.corpus, f.problem.builder, f.snapshots,
                  f.lexicon, TimelineMode::kFullBatch, FastConfig());
  // Full-batch re-solves growing prefixes; across the whole stream its
  // total time must dominate online's.
  EXPECT_GT(TotalSeconds(full), TotalSeconds(online));
}

TEST(TimelineTest, AveragesIgnoreEmptySnapshots) {
  std::vector<TimelineStepMetrics> steps(3);
  steps[0].num_tweets = 10;
  steps[0].tweet_accuracy = 80.0;
  steps[0].user_accuracy = 90.0;
  steps[0].seconds = 1.0;
  steps[1].num_tweets = 0;  // ignored
  steps[1].tweet_accuracy = 0.0;
  steps[2].num_tweets = 5;
  steps[2].tweet_accuracy = 60.0;
  steps[2].user_accuracy = 70.0;
  steps[2].seconds = 0.5;
  EXPECT_DOUBLE_EQ(AverageTweetAccuracy(steps), 70.0);
  EXPECT_DOUBLE_EQ(AverageUserAccuracy(steps), 80.0);
  EXPECT_DOUBLE_EQ(TotalSeconds(steps), 1.5);
}

}  // namespace
}  // namespace triclust
