#include "src/core/init.h"

#include <gtest/gtest.h>

#include "src/matrix/ops.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

TEST(InitTest, ShapesMatchProblem) {
  const auto p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  const FactorSet f = InitializeFactors(p.data, p.sf0, config);
  EXPECT_EQ(f.sp.rows(), p.data.num_tweets());
  EXPECT_EQ(f.su.rows(), p.data.num_users());
  EXPECT_EQ(f.sf.rows(), p.data.num_features());
  EXPECT_EQ(f.sp.cols(), 3u);
  EXPECT_EQ(f.hp.rows(), 3u);
  EXPECT_EQ(f.hp.cols(), 3u);
  EXPECT_EQ(f.hu.rows(), 3u);
}

TEST(InitTest, BothStrategiesStrictlyPositive) {
  const auto p = testing_util::MakeSmallProblem();
  for (const InitStrategy init :
       {InitStrategy::kRandom, InitStrategy::kLexiconSeeded}) {
    TriClusterConfig config;
    config.init = init;
    const FactorSet f = InitializeFactors(p.data, p.sf0, config);
    auto all_positive = [](const DenseMatrix& m) {
      for (size_t i = 0; i < m.size(); ++i) {
        if (m.data()[i] <= 0.0) return false;
      }
      return true;
    };
    EXPECT_TRUE(all_positive(f.sp));
    EXPECT_TRUE(all_positive(f.su));
    EXPECT_TRUE(all_positive(f.sf));
    EXPECT_TRUE(all_positive(f.hp));
    EXPECT_TRUE(all_positive(f.hu));
  }
}

TEST(InitTest, DeterministicInSeed) {
  const auto p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  const FactorSet a = InitializeFactors(p.data, p.sf0, config);
  const FactorSet b = InitializeFactors(p.data, p.sf0, config);
  EXPECT_EQ(a.sp, b.sp);
  EXPECT_EQ(a.sf, b.sf);
  config.seed = 12345;
  const FactorSet c = InitializeFactors(p.data, p.sf0, config);
  EXPECT_FALSE(a.sp == c.sp);
}

TEST(InitTest, LexiconSeedingAlignsTweetsWithPrior) {
  // A tweet made of confidently-positive prior words must start with its
  // largest Sp coordinate on the positive cluster.
  const auto p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  config.init = InitStrategy::kLexiconSeeded;
  const FactorSet f = InitializeFactors(p.data, p.sf0, config);

  // Find the most positively-scored tweet under the raw prior and check
  // the init agrees.
  const DenseMatrix prior_scores = SpMM(p.data.xp, p.sf0);
  size_t best_tweet = 0;
  double best_margin = -1.0;
  for (size_t i = 0; i < prior_scores.rows(); ++i) {
    const double margin = prior_scores(i, 0) - prior_scores(i, 1);
    if (margin > best_margin) {
      best_margin = margin;
      best_tweet = i;
    }
  }
  EXPECT_EQ(f.sp.ArgMaxRow(best_tweet), 0u);
}

TEST(InitTest, AssociationsStartNearIdentity) {
  const auto p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  config.init = InitStrategy::kLexiconSeeded;
  const FactorSet f = InitializeFactors(p.data, p.sf0, config);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      if (i == j) {
        EXPECT_GT(f.hp(i, j), 0.9);
      } else {
        EXPECT_LT(f.hp(i, j), 0.1);
      }
    }
  }
}

TEST(InitDeathTest, RejectsMismatchedPrior) {
  const auto p = testing_util::MakeSmallProblem();
  TriClusterConfig config;
  const DenseMatrix bad_sf0(3, 3, 0.5);  // wrong row count
  EXPECT_DEATH(InitializeFactors(p.data, bad_sf0, config), "check failed");
}

}  // namespace
}  // namespace triclust
