#include "src/graph/user_graph.h"

#include <gtest/gtest.h>

namespace triclust {
namespace {

UserGraph Triangle() {
  return UserGraph::FromEdges(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 0.5}});  // node 3 isolated
}

TEST(UserGraphTest, EmptyGraph) {
  UserGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.Degree(2), 0.0);
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(UserGraphTest, FromEdgesBuildsSymmetricAdjacency) {
  const UserGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.adjacency().At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.adjacency().At(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.adjacency().At(2, 1), 2.0);
}

TEST(UserGraphTest, DegreesAreWeightedRowSums) {
  const UserGraph g = Triangle();
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.5);
  EXPECT_DOUBLE_EQ(g.Degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.Degree(2), 2.5);
  EXPECT_DOUBLE_EQ(g.Degree(3), 0.0);
  EXPECT_EQ(g.degrees().size(), 4u);
}

TEST(UserGraphTest, ParallelEdgesAccumulate) {
  const UserGraph g =
      UserGraph::FromEdges(2, {{0, 1, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(g.adjacency().At(1, 0), 3.0);
}

TEST(UserGraphTest, SelfLoopsDropped) {
  const UserGraph g = UserGraph::FromEdges(2, {{0, 0, 5.0}, {0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.0);
}

TEST(UserGraphTest, NeighborsListsEdges) {
  const UserGraph g = Triangle();
  const auto nbrs = g.Neighbors(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].node, 0u);
  EXPECT_DOUBLE_EQ(nbrs[0].weight, 1.0);
  EXPECT_EQ(nbrs[1].node, 2u);
  EXPECT_DOUBLE_EQ(nbrs[1].weight, 2.0);
}

TEST(UserGraphTest, ConnectedComponents) {
  const UserGraph g =
      UserGraph::FromEdges(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  const std::vector<int> comp = g.ConnectedComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
  // Dense ids starting at 0.
  EXPECT_EQ(comp[0], 0);
}

TEST(UserGraphTest, InducedSubgraphRemapsNodes) {
  const UserGraph g = Triangle();
  const UserGraph sub = g.InducedSubgraph({2, 1});
  EXPECT_EQ(sub.num_nodes(), 2u);
  // Edge 1-2 (weight 2) survives as 0-1 in the subgraph.
  EXPECT_DOUBLE_EQ(sub.adjacency().At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(sub.adjacency().At(1, 0), 2.0);
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(UserGraphTest, InducedSubgraphDropsOutsideEdges) {
  const UserGraph g = Triangle();
  const UserGraph sub = g.InducedSubgraph({0, 3});
  EXPECT_EQ(sub.num_edges(), 0u);
}

}  // namespace
}  // namespace triclust
