#ifndef TRICLUST_TESTS_TEST_UTIL_H_
#define TRICLUST_TESTS_TEST_UTIL_H_

#include <vector>

#include "src/data/matrix_builder.h"
#include "src/data/synthetic.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/ops.h"
#include "src/matrix/sparse_matrix.h"
#include "src/util/rng.h"

namespace triclust {
namespace testing_util {

/// Random sparse matrix with the given density, entries in (0, 1].
inline SparseMatrix RandomSparse(size_t rows, size_t cols, double density,
                                 Rng* rng) {
  SparseMatrix::Builder builder(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng->Bernoulli(density)) {
        builder.Add(i, j, rng->Uniform(0.01, 1.0));
      }
    }
  }
  return builder.Build();
}

/// Random strictly-positive dense matrix.
inline DenseMatrix RandomPositive(size_t rows, size_t cols, Rng* rng) {
  return DenseMatrix::Random(rows, cols, rng, 0.05, 1.0);
}

/// Dense reference of ||X − U·Vᵀ||²F (for checking the sparse fast path).
inline double DenseFactorizationLoss(const SparseMatrix& x,
                                     const DenseMatrix& u,
                                     const DenseMatrix& v) {
  const DenseMatrix dense_x = x.ToDense();
  const DenseMatrix approx = MatMulABt(u, v);
  return FrobeniusDistanceSquared(dense_x, approx);
}

/// A small synthetic campaign sized for unit tests (≈1.5k tweets), shared
/// by the solver and baseline tests. Deterministic.
inline SyntheticDataset SmallCampaign(uint64_t seed = 5) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_users = 120;
  config.num_days = 10;
  config.base_tweets_per_day = 120.0;
  config.burst_days = {6};
  config.num_polar_words_per_class = 60;
  config.num_topic_words = 120;
  config.num_function_words = 60;
  return GenerateSynthetic(config);
}

/// Matrices + prior for SmallCampaign; builder is Fit on the whole corpus.
struct SmallProblem {
  SyntheticDataset dataset;
  MatrixBuilder builder;
  DatasetMatrices data;
  DenseMatrix sf0;
};

inline SmallProblem MakeSmallProblem(uint64_t seed = 5, int k = 3,
                                     double lexicon_coverage = 0.7) {
  SmallProblem p;
  p.dataset = SmallCampaign(seed);
  p.builder.Fit(p.dataset.corpus);
  p.data = p.builder.BuildAll(p.dataset.corpus);
  const SentimentLexicon lexicon =
      CorruptLexicon(p.dataset.true_lexicon, lexicon_coverage, 0.02, seed);
  p.sf0 = lexicon.BuildSf0(p.builder.vocabulary(), k);
  return p;
}

}  // namespace testing_util
}  // namespace triclust

#endif  // TRICLUST_TESTS_TEST_UTIL_H_
