/// End-to-end integration tests across modules: corpus persistence →
/// matrices → solvers → metrics, plus the cross-method relationships the
/// paper's evaluation relies on.

#include <cstdio>

#include <gtest/gtest.h>

#include "src/baselines/aggregation.h"
#include "src/baselines/essa.h"
#include "src/baselines/naive_bayes.h"
#include "src/core/offline.h"
#include "src/core/online.h"
#include "src/core/timeline.h"
#include "src/data/snapshots.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;

TEST(IntegrationTest, SaveLoadSolveIsIdenticalToDirectSolve) {
  const auto p = MakeSmallProblem();
  const std::string path = ::testing::TempDir() + "/integration_corpus.tsv";
  ASSERT_TRUE(p.dataset.corpus.SaveTsv(path).ok());
  auto loaded = Corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  MatrixBuilder builder;
  builder.Fit(loaded.value());
  const DatasetMatrices data = builder.BuildAll(loaded.value());
  ASSERT_EQ(data.num_tweets(), p.data.num_tweets());
  ASSERT_EQ(data.num_features(), p.data.num_features());

  TriClusterConfig config;
  config.max_iterations = 20;
  const SentimentLexicon lexicon =
      CorruptLexicon(p.dataset.true_lexicon, 0.7, 0.02, 5);
  const DenseMatrix sf0 = lexicon.BuildSf0(builder.vocabulary(), 3);
  const TriClusterResult from_disk =
      OfflineTriClusterer(config).Run(data, sf0);
  const TriClusterResult direct =
      OfflineTriClusterer(config).Run(p.data, p.sf0);
  // The reloaded corpus produces the same clustering (note: per-day user
  // trajectories are not persisted, but static labels and text are).
  EXPECT_EQ(from_disk.TweetClusters(), direct.TweetClusters());
}

TEST(IntegrationTest, JointClusteringBeatsTweetOnlyClustering) {
  // The paper's core claim: coupling users into the factorization beats
  // clustering tweets alone (ESSA) on the same matrices.
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 60;
  const TriClusterResult tri = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EssaOptions essa_options;
  essa_options.max_iterations = 60;
  const TriClusterResult essa = RunEssa(p.data.xp, p.sf0, essa_options);
  const double tri_acc =
      ClusteringAccuracy(tri.TweetClusters(), p.data.tweet_labels);
  const double essa_acc =
      ClusteringAccuracy(essa.TweetClusters(), p.data.tweet_labels);
  EXPECT_GE(tri_acc + 0.02, essa_acc);  // tri at least comparable...
  // ...and at user level ESSA has no answer at all while tri does well.
  EXPECT_GT(ClusteringAccuracy(tri.UserClusters(), p.data.user_labels),
            0.6);
}

TEST(IntegrationTest, JointUserEstimateBeatsNoisyAggregation) {
  // §1's motivating bias: aggregating per-tweet *predictions* (not truth)
  // misestimates users; the joint factorization is more robust. Compare
  // tri-clustering's user accuracy to NB-predict-then-aggregate with weak
  // supervision.
  const auto p = MakeSmallProblem();
  const auto seeds = SampleSeedLabels(p.data.tweet_labels, 0.05, 3);
  MultinomialNaiveBayes nb;
  nb.Train(p.data.xp, seeds);
  const auto aggregated =
      AggregateTweetsToUsers(p.data, nb.Predict(p.data.xp));
  const double agg_acc =
      ClassificationAccuracy(aggregated, p.data.user_labels);

  TriClusterConfig config;
  config.max_iterations = 60;
  const TriClusterResult tri = OfflineTriClusterer(config).Run(p.data, p.sf0);
  const double tri_acc =
      ClusteringAccuracy(tri.UserClusters(), p.data.user_labels);
  EXPECT_GE(tri_acc + 0.05, agg_acc);
}

TEST(IntegrationTest, OnlineStreamMatchesOfflineOnStableUsers) {
  // Users that never flip should receive consistent sentiment from the
  // online stream in its second half (after history accumulates).
  const auto p = MakeSmallProblem();
  const Corpus& corpus = p.dataset.corpus;
  OnlineConfig config;
  config.base.max_iterations = 30;
  config.base.track_loss = false;
  OnlineTriClusterer online(config, p.sf0);

  std::unordered_map<size_t, std::vector<Sentiment>> assigned;
  const auto snapshots = SplitByDay(corpus);
  for (const Snapshot& snap : snapshots) {
    const DatasetMatrices data =
        p.builder.Build(corpus, snap.tweet_ids, snap.last_day);
    const TriClusterResult r = online.ProcessSnapshot(data);
    if (data.num_tweets() == 0) continue;
    const auto clusters = r.UserClusters();
    const auto mapping =
        MajorityVoteMapping(clusters, data.user_labels, 3);
    for (size_t j = 0; j < data.num_users(); ++j) {
      assigned[data.user_ids[j]].push_back(
          mapping[static_cast<size_t>(clusters[j])]);
    }
  }
  // Consistency: users seen ≥ 5 times mostly keep one assignment.
  size_t consistent = 0;
  size_t measured = 0;
  for (const auto& [user, history] : assigned) {
    if (history.size() < 5) continue;
    ++measured;
    size_t counts[kNumSentimentClasses] = {0, 0, 0};
    for (Sentiment s : history) ++counts[SentimentIndex(s)];
    const size_t peak =
        *std::max_element(counts, counts + kNumSentimentClasses);
    if (static_cast<double>(peak) / history.size() >= 0.7) ++consistent;
  }
  ASSERT_GT(measured, 10u);
  EXPECT_GT(static_cast<double>(consistent) / measured, 0.6);
}

TEST(IntegrationTest, TimelineModesRankLikeThePaper) {
  // Full-batch ≥ mini-batch on user accuracy; online within striking
  // distance of full-batch at much lower cost (Fig. 11/12 summary). Small
  // data makes single-run comparisons noisy, so allow generous slack.
  const auto p = MakeSmallProblem();
  const SentimentLexicon lexicon =
      CorruptLexicon(p.dataset.true_lexicon, 0.7, 0.02, 5);
  const auto snapshots = SplitByDay(p.dataset.corpus);
  OnlineConfig config;
  config.base.max_iterations = 30;
  config.base.track_loss = false;
  const auto online = RunTimeline(p.dataset.corpus, p.builder, snapshots,
                                  lexicon, TimelineMode::kOnline, config);
  const auto full = RunTimeline(p.dataset.corpus, p.builder, snapshots,
                                lexicon, TimelineMode::kFullBatch, config);
  EXPECT_GT(TotalSeconds(full), TotalSeconds(online) * 1.5);
  EXPECT_GE(AverageUserAccuracy(online) + 12.0, AverageUserAccuracy(full));
}

TEST(IntegrationTest, WholePipelineIsDeterministic) {
  auto run = [] {
    const auto p = MakeSmallProblem();
    TriClusterConfig config;
    config.max_iterations = 15;
    return OfflineTriClusterer(config)
        .Run(p.data, p.sf0)
        .TweetClusters();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace triclust
