/// Tests of the framework extensions beyond the paper's core algorithms:
/// guided (semi-supervised) regularization, L1 sparsity regularization, the
/// extra clustering metrics, and the lexicon-vote baseline.

#include <cmath>

#include <gtest/gtest.h>

#include "src/baselines/lexicon_vote.h"
#include "src/core/offline.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "src/matrix/ops.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;

const Sentiment P = Sentiment::kPositive;
const Sentiment N = Sentiment::kNegative;
const Sentiment U = Sentiment::kNeutral;
const Sentiment X = Sentiment::kUnlabeled;

// --- guided (semi-supervised) mode -------------------------------------------

TEST(GuidedTest, SeedsImproveTweetAccuracy) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 50;

  const TriClusterResult unsupervised =
      OfflineTriClusterer(config).Run(p.data, p.sf0);

  Supervision supervision;
  supervision.tweet_seeds = SampleSeedLabels(p.data.tweet_labels, 0.2, 3);
  supervision.weight = 2.0;
  const TriClusterResult guided =
      OfflineTriClusterer(config).Run(p.data, p.sf0, &supervision);

  const double unsup_acc =
      ClusteringAccuracy(unsupervised.TweetClusters(), p.data.tweet_labels);
  const double guided_acc =
      ClusteringAccuracy(guided.TweetClusters(), p.data.tweet_labels);
  EXPECT_GT(guided_acc, unsup_acc - 0.01);
  // Seeded rows themselves must be strongly aligned.
  size_t aligned = 0;
  size_t seeded = 0;
  const auto clusters = guided.TweetClusters();
  const auto mapping =
      MajorityVoteMapping(clusters, p.data.tweet_labels, 3);
  for (size_t i = 0; i < supervision.tweet_seeds.size(); ++i) {
    if (supervision.tweet_seeds[i] == X) continue;
    ++seeded;
    if (mapping[static_cast<size_t>(clusters[i])] ==
        supervision.tweet_seeds[i]) {
      ++aligned;
    }
  }
  ASSERT_GT(seeded, 50u);
  EXPECT_GT(static_cast<double>(aligned) / seeded, 0.85);
}

TEST(GuidedTest, UserSeedsPullUserRows) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 40;
  Supervision supervision;
  supervision.user_seeds = SampleSeedLabels(p.data.user_labels, 0.3, 5);
  supervision.weight = 3.0;
  const TriClusterResult guided =
      OfflineTriClusterer(config).Run(p.data, p.sf0, &supervision);
  const auto clusters = guided.UserClusters();
  const auto mapping = MajorityVoteMapping(clusters, p.data.user_labels, 3);
  size_t aligned = 0;
  size_t seeded = 0;
  for (size_t u = 0; u < supervision.user_seeds.size(); ++u) {
    if (supervision.user_seeds[u] == X) continue;
    ++seeded;
    if (mapping[static_cast<size_t>(clusters[u])] ==
        supervision.user_seeds[u]) {
      ++aligned;
    }
  }
  ASSERT_GT(seeded, 10u);
  EXPECT_GT(static_cast<double>(aligned) / seeded, 0.8);
}

TEST(GuidedTest, GuidedLossTrackedAndDecreasing) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 30;
  config.tolerance = 0.0;
  Supervision supervision;
  supervision.tweet_seeds = SampleSeedLabels(p.data.tweet_labels, 0.1, 7);
  supervision.weight = 1.0;
  const TriClusterResult r =
      OfflineTriClusterer(config).Run(p.data, p.sf0, &supervision);
  ASSERT_GT(r.loss_history.size(), 5u);
  // The guided component is tracked, stays finite, and participates in the
  // usual component balancing (it needn't decrease monotonically — the
  // seeded-row *alignment* is the guaranteed outcome, tested above); the
  // total objective still descends.
  for (const LossComponents& loss : r.loss_history) {
    EXPECT_GE(loss.guided_loss, 0.0);
    EXPECT_TRUE(std::isfinite(loss.guided_loss));
  }
  EXPECT_GT(r.loss_history.front().guided_loss, 0.0);
  EXPECT_LT(r.loss_history.back().Total(),
            r.loss_history.front().Total());
}

TEST(GuidedTest, EmptySupervisionEqualsUnsupervised) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 10;
  Supervision empty;
  const TriClusterResult a =
      OfflineTriClusterer(config).Run(p.data, p.sf0, &empty);
  const TriClusterResult b = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_EQ(a.sp, b.sp);
  EXPECT_DOUBLE_EQ(a.loss_history.back().guided_loss, 0.0);
}

// --- sparsity regularization ---------------------------------------------------

TEST(SparsityTest, IncreasesNearZeroFraction) {
  const auto p = MakeSmallProblem();
  TriClusterConfig dense_config;
  dense_config.max_iterations = 40;
  TriClusterConfig sparse_config = dense_config;
  sparse_config.sparsity = 0.5;

  const TriClusterResult dense =
      OfflineTriClusterer(dense_config).Run(p.data, p.sf0);
  const TriClusterResult sparse =
      OfflineTriClusterer(sparse_config).Run(p.data, p.sf0);

  auto near_zero_fraction = [](const DenseMatrix& m) {
    size_t count = 0;
    for (size_t i = 0; i < m.size(); ++i) {
      if (m.data()[i] < 1e-6) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(m.size());
  };
  EXPECT_GE(near_zero_fraction(sparse.sp) + 1e-9,
            near_zero_fraction(dense.sp));
  EXPECT_TRUE(IsNonNegative(sparse.sp));
  EXPECT_TRUE(AllFinite(sparse.sp));
}

TEST(SparsityTest, MildSparsityKeepsAccuracy) {
  const auto p = MakeSmallProblem();
  TriClusterConfig config;
  config.max_iterations = 40;
  config.sparsity = 0.1;
  const TriClusterResult r = OfflineTriClusterer(config).Run(p.data, p.sf0);
  EXPECT_GT(ClusteringAccuracy(r.TweetClusters(), p.data.tweet_labels),
            0.55);
}

// --- extra metrics --------------------------------------------------------------

TEST(PermutationAccuracyTest, PerfectAndBounds) {
  const std::vector<int> clusters = {0, 0, 1, 1, 2};
  const std::vector<Sentiment> truth = {P, P, N, N, U};
  EXPECT_DOUBLE_EQ(PermutationAccuracy(clusters, truth), 1.0);
  // One-to-one constraint: two clusters cannot share a class.
  const std::vector<int> merged = {0, 0, 1, 1};
  const std::vector<Sentiment> both_pos = {P, P, P, P};
  EXPECT_DOUBLE_EQ(PermutationAccuracy(merged, both_pos), 0.5);
  // Majority-vote accuracy would give 1.0 here, so the bound holds:
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(merged, both_pos), 1.0);
}

TEST(PermutationAccuracyTest, NeverExceedsMajorityVote) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> clusters(40);
    std::vector<Sentiment> truth(40);
    for (size_t i = 0; i < clusters.size(); ++i) {
      clusters[i] = static_cast<int>(rng.NextUint64Below(4));
      truth[i] =
          SentimentFromIndex(static_cast<int>(rng.NextUint64Below(3)));
    }
    EXPECT_LE(PermutationAccuracy(clusters, truth),
              ClusteringAccuracy(clusters, truth) + 1e-12);
  }
}

TEST(AdjustedRandIndexTest, KnownValues) {
  const std::vector<Sentiment> truth = {P, P, N, N};
  EXPECT_NEAR(AdjustedRandIndex({0, 0, 1, 1}, truth), 1.0, 1e-12);
  EXPECT_NEAR(AdjustedRandIndex({1, 1, 0, 0}, truth), 1.0, 1e-12);
  // Independent partition → ≈ 0 (can be slightly negative).
  EXPECT_LT(AdjustedRandIndex({0, 1, 0, 1}, truth), 0.3);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0}, {P}), 0.0);  // degenerate
}

TEST(AdjustedRandIndexTest, BoundedAboveByOne) {
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> clusters(25);
    std::vector<Sentiment> truth(25);
    for (size_t i = 0; i < clusters.size(); ++i) {
      clusters[i] = static_cast<int>(rng.NextUint64Below(3));
      truth[i] =
          SentimentFromIndex(static_cast<int>(rng.NextUint64Below(3)));
    }
    EXPECT_LE(AdjustedRandIndex(clusters, truth), 1.0 + 1e-12);
  }
}

TEST(PurityTest, AliasesClusteringAccuracy) {
  const std::vector<int> clusters = {0, 0, 0, 1};
  const std::vector<Sentiment> truth = {P, P, N, N};
  EXPECT_DOUBLE_EQ(Purity(clusters, truth),
                   ClusteringAccuracy(clusters, truth));
}

// --- lexicon vote ----------------------------------------------------------------

TEST(LexiconVoteTest, VotesByCoveredWords) {
  Vocabulary vocab;
  vocab.GetOrAdd("good");
  vocab.GetOrAdd("bad");
  vocab.GetOrAdd("corn");
  SentimentLexicon lexicon;
  lexicon.Add("good", P);
  lexicon.Add("bad", N);

  SparseMatrix::Builder builder(4, 3);
  builder.Add(0, 0, 2.0);               // good good → pos
  builder.Add(1, 1, 1.0);               // bad → neg
  builder.Add(2, 2, 5.0);               // corn only → neutral
  builder.Add(3, 0, 1.0);
  builder.Add(3, 1, 1.0);               // tie → neutral
  const SparseMatrix x = builder.Build();

  const auto pred = LexiconVote(x, vocab, lexicon, 3);
  EXPECT_EQ(pred[0], P);
  EXPECT_EQ(pred[1], N);
  EXPECT_EQ(pred[2], U);
  EXPECT_EQ(pred[3], U);
}

TEST(LexiconVoteTest, TwoClassModeLeavesTiesUnlabeled) {
  Vocabulary vocab;
  vocab.GetOrAdd("corn");
  SentimentLexicon lexicon;
  SparseMatrix::Builder builder(1, 1);
  builder.Add(0, 0, 1.0);
  const auto pred = LexiconVote(builder.Build(), vocab, lexicon, 2);
  EXPECT_EQ(pred[0], X);
}

TEST(LexiconVoteTest, IsAFloorBelowTriClusteringOnCampaign) {
  const auto p = MakeSmallProblem();
  const SentimentLexicon lexicon =
      CorruptLexicon(p.dataset.true_lexicon, 0.7, 0.02, 5);
  const auto vote =
      LexiconVote(p.data.xp, p.builder.vocabulary(), lexicon);
  const double vote_acc =
      ClassificationAccuracy(vote, p.data.tweet_labels);
  EXPECT_GT(vote_acc, 0.4);  // the lexicon carries real signal...

  TriClusterConfig config;
  config.max_iterations = 50;
  const TriClusterResult tri = OfflineTriClusterer(config).Run(p.data, p.sf0);
  const double tri_acc =
      ClusteringAccuracy(tri.TweetClusters(), p.data.tweet_labels);
  // ...and co-clustering at least matches it at tweet level (with a
  // high-coverage lexicon the vote is a strong floor) while additionally
  // producing user-level clusters the vote cannot.
  EXPECT_GT(tri_acc + 0.06, vote_acc);
  EXPECT_GT(ClusteringAccuracy(tri.UserClusters(), p.data.user_labels),
            0.6);
}

}  // namespace
}  // namespace triclust
