#include "src/core/updates.h"

#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/matrix/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::RandomPositive;
using testing_util::RandomSparse;

/// A random instance of the full offline problem.
struct Instance {
  SparseMatrix xp, xu, xr;
  UserGraph gu;
  DenseMatrix sp, su, sf, hp, hu;
  DenseMatrix sf0;
  double alpha = 0.1;
  double beta = 0.5;
};

Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 12 + rng.NextUint64Below(20);  // tweets
  const size_t m = 6 + rng.NextUint64Below(10);   // users
  const size_t l = 15 + rng.NextUint64Below(25);  // features
  const size_t k = 3;

  Instance inst;
  inst.xp = RandomSparse(n, l, 0.25, &rng);
  inst.xu = RandomSparse(m, l, 0.3, &rng);
  inst.xr = RandomSparse(m, n, 0.2, &rng);
  std::vector<UserGraph::Edge> edges;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      if (rng.Bernoulli(0.3)) edges.push_back({i, j, rng.Uniform(0.5, 2.0)});
    }
  }
  inst.gu = UserGraph::FromEdges(m, edges);
  inst.sp = RandomPositive(n, k, &rng);
  inst.su = RandomPositive(m, k, &rng);
  inst.sf = RandomPositive(l, k, &rng);
  inst.hp = RandomPositive(k, k, &rng);
  inst.hu = RandomPositive(k, k, &rng);
  inst.sf0 = RandomPositive(l, k, &rng);
  return inst;
}

double Objective(const Instance& inst) {
  return ComputeObjective(inst.xp, inst.xu, inst.xr, inst.gu, inst.sp,
                          inst.su, inst.sf, inst.hp, inst.hu, inst.alpha,
                          inst.sf0, inst.beta)
      .Total();
}

constexpr double kEps = 1e-12;
// One multiplicative step may overshoot within floating-point noise of the
// theory; allow a relative slack.
constexpr double kSlack = 1e-7;

class UpdateRuleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateRuleTest, HpStepNonIncreasingAndNonNegative) {
  Instance inst = MakeInstance(GetParam());
  const double before = Objective(inst);
  update::UpdateHp(inst.xp, inst.sp, inst.sf, &inst.hp, kEps);
  EXPECT_TRUE(IsNonNegative(inst.hp));
  EXPECT_TRUE(AllFinite(inst.hp));
  EXPECT_LE(Objective(inst), before * (1.0 + kSlack));
}

TEST_P(UpdateRuleTest, HuStepNonIncreasingAndNonNegative) {
  Instance inst = MakeInstance(GetParam() + 100);
  const double before = Objective(inst);
  update::UpdateHu(inst.xu, inst.su, inst.sf, &inst.hu, kEps);
  EXPECT_TRUE(IsNonNegative(inst.hu));
  EXPECT_TRUE(AllFinite(inst.hu));
  EXPECT_LE(Objective(inst), before * (1.0 + kSlack));
}

TEST_P(UpdateRuleTest, SpStepKeepsInvariants) {
  Instance inst = MakeInstance(GetParam() + 200);
  update::UpdateSp(inst.xp, inst.xr, inst.sf, inst.hp, inst.su, &inst.sp,
                   kEps);
  EXPECT_TRUE(IsNonNegative(inst.sp));
  EXPECT_TRUE(AllFinite(inst.sp));
}

TEST_P(UpdateRuleTest, SuStepKeepsInvariants) {
  Instance inst = MakeInstance(GetParam() + 300);
  update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                   inst.beta, nullptr, nullptr, &inst.su, kEps);
  EXPECT_TRUE(IsNonNegative(inst.su));
  EXPECT_TRUE(AllFinite(inst.su));
}

TEST_P(UpdateRuleTest, SfStepKeepsInvariants) {
  Instance inst = MakeInstance(GetParam() + 400);
  update::UpdateSf(inst.xp, inst.xu, inst.sp, inst.su, inst.hp, inst.hu,
                   inst.alpha, inst.sf0, &inst.sf, kEps);
  EXPECT_TRUE(IsNonNegative(inst.sf));
  EXPECT_TRUE(AllFinite(inst.sf));
}

TEST_P(UpdateRuleTest, FullSweepNonIncreasingAfterWarmup) {
  // The paper proves each rule is non-increasing at fixed other factors;
  // the composed sweep (Algorithm 1 body) must drive the total objective
  // down across iterations once past the first adjustment steps.
  Instance inst = MakeInstance(GetParam() + 500);
  double previous = Objective(inst);
  double first = previous;
  for (int iter = 0; iter < 30; ++iter) {
    update::UpdateSp(inst.xp, inst.xr, inst.sf, inst.hp, inst.su, &inst.sp,
                     kEps);
    update::UpdateHp(inst.xp, inst.sp, inst.sf, &inst.hp, kEps);
    update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                     inst.beta, nullptr, nullptr, &inst.su, kEps);
    update::UpdateHu(inst.xu, inst.su, inst.sf, &inst.hu, kEps);
    update::UpdateSf(inst.xp, inst.xu, inst.sp, inst.su, inst.hp, inst.hu,
                     inst.alpha, inst.sf0, &inst.sf, kEps);
    previous = Objective(inst);
  }
  EXPECT_LT(previous, first);
}

TEST_P(UpdateRuleTest, TemporalSuStepKeepsInvariants) {
  Instance inst = MakeInstance(GetParam() + 600);
  Rng rng(GetParam() + 601);
  DenseMatrix suw = RandomPositive(inst.su.rows(), inst.su.cols(), &rng);
  std::vector<double> weights(inst.su.rows(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (rng.Bernoulli(0.5)) weights[i] = 0.2;  // evolving user rows
  }
  update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                   inst.beta, &weights, &suw, &inst.su, kEps);
  EXPECT_TRUE(IsNonNegative(inst.su));
  EXPECT_TRUE(AllFinite(inst.su));
}

TEST_P(UpdateRuleTest, TemporalSuUpdateNonIncreasingObjective) {
  // Paper Lemma 3: the online objective (including γ·||Su − Suw||² over
  // evolving users) is non-increasing under the Eq. (26) update, holding
  // the other factors fixed.
  Instance inst = MakeInstance(GetParam() + 700);
  Rng rng(GetParam() + 701);
  const DenseMatrix suw =
      RandomPositive(inst.su.rows(), inst.su.cols(), &rng);
  std::vector<double> weights(inst.su.rows(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (rng.Bernoulli(0.6)) weights[i] = 0.4;  // evolving rows
  }
  auto objective = [&]() {
    return ComputeObjective(inst.xp, inst.xu, inst.xr, inst.gu, inst.sp,
                            inst.su, inst.sf, inst.hp, inst.hu, inst.alpha,
                            inst.sf0, inst.beta, &weights, &suw)
        .Total();
  };
  double previous = objective();
  for (int i = 0; i < 5; ++i) {
    update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                     inst.beta, &weights, &suw, &inst.su, kEps);
    const double now = objective();
    EXPECT_LE(now, previous * (1.0 + kSlack)) << "step " << i;
    previous = now;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, UpdateRuleTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(UpdateRuleEdgeTest, EmptyUserSideIsHarmless) {
  // The ESSA reduction: zero users must not break Sp/Sf/Hp updates.
  Rng rng(77);
  const size_t n = 10;
  const size_t l = 12;
  const size_t k = 3;
  const SparseMatrix xp = RandomSparse(n, l, 0.3, &rng);
  SparseMatrix::Builder xu_builder(0, l);
  const SparseMatrix xu = xu_builder.Build();
  SparseMatrix::Builder xr_builder(0, n);
  const SparseMatrix xr = xr_builder.Build();
  const UserGraph gu(0);
  DenseMatrix sp = RandomPositive(n, k, &rng);
  DenseMatrix su(0, k);
  DenseMatrix sf = RandomPositive(l, k, &rng);
  DenseMatrix hp = RandomPositive(k, k, &rng);
  DenseMatrix hu = DenseMatrix::Identity(k);
  const DenseMatrix sf0 = RandomPositive(l, k, &rng);

  const double before = TriFactorizationLossSquared(xp, sp, hp, sf);
  for (int i = 0; i < 10; ++i) {
    update::UpdateSp(xp, xr, sf, hp, su, &sp, kEps);
    update::UpdateHp(xp, sp, sf, &hp, kEps);
    update::UpdateSf(xp, xu, sp, su, hp, hu, 0.1, sf0, &sf, kEps);
  }
  EXPECT_LT(TriFactorizationLossSquared(xp, sp, hp, sf), before);
}

TEST(UpdateRuleEdgeTest, ZeroRegularizationWeightsAccepted) {
  Instance inst = MakeInstance(42);
  inst.alpha = 0.0;
  inst.beta = 0.0;
  const double before = Objective(inst);
  for (int i = 0; i < 10; ++i) {
    update::UpdateSp(inst.xp, inst.xr, inst.sf, inst.hp, inst.su, &inst.sp,
                     kEps);
    update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                     0.0, nullptr, nullptr, &inst.su, kEps);
    update::UpdateSf(inst.xp, inst.xu, inst.sp, inst.su, inst.hp, inst.hu,
                     0.0, inst.sf0, &inst.sf, kEps);
  }
  EXPECT_LT(Objective(inst), before);
}

TEST(UpdateWorkspaceTest, SteadyStateIterationsNeverHitSpTMMScatter) {
  // With a workspace, every Xᵀ·D in the update rules must ride the cached
  // transpose (parallel SpMM), never the serial SpTMM scatter — that is the
  // hot-path contract the rules enforce with ScopedForbidSpTMMScatter (an
  // accidental scatter would trip a CHECK, not just slow down).
  Instance inst = MakeInstance(77);
  update::UpdateWorkspace workspace;
  const uint64_t scatters_before = internal::SpTMMScatterCalls();
  for (int iter = 0; iter < 5; ++iter) {
    update::UpdateSp(inst.xp, inst.xr, inst.sf, inst.hp, inst.su, &inst.sp,
                     kEps, 0.0, nullptr, nullptr, &workspace);
    update::UpdateHp(inst.xp, inst.sp, inst.sf, &inst.hp, kEps, &workspace);
    update::UpdateSu(inst.xu, inst.xr, inst.gu, inst.sf, inst.hu, inst.sp,
                     inst.beta, nullptr, nullptr, &inst.su, kEps, 0.0,
                     &workspace);
    update::UpdateHu(inst.xu, inst.su, inst.sf, &inst.hu, kEps, &workspace);
    update::UpdateSf(inst.xp, inst.xu, inst.sp, inst.su, inst.hp, inst.hu,
                     inst.alpha, inst.sf0, &inst.sf, kEps, 0.0, &workspace);
  }
  EXPECT_EQ(internal::SpTMMScatterCalls(), scatters_before);

  // Without a workspace the legacy scatter path is still reachable (and
  // counted) — the canary only bites under the forbid scope.
  update::UpdateSf(inst.xp, inst.xu, inst.sp, inst.su, inst.hp, inst.hu,
                   inst.alpha, inst.sf0, &inst.sf, kEps);
  EXPECT_GT(internal::SpTMMScatterCalls(), scatters_before);
}

}  // namespace
}  // namespace triclust
