/// Tests of the adversarial scenario suite (src/data/scenario.h) and the
/// multi-method runner (src/eval/method_runner.h): catalog integrity and
/// scaling, every scenario's seeded expectation record at reduced scale,
/// fleet health under the spam flood, bitwise replay-vs-direct equality
/// for a churned campaign fleet, and the method-comparison CSV shape.

#include "src/data/scenario.h"

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/snapshot_solver.h"
#include "src/data/matrix_builder.h"
#include "src/data/synthetic.h"
#include "src/eval/method_runner.h"
#include "src/serving/replay.h"
#include "src/text/lexicon.h"
#include "src/util/string_util.h"

namespace triclust {
namespace {

// The expectation floors are calibrated to hold at any scale >= 0.5; the
// suite runs at the reduced scale CI uses so the two gates agree.
constexpr double kTestScale = 0.5;

MethodRunnerOptions TriclustOnly() {
  MethodRunnerOptions options;
  options.methods = {"triclust"};
  return options;
}

TEST(ScenarioCatalogTest, ListsEveryScenarioAndRejectsUnknowns) {
  const std::vector<std::string> names = ScenarioNames();
  ASSERT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    Result<Scenario> scenario = GetScenario(name);
    ASSERT_TRUE(scenario.ok()) << name;
    EXPECT_EQ(scenario.value().name, name);
    EXPECT_FALSE(scenario.value().description.empty()) << name;
    // Every record carries a checkable accuracy floor and day horizon.
    EXPECT_GT(scenario.value().expect.min_tweet_accuracy, 0.0) << name;
    EXPECT_GT(scenario.value().expect.min_user_accuracy, 0.0) << name;
    EXPECT_GT(scenario.value().expect.expected_days, 0) << name;
    EXPECT_GT(scenario.value().expect.min_tweets, 0u) << name;
  }
  EXPECT_EQ(AllScenarios().size(), names.size());

  const Result<Scenario> unknown = GetScenario("no_such_scenario");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioCatalogTest, ScaleShrinksPopulationButKeepsDayStructure) {
  const Result<Scenario> full = GetScenario("spam_botnet", 1.0);
  const Result<Scenario> half = GetScenario("spam_botnet", 0.5);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(half.ok());
  EXPECT_LT(half.value().config.num_users, full.value().config.num_users);
  EXPECT_LT(half.value().config.num_spam_users,
            full.value().config.num_spam_users);
  EXPECT_LT(half.value().expect.min_tweets, full.value().expect.min_tweets);
  // Day structure is scale-invariant: same horizon, same burst days.
  EXPECT_EQ(half.value().config.num_days, full.value().config.num_days);
  EXPECT_EQ(half.value().config.burst_days, full.value().config.burst_days);
  // Floors are the same record at every valid scale.
  EXPECT_EQ(half.value().expect.min_tweet_accuracy,
            full.value().expect.min_tweet_accuracy);

  for (const double bad : {0.0, -1.0, 1.5}) {
    const Result<Scenario> rejected = GetScenario("spam_botnet", bad);
    ASSERT_FALSE(rejected.ok()) << bad;
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(ScenarioSuiteTest, EveryScenarioMeetsItsExpectationRecord) {
  // The seeded regression gate: each scenario replayed through the
  // serving stack must satisfy its own machine-readable expectations
  // (accuracy floors, quarantine limits, churn outcome, day horizon).
  // Runs are bit-deterministic, so a miss is a robustness regression,
  // not noise.
  for (const Scenario& scenario : AllScenarios(kTestScale)) {
    const Result<ScenarioRun> run = RunScenario(scenario, TriclustOnly());
    ASSERT_TRUE(run.ok()) << scenario.name << ": "
                          << run.status().ToString();
    const ExpectationReport report =
        CheckExpectations(scenario, run.value());
    EXPECT_TRUE(report.ok()) << scenario.name << " missed: "
                             << Join(report.failures, "; ");
  }
}

TEST(ScenarioSuiteTest, SpamFloodDegradesAccuracyButNeverQuarantines) {
  // Spam is noise, not poison: a flood of high-polarity unlabeled bot
  // traffic can depress accuracy, but it cannot produce non-finite
  // factors, so the health ladder must not move — no campaign degraded,
  // quarantined, or retired by the attack.
  Result<Scenario> scenario_or = GetScenario("spam_botnet", kTestScale);
  ASSERT_TRUE(scenario_or.ok());
  const Scenario scenario = std::move(scenario_or).value();
  ASSERT_GT(scenario.config.num_spam_users, 0u);

  const Result<ScenarioRun> run_or = RunScenario(scenario, TriclustOnly());
  ASSERT_TRUE(run_or.ok()) << run_or.status().ToString();
  const ScenarioRun& run = run_or.value();

  EXPECT_EQ(run.final_health.quarantined, 0u);
  EXPECT_EQ(run.final_health.degraded, 0u);
  EXPECT_EQ(run.final_health.retired, 0u);
  EXPECT_EQ(run.final_health.healthy, scenario.num_campaigns);
  // The floor still holds under the flood.
  EXPECT_GE(run.triclust_aggregate.tweet_accuracy,
            scenario.expect.min_tweet_accuracy);
  EXPECT_GE(run.triclust_aggregate.user_accuracy,
            scenario.expect.min_user_accuracy);
}

TEST(ScenarioSuiteTest, UnknownMethodIsInvalidArgument) {
  Result<Scenario> scenario = GetScenario("empty_days", kTestScale);
  ASSERT_TRUE(scenario.ok());
  MethodRunnerOptions options;
  options.methods = {"triclust", "svm_rumor"};
  const Result<ScenarioRun> run = RunScenario(scenario.value(), options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioChurnTest, ChurnedFleetMatchesSoloReplaysBitwise) {
  // The churn invariant: a campaign that lived through fleet churn —
  // co-hosted with campaigns that were retired and launched around it —
  // must produce factors bit-identical to replaying its own slice alone
  // over its own active window. Churn may not leak across campaigns.
  Result<Scenario> scenario_or = GetScenario("campaign_churn", kTestScale);
  ASSERT_TRUE(scenario_or.ok());
  const Scenario scenario = std::move(scenario_or).value();
  ASSERT_FALSE(scenario.churn.empty());

  const SyntheticDataset dataset = GenerateSynthetic(scenario.config);
  const Corpus& corpus = dataset.corpus;
  const SentimentLexicon prior =
      CorruptLexicon(dataset.true_lexicon, scenario.lexicon_coverage,
                     scenario.lexicon_error_rate, scenario.lexicon_seed);
  MatrixBuilder builder;
  builder.Fit(corpus);
  const DenseMatrix sf0 = prior.BuildSf0(builder.vocabulary(), 3);
  OnlineConfig config;
  config.base.max_iterations = 15;
  config.base.track_loss = false;

  const size_t num_streams = scenario.NumStreams();
  const auto streams = serving::PartitionIntoStreams(corpus, num_streams);

  serving::CampaignEngine engine;
  serving::ReplayDriver driver(&engine);
  for (size_t c = 0; c < scenario.num_campaigns; ++c) {
    Result<size_t> id = engine.AddCampaign("churn-" + std::to_string(c),
                                           config, sf0, builder, &corpus);
    ASSERT_TRUE(id.ok());
    driver.AddStream(id.value(), streams[c]);
  }
  // Mirror the method runner's churn hook: retire / launch before the
  // day's traffic is released; launches take the next stream slice.
  std::vector<int> launch_day(num_streams, 0);
  size_t next_event = 0;
  size_t next_stream = scenario.num_campaigns;
  driver.set_day_hook([&](int day) {
    while (next_event < scenario.churn.size() &&
           scenario.churn[next_event].day <= day) {
      const ChurnEvent& event = scenario.churn[next_event++];
      if (event.action == ChurnEvent::Action::kRetire) {
        engine.RetireCampaign(event.campaign);
        continue;
      }
      Result<size_t> id =
          engine.AddCampaign(event.name, config, sf0, builder, &corpus);
      ASSERT_TRUE(id.ok());
      launch_day[id.value()] = day;
      ASSERT_LT(next_stream, streams.size());
      driver.AddStream(id.value(), streams[next_stream++]);
    }
  });
  std::vector<std::vector<TriClusterResult>> replayed(num_streams);
  driver.set_snapshot_callback(
      [&](int /*day*/, const serving::CampaignEngine::SnapshotReport& r) {
        if (r.fitted) replayed[r.campaign].push_back(r.result);
      });
  driver.Replay();
  ASSERT_EQ(engine.num_campaigns(), num_streams);

  // Active window per campaign: [launch day, retirement day) — the hook
  // fires before ingest, so a campaign retired on day d last saw day d-1.
  std::vector<int> end_day(num_streams, corpus.num_days());
  for (const ChurnEvent& event : scenario.churn) {
    if (event.action == ChurnEvent::Action::kRetire) {
      end_day[event.campaign] = event.day;
    }
  }
  for (size_t c = 0; c < num_streams; ++c) {
    const SnapshotSolver solver(config, sf0);
    StreamState state;
    size_t cursor = 0;
    for (int day = launch_day[c]; day < end_day[c]; ++day) {
      const Snapshot& snap = streams[c][static_cast<size_t>(day)];
      const DatasetMatrices data =
          builder.Build(corpus, snap.tweet_ids, snap.last_day);
      const TriClusterResult expected = solver.Solve(data, &state);
      ASSERT_LT(cursor, replayed[c].size())
          << "campaign " << c << " day " << day;
      EXPECT_EQ(replayed[c][cursor].su, expected.su)
          << "campaign " << c << " day " << day;
      EXPECT_EQ(replayed[c][cursor].sp, expected.sp)
          << "campaign " << c << " day " << day;
      EXPECT_EQ(replayed[c][cursor].sf, expected.sf)
          << "campaign " << c << " day " << day;
      ++cursor;
    }
    EXPECT_EQ(cursor, replayed[c].size()) << "campaign " << c;
  }
}

TEST(MethodComparisonTest, CsvCarriesEveryMethodDayAndAggregateRow) {
  Result<Scenario> scenario_or = GetScenario("empty_days", kTestScale);
  ASSERT_TRUE(scenario_or.ok());
  const Scenario scenario = std::move(scenario_or).value();

  MethodRunnerOptions options;
  options.methods = {"triclust", "lexvote"};
  const Result<ScenarioRun> run_or = RunScenario(scenario, options);
  ASSERT_TRUE(run_or.ok()) << run_or.status().ToString();
  const ScenarioRun& run = run_or.value();

  ASSERT_EQ(run.methods.size(), 2u);
  const MethodTimeline* triclust = run.FindMethod("triclust");
  const MethodTimeline* lexvote = run.FindMethod("lexvote");
  ASSERT_NE(triclust, nullptr);
  ASSERT_NE(lexvote, nullptr);
  EXPECT_EQ(run.FindMethod("lp10"), nullptr);
  // Both methods walk the same day horizon, so the timelines plot on a
  // shared axis.
  ASSERT_EQ(triclust->days.size(),
            static_cast<size_t>(run.replay_horizon_days));
  ASSERT_EQ(lexvote->days.size(), triclust->days.size());
  // Dead days score nothing for every method (NaN metrics, 0 items).
  for (const MethodTimeline* m : {triclust, lexvote}) {
    EXPECT_EQ(m->days[0].tweets_scored, 0u) << m->method;
    EXPECT_TRUE(std::isnan(m->days[0].tweet_accuracy)) << m->method;
    EXPECT_GT(m->tweets_scored, 0u) << m->method;
    EXPECT_TRUE(std::isfinite(m->tweet_accuracy)) << m->method;
  }

  std::ostringstream csv;
  WriteMethodComparisonCsv(run, csv);
  const std::vector<std::string> lines = Split(csv.str(), '\n');
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0],
            "scenario,method,day,tweets_scored,tweet_accuracy,tweet_nmi,"
            "users_scored,user_accuracy,user_nmi");
  // One row per (method, day) plus one day -1 aggregate row per method,
  // plus the trailing newline's empty split.
  const size_t expected_rows = 2 * (triclust->days.size() + 1);
  ASSERT_EQ(lines.size(), 1 + expected_rows + 1);
  // A dead day serializes its NaN metrics as empty fields.
  EXPECT_EQ(lines[1], "empty_days,triclust,0,0,,,0,,");
  // The aggregate rows are day -1 and carry finite accuracies.
  EXPECT_NE(lines[1 + triclust->days.size()].find(",triclust,-1,"),
            std::string::npos);
  EXPECT_NE(lines[expected_rows].find(",lexvote,-1,"), std::string::npos);
}

}  // namespace
}  // namespace triclust
