/// Tests of the replay driver (src/serving/replay.h): bitwise equivalence
/// of a replayed stream against direct per-day solves, corpus partitioning
/// into topic streams, deadline-deferral accounting, and the TSV-loader →
/// replay pipeline end-to-end.

#include "src/serving/replay.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/snapshot_solver.h"
#include "src/data/corpus_io.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

OnlineConfig FastConfig() {
  OnlineConfig config;
  config.base.max_iterations = 15;
  config.base.track_loss = false;
  return config;
}

void ExpectSameFactors(const TriClusterResult& got,
                       const TriClusterResult& expected,
                       const std::string& context) {
  EXPECT_EQ(got.sp, expected.sp) << context;
  EXPECT_EQ(got.su, expected.su) << context;
  EXPECT_EQ(got.sf, expected.sf) << context;
}

TEST(PartitionTest, CoversEveryTweetExactlyOnceAndAlignsDays) {
  const SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  const auto streams = serving::PartitionIntoStreams(corpus, 3);
  ASSERT_EQ(streams.size(), 3u);

  std::vector<int> seen(corpus.num_tweets(), 0);
  for (size_t s = 0; s < streams.size(); ++s) {
    // Day-aligned: every stream has one entry per corpus day.
    ASSERT_EQ(streams[s].size(), static_cast<size_t>(corpus.num_days()));
    for (size_t day = 0; day < streams[s].size(); ++day) {
      EXPECT_EQ(streams[s][day].first_day, static_cast<int>(day));
      for (size_t id : streams[s][day].tweet_ids) {
        ++seen[id];
        // Author-disjoint partition, day-faithful placement.
        EXPECT_EQ(corpus.tweet(id).user % streams.size(), s);
        EXPECT_EQ(corpus.tweet(id).day, static_cast<int>(day));
      }
    }
  }
  for (size_t id = 0; id < seen.size(); ++id) {
    EXPECT_EQ(seen[id], 1) << "tweet " << id;
  }
}

TEST(ReplayTest, MatchesDirectPerDaySolveBitwise) {
  // The acceptance gate of the replay path: driving partitioned streams
  // through Ingest/Advance must reproduce, bit for bit, a direct
  // MatrixBuilder::Build + SnapshotSolver::Solve loop over the same days.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  const auto streams = serving::PartitionIntoStreams(corpus, 2);

  serving::CampaignEngine engine;
  for (size_t s = 0; s < streams.size(); ++s) {
    engine.AddCampaign("topic-" + std::to_string(s), FastConfig(),
                       problem.sf0, problem.builder, &corpus).ValueOrDie();
  }
  serving::ReplayDriver driver(&engine);
  for (size_t s = 0; s < streams.size(); ++s) {
    driver.AddStream(s, streams[s]);
  }

  std::vector<std::vector<TriClusterResult>> replayed(streams.size());
  std::vector<std::vector<int>> replayed_days(streams.size());
  driver.set_snapshot_callback(
      [&](int day, const serving::CampaignEngine::SnapshotReport& r) {
        ASSERT_TRUE(r.fitted);
        replayed[r.campaign].push_back(r.result);
        replayed_days[r.campaign].push_back(day);
      });

  const serving::ReplayStats stats = driver.Replay();
  EXPECT_EQ(stats.total_tweets, corpus.num_tweets());
  EXPECT_EQ(stats.total_deferred, 0u);

  for (size_t s = 0; s < streams.size(); ++s) {
    ASSERT_EQ(replayed[s].size(), streams[s].size());
    const SnapshotSolver solver(FastConfig(), problem.sf0);
    StreamState state;
    for (size_t day = 0; day < streams[s].size(); ++day) {
      const DatasetMatrices data = problem.builder.Build(
          corpus, streams[s][day].tweet_ids, streams[s][day].last_day);
      const TriClusterResult expected = solver.Solve(data, &state);
      EXPECT_EQ(replayed_days[s][day], static_cast<int>(day));
      ExpectSameFactors(replayed[s][day], expected,
                        "stream " + std::to_string(s) + " day " +
                            std::to_string(day));
    }
  }
}

TEST(ReplayTest, TsvLoadedCorpusReplaysIdenticallyToInMemoryCorpus) {
  // End-to-end over the on-disk boundary: corpus → WriteTsv → ReadTsv →
  // replay must match replaying the original in-memory corpus.
  SmallProblem problem = MakeSmallProblem(7);
  std::ostringstream out;
  ASSERT_TRUE(WriteTsv(problem.dataset.corpus, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadTsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Corpus& reloaded = loaded.value();

  auto run = [&](const Corpus& corpus) {
    MatrixBuilder builder;
    builder.Fit(corpus);
    serving::CampaignEngine engine;
    engine.AddCampaign("c0", FastConfig(), problem.sf0, builder, &corpus).ValueOrDie();
    serving::ReplayDriver driver(&engine);
    driver.AddStream(0, corpus);
    std::vector<TriClusterResult> results;
    driver.set_snapshot_callback(
        [&](int, const serving::CampaignEngine::SnapshotReport& r) {
          results.push_back(r.result);
        });
    driver.Replay();
    return results;
  };

  const auto original = run(problem.dataset.corpus);
  const auto from_disk = run(reloaded);
  ASSERT_EQ(from_disk.size(), original.size());
  ASSERT_FALSE(original.empty());
  for (size_t i = 0; i < original.size(); ++i) {
    ExpectSameFactors(from_disk[i], original[i],
                      "snapshot " + std::to_string(i));
  }
}

TEST(ReplayTest, DeadlineDefersAndDrainCatchesUp) {
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  serving::ReplayOptions options;
  options.deadline_ms = 1e-9;  // effectively expired: every fit defers
  options.include_idle = false;
  const serving::ReplayStats stats = driver.Replay(options);

  // Every day deferred; the drain pass fits one big batched snapshot.
  EXPECT_EQ(stats.total_deferred,
            static_cast<size_t>(corpus.num_days()));
  EXPECT_EQ(stats.total_fits, 1u);
  ASSERT_EQ(stats.days.size(),
            static_cast<size_t>(corpus.num_days()) + 1);
  EXPECT_EQ(stats.days.back().day, corpus.num_days());
  EXPECT_EQ(engine.num_pending(0), 0u);
  EXPECT_EQ(engine.timestep(0), 1);
  EXPECT_EQ(stats.campaigns[0].tweets, corpus.num_tweets());
}

TEST(ReplayTest, SpeedupIgnoredWhenPacingDisabled) {
  // Regression: Replay() used to CHECK speedup > 0 unconditionally, even
  // though replay.h documents speedup as ignored when day_interval_ms is
  // 0 — an unpaced run with a zero speedup crashed instead of replaying.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  serving::ReplayOptions options;
  options.day_interval_ms = 0.0;  // pacing off → speedup must be ignored
  options.speedup = 0.0;
  const serving::ReplayStats stats = driver.Replay(options);
  EXPECT_EQ(stats.total_tweets, corpus.num_tweets());
  EXPECT_EQ(stats.days.size(), static_cast<size_t>(corpus.num_days()));
  for (const auto& d : stats.days) EXPECT_DOUBLE_EQ(d.wait_ms, 0.0);
}

TEST(ReplayDeathTest, PacedReplayStillRejectsNonPositiveSpeedup) {
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  serving::ReplayOptions options;
  options.day_interval_ms = 10.0;  // pacing on → speedup is validated
  options.speedup = 0.0;
  EXPECT_DEATH(driver.Replay(options), "check failed");
}

TEST(ReplayTest, DeferralEventAccountingAcrossDrain) {
  // Pins the deferral semantics documented on ReplayDayStats: `deferred`
  // counts per-day deferral events, so one queued fit deferred every day
  // yields one event per day; the drain pass runs deadline-free, so the
  // drain entry records only the batched fit and never a deferral; and
  // the run totals are exactly the column sums of the day entries.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  serving::ReplayOptions options;
  options.deadline_ms = 1e-9;  // effectively expired: every fit defers
  options.include_idle = false;
  const serving::ReplayStats stats = driver.Replay(options);

  const size_t days = static_cast<size_t>(corpus.num_days());
  ASSERT_EQ(stats.days.size(), days + 1);
  size_t fits_sum = 0;
  size_t deferred_sum = 0;
  for (size_t d = 0; d < days; ++d) {
    EXPECT_EQ(stats.days[d].fits, 0u) << "day " << d;
    EXPECT_EQ(stats.days[d].deferred, 1u) << "day " << d;
    fits_sum += stats.days[d].fits;
    deferred_sum += stats.days[d].deferred;
  }
  // Drain entry: one deadline-free batched fit, never a deferral event.
  const serving::ReplayDayStats& drain = stats.days.back();
  EXPECT_EQ(drain.day, corpus.num_days());
  EXPECT_EQ(drain.fits, 1u);
  EXPECT_EQ(drain.deferred, 0u);
  fits_sum += drain.fits;
  deferred_sum += drain.deferred;

  EXPECT_EQ(stats.total_fits, fits_sum);
  EXPECT_EQ(stats.total_deferred, deferred_sum);
  // Campaign totals mirror the events: the one drained snapshot is not
  // double-counted against the day-level deferrals.
  EXPECT_EQ(stats.campaigns[0].snapshots, 1u);
  EXPECT_EQ(stats.campaigns[0].deferred, days);
  EXPECT_EQ(stats.campaigns[0].tweets, corpus.num_tweets());
}

TEST(ReplayTest, IdleCampaignMissingDeadlineIsNotADeferralEvent) {
  // Regression: a campaign with an empty queue (advanced only because
  // include_idle keeps its timestep aligned) that missed the deadline
  // used to count as a deferred fit on every day — inflating
  // ReplayDayStats::deferred, CampaignReplayStats::deferred, and
  // total_deferred with fits that never existed.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("fed", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  engine.AddCampaign("idle", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);  // campaign 1 never receives tweets

  serving::ReplayOptions options;
  options.deadline_ms = 1e-9;
  options.include_idle = true;
  const serving::ReplayStats stats = driver.Replay(options);

  const size_t days = static_cast<size_t>(corpus.num_days());
  // Only the fed campaign's pending fits are deferral events.
  EXPECT_EQ(stats.campaigns[0].deferred, days);
  EXPECT_EQ(stats.campaigns[1].deferred, 0u);
  EXPECT_EQ(stats.total_deferred, days);
  for (size_t d = 0; d < days; ++d) {
    EXPECT_LE(stats.days[d].deferred, 1u) << "day " << d;
  }
  // The drain still catches the fed campaign up.
  EXPECT_EQ(engine.num_pending(0), 0u);
  EXPECT_EQ(stats.campaigns[0].snapshots, 1u);
}

TEST(ReplayTest, ZeroEventDaysUnderDeadlineAreNotDeferralEvents) {
  // The empty-day extension of the idle-campaign case above: here the
  // campaign HAS a bound stream, but every one of its days is a
  // zero-event snapshot — the shape degenerate scenarios (empty_days,
  // src/data/scenario.h) inject. A zero-event day leaves the queue empty,
  // so missing the deadline on it defers no fit and must not count.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("fed", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  engine.AddCampaign("dead-days", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);
  std::vector<Snapshot> dead(static_cast<size_t>(corpus.num_days()));
  for (size_t d = 0; d < dead.size(); ++d) {
    dead[d].first_day = static_cast<int>(d);
    dead[d].last_day = static_cast<int>(d);
  }
  driver.AddStream(1, std::move(dead));

  serving::ReplayOptions options;
  options.deadline_ms = 1e-9;
  options.include_idle = true;
  const serving::ReplayStats stats = driver.Replay(options);

  const size_t days = static_cast<size_t>(corpus.num_days());
  EXPECT_EQ(stats.campaigns[0].deferred, days);
  EXPECT_EQ(stats.campaigns[1].deferred, 0u);
  EXPECT_EQ(stats.total_deferred, days);
  for (size_t d = 0; d < days; ++d) {
    EXPECT_LE(stats.days[d].deferred, 1u) << "day " << d;
  }
  // The drain catches the fed campaign up; the dead-days campaign never
  // had anything to fit.
  EXPECT_EQ(engine.num_pending(0), 0u);
  EXPECT_EQ(stats.campaigns[0].snapshots, 1u);
  EXPECT_EQ(stats.campaigns[1].snapshots, 0u);
}

TEST(ReplayTest, TrailingDeadDaysAfterAFitAreNotDeferralEvents) {
  // No deadline at all: a campaign fed on day 0 and silent afterwards
  // keeps advancing (include_idle aligns its timestep) but has no pending
  // fit on the dead days, so every deferral counter must stay zero and no
  // drain entry may appear.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("front-loaded", FastConfig(), problem.sf0,
                     problem.builder, &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  auto stream = serving::PartitionIntoStreams(corpus, 1)[0];
  for (size_t d = 1; d < stream.size(); ++d) stream[d].tweet_ids.clear();
  driver.AddStream(0, std::move(stream));

  serving::ReplayOptions options;
  options.include_idle = true;
  const serving::ReplayStats stats = driver.Replay(options);

  const size_t days = static_cast<size_t>(corpus.num_days());
  ASSERT_EQ(stats.days.size(), days);  // no drain entry
  for (size_t d = 0; d < days; ++d) {
    EXPECT_EQ(stats.days[d].deferred, 0u) << "day " << d;
    EXPECT_EQ(stats.days[d].fits, d == 0 ? 1u : 0u) << "day " << d;
  }
  EXPECT_EQ(stats.total_deferred, 0u);
  EXPECT_EQ(stats.campaigns[0].deferred, 0u);
  EXPECT_EQ(stats.campaigns[0].snapshots, 1u);
  // Timestep alignment: the dead days still advanced the campaign clock.
  EXPECT_EQ(engine.timestep(0), static_cast<int>(days));
}

TEST(ReplayTest, ObserversSeeEveryReportAlongsideTheCallback) {
  // AddObserver is additive: the legacy snapshot callback and any number
  // of observers (the evaluation harness attaches this way) all see the
  // same reports, and the engine-level fit observer fires too.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  size_t callback_reports = 0;
  size_t observer_reports = 0;
  size_t engine_reports = 0;
  driver.set_snapshot_callback(
      [&](int, const serving::CampaignEngine::SnapshotReport&) {
        ++callback_reports;
      });
  driver.AddObserver(
      [&](int, const serving::CampaignEngine::SnapshotReport& r) {
        ++observer_reports;
        EXPECT_TRUE(r.fitted);
      });
  engine.set_fit_observer(
      [&](const serving::CampaignEngine::SnapshotReport&) {
        ++engine_reports;
      });

  const serving::ReplayStats stats = driver.Replay();
  EXPECT_EQ(callback_reports, stats.total_fits);
  EXPECT_EQ(observer_reports, stats.total_fits);
  EXPECT_EQ(engine_reports, stats.total_fits);
}

TEST(ReplayTest, PacedReplayRespectsReleaseSchedule) {
  // 2 days, 400 ms interval at speedup 2 → day 1 releases at 200 ms, so
  // the run cannot finish before that. The margin is far above any
  // plausible fit time for this problem, so some pacing wait must occur
  // even on a slow, contended CI machine.
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);

  serving::ReplayOptions options;
  options.day_interval_ms = 400.0;
  options.speedup = 2.0;
  options.max_days = 2;
  const serving::ReplayStats stats = driver.Replay(options);
  ASSERT_EQ(stats.days.size(), 2u);
  EXPECT_GE(stats.wall_ms, 200.0);
  double waited = 0.0;
  for (const auto& d : stats.days) waited += d.wait_ms;
  EXPECT_GT(waited, 0.0);
}

TEST(ReplayTest, MaxDaysTruncatesTheRun) {
  SmallProblem problem = MakeSmallProblem(5);
  const Corpus& corpus = problem.dataset.corpus;
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), problem.sf0, problem.builder,
                     &corpus).ValueOrDie();
  serving::ReplayDriver driver(&engine);
  driver.AddStream(0, corpus);
  ASSERT_GT(driver.num_days(), 2);

  serving::ReplayOptions options;
  options.max_days = 2;
  const serving::ReplayStats stats = driver.Replay(options);
  EXPECT_EQ(stats.days.size(), 2u);
  EXPECT_EQ(engine.timestep(0), 2);
}

}  // namespace
}  // namespace triclust
