#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace triclust {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.7, 0.02);
}

TEST(RngTest, CategoricalZeroWeightNeverSampled) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(23);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 1000; ++i) ++counts[rng.Categorical({0.0, 0.0})];
  EXPECT_GT(counts[0], 300);
  EXPECT_GT(counts[1], 300);
}

TEST(RngTest, ZipfRankZeroMostFrequent) {
  Rng rng(25);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(50, 1.1)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  // Every draw must be in range (implicitly checked by indexing).
}

TEST(RngTest, ZipfHandlesChangingParameters) {
  Rng rng(27);
  // Alternating (n, s) pairs exercise the CDF cache invalidation.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Zipf(10, 1.0), 10u);
    EXPECT_LT(rng.Zipf(100, 2.0), 100u);
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(29);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    double total = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) total += rng.Poisson(mean);
    EXPECT_NEAR(total / n, mean, std::max(0.5, mean * 0.1));
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(33);
  const auto perm = rng.Permutation(257);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationZeroAndOne) {
  Rng rng(35);
  EXPECT_TRUE(rng.Permutation(0).empty());
  EXPECT_EQ(rng.Permutation(1), std::vector<size_t>{0});
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(37);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace triclust
