#include "src/data/corpus.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace triclust {
namespace {

Corpus TwoUserCorpus() {
  Corpus c;
  const size_t alice = c.AddUser("alice", Sentiment::kPositive);
  const size_t bob = c.AddUser("bob", Sentiment::kNegative);
  c.AddTweet(alice, 0, "yes on 37", Sentiment::kPositive);
  c.AddTweet(bob, 1, "no on 37", Sentiment::kNegative);
  c.AddTweet(alice, 2, "monsanto is pure evil", Sentiment::kPositive);
  c.AddTweet(bob, 2, "yes on 37", Sentiment::kPositive, /*retweet_of=*/0);
  return c;
}

TEST(CorpusTest, AddAndAccess) {
  const Corpus c = TwoUserCorpus();
  EXPECT_EQ(c.num_users(), 2u);
  EXPECT_EQ(c.num_tweets(), 4u);
  EXPECT_EQ(c.num_days(), 3);
  EXPECT_EQ(c.user(0).handle, "alice");
  EXPECT_EQ(c.tweet(2).text, "monsanto is pure evil");
  EXPECT_TRUE(c.tweet(3).IsRetweet());
  EXPECT_FALSE(c.tweet(0).IsRetweet());
  EXPECT_EQ(c.tweet(3).retweet_of, 0);
}

TEST(CorpusTest, EmptyCorpus) {
  Corpus c;
  EXPECT_EQ(c.num_days(), 0);
  EXPECT_EQ(c.num_tweets(), 0u);
}

TEST(CorpusTest, TweetIdsInDayRange) {
  const Corpus c = TwoUserCorpus();
  EXPECT_EQ(c.TweetIdsInDayRange(0, 0), (std::vector<size_t>{0}));
  EXPECT_EQ(c.TweetIdsInDayRange(2, 2), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(c.TweetIdsInDayRange(0, 2).size(), 4u);
  EXPECT_TRUE(c.TweetIdsInDayRange(5, 9).empty());
}

TEST(CorpusTest, LabelCounts) {
  const Corpus c = TwoUserCorpus();
  const auto tweets = c.CountTweetLabels();
  EXPECT_EQ(tweets.positive, 3u);
  EXPECT_EQ(tweets.negative, 1u);
  EXPECT_EQ(tweets.neutral, 0u);
  const auto users = c.CountUserLabels();
  EXPECT_EQ(users.positive, 1u);
  EXPECT_EQ(users.negative, 1u);
}

TEST(CorpusTest, TemporalUserLabelsFallBackToStatic) {
  Corpus c = TwoUserCorpus();
  EXPECT_FALSE(c.HasTemporalUserLabels());
  EXPECT_EQ(c.UserSentimentAt(0, 5), Sentiment::kPositive);
  c.SetUserSentimentAt(0, 1, Sentiment::kNegative);
  EXPECT_TRUE(c.HasTemporalUserLabels());
  EXPECT_EQ(c.UserSentimentAt(0, 1), Sentiment::kNegative);
  // Unannotated days still fall back.
  EXPECT_EQ(c.UserSentimentAt(0, 0), Sentiment::kPositive);
  EXPECT_EQ(c.UserSentimentAt(1, 1), Sentiment::kNegative);
}

TEST(CorpusTest, SaveLoadRoundTrip) {
  const Corpus original = TwoUserCorpus();
  const std::string path = ::testing::TempDir() + "/corpus_roundtrip.tsv";
  ASSERT_TRUE(original.SaveTsv(path).ok());

  auto loaded = Corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Corpus& c = loaded.value();
  EXPECT_EQ(c.num_users(), original.num_users());
  EXPECT_EQ(c.num_tweets(), original.num_tweets());
  for (size_t i = 0; i < c.num_tweets(); ++i) {
    EXPECT_EQ(c.tweet(i).text, original.tweet(i).text);
    EXPECT_EQ(c.tweet(i).user, original.tweet(i).user);
    EXPECT_EQ(c.tweet(i).day, original.tweet(i).day);
    EXPECT_EQ(c.tweet(i).label, original.tweet(i).label);
    EXPECT_EQ(c.tweet(i).retweet_of, original.tweet(i).retweet_of);
  }
  for (size_t u = 0; u < c.num_users(); ++u) {
    EXPECT_EQ(c.user(u).handle, original.user(u).handle);
    EXPECT_EQ(c.user(u).label, original.user(u).label);
  }
  std::remove(path.c_str());
}

TEST(CorpusTest, SaveEscapesTabsAndNewlinesLosslessly) {
  // Historically tabs/newlines were flattened to spaces; the corpus_io
  // escaping (docs/FORMATS.md) round-trips the exact bytes instead.
  Corpus c;
  const size_t u = c.AddUser("u");
  c.AddTweet(u, 0, "has\ttab and\nnewline");
  const std::string path = ::testing::TempDir() + "/corpus_sanitize.tsv";
  ASSERT_TRUE(c.SaveTsv(path).ok());
  auto loaded = Corpus::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().tweet(0).text, "has\ttab and\nnewline");
  std::remove(path.c_str());
}

TEST(CorpusTest, LoadMissingFileFails) {
  const auto r = Corpus::LoadTsv("/nonexistent/path/corpus.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CorpusTest, LoadRejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/corpus_bad.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("Z\tgarbage\n", f);
    fclose(f);
  }
  const auto r = Corpus::LoadTsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CorpusTest, LoadRejectsBadUserReference) {
  const std::string path = ::testing::TempDir() + "/corpus_baduser.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("U\t0\talice\t0\n", f);
    fputs("T\t0\t5\t0\t0\t-1\thello world\n", f);  // user 5 undefined
    fclose(f);
  }
  const auto r = Corpus::LoadTsv(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace triclust
