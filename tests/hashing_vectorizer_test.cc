#include "src/text/hashing_vectorizer.h"

#include <gtest/gtest.h>

#include "src/core/offline.h"
#include "src/eval/metrics.h"
#include "src/text/tokenizer.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

TEST(HashingVectorizerTest, BucketsStableAndInRange) {
  HashingVectorizer vec;
  const size_t b1 = vec.BucketOf("monsanto");
  EXPECT_EQ(b1, vec.BucketOf("monsanto"));
  EXPECT_LT(b1, vec.num_buckets());
  // Different seeds shuffle the mapping.
  HashingVectorizerOptions options;
  options.seed = 42;
  HashingVectorizer other(options);
  size_t moved = 0;
  for (const char* w : {"alpha", "beta", "gamma", "delta", "epsilon"}) {
    if (vec.BucketOf(w) != other.BucketOf(w)) ++moved;
  }
  EXPECT_GT(moved, 2u);
}

TEST(HashingVectorizerTest, TransformNeedsNoFit) {
  HashingVectorizerOptions options;
  options.num_buckets = 64;
  options.l2_normalize = false;
  HashingVectorizer vec(options);
  const SparseMatrix x = vec.Transform({{"gmo", "gmo", "label"}, {}});
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 64u);
  EXPECT_DOUBLE_EQ(x.At(0, vec.BucketOf("gmo")), 2.0);
  EXPECT_DOUBLE_EQ(x.At(0, vec.BucketOf("label")), 1.0);
  EXPECT_EQ(x.RowNnz(1), 0u);
}

TEST(HashingVectorizerTest, StopwordsDropped) {
  HashingVectorizer vec;
  const SparseMatrix x = vec.Transform({{"the", "and", "gmo"}});
  EXPECT_EQ(x.RowNnz(0), 1u);
}

TEST(HashingVectorizerTest, L2NormalizedRows) {
  HashingVectorizer vec;
  const SparseMatrix x = vec.Transform({{"aa", "bb", "cc", "dd"}});
  double sq = 0.0;
  for (double v : x.values()) sq += v * v;
  EXPECT_NEAR(sq, 1.0, 1e-12);
}

TEST(HashingVectorizerTest, HashedSf0MarksLexiconBuckets) {
  HashingVectorizerOptions options;
  options.num_buckets = 128;
  HashingVectorizer vec(options);
  SentimentLexicon lexicon;
  lexicon.Add("good", Sentiment::kPositive);
  lexicon.Add("bad", Sentiment::kNegative);
  const DenseMatrix sf0 = vec.BuildHashedSf0(lexicon, 3, 0.9);
  ASSERT_EQ(sf0.rows(), 128u);
  EXPECT_DOUBLE_EQ(sf0(vec.BucketOf("good"), 0), 0.9);
  EXPECT_DOUBLE_EQ(sf0(vec.BucketOf("bad"), 1), 0.9);
  // Unused bucket stays uniform.
  size_t unused = 0;
  while (unused == vec.BucketOf("good") || unused == vec.BucketOf("bad")) {
    ++unused;
  }
  EXPECT_NEAR(sf0(unused, 0), 1.0 / 3.0, 1e-12);
}

TEST(HashingVectorizerTest, ConflictingBucketStaysUniform) {
  // Force a collision by using one bucket.
  HashingVectorizerOptions options;
  options.num_buckets = 1;
  HashingVectorizer vec(options);
  SentimentLexicon lexicon;
  lexicon.Add("good", Sentiment::kPositive);
  lexicon.Add("bad", Sentiment::kNegative);
  const DenseMatrix sf0 = vec.BuildHashedSf0(lexicon, 3, 0.9);
  EXPECT_NEAR(sf0(0, 0), 1.0 / 3.0, 1e-12);
}

TEST(HashingVectorizerTest, EndToEndClusteringComparableToExactVocabulary) {
  // The headline property: hashed features (no global Fit) support the full
  // tri-clustering pipeline at near-exact-vocabulary quality.
  const auto p = testing_util::MakeSmallProblem();
  const Tokenizer tokenizer;
  std::vector<std::vector<std::string>> docs;
  for (const Tweet& t : p.dataset.corpus.tweets()) {
    docs.push_back(tokenizer.Tokenize(t.text));
  }
  HashingVectorizerOptions options;
  options.num_buckets = 4096;
  HashingVectorizer hasher(options);

  DatasetMatrices hashed = p.data;  // reuse Xr/Gu/labels; replace features
  hashed.xp = hasher.Transform(docs);
  {
    // Rebuild Xu rows by summing the hashed tweet rows per user.
    SparseMatrix::Builder builder(p.data.num_users(),
                                  hasher.num_buckets());
    std::unordered_map<size_t, size_t> user_row;
    for (size_t j = 0; j < p.data.user_ids.size(); ++j) {
      user_row[p.data.user_ids[j]] = j;
    }
    const auto& row_ptr = hashed.xp.row_ptr();
    const auto& col_idx = hashed.xp.col_idx();
    const auto& values = hashed.xp.values();
    for (size_t i = 0; i < hashed.xp.rows(); ++i) {
      const size_t author =
          p.dataset.corpus.tweet(p.data.tweet_ids[i]).user;
      for (size_t q = row_ptr[i]; q < row_ptr[i + 1]; ++q) {
        builder.Add(user_row.at(author), col_idx[q], values[q]);
      }
    }
    hashed.xu = builder.Build();
  }
  const SentimentLexicon lexicon =
      CorruptLexicon(p.dataset.true_lexicon, 0.7, 0.02, 5);
  const DenseMatrix sf0 = hasher.BuildHashedSf0(lexicon, 3);

  TriClusterConfig config;
  config.max_iterations = 50;
  const TriClusterResult hashed_result =
      OfflineTriClusterer(config).Run(hashed, sf0);
  const TriClusterResult exact_result =
      OfflineTriClusterer(config).Run(p.data, p.sf0);

  const double hashed_acc = ClusteringAccuracy(
      hashed_result.TweetClusters(), p.data.tweet_labels);
  const double exact_acc = ClusteringAccuracy(exact_result.TweetClusters(),
                                              p.data.tweet_labels);
  EXPECT_GT(hashed_acc, 0.55);
  EXPECT_GT(hashed_acc + 0.10, exact_acc);  // within 10 points of exact
}

}  // namespace
}  // namespace triclust
