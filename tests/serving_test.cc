/// Tests of the serving layer: the stateless SnapshotSolver against the
/// legacy single-stream wrapper, the multi-campaign CampaignEngine against
/// standalone clusterers, and the CampaignStore persistence contract.

#include "src/serving/campaign_engine.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/online.h"
#include "src/core/snapshot_solver.h"
#include "src/core/stream_state.h"
#include "src/data/snapshots.h"
#include "src/serving/campaign_store.h"
#include "src/util/file_util.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

OnlineConfig FastConfig() {
  OnlineConfig config;
  config.base.max_iterations = 15;
  config.base.track_loss = false;
  return config;
}

/// One self-contained campaign fixture over its own synthetic stream.
struct Fixture {
  SmallProblem problem;
  std::vector<Snapshot> days;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f{MakeSmallProblem(seed), {}};
  f.days = SplitByDay(f.problem.dataset.corpus);
  return f;
}

void ExpectSameFactors(const TriClusterResult& got,
                       const TriClusterResult& expected,
                       const std::string& context) {
  EXPECT_EQ(got.sp, expected.sp) << context;
  EXPECT_EQ(got.su, expected.su) << context;
  EXPECT_EQ(got.sf, expected.sf) << context;
  EXPECT_EQ(got.hp, expected.hp) << context;
  EXPECT_EQ(got.hu, expected.hu) << context;
}

// --- SnapshotSolver vs legacy wrapper ----------------------------------------

TEST(SnapshotSolverTest, BitwiseMatchesLegacyClustererOverStream) {
  const Fixture f = MakeFixture(5);
  const Corpus& corpus = f.problem.dataset.corpus;

  OnlineTriClusterer legacy(FastConfig(), f.problem.sf0);
  const SnapshotSolver solver(FastConfig(), f.problem.sf0);
  StreamState state;
  update::UpdateWorkspace workspace;

  for (size_t day = 0; day < f.days.size(); ++day) {
    const DatasetMatrices data = f.problem.builder.Build(
        corpus, f.days[day].tweet_ids, f.days[day].last_day);
    const TriClusterResult expected = legacy.ProcessSnapshot(data);
    SnapshotSolver::SolveInfo info;
    const TriClusterResult got = solver.Solve(data, &state, &info, &workspace);
    ExpectSameFactors(got, expected, "day " + std::to_string(day));
    EXPECT_EQ(info.sfw, legacy.last_sfw()) << "day " << day;
    EXPECT_EQ(info.partition.new_rows, legacy.last_partition().new_rows);
    EXPECT_EQ(info.partition.evolving_rows,
              legacy.last_partition().evolving_rows);
    EXPECT_EQ(info.partition.num_disappeared,
              legacy.last_partition().num_disappeared);
    EXPECT_EQ(state.timestep, legacy.timestep());
  }
  // The rolled-forward stream state agrees too.
  for (size_t user = 0; user < corpus.num_users(); ++user) {
    EXPECT_EQ(state.UserSentiment(user), legacy.UserSentiment(user));
  }
}

TEST(SnapshotSolverTest, SharedSolverServesIndependentStreams) {
  // One solver instance, two interleaved streams with their own states:
  // interleaving must not leak state between them.
  const Fixture f = MakeFixture(5);
  const Corpus& corpus = f.problem.dataset.corpus;
  const SnapshotSolver solver(FastConfig(), f.problem.sf0);

  StreamState sequential;
  std::vector<TriClusterResult> expected;
  for (size_t day = 0; day < 3; ++day) {
    const DatasetMatrices data = f.problem.builder.Build(
        corpus, f.days[day].tweet_ids, f.days[day].last_day);
    expected.push_back(solver.Solve(data, &sequential));
  }

  StreamState a;
  StreamState b;
  for (size_t day = 0; day < 3; ++day) {
    const DatasetMatrices data = f.problem.builder.Build(
        corpus, f.days[day].tweet_ids, f.days[day].last_day);
    const TriClusterResult ra = solver.Solve(data, &a);
    const TriClusterResult rb = solver.Solve(data, &b);
    ExpectSameFactors(ra, expected[day], "stream a, day " +
                                             std::to_string(day));
    ExpectSameFactors(rb, expected[day], "stream b, day " +
                                             std::to_string(day));
  }
}

TEST(SnapshotSolverTest, EmptySnapshotCarriesFeatureStateWithWindowOne) {
  // Regression: the historical empty-snapshot path trimmed the Sf history
  // to window-1 entries (not max(window-1, 1) like the main path), so with
  // window == 1 a single quiet day erased the evolved feature state.
  const Fixture f = MakeFixture(5);
  OnlineConfig config = FastConfig();
  config.window = 1;
  const SnapshotSolver solver(config, f.problem.sf0);
  StreamState state;
  solver.Solve(f.problem.builder.Build(f.problem.dataset.corpus,
                                       f.days[0].tweet_ids, 0),
               &state);
  ASSERT_EQ(state.sf_history.size(), 1u);

  DatasetMatrices empty;
  {
    SparseMatrix::Builder xp(0, f.problem.data.num_features());
    empty.xp = xp.Build();
    SparseMatrix::Builder xu(0, f.problem.data.num_features());
    empty.xu = xu.Build();
    SparseMatrix::Builder xr(0, 0);
    empty.xr = xr.Build();
    empty.gu = UserGraph(0);
  }
  solver.Solve(empty, &state);
  EXPECT_EQ(state.timestep, 2);
  ASSERT_EQ(state.sf_history.size(), 1u);  // history survives the quiet day
  // With an emptied history (the old bug) this would be exactly sf0 again.
  EXPECT_FALSE(solver.ComputeSfw(state) == f.problem.sf0);
}

// --- CampaignEngine ----------------------------------------------------------

TEST(CampaignEngineTest, FourCampaignsMatchFourStandaloneClusterers) {
  // Four campaigns over four *different* streams, advanced together with
  // sharded fits, must be bitwise-identical to four standalone
  // OnlineTriClusterer runs (same configs/seeds) done one at a time.
  std::vector<Fixture> fixtures;
  for (uint64_t seed : {5, 6, 7, 8}) fixtures.push_back(MakeFixture(seed));

  // Standalone reference runs (serial kernels, the num_threads=1 default).
  std::vector<std::vector<TriClusterResult>> expected(fixtures.size());
  for (size_t i = 0; i < fixtures.size(); ++i) {
    OnlineTriClusterer standalone(FastConfig(), fixtures[i].problem.sf0);
    for (const Snapshot& day : fixtures[i].days) {
      expected[i].push_back(standalone.ProcessSnapshot(
          fixtures[i].problem.builder.Build(fixtures[i].problem.dataset.corpus,
                                            day.tweet_ids, day.last_day)));
    }
  }

  serving::CampaignEngine::Options options;
  options.num_threads = 4;
  serving::CampaignEngine engine(options);
  for (size_t i = 0; i < fixtures.size(); ++i) {
    engine.AddCampaign("campaign-" + std::to_string(i), FastConfig(),
                       fixtures[i].problem.sf0, fixtures[i].problem.builder,
                       &fixtures[i].problem.dataset.corpus).ValueOrDie();
  }

  size_t max_days = 0;
  for (const Fixture& f : fixtures) {
    max_days = std::max(max_days, f.days.size());
  }
  for (size_t day = 0; day < max_days; ++day) {
    for (size_t i = 0; i < fixtures.size(); ++i) {
      if (day < fixtures[i].days.size()) {
        engine.Ingest(i, fixtures[i].days[day].tweet_ids,
                      static_cast<int>(day));
      }
    }
    serving::AdvanceOptions advance;
    advance.include_idle = true;
    const auto reports = engine.Advance(advance);
    ASSERT_EQ(reports.size(), fixtures.size());
    for (const auto& report : reports) {
      ASSERT_TRUE(report.fitted);
      ASSERT_LT(day, expected[report.campaign].size());
      ExpectSameFactors(report.result, expected[report.campaign][day],
                        "campaign " + std::to_string(report.campaign) +
                            " day " + std::to_string(day));
    }
  }
  for (size_t i = 0; i < fixtures.size(); ++i) {
    EXPECT_EQ(engine.timestep(i), static_cast<int>(fixtures[i].days.size()));
  }
}

/// Streams a small fleet through one engine under the given thread options
/// and returns every fitted result in report order. Campaign 1 only gets
/// data on day 0, so later days advance a single pending campaign — the
/// budget-split path where one fit gets the whole pool.
std::vector<TriClusterResult> RunBudgetFleet(int num_threads,
                                             int per_fit_threads,
                                             size_t num_campaigns = 2) {
  std::vector<Fixture> fixtures;
  for (size_t i = 0; i < num_campaigns; ++i) {
    fixtures.push_back(MakeFixture(5 + 4 * i));
  }
  serving::CampaignEngine::Options options;
  options.num_threads = num_threads;
  options.per_fit_threads = per_fit_threads;
  serving::CampaignEngine engine(options);
  for (size_t i = 0; i < fixtures.size(); ++i) {
    engine.AddCampaign("c" + std::to_string(i), FastConfig(),
                       fixtures[i].problem.sf0, fixtures[i].problem.builder,
                       &fixtures[i].problem.dataset.corpus).ValueOrDie();
  }
  std::vector<TriClusterResult> results;
  for (size_t day = 0; day < 3; ++day) {
    engine.Ingest(0, fixtures[0].days[day].tweet_ids, static_cast<int>(day));
    if (day == 0) {
      for (size_t i = 1; i < fixtures.size(); ++i) {
        engine.Ingest(i, fixtures[i].days[0].tweet_ids, 0);
      }
    }
    for (auto& report : engine.Advance()) {
      results.push_back(std::move(report.result));
    }
  }
  return results;
}

TEST(CampaignEngineTest, ResultsIndependentOfEngineThreadBudget) {
  // The same fleet advanced with 1 thread and with 4 threads (and with a
  // sibling count that exercises the inline single-fit path) must agree
  // bitwise.
  const auto serial = RunBudgetFleet(1, 0);
  const auto sharded = RunBudgetFleet(4, 0);
  ASSERT_EQ(serial.size(), sharded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameFactors(sharded[i], serial[i], "result " + std::to_string(i));
  }
}

TEST(CampaignEngineTest, ResultsIndependentOfPerFitBudgetSplit) {
  // Engine-vs-engine bitwise equality across every budget-split shape the
  // hierarchical scheduler produces: serial baseline; the N×1 historical
  // sharding (per_fit_threads = 1); 1×N (2 fits splitting 8 threads, and a
  // lone pending fit taking the whole pool on days 1–2); an uneven split
  // with remainder spill (3 fits over 4 threads → {2, 1, 1}); and an
  // oversubscribed schedule (every fit forced to 4 threads on a 2-thread
  // pool). The kernels are width-invariant, so all must agree bitwise.
  const auto reference = RunBudgetFleet(1, 0);
  const struct {
    int num_threads;
    int per_fit_threads;
  } variants[] = {{4, 1}, {8, 0}, {2, 4}};
  for (const auto& v : variants) {
    const auto got = RunBudgetFleet(v.num_threads, v.per_fit_threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectSameFactors(got[i], reference[i],
                        "threads " + std::to_string(v.num_threads) +
                            " per-fit " + std::to_string(v.per_fit_threads) +
                            " result " + std::to_string(i));
    }
  }

  // Uneven remainder spill needs 3 campaigns: 4 threads → budgets {2,1,1}.
  const auto uneven_reference = RunBudgetFleet(1, 0, 3);
  const auto uneven = RunBudgetFleet(4, 0, 3);
  ASSERT_EQ(uneven.size(), uneven_reference.size());
  for (size_t i = 0; i < uneven.size(); ++i) {
    ExpectSameFactors(uneven[i], uneven_reference[i],
                      "uneven result " + std::to_string(i));
  }
}

TEST(CampaignEngineTest, ZeroThreadsMeansHardwareConcurrency) {
  // EngineOptions::num_threads = 0 is documented as "use hardware
  // concurrency": pin the resolution (and that the resolved pool still
  // yields bit-identical results) while the option's meaning changes from
  // campaign-only sharding to the hierarchical split.
  serving::CampaignEngine::Options options;
  options.num_threads = 0;
  serving::CampaignEngine engine(options);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(engine.effective_num_threads(),
            hw > 0 ? static_cast<int>(hw) : 1);

  serving::CampaignEngine::Options explicit_options;
  explicit_options.num_threads = 3;
  EXPECT_EQ(serving::CampaignEngine(explicit_options).effective_num_threads(),
            3);

  const auto reference = RunBudgetFleet(1, 0);
  const auto automatic = RunBudgetFleet(0, 0);
  ASSERT_EQ(automatic.size(), reference.size());
  for (size_t i = 0; i < automatic.size(); ++i) {
    ExpectSameFactors(automatic[i], reference[i],
                      "auto-threads result " + std::to_string(i));
  }
}

TEST(CampaignEngineTest, DeadlineDefersFitsAndQueueSurvives) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();

  engine.Ingest(0, f.days[0].tweet_ids, 0);
  const size_t pending = engine.num_pending(0);
  ASSERT_GT(pending, 0u);

  // An (effectively) already-expired deadline defers every fit.
  serving::AdvanceOptions expired;
  expired.deadline_ms = 1e-9;
  const auto deferred = engine.Advance(expired);
  ASSERT_EQ(deferred.size(), 1u);
  EXPECT_FALSE(deferred[0].fitted);
  EXPECT_EQ(engine.num_pending(0), pending);
  EXPECT_EQ(engine.timestep(0), 0);

  // More tweets accumulate into the same snapshot; the eventual fit sees
  // the batched ingest exactly as a single larger Ingest would.
  engine.Ingest(0, f.days[1].tweet_ids, 1);
  const auto reports = engine.Advance();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].fitted);
  EXPECT_EQ(reports[0].data.num_tweets(),
            f.days[0].tweet_ids.size() + f.days[1].tweet_ids.size());
  EXPECT_EQ(engine.num_pending(0), 0u);
  EXPECT_EQ(engine.timestep(0), 1);
}

// --- CampaignStore -----------------------------------------------------------

/// TempDir() persists across test runs; scrub any prior generation so the
/// store starts from a clean slate.
std::string TempStoreDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/MANIFEST").c_str());
  for (int i = 0; i < 16; ++i) {
    for (int gen = 1; gen <= 8; ++gen) {
      std::remove((dir + "/campaign_" + std::to_string(i) + ".g" +
                   std::to_string(gen) + ".ckpt")
                      .c_str());
    }
  }
  return dir;
}

TEST(CampaignStoreTest, SaveRestoreRoundTripContinuesBitIdentically) {
  std::vector<Fixture> fixtures;
  for (uint64_t seed : {5, 6}) fixtures.push_back(MakeFixture(seed));

  auto make_engine = [&](serving::CampaignEngine* engine) {
    for (size_t i = 0; i < fixtures.size(); ++i) {
      engine->AddCampaign("campaign-" + std::to_string(i), FastConfig(),
                          fixtures[i].problem.sf0,
                          fixtures[i].problem.builder,
                          &fixtures[i].problem.dataset.corpus).ValueOrDie();
    }
  };
  auto ingest_day = [&](serving::CampaignEngine* engine, size_t day) {
    for (size_t i = 0; i < fixtures.size(); ++i) {
      engine->Ingest(i, fixtures[i].days[day].tweet_ids,
                     static_cast<int>(day));
    }
  };

  serving::CampaignEngine original;
  make_engine(&original);
  for (size_t day = 0; day < 3; ++day) {
    ingest_day(&original, day);
    original.Advance();
  }

  const serving::CampaignStore store(TempStoreDir("round_trip_store"));
  ASSERT_FALSE(store.HasManifest());
  ASSERT_TRUE(store.Save(original).ok());
  ASSERT_TRUE(store.HasManifest());

  serving::CampaignEngine restored;
  make_engine(&restored);
  ASSERT_TRUE(store.Restore(&restored).ok());
  for (size_t i = 0; i < fixtures.size(); ++i) {
    EXPECT_EQ(restored.timestep(i), 3);
  }

  // Both engines continue the streams; they must stay in lockstep.
  for (size_t day = 3; day < 5; ++day) {
    ingest_day(&original, day);
    ingest_day(&restored, day);
    const auto expected = original.Advance();
    const auto got = restored.Advance();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t r = 0; r < got.size(); ++r) {
      ExpectSameFactors(got[r].result, expected[r].result,
                        "day " + std::to_string(day));
    }
  }
}

TEST(CampaignStoreTest, RepeatedSavesAdvanceGenerationsAndReclaimOld) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();
  const std::string dir = TempStoreDir("generation_store");
  const serving::CampaignStore store(dir);

  engine.Ingest(0, f.days[0].tweet_ids, 0);
  engine.Advance();
  ASSERT_TRUE(store.Save(engine).ok());
  EXPECT_TRUE(PathExists(dir + "/campaign_0.g1.ckpt"));

  // Orphans from a hypothetical crashed save: a committed-but-superseded
  // checkpoint of another generation and a dead writer's temp file.
  { std::ofstream orphan(dir + "/campaign_7.g9.ckpt"); orphan << "stale"; }
  {
    std::ofstream temp(dir + "/campaign_3.g9.ckpt.tmp.99999");
    temp << "stale";
  }

  // A second Save commits a new generation and reclaims every checkpoint
  // file the new manifest does not reference (old generations + orphans);
  // the new generation's state wins on Restore.
  engine.Ingest(0, f.days[1].tweet_ids, 1);
  engine.Advance();
  ASSERT_TRUE(store.Save(engine).ok());
  EXPECT_TRUE(PathExists(dir + "/campaign_0.g2.ckpt"));
  EXPECT_FALSE(PathExists(dir + "/campaign_0.g1.ckpt"));
  EXPECT_FALSE(PathExists(dir + "/campaign_7.g9.ckpt"));
  EXPECT_FALSE(PathExists(dir + "/campaign_3.g9.ckpt.tmp.99999"));

  serving::CampaignEngine restored;
  restored.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                       &f.problem.dataset.corpus).ValueOrDie();
  ASSERT_TRUE(store.Restore(&restored).ok());
  EXPECT_EQ(restored.timestep(0), 2);
}

TEST(CampaignStoreTest, RestoreRejectsUnregisteredCampaign) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  engine.AddCampaign("known", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();
  engine.Ingest(0, f.days[0].tweet_ids, 0);
  engine.Advance();

  const serving::CampaignStore store(TempStoreDir("unregistered_store"));
  ASSERT_TRUE(store.Save(engine).ok());

  serving::CampaignEngine other;
  other.AddCampaign("different-name", FastConfig(), f.problem.sf0,
                    f.problem.builder, &f.problem.dataset.corpus).ValueOrDie();
  const Status status = store.Restore(&other);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CampaignStoreTest, RestoreFailsCleanlyWithoutManifest) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();
  const serving::CampaignStore store(TempStoreDir("missing_store"));
  EXPECT_FALSE(store.HasManifest());
  EXPECT_EQ(store.Restore(&engine).code(), StatusCode::kIoError);
}

// --- atomic persistence ------------------------------------------------------

TEST(AtomicWriteTest, WriterErrorLeavesPreviousContentsIntact) {
  const std::string path = ::testing::TempDir() + "/atomic_write_probe";
  ASSERT_TRUE(AtomicWriteFile(path, [](std::ostream* os) {
                *os << "generation 1";
                return Status::OK();
              }).ok());

  const Status failed = AtomicWriteFile(path, [](std::ostream* os) {
    *os << "half-written generation 2";
    return Status::IoError("simulated crash mid-write");
  });
  EXPECT_FALSE(failed.ok());
  // Temp (pid-unique name) cleaned up.
  EXPECT_FALSE(PathExists(path + ".tmp." + std::to_string(getpid())));

  std::ifstream in(path);
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "generation 1");
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, SaveStateIsAtomicAndLeavesNoTemp) {
  const Fixture f = MakeFixture(5);
  OnlineTriClusterer online(FastConfig(), f.problem.sf0);
  online.ProcessSnapshot(f.problem.builder.Build(
      f.problem.dataset.corpus, f.days[0].tweet_ids, 0));

  const std::string path = ::testing::TempDir() + "/atomic_state.ckpt";
  const std::string temp = path + ".tmp." + std::to_string(getpid());
  ASSERT_TRUE(online.SaveState(path).ok());
  EXPECT_FALSE(PathExists(temp));

  // Overwriting an existing checkpoint goes through the same temp+rename.
  online.ProcessSnapshot(f.problem.builder.Build(
      f.problem.dataset.corpus, f.days[1].tweet_ids, 1));
  ASSERT_TRUE(online.SaveState(path).ok());
  EXPECT_FALSE(PathExists(temp));

  OnlineTriClusterer restored(FastConfig(), f.problem.sf0);
  ASSERT_TRUE(restored.RestoreState(path).ok());
  EXPECT_EQ(restored.timestep(), 2);
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, CreateDirectoriesIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "/nested/store/dir";
  ASSERT_TRUE(CreateDirectories(dir).ok());
  ASSERT_TRUE(CreateDirectories(dir).ok());
  EXPECT_TRUE(PathExists(dir));
}

// --- registration validation -------------------------------------------------

TEST(CampaignEngineTest, AddCampaignRejectsBadAdminInputWithoutAborting) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  const auto add = [&](const std::string& name) {
    return engine.AddCampaign(name, FastConfig(), f.problem.sf0,
                              f.problem.builder, &f.problem.dataset.corpus);
  };

  const Result<size_t> good = add("good-name");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value(), 0u);

  EXPECT_EQ(add("").status().code(), StatusCode::kInvalidArgument);
  // Control characters would corrupt the store's line-oriented manifest.
  EXPECT_EQ(add("two\nlines").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(add("tab\there").status().code(), StatusCode::kInvalidArgument);
  // A leading space would be eaten by the manifest parser's field split.
  EXPECT_EQ(add(" padded").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(add("good-name").status().code(), StatusCode::kAlreadyExists);
  // Interior spaces are fine — the manifest keeps the name to end-of-line.
  EXPECT_TRUE(add("two words").ok());

  const DenseMatrix wrong_rows(f.problem.sf0.rows() + 1,
                               f.problem.sf0.cols(), 0.1);
  const Result<size_t> mismatched =
      engine.AddCampaign("mismatched", FastConfig(), wrong_rows,
                         f.problem.builder, &f.problem.dataset.corpus);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  // Rejected registrations left no residue.
  EXPECT_EQ(engine.num_campaigns(), 2u);
  EXPECT_EQ(engine.FindCampaign("good-name"), 0);
  EXPECT_EQ(engine.FindCampaign("two words"), 1);
  EXPECT_EQ(engine.FindCampaign("mismatched"), -1);
}

// --- graceful degradation ----------------------------------------------------

std::string EngineStateBytes(const serving::CampaignEngine& engine,
                             size_t campaign) {
  std::ostringstream os;
  EXPECT_TRUE(engine.state(campaign).Write(&os).ok());
  return os.str();
}

/// Replaces the campaign's state with a NaN-poisoned copy (every recorded
/// factor becomes non-finite), the injection point for fit-failure tests.
void PoisonState(serving::CampaignEngine* engine, size_t campaign) {
  StreamState poisoned = engine->state(campaign);
  ASSERT_FALSE(poisoned.sf_history.empty())
      << "poisoning needs at least one advanced day";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (DenseMatrix& sf : poisoned.sf_history) sf.Fill(nan);
  for (auto& [user, rows] : poisoned.user_history) {
    for (std::vector<double>& row : rows) {
      std::fill(row.begin(), row.end(), nan);
    }
  }
  engine->set_state(campaign, std::move(poisoned));
}

TEST(CampaignHealthTest, PoisonedCampaignDegradesQuarantinesAndRevives) {
  // Two campaigns; campaign 0 gets poisoned, campaign 1 must stay
  // bit-identical to a solo reference run throughout (per-campaign blast
  // radius).
  std::vector<Fixture> fixtures;
  for (uint64_t seed : {5, 6}) fixtures.push_back(MakeFixture(seed));

  serving::CampaignEngine reference;
  reference.AddCampaign("sibling", FastConfig(), fixtures[1].problem.sf0,
                        fixtures[1].problem.builder,
                        &fixtures[1].problem.dataset.corpus).ValueOrDie();

  serving::CampaignEngine engine;  // quarantine_after_failures = 3 default
  engine.AddCampaign("victim", FastConfig(), fixtures[0].problem.sf0,
                     fixtures[0].problem.builder,
                     &fixtures[0].problem.dataset.corpus).ValueOrDie();
  engine.AddCampaign("sibling", FastConfig(), fixtures[1].problem.sf0,
                     fixtures[1].problem.builder,
                     &fixtures[1].problem.dataset.corpus).ValueOrDie();

  const auto ingest_day = [&](size_t day) {
    engine.Ingest(0, fixtures[0].days[day].tweet_ids, static_cast<int>(day));
    engine.Ingest(1, fixtures[1].days[day].tweet_ids, static_cast<int>(day));
    reference.Ingest(0, fixtures[1].days[day].tweet_ids,
                     static_cast<int>(day));
  };
  const auto expect_sibling_matches = [&](size_t day) {
    const auto expected = reference.Advance();
    ASSERT_EQ(expected.size(), 1u);
    const auto reports = engine.Advance();
    bool sibling_seen = false;
    for (const auto& report : reports) {
      if (engine.name(report.campaign) != "sibling") continue;
      sibling_seen = true;
      EXPECT_TRUE(report.fitted);
      ExpectSameFactors(report.result, expected[0].result,
                        "sibling day " + std::to_string(day));
    }
    EXPECT_TRUE(sibling_seen) << "day " << day;
  };

  // Day 0: both healthy.
  ingest_day(0);
  expect_sibling_matches(0);
  EXPECT_EQ(engine.health(0), serving::CampaignHealth::kHealthy);
  EXPECT_TRUE(engine.HealthReport().AllHealthy());

  // Poison the victim; three consecutive failed fits quarantine it, and
  // every failure rolls its state back untouched.
  PoisonState(&engine, 0);
  const std::string poisoned_bytes = EngineStateBytes(engine, 0);
  for (int round = 1; round <= 3; ++round) {
    ingest_day(static_cast<size_t>(round));
    const auto expected = reference.Advance();
    ASSERT_EQ(expected.size(), 1u);
    const auto reports = engine.Advance();
    bool victim_seen = false;
    for (const auto& report : reports) {
      if (engine.name(report.campaign) == "sibling") {
        ExpectSameFactors(report.result, expected[0].result,
                          "sibling round " + std::to_string(round));
        continue;
      }
      victim_seen = true;
      EXPECT_FALSE(report.fitted);
      EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);
      EXPECT_NE(report.status.message().find("non-finite"),
                std::string::npos);
    }
    if (round < 3) {
      EXPECT_TRUE(victim_seen);
      EXPECT_EQ(engine.health(0), serving::CampaignHealth::kDegraded);
    } else {
      EXPECT_EQ(engine.health(0), serving::CampaignHealth::kQuarantined);
    }
    // Rollback: the failed fit never advanced the victim's state.
    EXPECT_EQ(EngineStateBytes(engine, 0), poisoned_bytes)
        << "round " << round;
    EXPECT_EQ(engine.last_error(0).code(), StatusCode::kFailedPrecondition);
  }

  const serving::EngineHealthReport mid = engine.HealthReport();
  EXPECT_EQ(mid.healthy, 1u);
  EXPECT_EQ(mid.quarantined, 1u);
  EXPECT_EQ(mid.campaigns[0].consecutive_failures, 3);
  EXPECT_FALSE(mid.campaigns[0].last_error.ok());
  EXPECT_FALSE(mid.AllHealthy());

  // Quarantined: Advance() skips the victim entirely; its queue grows.
  ingest_day(4);
  expect_sibling_matches(4);
  EXPECT_GT(engine.num_pending(0), 0u);
  EXPECT_EQ(engine.timestep(0), 1);  // never advanced past day 0

  // Recovery: replace the poisoned state with a clean one and revive. The
  // accumulated queue fits on the next Advance and health returns to
  // kHealthy (last_error stays on record).
  StreamState clean;
  {
    // Rebuild the victim's day-0 state via a standalone clusterer.
    OnlineTriClusterer rebuild(FastConfig(), fixtures[0].problem.sf0);
    rebuild.ProcessSnapshot(fixtures[0].problem.builder.Build(
        fixtures[0].problem.dataset.corpus, fixtures[0].days[0].tweet_ids,
        0));
    clean = rebuild.state();
  }
  engine.set_state(0, std::move(clean));
  engine.ReviveCampaign(0);
  EXPECT_EQ(engine.health(0), serving::CampaignHealth::kHealthy);
  EXPECT_FALSE(engine.last_error(0).ok());  // kept for the record

  ingest_day(5);
  const auto reports = engine.Advance();
  bool victim_fitted = false;
  for (const auto& report : reports) {
    if (engine.name(report.campaign) != "sibling") {
      victim_fitted = report.fitted;
      EXPECT_TRUE(report.status.ok()) << report.status.ToString();
    }
  }
  EXPECT_TRUE(victim_fitted);
  EXPECT_EQ(engine.health(0), serving::CampaignHealth::kHealthy);
  EXPECT_EQ(engine.HealthReport().campaigns[0].consecutive_failures, 0);
}

TEST(CampaignHealthTest, QuarantineDisabledKeepsRetryingDegraded) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine::Options options;
  options.quarantine_after_failures = 0;  // never quarantine
  serving::CampaignEngine engine(options);
  engine.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();
  engine.Ingest(0, f.days[0].tweet_ids, 0);
  engine.Advance();
  PoisonState(&engine, 0);

  for (int round = 0; round < 5; ++round) {
    engine.Ingest(0, f.days[1].tweet_ids, 1);
    const auto reports = engine.Advance();
    ASSERT_EQ(reports.size(), 1u);  // still scheduled every time
    EXPECT_FALSE(reports[0].fitted);
    EXPECT_EQ(engine.health(0), serving::CampaignHealth::kDegraded);
  }
  EXPECT_EQ(engine.HealthReport().campaigns[0].consecutive_failures, 5);
}

TEST(CampaignHealthTest, ManualQuarantineSkipsAdvanceUntilRevived) {
  Fixture f = MakeFixture(5);
  serving::CampaignEngine engine;
  engine.AddCampaign("c0", FastConfig(), f.problem.sf0, f.problem.builder,
                     &f.problem.dataset.corpus).ValueOrDie();
  engine.QuarantineCampaign(0, Status::Internal("operator pulled it"));
  EXPECT_EQ(engine.health(0), serving::CampaignHealth::kQuarantined);
  EXPECT_EQ(engine.last_error(0).code(), StatusCode::kInternal);

  engine.Ingest(0, f.days[0].tweet_ids, 0);
  EXPECT_TRUE(engine.Advance().empty());
  EXPECT_EQ(engine.num_pending(0), f.days[0].tweet_ids.size());

  engine.ReviveCampaign(0);
  const auto reports = engine.Advance();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].fitted);
  EXPECT_EQ(engine.timestep(0), 1);
}

}  // namespace
}  // namespace triclust
