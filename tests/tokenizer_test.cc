#include "src/text/tokenizer.h"

#include <gtest/gtest.h>

namespace triclust {
namespace {

std::vector<std::string> Tok(std::string_view text,
                             TokenizerOptions options = {}) {
  return Tokenizer(options).Tokenize(text);
}

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tok("Support GMO Labeling"),
            (std::vector<std::string>{"support", "gmo", "labeling"}));
}

TEST(TokenizerTest, KeepsHashtagsWithMarker) {
  EXPECT_EQ(Tok("#Prop37 passes"),
            (std::vector<std::string>{"#prop37", "passes"}));
}

TEST(TokenizerTest, HashtagPunctuationStripped) {
  EXPECT_EQ(Tok("#yeson37!"), (std::vector<std::string>{"#yeson37"}));
  EXPECT_TRUE(Tok("#??").empty());
}

TEST(TokenizerTest, DropsMentionsByDefault) {
  EXPECT_EQ(Tok("@bob agrees"), (std::vector<std::string>{"agrees"}));
}

TEST(TokenizerTest, KeepsMentionsWhenAsked) {
  TokenizerOptions options;
  options.keep_mentions = true;
  EXPECT_EQ(Tok("@Bob agrees", options),
            (std::vector<std::string>{"@bob", "agrees"}));
}

TEST(TokenizerTest, StripsUrls) {
  EXPECT_EQ(Tok("read http://t.co/xyz now"),
            (std::vector<std::string>{"read", "now"}));
  EXPECT_EQ(Tok("see www.example.com today"),
            (std::vector<std::string>{"see", "today"}));
}

TEST(TokenizerTest, KeepsUrlsWhenAsked) {
  TokenizerOptions options;
  options.strip_urls = false;
  const auto tokens = Tok("http://t.co/xyz", options);
  ASSERT_EQ(tokens.size(), 1u);
}

TEST(TokenizerTest, MapsEmoticons) {
  EXPECT_EQ(Tok("love this :)"),
            (std::vector<std::string>{"love", "this",
                                      std::string(kPositiveEmoticonToken)}));
  EXPECT_EQ(Tok("sales :( again"),
            (std::vector<std::string>{"sales",
                                      std::string(kNegativeEmoticonToken),
                                      "again"}));
}

TEST(TokenizerTest, EmoticonMappingOptional) {
  TokenizerOptions options;
  options.map_emoticons = false;
  options.min_token_length = 1;
  // ":)" has no word characters, so it is stripped entirely.
  EXPECT_EQ(Tok("ok :)", options), (std::vector<std::string>{"ok"}));
}

TEST(TokenizerTest, StripsRetweetMarker) {
  EXPECT_EQ(Tok("RT great news"),
            (std::vector<std::string>{"great", "news"}));
  EXPECT_EQ(Tok("rt great"), (std::vector<std::string>{"great"}));
}

TEST(TokenizerTest, MinTokenLengthFilters) {
  EXPECT_EQ(Tok("a an axe"), (std::vector<std::string>{"an", "axe"}));
  TokenizerOptions options;
  options.min_token_length = 4;
  EXPECT_EQ(Tok("an axe chops", options),
            (std::vector<std::string>{"chops"}));
}

TEST(TokenizerTest, StripsPureNumbers) {
  EXPECT_EQ(Tok("spent 14000 dollars"),
            (std::vector<std::string>{"spent", "dollars"}));
  TokenizerOptions options;
  options.strip_numbers = false;
  EXPECT_EQ(Tok("spent 14000", options),
            (std::vector<std::string>{"spent", "14000"}));
}

TEST(TokenizerTest, KeepsInnerApostropheAndHyphen) {
  EXPECT_EQ(Tok("don't agri-tech!"),
            (std::vector<std::string>{"don't", "agri-tech"}));
}

TEST(TokenizerTest, StripsOuterPunctuation) {
  EXPECT_EQ(Tok("\"quoted,\" (words)."),
            (std::vector<std::string>{"quoted", "words"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tok("").empty());
  EXPECT_TRUE(Tok("   \t ").empty());
}

TEST(EmoticonTest, PolarityDetectors) {
  EXPECT_TRUE(IsPositiveEmoticon(":)"));
  EXPECT_TRUE(IsPositiveEmoticon(":D"));
  EXPECT_TRUE(IsPositiveEmoticon("<3"));
  EXPECT_TRUE(IsNegativeEmoticon(":("));
  EXPECT_TRUE(IsNegativeEmoticon(":'("));
  EXPECT_FALSE(IsPositiveEmoticon("hello"));
  EXPECT_FALSE(IsNegativeEmoticon(":)"));
}

}  // namespace
}  // namespace triclust
