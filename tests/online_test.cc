#include "src/core/online.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "src/core/offline.h"
#include "src/data/snapshots.h"
#include "src/eval/metrics.h"
#include "src/matrix/ops.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::MakeSmallProblem;
using testing_util::SmallProblem;

OnlineConfig FastOnlineConfig() {
  OnlineConfig config;
  config.base.max_iterations = 30;
  return config;
}

struct OnlineFixtureData {
  SmallProblem problem;
  std::vector<Snapshot> snapshots;
};

OnlineFixtureData MakeFixture(uint64_t seed = 5) {
  OnlineFixtureData f{MakeSmallProblem(seed), {}};
  f.snapshots = SplitByDay(f.problem.dataset.corpus);
  return f;
}

TEST(OnlineTest, FirstSnapshotActsLikeBootstrap) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  EXPECT_EQ(online.timestep(), 0);
  const DatasetMatrices day0 = f.problem.builder.Build(
      f.problem.dataset.corpus, f.snapshots[0].tweet_ids, 0);
  const TriClusterResult r = online.ProcessSnapshot(day0);
  EXPECT_EQ(online.timestep(), 1);
  // No history yet: every user is new, Sfw falls back to Sf0.
  EXPECT_EQ(online.last_partition().evolving_rows.size(), 0u);
  EXPECT_EQ(online.last_partition().new_rows.size(), day0.num_users());
  EXPECT_EQ(online.last_sfw(), f.problem.sf0);
  EXPECT_EQ(r.sp.rows(), day0.num_tweets());
  EXPECT_TRUE(IsNonNegative(r.sp));
}

TEST(OnlineTest, UsersBecomeEvolvingOnReappearance) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;

  const DatasetMatrices day0 =
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0);
  online.ProcessSnapshot(day0);
  std::unordered_set<size_t> seen(day0.user_ids.begin(),
                                  day0.user_ids.end());

  const DatasetMatrices day1 =
      f.problem.builder.Build(corpus, f.snapshots[1].tweet_ids, 1);
  online.ProcessSnapshot(day1);
  const auto& partition = online.last_partition();
  // Every "evolving" row's user was seen on day 0, every "new" row's wasn't.
  for (size_t row : partition.evolving_rows) {
    EXPECT_TRUE(seen.count(day1.user_ids[row]) > 0);
  }
  for (size_t row : partition.new_rows) {
    EXPECT_TRUE(seen.count(day1.user_ids[row]) == 0);
  }
  EXPECT_EQ(partition.evolving_rows.size() + partition.new_rows.size(),
            day1.num_users());
  // Disappeared = day-0 users not active on day 1.
  size_t expected_disappeared = 0;
  std::unordered_set<size_t> today(day1.user_ids.begin(),
                                   day1.user_ids.end());
  for (size_t u : seen) {
    if (today.count(u) == 0) ++expected_disappeared;
  }
  EXPECT_EQ(partition.num_disappeared, expected_disappeared);
}

TEST(OnlineTest, SfwIsDecayedAggregateOfHistory) {
  const auto f = MakeFixture();
  OnlineConfig config = FastOnlineConfig();
  config.window = 2;  // Sfw(t) = normalized τ·Sf(t−1) = Sf(t−1)
  config.lexicon_blend = 0.0;  // the paper's pure-history aggregate
  OnlineTriClusterer online(config, f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;

  const TriClusterResult r0 = online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0));
  online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[1].tweet_ids, 1));
  // With w = 2 the aggregate is the previous Sf with each feature row
  // renormalized to a distribution (factor magnitudes are arbitrary; only
  // the row shapes are regularization targets).
  DenseMatrix expected = r0.sf;
  expected.NormalizeRowsL1();
  const DenseMatrix& sfw = online.last_sfw();
  ASSERT_EQ(sfw.rows(), expected.rows());
  ASSERT_EQ(sfw.cols(), expected.cols());
  for (size_t i = 0; i < sfw.size(); ++i) {
    EXPECT_NEAR(sfw.data()[i], expected.data()[i], 1e-9);
  }
}

TEST(OnlineTest, UserSentimentHistoryMaintained) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  const DatasetMatrices day0 =
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0);
  const TriClusterResult r0 = online.ProcessSnapshot(day0);
  for (size_t j = 0; j < day0.num_users(); ++j) {
    const auto row = online.UserSentiment(day0.user_ids[j]);
    ASSERT_EQ(row.size(), 3u);
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(row[c], r0.su(j, c));
    }
  }
  EXPECT_TRUE(online.UserSentiment(999999).empty());
}

TEST(OnlineTest, EmptySnapshotCarriesStateForward) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  const TriClusterResult r0 = online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0));

  DatasetMatrices empty;
  {
    SparseMatrix::Builder xp_builder(0, f.problem.data.num_features());
    empty.xp = xp_builder.Build();
    SparseMatrix::Builder xu_builder(0, f.problem.data.num_features());
    empty.xu = xu_builder.Build();
    SparseMatrix::Builder xr_builder(0, 0);
    empty.xr = xr_builder.Build();
    empty.gu = UserGraph(0);
  }
  const TriClusterResult r1 = online.ProcessSnapshot(empty);
  EXPECT_EQ(online.timestep(), 2);
  EXPECT_EQ(r1.sp.rows(), 0u);
  EXPECT_EQ(r1.sf.rows(), f.problem.data.num_features());
  // User history survives an empty day.
  EXPECT_FALSE(online.UserSentiment(r0.su.rows() > 0
                                        ? f.problem.builder
                                              .Build(corpus,
                                                     f.snapshots[0].tweet_ids,
                                                     0)
                                              .user_ids[0]
                                        : 0)
                   .empty());
}

TEST(OnlineTest, ObjectiveNonIncreasingWithinSnapshot) {
  const auto f = MakeFixture();
  OnlineConfig config = FastOnlineConfig();
  config.base.tolerance = 0.0;
  config.base.max_iterations = 20;
  OnlineTriClusterer online(config, f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0));
  const TriClusterResult r = online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[1].tweet_ids, 1));
  ASSERT_GT(r.loss_history.size(), 5u);
  // The warm start places the solve near a balance point, so the component
  // oscillation of paper Fig. 8 can appear from the first iterations; the
  // testable property is overall descent with bounded oscillation.
  const double first = r.loss_history.front().Total();
  double lowest = first;
  for (const LossComponents& loss : r.loss_history) {
    lowest = std::min(lowest, loss.Total());
  }
  EXPECT_LT(lowest, first);
  EXPECT_LE(r.loss_history.back().Total(), 1.25 * lowest);
}

TEST(OnlineTest, AccuracyComparableToOfflinePerSnapshot) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  double online_acc = 0.0;
  int scored = 0;
  for (size_t s = 0; s < f.snapshots.size(); ++s) {
    const DatasetMatrices data = f.problem.builder.Build(
        corpus, f.snapshots[s].tweet_ids, f.snapshots[s].last_day);
    const TriClusterResult r = online.ProcessSnapshot(data);
    if (data.num_tweets() == 0) continue;
    online_acc += ClusteringAccuracy(r.TweetClusters(), data.tweet_labels);
    ++scored;
  }
  ASSERT_GT(scored, 0);
  online_acc /= scored;
  EXPECT_GT(online_acc, 0.6);
}

TEST(OnlineTest, FactorsStayNonNegativeAcrossStream) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  for (size_t s = 0; s < 5; ++s) {
    const DatasetMatrices data = f.problem.builder.Build(
        corpus, f.snapshots[s].tweet_ids, f.snapshots[s].last_day);
    const TriClusterResult r = online.ProcessSnapshot(data);
    EXPECT_TRUE(IsNonNegative(r.sp));
    EXPECT_TRUE(IsNonNegative(r.su));
    EXPECT_TRUE(IsNonNegative(r.sf));
    EXPECT_TRUE(AllFinite(r.sf));
  }
}

TEST(OnlineTest, WindowThreeAggregatesTwoSnapshots) {
  const auto f = MakeFixture();
  OnlineConfig config = FastOnlineConfig();
  config.window = 3;
  config.tau = 0.5;
  config.lexicon_blend = 0.0;  // the paper's pure-history aggregate
  OnlineTriClusterer online(config, f.problem.sf0);
  const Corpus& corpus = f.problem.dataset.corpus;
  const TriClusterResult r0 = online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[0].tweet_ids, 0));
  const TriClusterResult r1 = online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[1].tweet_ids, 1));
  online.ProcessSnapshot(
      f.problem.builder.Build(corpus, f.snapshots[2].tweet_ids, 2));
  // Sfw(2) = row-normalized[(τ·Sf(1) + τ²·Sf(0)) / (τ + τ²)]
  //        = row-normalized[(2·Sf(1) + Sf(0)) / 3].
  DenseMatrix expected = r1.sf;
  expected.ScaleInPlace(2.0 / 3.0);
  expected.Axpy(1.0 / 3.0, r0.sf);
  expected.NormalizeRowsL1();
  const DenseMatrix& got = online.last_sfw();
  ASSERT_EQ(got.rows(), expected.rows());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-9);
  }
}

TEST(OnlineTest, RejectsMismatchedFeatureSpace) {
  const auto f = MakeFixture();
  OnlineTriClusterer online(FastOnlineConfig(), f.problem.sf0);
  DatasetMatrices bad;
  SparseMatrix::Builder xp_builder(1, 3);  // wrong feature count
  xp_builder.Add(0, 0, 1.0);
  bad.xp = xp_builder.Build();
  EXPECT_DEATH(online.ProcessSnapshot(bad), "check failed");
}

}  // namespace
}  // namespace triclust
