#include "src/matrix/sparse_matrix.h"

#include <gtest/gtest.h>

#include "src/matrix/dense_matrix.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace triclust {
namespace {

using testing_util::RandomSparse;

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseBuilderTest, BuildsSortedRows) {
  SparseMatrix::Builder builder(3, 4);
  builder.Add(2, 3, 1.0);
  builder.Add(0, 1, 2.0);
  builder.Add(2, 0, 3.0);
  const SparseMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(SparseBuilderTest, CoalescesDuplicates) {
  SparseMatrix::Builder builder(2, 2);
  builder.Add(1, 1, 1.5);
  builder.Add(1, 1, 2.5);
  const SparseMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4.0);
}

TEST(SparseBuilderTest, DropsCancelledEntries) {
  SparseMatrix::Builder builder(2, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 0, -1.0);
  builder.Add(0, 1, 2.0);
  const SparseMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(SparseBuilderTest, ReusableAfterBuild) {
  SparseMatrix::Builder builder(1, 1);
  builder.Add(0, 0, 1.0);
  const SparseMatrix first = builder.Build();
  EXPECT_EQ(first.nnz(), 1u);
  const SparseMatrix second = builder.Build();  // drained
  EXPECT_EQ(second.nnz(), 0u);
}

TEST(SparseMatrixTest, RowSumsAndColumnSums) {
  SparseMatrix::Builder builder(2, 3);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 2, 2.0);
  builder.Add(1, 2, 3.0);
  const SparseMatrix m = builder.Build();
  EXPECT_DOUBLE_EQ(m.RowSum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 3.0);
  EXPECT_EQ(m.ColumnSums(), (std::vector<double>{1.0, 0.0, 5.0}));
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 1.0 + 4.0 + 9.0);
  EXPECT_EQ(m.RowNnz(0), 2u);
}

TEST(SparseMatrixTest, TransposeMatchesDense) {
  Rng rng(3);
  const SparseMatrix m = RandomSparse(7, 5, 0.3, &rng);
  const SparseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 7u);
  EXPECT_EQ(t.nnz(), m.nnz());
  const DenseMatrix dm = m.ToDense();
  const DenseMatrix dt = t.ToDense();
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(dt.At(j, i), dm.At(i, j));
    }
  }
}

TEST(SparseMatrixTest, SelectRowsKeepsContent) {
  Rng rng(4);
  const SparseMatrix m = RandomSparse(6, 4, 0.5, &rng);
  const SparseMatrix sub = m.SelectRows({4, 0, 4});
  EXPECT_EQ(sub.rows(), 3u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(sub.At(0, j), m.At(4, j));
    EXPECT_DOUBLE_EQ(sub.At(1, j), m.At(0, j));
    EXPECT_DOUBLE_EQ(sub.At(2, j), m.At(4, j));
  }
}

TEST(SparseMatrixTest, FromDenseRoundTrip) {
  DenseMatrix d({{0, 1.5, 0}, {2.5, 0, -3.0}});
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_EQ(s.ToDense(), d);
}

TEST(SparseMatrixTest, FromDenseTolerance) {
  DenseMatrix d({{0.05, 1.0}});
  const SparseMatrix s = SparseMatrix::FromDense(d, 0.1);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_DOUBLE_EQ(s.At(0, 1), 1.0);
}

/// CSR structural invariants on random instances (property test).
class SparseInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseInvariantTest, CsrInvariantsHold) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t rows = 1 + rng.NextUint64Below(40);
  const size_t cols = 1 + rng.NextUint64Below(40);
  const SparseMatrix m = RandomSparse(rows, cols, 0.2, &rng);

  const auto& row_ptr = m.row_ptr();
  ASSERT_EQ(row_ptr.size(), rows + 1);
  EXPECT_EQ(row_ptr.front(), 0u);
  EXPECT_EQ(row_ptr.back(), m.nnz());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_LE(row_ptr[i], row_ptr[i + 1]);
    // Within-row columns strictly increasing (sorted + unique).
    for (size_t p = row_ptr[i] + 1; p < row_ptr[i + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);
    }
    for (size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p], cols);
      EXPECT_NE(m.values()[p], 0.0);
    }
  }
}

TEST_P(SparseInvariantTest, TransposeIsInvolution) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const size_t rows = 1 + rng.NextUint64Below(30);
  const size_t cols = 1 + rng.NextUint64Below(30);
  const SparseMatrix m = RandomSparse(rows, cols, 0.25, &rng);
  const SparseMatrix tt = m.Transposed().Transposed();
  EXPECT_EQ(tt.ToDense(), m.ToDense());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SparseInvariantTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace triclust
