#include "src/util/status.h"

#include <gtest/gtest.h>

namespace triclust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotConverged),
               "NotConverged");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace macros {

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x, bool* reached_end) {
  TRICLUST_RETURN_IF_ERROR(FailWhenNegative(x));
  *reached_end = true;
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssign(int x, int* out) {
  TRICLUST_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  bool reached_end = false;
  EXPECT_FALSE(macros::Caller(-1, &reached_end).ok());
  EXPECT_FALSE(reached_end);
  EXPECT_TRUE(macros::Caller(1, &reached_end).ok());
  EXPECT_TRUE(reached_end);
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  int out = 0;
  EXPECT_TRUE(macros::UseAssign(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(macros::UseAssign(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace triclust
